(* A documentation gate that works without odoc installed: every
   *top-level* declaration in the given .mli files must carry a doc
   comment, either immediately before it or after its signature (the
   odoc convention used in this repository).  Items nested inside module
   signatures (indented lines) are covered by their module's doc and are
   not checked individually.

   This is a heuristic line scanner, not a parser; it understands just
   enough of the ocamlformat output this repo commits: declarations
   start in column 0 with [val]/[type]/[module]/[exception], and a doc
   comment is one whose opener has a second star.

   A second mode keeps the manual honest about the CLI: given a dump of
   every subcommand's --help output and the markdown manual, it checks
   the two agree — every [--flag] a document mentions must exist in the
   help dump (no stale or misspelled flags), and every flag the help
   dump advertises must be mentioned in at least one document (no
   undocumented surface).

   Usage: doc_lint.exe FILE.mli ...
          doc_lint.exe --flags HELP_DUMP.txt DOC.md ...
   Exits 1 listing undocumented items / stale flags. *)

type line_kind =
  | Decl of string (* a column-0 declaration; payload is the item name *)
  | Doc_start (* a line opening a doc comment *)
  | Comment (* a line opening a plain comment *)
  | Blank
  | Other (* continuation lines, nested items, comment bodies *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

let item_name line =
  (* second word, stripped of trailing [:] *)
  match String.split_on_char ' ' line with
  | _ :: name :: _ ->
      let name =
        match String.index_opt name ':' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      if name = "" then "_" else name
  | _ -> "_"

let classify line =
  let trimmed = String.trim line in
  if trimmed = "" then Blank
  else if starts_with "(**" trimmed then Doc_start
  else if starts_with "(*" trimmed then Comment
  else if
    List.exists
      (fun kw -> starts_with kw line)
      [ "val "; "type "; "module "; "exception "; "external " ]
  then Decl (item_name line)
  else Other

let read_lines file =
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !lines)

let check file =
  let lines = read_lines file in
  let kinds = Array.map classify lines in
  let n = Array.length lines in
  (* the opening line of the comment whose text ends at line [j]: walk
     back to the nearest line that starts a comment *)
  let rec comment_opener j =
    if j < 0 then None
    else
      match kinds.(j) with
      | Doc_start -> Some Doc_start
      | Comment -> Some Comment
      | Other -> comment_opener (j - 1)
      | Decl _ | Blank -> None
  in
  let rec prev_nonblank j =
    if j >= 0 && kinds.(j) = Blank then prev_nonblank (j - 1) else j
  in
  let doc_before i =
    let j = prev_nonblank (i - 1) in
    j >= 0
    &&
    match kinds.(j) with
    | Doc_start -> true
    | Other when ends_with "*)" (String.trim lines.(j)) ->
        comment_opener j = Some Doc_start
    | _ -> false
  in
  (* scan forward over the declaration's continuation lines; documented
     iff a doc comment starts before the first blank line / next item *)
  let doc_after i =
    let rec fwd j =
      j < n
      &&
      match kinds.(j) with
      | Doc_start -> true
      | Other -> fwd (j + 1)
      | Decl _ | Blank | Comment -> false
    in
    fwd (i + 1)
  in
  let errors = ref [] in
  Array.iteri
    (fun i kind ->
      match kind with
      | Decl name ->
          if not (doc_before i || doc_after i) then
            errors := (i + 1, name) :: !errors
      | _ -> ())
    kinds;
  List.rev !errors

(* --- stale-flag mode ------------------------------------------------- *)

let is_flag_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* every [--long-flag] token on a line, left to right; a "--" must not
   be glued to a preceding word (rules out sentence dashes) and must be
   followed by a letter (rules out markdown rules and bare "--") *)
let flags_on_line line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i + 2 < n do
    if
      line.[!i] = '-'
      && line.[!i + 1] = '-'
      && (line.[!i + 2] >= 'a' && line.[!i + 2] <= 'z')
      && (!i = 0 || not (is_flag_char line.[!i - 1]))
    then begin
      let j = ref (!i + 2) in
      while !j < n && is_flag_char line.[!j] do
        incr j
      done;
      out := String.sub line !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

(* meta-flags that appear in every cmdliner help page and in this
   checker's own usage line; not part of the surface worth documenting *)
let boring = [ "--help"; "--version"; "--flags" ]

let check_flags help_dump docs =
  let advertised = Hashtbl.create 64 in
  Array.iter
    (fun line ->
      List.iter
        (fun f -> if not (List.mem f boring) then Hashtbl.replace advertised f ())
        (flags_on_line line))
    (read_lines help_dump);
  let mentioned = Hashtbl.create 64 in
  let total = ref 0 in
  List.iter
    (fun doc ->
      Array.iteri
        (fun i line ->
          List.iter
            (fun f ->
              if not (List.mem f boring) then
                if Hashtbl.mem advertised f then Hashtbl.replace mentioned f ()
                else begin
                  incr total;
                  Printf.printf
                    "%s:%d: stale flag %s (not in any --help output)\n" doc
                    (i + 1) f
                end)
            (flags_on_line line))
        (read_lines doc))
    docs;
  Hashtbl.iter
    (fun f () ->
      if not (Hashtbl.mem mentioned f) then begin
        incr total;
        Printf.printf "%s: flag %s is advertised by --help but no document mentions it\n"
          help_dump f
      end)
    advertised;
  if !total > 0 then begin
    Printf.printf "%d stale/undocumented flag(s)\n" !total;
    exit 1
  end

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [] | [ "--flags" ] | [ "--flags"; _ ] ->
      prerr_endline "usage: doc_lint.exe FILE.mli ...";
      prerr_endline "       doc_lint.exe --flags HELP_DUMP.txt DOC.md ...";
      exit 2
  | "--flags" :: help_dump :: docs -> check_flags help_dump docs
  | files ->
      let total = ref 0 in
      List.iter
        (fun file ->
          List.iter
            (fun (line, name) ->
              incr total;
              Printf.printf "%s:%d: undocumented public item %s\n" file line
                name)
            (check file))
        files;
      if !total > 0 then begin
        Printf.printf "%d undocumented public item(s)\n" !total;
        exit 1
      end
