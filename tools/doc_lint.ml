(* A documentation gate that works without odoc installed: every
   *top-level* declaration in the given .mli files must carry a doc
   comment, either immediately before it or after its signature (the
   odoc convention used in this repository).  Items nested inside module
   signatures (indented lines) are covered by their module's doc and are
   not checked individually.

   This is a heuristic line scanner, not a parser; it understands just
   enough of the ocamlformat output this repo commits: declarations
   start in column 0 with [val]/[type]/[module]/[exception], and a doc
   comment is one whose opener has a second star.

   Usage: doc_lint.exe FILE.mli ...; exits 1 listing undocumented items. *)

type line_kind =
  | Decl of string (* a column-0 declaration; payload is the item name *)
  | Doc_start (* a line opening a doc comment *)
  | Comment (* a line opening a plain comment *)
  | Blank
  | Other (* continuation lines, nested items, comment bodies *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

let item_name line =
  (* second word, stripped of trailing [:] *)
  match String.split_on_char ' ' line with
  | _ :: name :: _ ->
      let name =
        match String.index_opt name ':' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      if name = "" then "_" else name
  | _ -> "_"

let classify line =
  let trimmed = String.trim line in
  if trimmed = "" then Blank
  else if starts_with "(**" trimmed then Doc_start
  else if starts_with "(*" trimmed then Comment
  else if
    List.exists
      (fun kw -> starts_with kw line)
      [ "val "; "type "; "module "; "exception "; "external " ]
  then Decl (item_name line)
  else Other

let read_lines file =
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !lines)

let check file =
  let lines = read_lines file in
  let kinds = Array.map classify lines in
  let n = Array.length lines in
  (* the opening line of the comment whose text ends at line [j]: walk
     back to the nearest line that starts a comment *)
  let rec comment_opener j =
    if j < 0 then None
    else
      match kinds.(j) with
      | Doc_start -> Some Doc_start
      | Comment -> Some Comment
      | Other -> comment_opener (j - 1)
      | Decl _ | Blank -> None
  in
  let rec prev_nonblank j =
    if j >= 0 && kinds.(j) = Blank then prev_nonblank (j - 1) else j
  in
  let doc_before i =
    let j = prev_nonblank (i - 1) in
    j >= 0
    &&
    match kinds.(j) with
    | Doc_start -> true
    | Other when ends_with "*)" (String.trim lines.(j)) ->
        comment_opener j = Some Doc_start
    | _ -> false
  in
  (* scan forward over the declaration's continuation lines; documented
     iff a doc comment starts before the first blank line / next item *)
  let doc_after i =
    let rec fwd j =
      j < n
      &&
      match kinds.(j) with
      | Doc_start -> true
      | Other -> fwd (j + 1)
      | Decl _ | Blank | Comment -> false
    in
    fwd (i + 1)
  in
  let errors = ref [] in
  Array.iteri
    (fun i kind ->
      match kind with
      | Decl name ->
          if not (doc_before i || doc_after i) then
            errors := (i + 1, name) :: !errors
      | _ -> ())
    kinds;
  List.rev !errors

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: doc_lint.exe FILE.mli ...";
    exit 2
  end;
  let total = ref 0 in
  List.iter
    (fun file ->
      List.iter
        (fun (line, name) ->
          incr total;
          Printf.printf "%s:%d: undocumented public item %s\n" file line name)
        (check file))
    files;
  if !total > 0 then begin
    Printf.printf "%d undocumented public item(s)\n" !total;
    exit 1
  end
