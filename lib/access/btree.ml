module V = Relational.Value

exception Key_type_clash of string

type 'p leaf = {
  mutable items : (V.t * 'p list) list;  (* sorted by key *)
  mutable next : 'p leaf option;
}

type 'p node = Leaf of 'p leaf | Node of 'p internal
and 'p internal = { mutable keys : V.t list; mutable kids : 'p node list }

type 'p t = {
  order : int;
  mutable root : 'p node;
  mutable key_type : V.ty option;
  mutable deletions : bool;
}

let create ?(order = 8) () =
  let order = max 3 order in
  { order; root = Leaf { items = []; next = None }; key_type = None; deletions = false }

let check_key t key =
  let ty = V.type_of key in
  match t.key_type with
  | None -> t.key_type <- Some ty
  | Some ty' ->
      if ty <> ty' then
        raise
          (Key_type_clash
             (Printf.sprintf "tree keys are %s, got %s" (V.ty_to_string ty')
                (V.ty_to_string ty)))

(* insert into a sorted assoc list, appending to an existing payload list *)
let rec insert_sorted key payload = function
  | [] -> [ (key, [ payload ]) ]
  | (k, ps) :: rest ->
      let c = V.compare key k in
      if c = 0 then (k, ps @ [ payload ]) :: rest
      else if c < 0 then (key, [ payload ]) :: (k, ps) :: rest
      else (k, ps) :: insert_sorted key payload rest

let split_list xs =
  let n = List.length xs in
  let rec take k = function
    | [] -> ([], [])
    | x :: rest ->
        if k = 0 then ([], x :: rest)
        else begin
          let l, r = take (k - 1) rest in
          (x :: l, r)
        end
  in
  take (n / 2) xs

(* returns Some (separator, right sibling) when the child split *)
let rec insert_node t node key payload =
  match node with
  | Leaf leaf ->
      leaf.items <- insert_sorted key payload leaf.items;
      if List.length leaf.items > t.order then begin
        let left_items, right_items = split_list leaf.items in
        let right = { items = right_items; next = leaf.next } in
        leaf.items <- left_items;
        leaf.next <- Some right;
        match right_items with
        | (sep, _) :: _ -> Some (sep, Leaf right)
        | [] -> assert false
      end
      else None
  | Node inner ->
      (* find the child to descend into *)
      let rec pick keys kids before_keys before_kids =
        match (keys, kids) with
        | [], [ last ] -> (last, List.rev before_keys, List.rev before_kids, [], [])
        | k :: krest, child :: crest ->
            if V.compare key k < 0 then
              (child, List.rev before_keys, List.rev before_kids, keys, crest)
            else pick krest crest (k :: before_keys) (child :: before_kids)
        | _ -> assert false
      in
      let child, keys_before, kids_before, keys_after, kids_after =
        pick inner.keys inner.kids [] []
      in
      (match insert_node t child key payload with
      | None -> ()
      | Some (sep, right) ->
          inner.keys <- keys_before @ [ sep ] @ keys_after;
          inner.kids <- kids_before @ [ child; right ] @ kids_after);
      if List.length inner.keys > t.order then begin
        let left_keys, right_keys_with_sep = split_list inner.keys in
        match right_keys_with_sep with
        | sep :: right_keys ->
            let left_kids, right_kids =
              let rec take k = function
                | xs when k = 0 -> ([], xs)
                | x :: rest ->
                    let l, r = take (k - 1) rest in
                    (x :: l, r)
                | [] -> ([], [])
              in
              take (List.length left_keys + 1) inner.kids
            in
            let right = Node { keys = right_keys; kids = right_kids } in
            inner.keys <- left_keys;
            inner.kids <- left_kids;
            Some (sep, right)
        | [] -> assert false
      end
      else None

let insert t key payload =
  check_key t key;
  match insert_node t t.root key payload with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Node { keys = [ sep ]; kids = [ t.root; right ] }

let rec find_leaf node key =
  match node with
  | Leaf leaf -> leaf
  | Node inner ->
      let rec pick keys kids =
        match (keys, kids) with
        | [], [ last ] -> find_leaf last key
        | k :: krest, child :: crest ->
            if V.compare key k < 0 then find_leaf child key
            else pick krest crest
        | _ -> assert false
      in
      pick inner.keys inner.kids

let find t key =
  match t.key_type with
  | None -> []
  | Some ty when ty <> V.type_of key -> []
  | Some _ ->
      let leaf = find_leaf t.root key in
      (match List.assoc_opt key leaf.items with
      | Some ps -> ps
      | None -> (
          (* assoc uses structural equality; fall back to comparison *)
          match
            List.find_opt (fun (k, _) -> V.compare k key = 0) leaf.items
          with
          | Some (_, ps) -> ps
          | None -> []))

let mem t key = find t key <> []

let delete t key =
  match t.key_type with
  | None -> false
  | Some ty when ty <> V.type_of key -> false
  | Some _ ->
      let leaf = find_leaf t.root key in
      let before = List.length leaf.items in
      leaf.items <- List.filter (fun (k, _) -> V.compare k key <> 0) leaf.items;
      let removed = List.length leaf.items < before in
      if removed then t.deletions <- true;
      removed

let range t ~lo ~hi =
  match t.key_type with
  | None -> []
  | Some _ ->
      let rec walk leaf acc =
        let in_range, past =
          List.fold_left
            (fun (acc, past) (k, ps) ->
              if V.compare k lo < 0 then (acc, past)
              else if V.compare k hi > 0 then (acc, true)
              else ((k, ps) :: acc, past))
            (acc, false) leaf.items
        in
        if past then in_range
        else
          match leaf.next with
          | Some next -> walk next in_range
          | None -> in_range
      in
      List.rev (walk (find_leaf t.root lo) [])

let rec leftmost_leaf = function
  | Leaf l -> l
  | Node n -> leftmost_leaf (List.hd n.kids)

let fold_range ?lo ?hi f t init =
  match t.key_type with
  | None -> init
  | Some _ ->
      let start =
        match lo with
        | Some key -> find_leaf t.root key
        | None -> leftmost_leaf t.root
      in
      let rec walk leaf acc =
        let acc, past =
          List.fold_left
            (fun (acc, past) (k, ps) ->
              if past then (acc, past)
              else if (match lo with Some l -> V.compare k l < 0 | None -> false)
              then (acc, false)
              else if (match hi with Some h -> V.compare k h > 0 | None -> false)
              then (acc, true)
              else (f k ps acc, false))
            (acc, false) leaf.items
        in
        if past then acc
        else match leaf.next with Some next -> walk next acc | None -> acc
      in
      walk start init

let iter f t =
  let leftmost = leftmost_leaf in
  let rec walk leaf =
    List.iter (fun (k, ps) -> f k ps) leaf.items;
    match leaf.next with Some next -> walk next | None -> ()
  in
  walk (leftmost t.root)

let cardinality t =
  let count = ref 0 in
  iter (fun _ _ -> incr count) t;
  !count

let height t =
  let rec go = function Leaf _ -> 1 | Node n -> 1 + go (List.hd n.kids) in
  go t.root

let of_list ?order entries =
  let t = create ?order () in
  List.iter (fun (k, p) -> insert t k p) entries;
  t

let check_invariants t =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> V.compare a b < 0 && sorted rest
  in
  let min_keys = t.order / 2 in
  let rec depth = function Leaf _ -> 1 | Node n -> 1 + depth (List.hd n.kids) in
  let expected_depth = depth t.root in
  let rec go node level ~is_root ~lo ~hi =
    let bound_ok k =
      (match lo with Some l -> V.compare l k <= 0 | None -> true)
      && match hi with Some h -> V.compare k h < 0 | None -> true
    in
    match node with
    | Leaf leaf ->
        if level <> expected_depth then fail "leaf at depth %d, expected %d" level expected_depth
        else if not (sorted (List.map fst leaf.items)) then fail "unsorted leaf"
        else if List.exists (fun (k, _) -> not (bound_ok k)) leaf.items then
          fail "leaf key out of separator bounds"
        else if
          (not is_root) && (not t.deletions)
          && List.length leaf.items < min_keys
        then fail "leaf underflow (%d items)" (List.length leaf.items)
        else Ok ()
    | Node inner ->
        if List.length inner.kids <> List.length inner.keys + 1 then
          fail "node with %d keys and %d kids" (List.length inner.keys)
            (List.length inner.kids)
        else if not (sorted inner.keys) then fail "unsorted separators"
        else if List.exists (fun k -> not (bound_ok k)) inner.keys then
          fail "separator out of bounds"
        else begin
          let bounds =
            let keys = Array.of_list inner.keys in
            List.mapi
              (fun i _ ->
                ( (if i = 0 then lo else Some keys.(i - 1)),
                  if i = Array.length keys then hi else Some keys.(i) ))
              inner.kids
          in
          List.fold_left2
            (fun acc child (clo, chi) ->
              match acc with
              | Error _ -> acc
              | Ok () -> go child (level + 1) ~is_root:false ~lo:clo ~hi:chi)
            (Ok ()) inner.kids bounds
        end
  in
  go t.root 1 ~is_root:true ~lo:None ~hi:None

module R = Relational

let index_relation ?order rel attr =
  let pos = R.Schema.index_of (R.Relation.schema rel) attr in
  let t = create ?order () in
  R.Relation.iter (fun tup -> insert t tup.(pos) tup) rel;
  t

let select_range index rel ~lo ~hi =
  let schema = R.Relation.schema rel in
  let tuples = List.concat_map snd (range index ~lo ~hi) in
  R.Relation.of_tuples schema tuples
