(** A B+tree over relational values — the "data structures and access
    methods" tradition, which "already had the modest presence they would
    maintain throughout the fourteen years" (§6).

    Keys are {!Relational.Value.t} (single-type per tree, enforced);
    each key maps to the list of payloads inserted under it (duplicates
    allowed, as a secondary index needs).  Leaves are linked for range
    scans.  Deletion is {e lazy} (keys are removed from leaves without
    rebalancing, as real systems like PostgreSQL do): lookups stay
    correct, and the occupancy invariant is only guaranteed right after
    {!of_list}/inserts. *)

type 'payload t

exception Key_type_clash of string

val create : ?order:int -> unit -> 'p t
(** [order] = maximum keys per node (default 8, minimum 3). *)

val insert : 'p t -> Relational.Value.t -> 'p -> unit
(** Appends a payload under the key.  Raises {!Key_type_clash} if the
    key's type differs from previous keys'. *)

val find : 'p t -> Relational.Value.t -> 'p list
(** All payloads under the key, oldest first; [] when absent. *)

val mem : 'p t -> Relational.Value.t -> bool

val delete : 'p t -> Relational.Value.t -> bool
(** Removes the key and all its payloads (lazy: no rebalancing); [true]
    when something was removed. *)

val range :
  'p t -> lo:Relational.Value.t -> hi:Relational.Value.t ->
  (Relational.Value.t * 'p list) list
(** Keys in [\[lo, hi\]] in order, via the leaf chain. *)

val fold_range :
  ?lo:Relational.Value.t -> ?hi:Relational.Value.t ->
  (Relational.Value.t -> 'p list -> 'a -> 'a) -> 'p t -> 'a -> 'a
(** Fold over keys in [\[lo, hi\]] in order, either bound optional (an
    absent bound is open: the walk starts at the leftmost leaf / runs to
    the end of the leaf chain).  The half-open forms are what the
    planner's index range scans compile [a >= c] / [a <= c] conjuncts
    into. *)

val iter : (Relational.Value.t -> 'p list -> unit) -> 'p t -> unit
(** In key order. *)

val cardinality : 'p t -> int
(** Number of distinct keys. *)

val height : 'p t -> int

val of_list : ?order:int -> (Relational.Value.t * 'p) list -> 'p t

val check_invariants : 'p t -> (unit, string) result
(** Sorted keys, separator consistency, balanced leaf depth, and (for
    trees built by insertion only) minimum occupancy. *)

val index_relation :
  ?order:int ->
  Relational.Relation.t ->
  Relational.Schema.attribute ->
  Relational.Tuple.t t
(** A secondary index: key = the attribute's value, payload = the tuple. *)

val select_range :
  Relational.Tuple.t t ->
  Relational.Relation.t ->
  lo:Relational.Value.t ->
  hi:Relational.Value.t ->
  Relational.Relation.t
(** Range selection answered from the index; equals the scan-based
    selection (property-tested). *)
