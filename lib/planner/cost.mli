(** The planner's cost model: {!Relational.Optimizer.estimate}'s
    textbook cardinality arithmetic extended with I/O terms priced off
    the buffer pool.  Costs are dimensionless work units — only their
    order matters — with constants chosen so the classic trade-offs come
    out right: point probes beat sequential scans once a table outgrows
    a couple of pages, chains that fit in the pool are charged the
    cached page rate, and a hash join whose build side outgrows its
    memory budget pays modeled spill passes that let a merge join over
    index-ordered inputs take over. *)

type params = {
  pool_pages : int;  (** buffer pool capacity, from the open engine *)
  page_io : float;  (** reading a page not expected to be resident *)
  page_cached : float;  (** reading a page when the chain fits the pool *)
  cpu_tuple : float;  (** producing/copying one tuple *)
  cpu_cmp : float;  (** one comparison (filters, sorts, merge) *)
  cpu_hash : float;  (** hashing one tuple (build or probe) *)
  probe_btree : float;  (** one B+tree descent *)
  probe_hash : float;  (** one hash-directory lookup *)
  hash_mem_tuples : int;  (** build rows before a hash join is modeled
                              as spilling *)
  sort_mem_tuples : int;  (** rows before a sort is modeled as (and the
                              executor actually starts) spilling runs *)
  tuples_per_page : float;  (** fallback rows-per-page when a table has
                                no statistics *)
  range_selectivity : float;  (** fraction a range predicate keeps *)
  conjunct_selectivity : float;  (** fraction one conjunct keeps
                                     (matches [Optimizer.estimate]) *)
  default_distinct : int;  (** join-key domain when no statistics
                               resolve the attribute *)
}
(** The tunable constants; see {!default} for the values used by the
    CLI. *)

val default : pool_pages:int -> params
(** The stock parameters for an engine whose buffer pool holds
    [pool_pages] frames. *)

val annotate : params -> Stats.t -> Physical.t -> unit
(** Fill every node's [est_rows]/[est_cost] annotations bottom-up.
    Idempotent; the planner re-annotates each candidate it considers. *)
