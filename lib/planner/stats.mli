(** Per-table statistics for the cost-based planner, in the System R
    tradition: row count, heap page count, and a per-column
    distinct-value count, collected by one scan ([ANALYZE]) and persisted
    in the reserved catalog table ["__stats"] so later sessions plan
    without touching the data.  [db load] and [db index create] refresh
    them; a table loaded by an older binary simply has no entry and
    falls back to page-based defaults in {!Cost}. *)

type column = { attr : string; distinct : int }
(** One column's statistics: its name and the number of distinct values
    observed (the denominator of the equality-selectivity estimate
    [rows / distinct]). *)

type table = { rows : int; pages : int; columns : column list }
(** One table's statistics: tuple count, heap chain length in pages (the
    I/O a sequential scan pays), and per-column distinct counts. *)

type t = (string * table) list
(** Statistics for a set of tables, sorted by table name. *)

val stats_table : string
(** The reserved catalog table the statistics persist in (["__stats"]);
    hidden from enumeration by {!Storage.Engine.reserved}. *)

val find : t -> string -> table option
(** Statistics for one table, if collected. *)

val distinct : table -> string -> int option
(** Distinct-value count of one column, if known. *)

val collect : Storage.Engine.t -> string -> table
(** Scan one table and compute its statistics (does not persist).
    Raises {!Storage.Engine.Unknown_table}. *)

val analyze : Storage.Engine.t -> string list -> t
(** [analyze eng names] collects fresh statistics for [names], merges
    them with whatever was persisted for other tables, saves the result
    into {!stats_table}, and returns it.  Recorded as a [plan.analyze]
    span on the engine's trace. *)

val load : Storage.Engine.t -> t
(** The persisted statistics ([[]] when none were ever collected). *)

val save : Storage.Engine.t -> t -> unit
(** Persist statistics into {!stats_table}, replacing the previous
    snapshot. *)

val row_stats : t -> Relational.Optimizer.stats
(** Adapt to the logical optimizer's cardinality interface: a table's
    row count, or 100 for tables without statistics. *)
