(* Chase-based join elimination: the semantic rewrite that pays for the
   metatheory.  Keys observed by ANALYZE (a column whose distinct count
   equals the row count) become functional dependencies; the query's
   conjunctive core under those dependencies — chase, then minimize — can
   have strictly fewer relation atoms than the query joins, and when the
   smaller body is realizable as algebra with the same schema, the join
   is provably redundant and dropped before physical compilation. *)

module R = Relational
module A = R.Algebra
module C = Datalog.Containment
module I = Datalog.Interop

let fds_of_stats catalog stats =
  List.concat_map
    (fun (table, t) ->
      match (try Some (catalog table : R.Schema.t) with _ -> None) with
      | None -> []
      | Some schema ->
          let attrs = R.Schema.attributes schema in
          let positions = List.mapi (fun i a -> (i, a)) attrs in
          if t.Stats.rows <= 0 then []
          else
            List.filter_map
              (fun (i, a) ->
                match Stats.distinct t a with
                | Some d when d = t.Stats.rows ->
                    Some
                      {
                        C.fd_pred = table;
                        fd_lhs = [ i ];
                        fd_rhs =
                          List.filter_map
                            (fun (j, _) -> if j <> i then Some j else None)
                            positions;
                      }
                | _ -> None)
              positions)
    stats

let real_atoms body = List.filter (fun a -> not (I.is_comparison_atom a)) body

(* The rewrite is accepted only if it provably changes nothing: same
   schema, and equivalent under the dependencies when translated back —
   a failed proof means we keep the original query, never a diagnostic
   here (Certify re-checks the accepted rewrite independently). *)
let try_eliminate catalog fds expr body binding =
  let before = List.length (real_atoms body) in
  if before < 2 then None
  else
    let schema = A.schema_of catalog expr in
    let attrs = R.Schema.attributes schema in
    let head = List.map (fun a -> List.assoc a binding) attrs in
    match C.chase_opt fds { C.head; body } with
    | None -> None (* empty under the fds; the lint reports, the plan stands *)
    | Some chased -> (
        let core = C.minimize chased in
        let after = List.length (real_atoms core.C.body) in
        if after >= before then None
        else
          let out = List.combine attrs core.C.head in
          match I.algebra_of_cq catalog ~out core.C.body with
          | None -> None
          | Some rewritten ->
              let same_schema =
                try R.Schema.equal (A.schema_of catalog rewritten) schema
                with _ -> false
              in
              let certified =
                match I.spj_of_algebra catalog rewritten with
                | I.Spj { body = body'; binding = binding' } ->
                    C.equivalent_under fds
                      (I.saturate (I.canonical_cq binding body))
                      (I.saturate (I.canonical_cq binding' body'))
                | I.Spj_empty _ | I.Spj_outside _ -> false
              in
              if same_schema && certified then
                Some (rewritten, before - after)
              else None)

let rec eliminate_joins catalog fds expr =
  match I.spj_of_algebra catalog expr with
  | I.Spj { body; binding } -> (
      match try_eliminate catalog fds expr body binding with
      | Some (rewritten, dropped) -> (rewritten, dropped)
      | None -> (expr, 0))
  | I.Spj_empty _ -> (expr, 0)
  | I.Spj_outside _ -> (
      let recurse = eliminate_joins catalog fds in
      let unary mk e =
        let e', n = recurse e in
        ((if n = 0 then expr else mk e'), n)
      in
      let binary mk a b =
        let a', na = recurse a in
        let b', nb = recurse b in
        ((if na + nb = 0 then expr else mk a' b'), na + nb)
      in
      match expr with
      | A.Select (p, e) -> unary (fun e -> A.Select (p, e)) e
      | A.Project (attrs, e) -> unary (fun e -> A.Project (attrs, e)) e
      | A.Rename (m, e) -> unary (fun e -> A.Rename (m, e)) e
      | A.Union (a, b) -> binary (fun a b -> A.Union (a, b)) a b
      | A.Inter (a, b) -> binary (fun a b -> A.Inter (a, b)) a b
      | A.Diff (a, b) -> binary (fun a b -> A.Diff (a, b)) a b
      | A.Divide (a, b) -> binary (fun a b -> A.Divide (a, b)) a b
      | A.Product (a, b) -> binary (fun a b -> A.Product (a, b)) a b
      | A.Join (a, b) -> binary (fun a b -> A.Join (a, b)) a b
      | A.Rel _ | A.Singleton _ -> (expr, 0))
