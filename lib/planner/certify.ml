(* Translation validation for the planner: replay every rewrite stage
   the plan pipeline ran (selection push-down, join ordering, projection
   pruning, chase-based join elimination) plus the physical plan's
   logical shadow, and prove each step equivalent to its predecessor by
   Chandra–Merlin containment with a chase fallback under the
   statistics-recorded dependencies.  The prover is sound: [Equivalent]
   is a proof; [Refuted] is a counterexample on the pure conjunctive
   fragment (where containment is decidable and the test complete);
   anything the fragment cannot settle is [Skipped], never silently
   passed. *)

module R = Relational
module A = R.Algebra
module P = Physical
module C = Datalog.Containment
module I = Datalog.Interop

type verdict = Equivalent | Refuted of string | Skipped of string

type stage = { name : string; verdict : verdict }
type report = stage list

let ok report =
  not (List.exists (fun s -> match s.verdict with Refuted _ -> true | _ -> false) report)

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Refuted msg -> "refuted: " ^ msg
  | Skipped msg -> "skipped: " ^ msg

(* The logical reading of a physical plan.  Index access paths re-become
   the selections they absorbed: a point lookup is an equality
   selection, a range scan the inclusive bounds it enforces (strict
   bounds stayed behind in the residual filter, which shadows
   separately).  Sort is an identity at the relation level. *)
let rec shadow (p : P.t) =
  match p.P.node with
  | P.Scan { table; access; _ } -> (
      let base = A.Rel table in
      match access with
      | P.Full | P.Ordered _ -> base
      | P.Point { attr; key; _ } ->
          A.Select (A.Cmp (A.Eq, A.Attr attr, A.Const key), base)
      | P.Range { attr; lo; hi } ->
          let bound cmp = function
            | Some v -> [ A.Cmp (cmp, A.Attr attr, A.Const v) ]
            | None -> []
          in
          A.Select (A.conjoin (bound A.Ge lo @ bound A.Le hi), base))
  | P.Filter (pred, i) -> A.Select (pred, shadow i)
  | P.Project (attrs, i) -> A.Project (attrs, shadow i)
  | P.Rename_op (m, i) -> A.Rename (m, shadow i)
  | P.Hash_join { left; right; _ } -> A.Join (shadow left, shadow right)
  | P.Merge_join { left; right; _ } -> A.Join (shadow left, shadow right)
  | P.Nested_product (a, b) -> A.Product (shadow a, shadow b)
  | P.Sort { input; _ } -> shadow input
  | P.Union_op (a, b) -> A.Union (shadow a, shadow b)
  | P.Inter_op (a, b) -> A.Inter (shadow a, shadow b)
  | P.Diff_op (a, b) -> A.Diff (shadow a, shadow b)
  | P.Divide_op (a, b) -> A.Divide (shadow a, shadow b)
  | P.Const bindings -> A.Singleton bindings

(* Normalize before comparing: push_selections distributes selections
   into union/intersection/difference arms, so a pre-rewrite
   [Select (p, Union (a, b))] and its post-rewrite image would otherwise
   disagree at the top constructor.  Distributing on both sides makes
   the set-operator skeletons line up; the arms are then conjunctive and
   the homomorphism test takes over. *)
let rec distribute e =
  match e with
  | A.Select (p, i) -> (
      match distribute i with
      | A.Union (x, y) ->
          A.Union (distribute (A.Select (p, x)), distribute (A.Select (p, y)))
      | A.Inter (x, y) ->
          A.Inter (distribute (A.Select (p, x)), distribute (A.Select (p, y)))
      | A.Diff (x, y) ->
          A.Diff (distribute (A.Select (p, x)), distribute (A.Select (p, y)))
      | i' -> A.Select (p, i'))
  | A.Project (xs, i) -> A.Project (xs, distribute i)
  | A.Rename (m, i) -> A.Rename (m, distribute i)
  | A.Product (x, y) -> A.Product (distribute x, distribute y)
  | A.Join (x, y) -> A.Join (distribute x, distribute y)
  | A.Union (x, y) -> A.Union (distribute x, distribute y)
  | A.Inter (x, y) -> A.Inter (distribute x, distribute y)
  | A.Diff (x, y) -> A.Diff (distribute x, distribute y)
  | A.Divide (x, y) -> A.Divide (distribute x, distribute y)
  | A.Rel _ | A.Singleton _ -> e

let has_comparisons body = List.exists I.is_comparison_atom body

(* A conjunctive query provably empty on every instance satisfying the
   dependencies: a self-contradictory comparison pseudo-atom, or a chase
   failure (conflicting constants forced equal), or a contradiction the
   chase surfaces by equating comparison arguments. *)
let provably_empty fds binding body =
  match I.comparison_contradiction body with
  | Some _ -> true
  | None -> (
      match C.chase_opt fds (I.canonical_cq binding body) with
      | None -> true
      | Some chased -> I.comparison_contradiction chased.C.body <> None)

let spj_verdict fds (binding_a, body_a) (binding_b, body_b) =
  let attrs binding = List.sort compare (List.map fst binding) in
  if attrs binding_a <> attrs binding_b then
    Refuted "output attributes differ"
  else
    let qa = I.saturate (I.canonical_cq binding_a body_a) in
    let qb = I.saturate (I.canonical_cq binding_b body_b) in
    if C.equivalent_under fds qa qb then Equivalent
    else if has_comparisons body_a || has_comparisons body_b then
      Skipped "equivalence not provable in the comparison fragment"
    else
      Refuted
        "conjunctive cores are not equivalent under the recorded dependencies"

(* Stacked selections over a non-conjunctive operand: peel and compare
   the conjunct multisets, then recurse into the operands. *)
let peel_selections e =
  let rec go acc = function
    | A.Select (p, i) -> go (A.conjuncts p @ acc) i
    | i -> (acc, i)
  in
  go [] e

let rec equiv catalog fds a b =
  match (I.spj_of_algebra catalog a, I.spj_of_algebra catalog b) with
  | ( I.Spj { binding = binding_a; body = body_a },
      I.Spj { binding = binding_b; body = body_b } ) ->
      spj_verdict fds (binding_a, body_a) (binding_b, body_b)
  | I.Spj_empty _, I.Spj_empty _ -> Equivalent
  | I.Spj_empty _, I.Spj { binding; body }
  | I.Spj { binding; body }, I.Spj_empty _ ->
      if provably_empty fds binding body then Equivalent
      else if has_comparisons body then
        Skipped "emptiness not provable in the comparison fragment"
      else Refuted "one side is empty, the other has a satisfiable core"
  | (I.Spj_outside op, _ | _, I.Spj_outside op) -> (
      let ca, ia = peel_selections a and cb, ib = peel_selections b in
      if ca <> [] || cb <> [] then
        if List.sort compare ca = List.sort compare cb then
          equiv catalog fds ia ib
        else Skipped "selection predicates differ structurally"
      else
        match (a, b) with
        | A.Union (a1, a2), A.Union (b1, b2)
        | A.Inter (a1, a2), A.Inter (b1, b2)
        | A.Diff (a1, a2), A.Diff (b1, b2)
        | A.Divide (a1, a2), A.Divide (b1, b2) ->
            join_verdicts
              (equiv catalog fds a1 b1)
              (equiv catalog fds a2 b2)
        | A.Project (xs, a'), A.Project (ys, b') when xs = ys ->
            equiv catalog fds a' b'
        | A.Rename (m, a'), A.Rename (n, b') when m = n ->
            equiv catalog fds a' b'
        | _ -> Skipped ("outside the certifiable fragment: " ^ op))

and join_verdicts v1 v2 =
  match (v1, v2) with
  | (Refuted _ as r), _ | _, (Refuted _ as r) -> r
  | (Skipped _ as s), _ | _, (Skipped _ as s) -> s
  | Equivalent, Equivalent -> Equivalent

let check catalog fds name before after =
  { name; verdict = equiv catalog fds (distribute before) (distribute after) }

let certify ctx expr physical =
  let catalog = Plan.catalog ctx in
  let stats = Plan.stats ctx in
  let fds = Semantic.fds_of_stats catalog stats in
  let cfg = Plan.config ctx in
  let ins = Plan.instruments ctx in
  let steps = ref [] in
  let record name before after =
    let step = check catalog fds name before after in
    Obs.Registry.Counter.incr ins.Plan.i_certify_stages;
    (match step.verdict with
    | Refuted _ -> Obs.Registry.Counter.incr ins.Plan.i_certify_failures
    | Skipped _ -> Obs.Registry.Counter.incr ins.Plan.i_certify_skipped
    | Equivalent -> ());
    steps := step :: !steps;
    after
  in
  Obs.Trace.with_span
    (Storage.Engine.trace (Plan.engine ctx))
    "plan.certify"
    (fun () ->
      let logical =
        if cfg.Plan.optimize then begin
          let rows = Stats.row_stats stats in
          let pushed = R.Optimizer.push_selections catalog expr in
          let pushed = record "push_selections" expr pushed in
          let ordered = R.Optimizer.order_joins catalog rows pushed in
          let ordered = record "order_joins" pushed ordered in
          let pruned = R.Optimizer.prune_projections catalog ordered in
          record "prune_projections" ordered pruned
        end
        else expr
      in
      let logical =
        if cfg.Plan.semantic then begin
          let rewritten, _ = Semantic.eliminate_joins catalog fds logical in
          record "join_elimination" logical rewritten
        end
        else logical
      in
      ignore (record "physical_shadow" logical (shadow physical) : A.t);
      List.rev !steps)
