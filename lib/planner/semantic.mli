(** Chase-based join elimination — the semantic rewrite the metatheory
    pays for.

    Keys observed by [ANALYZE] (a column whose distinct count equals the
    table's row count) become functional dependencies; chasing the
    query's conjunctive core under them and minimizing (Chandra–Merlin)
    can drop relation atoms that plain minimization cannot — a
    key-joined self-join whose second copy only re-reads columns the
    dependency already determines.  A rewrite is adopted only when the
    smaller body is realizable as algebra with the identical schema
    {e and} proves equivalent under the dependencies when translated
    back; anything short of a proof keeps the original query. *)

val fds_of_stats :
  Relational.Algebra.catalog -> Stats.t -> Datalog.Containment.fd list
(** The dependencies recorded by the [__stats] catalog: for every table
    column with [distinct = rows] (and at least one row), a positional
    key dependency from that column to every other column.  Sound for
    planning because statistics are refreshed whenever the table is
    (re)loaded, and every adopted rewrite is certified equivalent under
    exactly these dependencies. *)

val eliminate_joins :
  Relational.Algebra.catalog ->
  Datalog.Containment.fd list ->
  Relational.Algebra.t ->
  Relational.Algebra.t * int
(** [eliminate_joins catalog fds expr] returns the rewritten expression
    and the number of relation atoms (joins) eliminated — [0] means
    [expr] is returned unchanged.  SPJ subtrees under non-conjunctive
    operators (union, difference, division) are rewritten in place. *)
