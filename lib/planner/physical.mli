(** The physical plan algebra: the operator tree the cost-based planner
    chooses and the Volcano executor pulls tuples through.  Every node
    carries its output schema, computed once at compile time, plus a
    mutable annotation slot for the cost model's estimates and the
    executor's actual row counts — the pair [EXPLAIN] renders and the
    PL003 lint compares. *)

(** How a base table is read: a heap scan in chain order, a full B+tree
    walk in key order (what a merge join wants), an index point lookup,
    or a B+tree range scan with inclusive, optionally open bounds. *)
type access =
  | Full
  | Ordered of string
  | Point of { attr : string; key : Relational.Value.t; via : Indexes.kind }
  | Range of {
      attr : string;
      lo : Relational.Value.t option;
      hi : Relational.Value.t option;
    }

type meta = {
  mutable est_rows : float;
  mutable est_cost : float;
  mutable actual_rows : int;
}
(** Per-node annotations: the cost model's output-cardinality and
    cumulative-cost estimates, and the executor's emitted-row count
    ([-1] until the node has run). *)

type t = { node : node; schema : Relational.Schema.t; meta : meta }
(** A plan node: operator, output schema, annotations. *)

(** The operators.  Joins keep their logical left/right orientation (the
    output schema is always [Schema.join left right]); [Hash_join]
    additionally records which side the build table is.  [Sort] exists
    to feed [Merge_join] and spills to temporary runs past the
    configured threshold.  Set operations and division materialize their
    inputs (they are set-valued by definition). *)
and node =
  | Scan of { table : string; access : access; pages : int }
  | Filter of Relational.Algebra.predicate * t
  | Project of string list * t
  | Rename_op of (string * string) list * t
  | Hash_join of { left : t; right : t; on : string list; build_left : bool }
  | Merge_join of { left : t; right : t; on : string list }
  | Nested_product of t * t
  | Sort of { on : string list; input : t }
  | Union_op of t * t
  | Inter_op of t * t
  | Diff_op of t * t
  | Divide_op of t * t
  | Const of (string * Relational.Value.t) list

val make : node -> Relational.Schema.t -> t
(** Wrap an operator with fresh (zeroed) annotations. *)

val children : t -> t list
(** Direct sub-plans, left to right. *)

val operator_name : t -> string
(** Stable snake_case operator name ([scan], [hash_join], ...) — used as
    the [plan.rows.<op>] metric suffix and the JSON ["op"] field. *)

val label : t -> string
(** One-line human rendering of the node ([filter[gpa >= 3.8]],
    [index point scan students via btree(sid = 2)], ...). *)

val access_to_string : string -> access -> string
(** [access_to_string table access] is the scan label. *)

val to_text : t -> string
(** The EXPLAIN text format: one indented line per node with its
    {!label} and annotations. *)

val to_json : t -> string
(** The EXPLAIN JSON format: nested objects with [op], [detail],
    [est_rows], [est_cost], [actual_rows] (null until executed), and
    [children] — strict JSON, validated by [test/json_check.ml] in the
    cram suite. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node of the plan. *)
