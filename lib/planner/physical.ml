(* The physical plan algebra: what the planner chooses and the Volcano
   executor runs.  Every node carries its output schema (computed at
   compile time, so the executor never re-infers) and a mutable
   annotation slot for the cost model's estimates and the executor's
   actual row counts — the pair EXPLAIN renders and PL003 compares. *)

module R = Relational
module A = R.Algebra

type access =
  | Full
  | Ordered of string
  | Point of { attr : string; key : R.Value.t; via : Indexes.kind }
  | Range of { attr : string; lo : R.Value.t option; hi : R.Value.t option }

type meta = {
  mutable est_rows : float;
  mutable est_cost : float;
  mutable actual_rows : int;
}

type t = { node : node; schema : R.Schema.t; meta : meta }

and node =
  | Scan of { table : string; access : access; pages : int }
  | Filter of A.predicate * t
  | Project of string list * t
  | Rename_op of (string * string) list * t
  | Hash_join of { left : t; right : t; on : string list; build_left : bool }
  | Merge_join of { left : t; right : t; on : string list }
  | Nested_product of t * t
  | Sort of { on : string list; input : t }
  | Union_op of t * t
  | Inter_op of t * t
  | Diff_op of t * t
  | Divide_op of t * t
  | Const of (string * R.Value.t) list

let make node schema =
  { node; schema; meta = { est_rows = 0.; est_cost = 0.; actual_rows = -1 } }

let children t =
  match t.node with
  | Scan _ | Const _ -> []
  | Filter (_, c) | Project (_, c) | Rename_op (_, c) | Sort { input = c; _ } ->
      [ c ]
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      [ left; right ]
  | Nested_product (a, b)
  | Union_op (a, b)
  | Inter_op (a, b)
  | Diff_op (a, b)
  | Divide_op (a, b) ->
      [ a; b ]

let operator_name t =
  match t.node with
  | Scan _ -> "scan"
  | Filter _ -> "filter"
  | Project _ -> "project"
  | Rename_op _ -> "rename"
  | Hash_join _ -> "hash_join"
  | Merge_join _ -> "merge_join"
  | Nested_product _ -> "product"
  | Sort _ -> "sort"
  | Union_op _ -> "union"
  | Inter_op _ -> "inter"
  | Diff_op _ -> "diff"
  | Divide_op _ -> "divide"
  | Const _ -> "const"

let bound_to_string pre = function
  | Some v -> R.Value.to_literal v
  | None -> pre

let access_to_string table = function
  | Full -> Printf.sprintf "seq scan %s" table
  | Ordered attr -> Printf.sprintf "index order scan %s via btree(%s)" table attr
  | Point { attr; key; via } ->
      Printf.sprintf "index point scan %s via %s(%s = %s)" table
        (Indexes.kind_to_string via) attr (R.Value.to_literal key)
  | Range { attr; lo; hi } ->
      Printf.sprintf "index range scan %s via btree(%s in [%s, %s])" table attr
        (bound_to_string "-inf" lo) (bound_to_string "+inf" hi)

let label t =
  match t.node with
  | Scan { table; access; _ } -> access_to_string table access
  | Filter (p, _) -> Printf.sprintf "filter[%s]" (A.predicate_to_string p)
  | Project (attrs, _) ->
      Printf.sprintf "project[%s]" (String.concat ", " attrs)
  | Rename_op (m, _) ->
      Printf.sprintf "rename[%s]"
        (String.concat ", " (List.map (fun (a, b) -> a ^ " -> " ^ b) m))
  | Hash_join { on; build_left; _ } ->
      Printf.sprintf "hash join on (%s) build=%s" (String.concat ", " on)
        (if build_left then "left" else "right")
  | Merge_join { on; _ } ->
      Printf.sprintf "merge join on (%s)" (String.concat ", " on)
  | Nested_product _ -> "nested loop product"
  | Sort { on; _ } -> Printf.sprintf "sort[%s]" (String.concat ", " on)
  | Union_op _ -> "union"
  | Inter_op _ -> "intersect"
  | Diff_op _ -> "diff"
  | Divide_op _ -> "divide"
  | Const bindings ->
      Printf.sprintf "const <%s>"
        (String.concat ", "
           (List.map
              (fun (a, v) -> a ^ " = " ^ R.Value.to_literal v)
              bindings))

let annotation t =
  let m = t.meta in
  let actual =
    if m.actual_rows < 0 then "" else Printf.sprintf " rows=%d" m.actual_rows
  in
  Printf.sprintf "(est_rows=%.1f cost=%.1f%s)" m.est_rows m.est_cost actual

let to_text t =
  let b = Buffer.create 256 in
  let rec go indent t =
    Buffer.add_string b (String.make indent ' ');
    Buffer.add_string b (label t);
    Buffer.add_string b "  ";
    Buffer.add_string b (annotation t);
    Buffer.add_char b '\n';
    List.iter (go (indent + 2)) (children t)
  in
  go 0 t;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 256 in
  let rec go t =
    let m = t.meta in
    Buffer.add_string b
      (Printf.sprintf "{\"op\": %s, \"detail\": %s, \"est_rows\": %.1f, \"est_cost\": %.1f, \"actual_rows\": %s, \"children\": ["
         (Obs.Json.quote (operator_name t))
         (Obs.Json.quote (label t))
         m.est_rows m.est_cost
         (if m.actual_rows < 0 then "null" else string_of_int m.actual_rows));
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string b ", ";
        go c)
      (children t);
    Buffer.add_string b "]}"
  in
  go t;
  Buffer.contents b

let fold f init t =
  let rec go acc t = List.fold_left go (f acc t) (children t) in
  go init t
