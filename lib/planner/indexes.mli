(** The secondary-index catalog: which (table, column) pairs carry which
    access method.  Definitions persist in the reserved catalog table
    ["__indexes"] (managed by [db index create/drop]); the structures
    themselves are in-memory and rebuilt lazily from the heap, once per
    planning context — an honest limitation documented in
    docs/PLANNER.md ([lib/access] has no paged variant yet). *)

type kind = Btree | Hash
(** The two access methods of [lib/access]: B+trees answer point and
    range lookups in key order, hash indexes answer point lookups
    only. *)

type def = { table : string; attr : string; kind : kind }
(** One index definition. *)

type t
(** A loaded index catalog plus its cache of built structures. *)

exception Index_error of string
(** Raised by {!create}/{!drop} on duplicate definitions, unknown
    tables, or unknown columns — a user input error (CLI exit 2). *)

val catalog_table : string
(** The reserved catalog table definitions persist in (["__indexes"]). *)

val kind_to_string : kind -> string
(** ["btree"] or ["hash"]. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

val load : Storage.Engine.t -> t
(** The persisted definitions (empty when none were ever created). *)

val defs : t -> def list
(** All definitions, sorted by (table, attr, kind). *)

val on : t -> table:string -> attr:string -> def list
(** The indexes available on one column. *)

val create : Storage.Engine.t -> t -> def -> unit
(** Add a definition and persist the catalog.  Raises {!Index_error} on
    a duplicate, an unknown table, or an unknown column. *)

val drop : Storage.Engine.t -> t -> def -> unit
(** Remove a definition and persist the catalog.  Raises {!Index_error}
    when no such index exists. *)

val btree :
  Storage.Engine.t -> t -> table:string -> attr:string ->
  Relational.Tuple.t Access.Btree.t
(** The built B+tree for a defined index (building it from the heap on
    first use, cached for the catalog's lifetime).  Only call for
    definitions present in {!defs}. *)

val hash :
  Storage.Engine.t -> t -> table:string -> attr:string ->
  Relational.Tuple.t Access.Hash_index.t
(** The built hash index for a defined index; same contract as
    {!btree}. *)
