(* Selinger-style per-table statistics: row count, page count, and a
   distinct-value count per column, collected by one scan over the table
   and persisted in the reserved catalog table "__stats" so every later
   session plans without touching the data.

   The storage layout is the simplest thing that round-trips through the
   engine's own relation machinery: one row per column,
     (tbl, col, rows, pages, dv)
   with rows/pages repeated on every row of the same table.  A table
   with no columns (the zero-ary relation) stores a single sentinel row
   with col = "". *)

module R = Relational

type column = { attr : string; distinct : int }
type table = { rows : int; pages : int; columns : column list }
type t = (string * table) list

let stats_table = "__stats"

let schema =
  R.Schema.make
    [
      ("tbl", R.Value.TString);
      ("col", R.Value.TString);
      ("rows", R.Value.TInt);
      ("pages", R.Value.TInt);
      ("dv", R.Value.TInt);
    ]

let find t name = List.assoc_opt name t

let distinct table attr =
  List.find_map
    (fun c -> if c.attr = attr then Some c.distinct else None)
    table.columns

let collect eng name =
  let rel = Storage.Engine.load_table eng name in
  let sch = R.Relation.schema rel in
  let attrs = R.Schema.attributes sch in
  let pages =
    match
      List.find_opt (fun (n, _, _) -> n = name) (Storage.Engine.table_info eng)
    with
    | Some (_, _, first) ->
        Storage.Heap.chain_pages (Storage.Engine.pool eng) ~first
    | None -> 0
  in
  let n = List.length attrs in
  let seen = Array.init n (fun _ -> Hashtbl.create 64) in
  R.Relation.iter
    (fun tup -> Array.iteri (fun i h -> Hashtbl.replace h tup.(i) ()) seen)
    rel;
  let columns =
    List.mapi (fun i attr -> { attr; distinct = Hashtbl.length seen.(i) }) attrs
  in
  { rows = R.Relation.cardinality rel; pages; columns }

let to_relation t =
  let rows =
    List.concat_map
      (fun (name, tb) ->
        let row col dv =
          [
            R.Value.String name;
            R.Value.String col;
            R.Value.Int tb.rows;
            R.Value.Int tb.pages;
            R.Value.Int dv;
          ]
        in
        match tb.columns with
        | [] -> [ row "" 0 ]
        | cols -> List.map (fun c -> row c.attr c.distinct) cols)
      t
  in
  R.Relation.of_list schema rows

let of_relation rel =
  let sch = R.Relation.schema rel in
  let pos a = R.Schema.index_of sch a in
  let ptbl = pos "tbl"
  and pcol = pos "col"
  and prows = pos "rows"
  and ppages = pos "pages"
  and pdv = pos "dv" in
  let as_string = function R.Value.String s -> s | v -> R.Value.to_string v in
  let as_int = function R.Value.Int i -> i | _ -> 0 in
  let tbl = Hashtbl.create 16 in
  R.Relation.iter
    (fun tup ->
      let name = as_string tup.(ptbl) in
      let existing =
        match Hashtbl.find_opt tbl name with
        | Some tb -> tb
        | None -> { rows = 0; pages = 0; columns = [] }
      in
      let col = as_string tup.(pcol) in
      let columns =
        if col = "" then existing.columns
        else existing.columns @ [ { attr = col; distinct = as_int tup.(pdv) } ]
      in
      Hashtbl.replace tbl name
        { rows = as_int tup.(prows); pages = as_int tup.(ppages); columns })
    rel;
  Hashtbl.fold (fun name tb acc -> (name, tb) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let load eng =
  match Storage.Engine.load_table eng stats_table with
  | rel -> of_relation rel
  | exception Storage.Engine.Unknown_table _ -> []

let save eng t = Storage.Engine.save_table eng stats_table (to_relation t)

let analyze eng names =
  Obs.Trace.with_span (Storage.Engine.trace eng) "plan.analyze" (fun () ->
      let fresh = List.map (fun name -> (name, collect eng name)) names in
      let kept = List.filter (fun (n, _) -> not (List.mem_assoc n fresh)) (load eng) in
      let merged =
        List.sort (fun (a, _) (b, _) -> String.compare a b) (fresh @ kept)
      in
      save eng merged;
      merged)

let row_stats t name = match find t name with Some tb -> tb.rows | None -> 100
