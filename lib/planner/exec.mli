(** The Volcano-style pull executor: runs a physical plan against the
    storage engine, cursor by cursor, without materializing whole
    tables.  Pipelined operators (scans, filters, projections, the
    probe side of a hash join, the merge of a merge join) hold at most a
    heap page or a key group; blocking operators (sort, hash-join
    build, set operations, division) materialize exactly their own
    input.  Sorts past the configured threshold spill Codec-framed
    sorted runs to temporary files and merge them k-way, counted in
    [plan.spills].

    Executing fills every node's [actual_rows] annotation (what PL003
    compares against the estimates) and bumps the [plan.rows.<op>]
    counters; the whole run is a [plan.execute] span. *)

type cursor = {
  next : unit -> Relational.Tuple.t option;
  close : unit -> unit;
}
(** One open operator: pull the next tuple, or release resources
    (temporary sort runs, underlying cursors). *)

val open_cursor : Plan.ctx -> Physical.t -> cursor
(** Open a plan as a cursor tree (resets the node's [actual_rows] to 0
    and counts every emitted row).  Most callers want {!run}. *)

val run : Plan.ctx -> Physical.t -> Relational.Relation.t
(** Execute a plan to a relation (set semantics restored at this final
    materialization, matching {!Relational.Eval.eval} on the logical
    plan — property-tested).  The relation's schema is the plan root's
    schema. *)
