(* The secondary-index catalog: which (table, column) pairs carry a
   B+tree or hash index.  Definitions persist in the reserved catalog
   table "__indexes"; the index structures themselves are in-memory
   (lib/access has no paged variant yet) and are rebuilt lazily, once
   per context, from the heap — an honest trade documented in
   docs/PLANNER.md. *)

module R = Relational

type kind = Btree | Hash
type def = { table : string; attr : string; kind : kind }

type built =
  | Built_btree of R.Tuple.t Access.Btree.t
  | Built_hash of R.Tuple.t Access.Hash_index.t

type t = {
  mutable defs : def list; (* sorted by (table, attr, kind) *)
  cache : (string * string * kind, built) Hashtbl.t;
}

exception Index_error of string

let catalog_table = "__indexes"
let kind_to_string = function Btree -> "btree" | Hash -> "hash"

let kind_of_string = function
  | "btree" -> Some Btree
  | "hash" -> Some Hash
  | _ -> None

let schema =
  R.Schema.make
    [
      ("tbl", R.Value.TString);
      ("attr", R.Value.TString);
      ("kind", R.Value.TString);
    ]

let compare_def a b =
  match String.compare a.table b.table with
  | 0 -> (
      match String.compare a.attr b.attr with
      | 0 -> compare (kind_to_string a.kind) (kind_to_string b.kind)
      | c -> c)
  | c -> c

let defs t = t.defs
let on t ~table ~attr =
  List.filter (fun d -> d.table = table && d.attr = attr) t.defs

let of_defs defs =
  { defs = List.sort_uniq compare_def defs; cache = Hashtbl.create 8 }

let to_relation defs =
  R.Relation.of_list schema
    (List.map
       (fun d ->
         [
           R.Value.String d.table;
           R.Value.String d.attr;
           R.Value.String (kind_to_string d.kind);
         ])
       defs)

let of_relation rel =
  let sch = R.Relation.schema rel in
  let pos a = R.Schema.index_of sch a in
  let ptbl = pos "tbl" and pattr = pos "attr" and pkind = pos "kind" in
  let as_string = function R.Value.String s -> s | v -> R.Value.to_string v in
  R.Relation.fold
    (fun tup acc ->
      match kind_of_string (as_string tup.(pkind)) with
      | Some kind ->
          { table = as_string tup.(ptbl); attr = as_string tup.(pattr); kind }
          :: acc
      | None -> acc)
    rel []
  |> of_defs

let load eng =
  match Storage.Engine.load_table eng catalog_table with
  | rel -> of_relation rel
  | exception Storage.Engine.Unknown_table _ -> of_defs []

let save eng t = Storage.Engine.save_table eng catalog_table (to_relation t.defs)

let create eng t d =
  (match
     List.find_opt (fun (n, _, _) -> n = d.table) (Storage.Engine.table_info eng)
   with
  | None -> raise (Index_error (Printf.sprintf "unknown table %S" d.table))
  | Some (_, sch, _) ->
      if not (R.Schema.mem sch d.attr) then
        raise
          (Index_error
             (Printf.sprintf "table %s has no column %S" d.table d.attr)));
  if List.exists (fun e -> compare_def e d = 0) t.defs then
    raise
      (Index_error
         (Printf.sprintf "%s index on %s(%s) already exists"
            (kind_to_string d.kind) d.table d.attr));
  t.defs <- List.sort compare_def (d :: t.defs);
  save eng t

let drop eng t d =
  if not (List.exists (fun e -> compare_def e d = 0) t.defs) then
    raise
      (Index_error
         (Printf.sprintf "no %s index on %s(%s)" (kind_to_string d.kind)
            d.table d.attr));
  t.defs <- List.filter (fun e -> compare_def e d <> 0) t.defs;
  Hashtbl.remove t.cache (d.table, d.attr, d.kind);
  save eng t

let build eng t d =
  match Hashtbl.find_opt t.cache (d.table, d.attr, d.kind) with
  | Some b -> b
  | None ->
      let rel = Storage.Engine.load_table eng d.table in
      let b =
        match d.kind with
        | Btree -> Built_btree (Access.Btree.index_relation rel d.attr)
        | Hash ->
            let h = Access.Hash_index.create () in
            let pos = R.Schema.index_of (R.Relation.schema rel) d.attr in
            R.Relation.iter
              (fun tup -> Access.Hash_index.insert h tup.(pos) tup)
              rel;
            Built_hash h
      in
      Hashtbl.replace t.cache (d.table, d.attr, d.kind) b;
      b

let btree eng t ~table ~attr =
  match build eng t { table; attr; kind = Btree } with
  | Built_btree b -> b
  | Built_hash _ -> assert false

let hash eng t ~table ~attr =
  match build eng t { table; attr; kind = Hash } with
  | Built_hash h -> h
  | Built_btree _ -> assert false
