(* The Volcano-style pull executor: every operator is a cursor with
   next/close, composed bottom-up from the physical plan.  Pipelined
   operators (scan, filter, project, the probe side of a hash join, the
   merge of a merge join) hold no more than a page or a group of tuples;
   blocking operators (sort, hash-join build, set operations, division)
   materialize exactly their own input.

   Internally streams are bag-valued; set semantics are restored when
   the root materializes into a Relation (whose tuple set dedups), which
   matches Eval.eval because every logical operator here is either
   duplicate-agnostic or materializes through Relation ops.

   Sorts past the spill threshold write sorted runs to temporary files
   (Codec-framed records) and merge them k-way — counted in the
   plan.spills counter. *)

module R = Relational
module A = R.Algebra
module P = Physical

type cursor = {
  next : unit -> R.Tuple.t option;
  close : unit -> unit;
}

let drain c =
  let out = ref [] in
  let rec loop () =
    match c.next () with
    | Some t ->
        out := t :: !out;
        loop ()
    | None -> ()
  in
  loop ();
  List.rev !out

let of_list tuples =
  let rest = ref tuples in
  {
    next =
      (fun () ->
        match !rest with
        | [] -> None
        | t :: tl ->
            rest := tl;
            Some t);
    close = ignore;
  }

(* Positions of [attrs] within [schema]. *)
let positions schema attrs =
  Array.of_list (List.map (R.Schema.index_of schema) attrs)

let key_compare a b = R.Tuple.compare a b

(* --- sort spill ---------------------------------------------------------- *)

let write_run tuples =
  let path = Filename.temp_file "dbmeta_sort" ".run" in
  let oc = open_out_bin path in
  List.iter
    (fun t ->
      let s = R.Codec.tuple_to_string t in
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
      output_bytes oc b;
      output_string oc s)
    tuples;
  close_out oc;
  path

let run_reader path =
  let ic = open_in_bin path in
  let next () =
    match really_input_string ic 4 with
    | len_s ->
        let len = Int32.to_int (String.get_int32_le len_s 0) in
        Some (R.Codec.tuple_of_string (really_input_string ic len))
    | exception End_of_file -> None
  in
  let close () =
    close_in_noerr ic;
    (try Sys.remove path with Sys_error _ -> ())
  in
  (next, close)

let external_sort ~spills ~chunk cmp tuples =
  let rec chunks acc = function
    | [] -> List.rev acc
    | rest ->
        let taken, rest =
          let rec take k acc = function
            | xs when k = 0 -> (List.rev acc, xs)
            | [] -> (List.rev acc, [])
            | x :: tl -> take (k - 1) (x :: acc) tl
          in
          take chunk [] rest
        in
        chunks (taken :: acc) rest
  in
  let runs =
    List.map
      (fun c ->
        Obs.Registry.Counter.incr spills;
        write_run (List.stable_sort cmp c))
      (chunks [] tuples)
  in
  let readers = List.map run_reader runs in
  let heads =
    ref
      (List.filter_map
         (fun (next, close) ->
           match next () with
           | Some t -> Some (ref t, next, close)
           | None ->
               close ();
               None)
         readers)
  in
  let next () =
    match !heads with
    | [] -> None
    | first :: rest ->
        let best =
          List.fold_left
            (fun best ((t, _, _) as cand) ->
              let bt, _, _ = best in
              if cmp !t !bt < 0 then cand else best)
            first rest
        in
        let t, bnext, bclose = best in
        let out = !t in
        (match bnext () with
        | Some t' -> t := t'
        | None ->
            bclose ();
            heads := List.filter (fun (_, n, _) -> n != bnext) !heads);
        Some out
  in
  let close () = List.iter (fun (_, _, c) -> c ()) !heads in
  { next; close }

let sorted_cursor ctx on input_schema inner =
  let pos = positions input_schema on in
  let cmp a b = key_compare (R.Tuple.project a pos) (R.Tuple.project b pos) in
  let tuples = drain inner in
  inner.close ();
  let threshold = Plan.sort_spill ctx in
  if List.length tuples <= threshold then
    of_list (List.stable_sort cmp tuples)
  else
    external_sort
      ~spills:(Plan.instruments ctx).Plan.i_spills
      ~chunk:threshold cmp tuples

(* --- scans --------------------------------------------------------------- *)

let heap_scan ctx table =
  let eng = Plan.engine ctx in
  let first =
    match
      List.find_opt (fun (n, _, _) -> n = table) (Storage.Engine.table_info eng)
    with
    | Some (_, _, first) -> first
    | None -> raise (R.Database.Unknown_relation table)
  in
  let pool = Storage.Engine.pool eng in
  let page = ref first in
  let queue = ref [] in
  let rec next () =
    match !queue with
    | r :: rest ->
        queue := rest;
        Some (R.Codec.tuple_of_string r)
    | [] ->
        if !page = 0 then None
        else begin
          let records, nxt = Storage.Heap.page_records pool !page in
          page := nxt;
          queue := records;
          next ()
        end
  in
  { next; close = ignore }

let index_scan ctx table access =
  let eng = Plan.engine ctx in
  let idx = Plan.indexes ctx in
  match access with
  | P.Point { attr; key; via = Indexes.Hash } ->
      of_list (Access.Hash_index.find (Indexes.hash eng idx ~table ~attr) key)
  | P.Point { attr; key; via = Indexes.Btree } ->
      of_list (Access.Btree.find (Indexes.btree eng idx ~table ~attr) key)
  | P.Range { attr; lo; hi } ->
      let t = Indexes.btree eng idx ~table ~attr in
      of_list
        (List.rev
           (Access.Btree.fold_range ?lo ?hi
              (fun _ payloads acc -> List.rev_append payloads acc)
              t []))
  | P.Ordered attr ->
      let t = Indexes.btree eng idx ~table ~attr in
      of_list
        (List.rev
           (Access.Btree.fold_range
              (fun _ payloads acc -> List.rev_append payloads acc)
              t []))
  | P.Full -> heap_scan ctx table

(* --- joins --------------------------------------------------------------- *)

(* Output assembly in logical order: left tuple ++ right-minus-shared,
   regardless of which side the hash join builds on. *)
let join_assembly left_schema right_schema on =
  let lkey = positions left_schema on in
  let rkey = positions right_schema on in
  let rrest =
    positions right_schema
      (List.filter
         (fun a -> not (List.mem a on))
         (R.Schema.attributes right_schema))
  in
  let combine l r = R.Tuple.concat l (R.Tuple.project r rrest) in
  (lkey, rkey, combine)

let hash_join_cursor left_c right_c left_schema right_schema on build_left =
  let lkey, rkey, combine = join_assembly left_schema right_schema on in
  let build_c, probe_c = if build_left then (left_c, right_c) else (right_c, left_c) in
  let build_key, probe_key = if build_left then (lkey, rkey) else (rkey, lkey) in
  let table = Hashtbl.create 256 in
  List.iter
    (fun t -> Hashtbl.add table (R.Tuple.project t build_key) t)
    (drain build_c);
  build_c.close ();
  let pending = ref [] in
  let rec next () =
    match !pending with
    | out :: rest ->
        pending := rest;
        Some out
    | [] -> (
        match probe_c.next () with
        | None -> None
        | Some probe ->
            let matches =
              Hashtbl.find_all table (R.Tuple.project probe probe_key)
            in
            pending :=
              List.rev_map
                (fun built ->
                  if build_left then combine built probe
                  else combine probe built)
                matches;
            next ())
  in
  { next; close = probe_c.close }

(* Group a key-sorted cursor into (key, tuples) runs. *)
let grouped key_pos c =
  let lookahead = ref (c.next ()) in
  fun () ->
    match !lookahead with
    | None -> None
    | Some first ->
        let key = R.Tuple.project first key_pos in
        let group = ref [ first ] in
        let rec gather () =
          match c.next () with
          | Some t when key_compare (R.Tuple.project t key_pos) key = 0 ->
              group := t :: !group;
              gather ()
          | la ->
              lookahead := la;
              ()
        in
        gather ();
        Some (key, List.rev !group)

let merge_join_cursor left_c right_c left_schema right_schema on =
  let lkey, rkey, combine = join_assembly left_schema right_schema on in
  let lgroups = grouped lkey left_c in
  let rgroups = grouped rkey right_c in
  let lcur = ref (lgroups ()) in
  let rcur = ref (rgroups ()) in
  let pending = ref [] in
  let rec next () =
    match !pending with
    | out :: rest ->
        pending := rest;
        Some out
    | [] -> (
        match (!lcur, !rcur) with
        | None, _ | _, None -> None
        | Some (lk, lts), Some (rk, rts) ->
            let c = key_compare lk rk in
            if c < 0 then begin
              lcur := lgroups ();
              next ()
            end
            else if c > 0 then begin
              rcur := rgroups ();
              next ()
            end
            else begin
              pending :=
                List.concat_map
                  (fun l -> List.map (fun r -> combine l r) rts)
                  lts;
              lcur := lgroups ();
              rcur := rgroups ();
              next ()
            end)
  in
  let close () =
    left_c.close ();
    right_c.close ()
  in
  { next; close }

(* --- the operator dispatch ----------------------------------------------- *)

let rec open_plain ctx (p : P.t) : cursor =
  match p.P.node with
  | P.Scan { table; access; _ } -> index_scan ctx table access
  | P.Filter (pred, child) ->
      let c = open_cursor ctx child in
      let rec next () =
        match c.next () with
        | None -> None
        | Some t ->
            if A.eval_predicate child.P.schema pred t then Some t else next ()
      in
      { next; close = c.close }
  | P.Project (attrs, child) ->
      let c = open_cursor ctx child in
      let pos = positions child.P.schema attrs in
      {
        next =
          (fun () ->
            match c.next () with
            | Some t -> Some (R.Tuple.project t pos)
            | None -> None);
        close = c.close;
      }
  | P.Rename_op (_, child) ->
      (* renaming changes the schema, not the tuples *)
      open_cursor ctx child
  | P.Hash_join { left; right; on; build_left } ->
      hash_join_cursor (open_cursor ctx left) (open_cursor ctx right)
        left.P.schema right.P.schema on build_left
  | P.Merge_join { left; right; on } ->
      merge_join_cursor (open_cursor ctx left) (open_cursor ctx right)
        left.P.schema right.P.schema on
  | P.Nested_product (a, b) ->
      let ca = open_cursor ctx a in
      let inner = Array.of_list (drain (open_cursor ctx b)) in
      let outer = ref None in
      let i = ref 0 in
      let rec next () =
        match !outer with
        | Some t when !i < Array.length inner ->
            let out = R.Tuple.concat t inner.(!i) in
            incr i;
            Some out
        | _ -> (
            match ca.next () with
            | None -> None
            | Some t ->
                outer := Some t;
                i := 0;
                if Array.length inner = 0 then None else next ())
      in
      { next; close = ca.close }
  | P.Sort { on; input } ->
      sorted_cursor ctx on input.P.schema (open_cursor ctx input)
  | P.Union_op (a, b) | P.Inter_op (a, b) | P.Diff_op (a, b)
  | P.Divide_op (a, b) ->
      let ra = materialize ctx a and rb = materialize ctx b in
      let result =
        match p.P.node with
        | P.Union_op _ -> R.Relation.union ra rb
        | P.Inter_op _ -> R.Relation.inter ra rb
        | P.Diff_op _ -> R.Relation.diff ra rb
        | _ -> R.Relation.divide ra rb
      in
      (* realign to this node's schema (set ops adopt the left operand's
         column order, which is exactly [p.schema]; divide preserves the
         dividend's order) *)
      of_list (R.Relation.to_list (R.Relation.project result (R.Schema.attributes p.P.schema)))
  | P.Const bindings -> of_list [ R.Tuple.make (List.map snd bindings) ]

(* Wrap a node's cursor so emitted rows are counted into its actual_rows
   annotation and the per-operator plan.rows.<op> counter. *)
and open_cursor ctx (p : P.t) : cursor =
  let inner = open_plain ctx p in
  p.P.meta.P.actual_rows <- 0;
  let rows =
    Obs.Registry.counter
      (Storage.Engine.metrics (Plan.engine ctx))
      ~unit:"tuples" ~help:"rows emitted by this operator kind"
      ("plan.rows." ^ P.operator_name p)
  in
  {
    next =
      (fun () ->
        match inner.next () with
        | Some t ->
            p.P.meta.P.actual_rows <- p.P.meta.P.actual_rows + 1;
            Obs.Registry.Counter.incr rows;
            Some t
        | None -> None);
    close = inner.close;
  }

and materialize ctx (p : P.t) =
  let c = open_cursor ctx p in
  let tuples = drain c in
  c.close ();
  R.Relation.of_tuples p.P.schema tuples

let run ctx plan =
  Obs.Registry.Counter.incr (Plan.instruments ctx).Plan.i_executions;
  Obs.Trace.with_span
    (Storage.Engine.trace (Plan.engine ctx))
    "plan.execute"
    (fun () -> materialize ctx plan)
