(* Plan selection: Optimizer.optimize's logical rewrites first, then a
   physical compile that picks access paths (sargable conjuncts against
   the index catalog) and join algorithms (hash vs merge) by cost.

   A context snapshots the engine's public catalog, persisted statistics
   and index definitions at creation time — one context per CLI
   invocation / test scenario. *)

module R = Relational
module A = R.Algebra
module P = Physical

type join_force = Auto | Force_hash | Force_merge

type config = {
  optimize : bool;
  semantic : bool;
  force_join : join_force;
  sort_spill : int option;
}

let default_config =
  { optimize = true; semantic = true; force_join = Auto; sort_spill = None }

type instruments = {
  i_queries : Obs.Registry.Counter.t;
  i_executions : Obs.Registry.Counter.t;
  i_index_scans : Obs.Registry.Counter.t;
  i_full_scans : Obs.Registry.Counter.t;
  i_spills : Obs.Registry.Counter.t;
  i_join_eliminations : Obs.Registry.Counter.t;
  i_certify_stages : Obs.Registry.Counter.t;
  i_certify_skipped : Obs.Registry.Counter.t;
  i_certify_failures : Obs.Registry.Counter.t;
}

type ctx = {
  eng : Storage.Engine.t;
  tables : (string * R.Schema.t * int) list;
  stats : Stats.t;
  indexes : Indexes.t;
  params : Cost.params;
  config : config;
  ins : instruments;
}

let make_instruments registry =
  let counter = Obs.Registry.counter registry in
  {
    i_queries = counter ~unit:"queries" ~help:"queries planned" "plan.queries";
    i_executions =
      counter ~unit:"queries" ~help:"physical plans executed" "plan.executions";
    i_index_scans =
      counter ~unit:"scans" ~help:"index access paths chosen"
        "plan.index_scans";
    i_full_scans =
      counter ~unit:"scans" ~help:"sequential scans chosen" "plan.full_scans";
    i_spills =
      counter ~unit:"runs" ~help:"sort runs spilled to temporary files"
        "plan.spills";
    i_join_eliminations =
      counter ~unit:"joins" ~help:"joins dropped by chase-based elimination"
        "semantic.join_eliminations";
    i_certify_stages =
      counter ~unit:"stages" ~help:"rewrite stages checked by the certifier"
        "certify.stages";
    i_certify_skipped =
      counter ~unit:"stages"
        ~help:"certifier stages outside the conjunctive fragment"
        "certify.skipped";
    i_certify_failures =
      counter ~unit:"stages" ~help:"rewrite stages the certifier refuted"
        "certify.failures";
  }

let make ?(config = default_config) eng =
  {
    eng;
    tables = Storage.Engine.table_info eng;
    stats = Stats.load eng;
    indexes = Indexes.load eng;
    params =
      Cost.default
        ~pool_pages:(Storage.Buffer_pool.capacity (Storage.Engine.pool eng));
    config;
    ins = make_instruments (Storage.Engine.metrics eng);
  }

let engine ctx = ctx.eng
let stats ctx = ctx.stats
let indexes ctx = ctx.indexes
let params ctx = ctx.params
let config ctx = ctx.config
let instruments ctx = ctx.ins

let sort_spill ctx =
  match ctx.config.sort_spill with
  | Some n -> n
  | None -> ctx.params.Cost.sort_mem_tuples

let catalog ctx name =
  match List.find_opt (fun (n, _, _) -> n = name) ctx.tables with
  | Some (_, sch, _) -> sch
  | None -> raise (R.Database.Unknown_relation name)

let annotate ctx plan = Cost.annotate ctx.params ctx.stats plan

let cheaper a b =
  if b.P.meta.P.est_cost < a.P.meta.P.est_cost then b else a

let scan ctx name access =
  let first =
    match List.find_opt (fun (n, _, _) -> n = name) ctx.tables with
    | Some (_, _, first) -> first
    | None -> raise (R.Database.Unknown_relation name)
  in
  let pages =
    Storage.Heap.chain_pages (Storage.Engine.pool ctx.eng) ~first
  in
  P.make (P.Scan { table = name; access; pages }) (catalog ctx name)

let has_index ctx table attr kind =
  List.exists
    (fun d -> d.Indexes.kind = kind)
    (Indexes.on ctx.indexes ~table ~attr)

(* A conjunct of the form <attr> <cmp> <const> (either orientation),
   normalized to the attribute on the left. *)
let sargable schema conjunct =
  let flip = function
    | A.Lt -> A.Gt
    | A.Le -> A.Ge
    | A.Gt -> A.Lt
    | A.Ge -> A.Le
    | (A.Eq | A.Ne) as c -> c
  in
  match conjunct with
  | A.Cmp (cmp, A.Attr a, A.Const v) when R.Schema.mem schema a ->
      Some (cmp, a, v)
  | A.Cmp (cmp, A.Const v, A.Attr a) when R.Schema.mem schema a ->
      Some (flip cmp, a, v)
  | _ -> None

let filter_residual base residual =
  match residual with
  | [] -> base
  | _ -> P.make (P.Filter (A.conjoin residual, base)) base.P.schema

(* Access-path selection for a selection over a base table: the full
   scan plus every index-backed candidate (point lookups for equality
   conjuncts, range scans assembled from inequality bounds), each with
   its residual filter; cost picks. *)
let select_access ctx name pred =
  let schema = catalog ctx name in
  let conj = A.conjuncts pred in
  let full = filter_residual (scan ctx name P.Full) conj in
  let except c = List.filter (fun c' -> c' != c) conj in
  let point_candidates =
    List.concat_map
      (fun c ->
        match sargable schema c with
        | Some (A.Eq, attr, v) ->
            List.filter_map
              (fun kind ->
                if has_index ctx name attr kind then
                  Some
                    (filter_residual
                       (scan ctx name (P.Point { attr; key = v; via = kind }))
                       (except c))
                else None)
              [ Indexes.Hash; Indexes.Btree ]
        | _ -> [])
      conj
  in
  let range_candidates =
    (* one candidate per btree-indexed attribute with at least one bound;
       strict bounds stay in the residual (the inclusive range is a
       superset), non-strict bound conjuncts matching the chosen bound
       are consumed *)
    let bounded_attrs =
      List.sort_uniq String.compare
        (List.filter_map
           (fun c ->
             match sargable schema c with
             | Some ((A.Lt | A.Le | A.Gt | A.Ge), a, _)
               when has_index ctx name a Indexes.Btree ->
                 Some a
             | _ -> None)
           conj)
    in
    List.filter_map
      (fun attr ->
        let lo = ref None and hi = ref None in
        let tighten r keep v =
          match !r with
          | None -> r := Some v
          | Some v' -> if keep v v' then r := Some v
        in
        List.iter
          (fun c ->
            match sargable schema c with
            | Some ((A.Ge | A.Gt), a, v) when a = attr ->
                tighten lo (fun a b -> R.Value.compare a b > 0) v
            | Some ((A.Le | A.Lt), a, v) when a = attr ->
                tighten hi (fun a b -> R.Value.compare a b < 0) v
            | _ -> ())
          conj;
        if !lo = None && !hi = None then None
        else
          let consumed c =
            match sargable schema c with
            | Some (A.Ge, a, v) when a = attr -> !lo = Some v
            | Some (A.Le, a, v) when a = attr -> !hi = Some v
            | _ -> false
          in
          let residual = List.filter (fun c -> not (consumed c)) conj in
          Some
            (filter_residual
               (scan ctx name (P.Range { attr; lo = !lo; hi = !hi }))
               residual))
      bounded_attrs
  in
  let candidates = full :: (point_candidates @ range_candidates) in
  List.iter (annotate ctx) candidates;
  List.fold_left cheaper (List.hd candidates) (List.tl candidates)

(* Join-algorithm selection.  The merge candidate sorts each side unless
   it is a bare heap scan with a B+tree on the (single) join attribute,
   in which case an index-order scan supplies the order for free. *)
let join_plan ctx left right =
  let shared = R.Schema.common left.P.schema right.P.schema in
  let out_schema = R.Schema.join left.P.schema right.P.schema in
  if shared = [] then
    P.make (P.Nested_product (left, right)) out_schema
  else begin
    let hash build_left =
      P.make (P.Hash_join { left; right; on = shared; build_left }) out_schema
    in
    let merge_input side =
      match (side.P.node, shared) with
      | P.Scan { table; access = P.Full; pages }, [ attr ]
        when has_index ctx table attr Indexes.Btree ->
          P.make
            (P.Scan { table; access = P.Ordered attr; pages })
            side.P.schema
      | _ -> P.make (P.Sort { on = shared; input = side }) side.P.schema
    in
    let merge =
      P.make
        (P.Merge_join
           { left = merge_input left; right = merge_input right; on = shared })
        out_schema
    in
    let best_hash =
      let a = hash true and b = hash false in
      annotate ctx a;
      annotate ctx b;
      cheaper a b
    in
    annotate ctx merge;
    match ctx.config.force_join with
    | Force_hash -> best_hash
    | Force_merge -> merge
    | Auto -> cheaper best_hash merge
  end

let rec compile ctx e =
  match e with
  | A.Rel name -> scan ctx name P.Full
  | A.Singleton bindings ->
      P.make (P.Const bindings)
        (R.Schema.make
           (List.map (fun (a, v) -> (a, R.Value.type_of v)) bindings))
  | A.Select _ ->
      (* collapse stacked selections (push_selections splits conjunctions)
         so access-path selection sees every conjunct at once *)
      let rec peel preds = function
        | A.Select (p, inner) -> peel (A.conjuncts p @ preds) inner
        | core -> (preds, core)
      in
      let preds, core = peel [] e in
      let pred = A.conjoin preds in
      (match core with
      | A.Rel name -> select_access ctx name pred
      | _ ->
          let c = compile ctx core in
          P.make (P.Filter (pred, c)) c.P.schema)
  | A.Project (attrs, inner) ->
      let c = compile ctx inner in
      P.make (P.Project (attrs, c)) (R.Schema.project c.P.schema attrs)
  | A.Rename (m, inner) ->
      let c = compile ctx inner in
      P.make (P.Rename_op (m, c)) (R.Schema.rename c.P.schema m)
  | A.Product (a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      P.make (P.Nested_product (ca, cb))
        (R.Schema.product ca.P.schema cb.P.schema)
  | A.Join (a, b) -> join_plan ctx (compile ctx a) (compile ctx b)
  | A.Union (a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      P.make (P.Union_op (ca, cb)) ca.P.schema
  | A.Inter (a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      P.make (P.Inter_op (ca, cb)) ca.P.schema
  | A.Diff (a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      P.make (P.Diff_op (ca, cb)) ca.P.schema
  | A.Divide (a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      let keep =
        List.filter
          (fun attr -> not (R.Schema.mem cb.P.schema attr))
          (R.Schema.attributes ca.P.schema)
      in
      P.make (P.Divide_op (ca, cb)) (R.Schema.project ca.P.schema keep)

let count_access_paths ctx plan =
  P.fold
    (fun () node ->
      match node.P.node with
      | P.Scan { access = P.Full; _ } ->
          Obs.Registry.Counter.incr ctx.ins.i_full_scans
      | P.Scan _ -> Obs.Registry.Counter.incr ctx.ins.i_index_scans
      | _ -> ())
    () plan

let plan ctx expr =
  Obs.Registry.Counter.incr ctx.ins.i_queries;
  (* type the query first: unknown relations and type errors surface
     here, on the original expression, not mid-rewrite *)
  ignore (A.schema_of (catalog ctx) expr : R.Schema.t);
  let logical =
    if ctx.config.optimize then
      Obs.Trace.with_span (Storage.Engine.trace ctx.eng) "plan.optimize"
        (fun () ->
          R.Optimizer.optimize (catalog ctx)
            (Stats.row_stats ctx.stats)
            expr)
    else expr
  in
  let logical =
    if ctx.config.semantic then
      Obs.Trace.with_span (Storage.Engine.trace ctx.eng) "plan.semantic"
        (fun () ->
          let fds = Semantic.fds_of_stats (catalog ctx) ctx.stats in
          let rewritten, dropped =
            Semantic.eliminate_joins (catalog ctx) fds logical
          in
          if dropped > 0 then
            Obs.Registry.Counter.add ctx.ins.i_join_eliminations dropped;
          rewritten)
    else logical
  in
  let physical = compile ctx logical in
  annotate ctx physical;
  count_access_paths ctx physical;
  physical
