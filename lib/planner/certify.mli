(** Translation validation for the planner.

    Rather than trusting the optimizer, [certify] replays every rewrite
    stage {!Plan.plan} ran — selection push-down, join ordering,
    projection pruning, chase-based join elimination — plus the physical
    plan's logical shadow, and proves each step equivalent to its
    predecessor: both sides become conjunctive queries (comparisons as
    uninterpreted pseudo-atoms) and {!Datalog.Containment.equivalent_under}
    decides, chasing under the statistics-recorded key dependencies.

    The prover is sound.  [Equivalent] is a proof.  [Refuted] is a
    counterexample on the pure conjunctive fragment, where the
    Chandra–Merlin test is complete — a refuted stage means the rewrite
    is buggy, surfaced as an SQ101/SQ102 diagnostic by
    [Analysis.Semantic_lint.of_certify].  A step the fragment cannot
    settle is [Skipped], never silently passed. *)

(** One stage's outcome.  [Refuted]/[Skipped] carry a reason. *)
type verdict = Equivalent | Refuted of string | Skipped of string

type stage = { name : string; verdict : verdict }
(** A certified rewrite stage: [push_selections], [order_joins],
    [prune_projections], [join_elimination], or [physical_shadow]. *)

type report = stage list
(** Stages in pipeline order. *)

val ok : report -> bool
(** No stage was refuted ([Skipped] stages do not fail a report). *)

val verdict_to_string : verdict -> string
(** ["equivalent"], ["refuted: <why>"] or ["skipped: <why>"]. *)

val shadow : Physical.t -> Relational.Algebra.t
(** The logical reading of a physical plan: index access paths become
    the selections they absorbed (a range scan its inclusive bounds —
    strict residuals shadow separately as filters), sort is identity,
    joins forget their algorithm. *)

val certify :
  Plan.ctx -> Relational.Algebra.t -> Physical.t -> report
(** [certify ctx expr physical] validates the pipeline that produced
    [physical] from [expr] under [ctx]'s configuration, bumping the
    [certify.*] counters under a [plan.certify] span.  Deterministic:
    replaying the stages on the same context reproduces exactly the
    plans {!Plan.plan} built. *)
