(* The cost model: Optimizer.estimate's textbook cardinality arithmetic
   extended with I/O terms priced off the buffer pool.  Costs are
   dimensionless work units; only their order matters, and the constants
   are chosen so the classic access-path trade-offs come out right:
     - index probes hit in-memory structures (lib/access), so they are
       priced as CPU work and beat even a one-page sequential scan when
       the predicate is selective;
     - a chain that fits in the buffer pool is charged the cached page
       rate, one that does not pays full reads;
     - hash join wins on unsorted inputs until its build side outgrows
       the memory budget, where its modeled spill passes let a merge
       join over index-ordered inputs take over (the crossover the bench
       sweeps). *)

module R = Relational
module A = R.Algebra
module P = Physical

type params = {
  pool_pages : int;
  page_io : float;
  page_cached : float;
  cpu_tuple : float;
  cpu_cmp : float;
  cpu_hash : float;
  probe_btree : float;
  probe_hash : float;
  hash_mem_tuples : int;
  sort_mem_tuples : int;
  tuples_per_page : float;
  range_selectivity : float;
  conjunct_selectivity : float;
  default_distinct : int;
}

let default ~pool_pages =
  {
    pool_pages;
    page_io = 4.0;
    page_cached = 0.2;
    cpu_tuple = 0.01;
    cpu_cmp = 0.02;
    cpu_hash = 0.03;
    probe_btree = 0.1;
    probe_hash = 0.05;
    hash_mem_tuples = 1024;
    sort_mem_tuples = 1024;
    tuples_per_page = 32.0;
    range_selectivity = 0.3;
    conjunct_selectivity = 0.3;
    default_distinct = 10;
  }

(* Distinct-value estimate for an attribute of a plan's output: resolved
   from base-table statistics when the attribute can be traced to a
   scan, the textbook join-key default otherwise. *)
let rec col_distinct p stats (plan : P.t) attr =
  let from_child c = col_distinct p stats c attr in
  match plan.P.node with
  | P.Scan { table; _ } -> (
      match Stats.find stats table with
      | Some tb -> (
          match Stats.distinct tb attr with
          | Some d -> d
          | None -> p.default_distinct)
      | None -> p.default_distinct)
  | P.Filter (_, c) | P.Project (_, c) | P.Sort { input = c; _ } ->
      from_child c
  | P.Rename_op _ | P.Const _ -> p.default_distinct
  | P.Hash_join { left; right; _ }
  | P.Merge_join { left; right; _ }
  | P.Nested_product (left, right) ->
      if R.Schema.mem left.P.schema attr then from_child left
      else if R.Schema.mem right.P.schema attr then from_child right
      else p.default_distinct
  | P.Union_op (a, _) | P.Inter_op (a, _) | P.Diff_op (a, _)
  | P.Divide_op (a, _) ->
      from_child a

let join_rows p stats left right on =
  let l = left.P.meta.P.est_rows and r = right.P.meta.P.est_rows in
  match on with
  | [] -> l *. r
  | _ ->
      let dv =
        List.fold_left
          (fun acc attr ->
            max acc
              (max
                 (col_distinct p stats left attr)
                 (col_distinct p stats right attr)))
          1 on
      in
      l *. r /. float_of_int dv

let io_pages p pages =
  let pages = float_of_int pages in
  if pages <= float_of_int p.pool_pages then pages *. p.page_cached
  else pages *. p.page_io

let spill_pages p rows =
  2.0 *. (rows /. p.tuples_per_page) *. p.page_io

let sort_cost p rows =
  let n = Float.max rows 2.0 in
  let cmp = p.cpu_cmp *. n *. (Float.log n /. Float.log 2.0) in
  if rows > float_of_int p.sort_mem_tuples then cmp +. spill_pages p rows
  else cmp

let annotate p stats plan =
  let rec go (t : P.t) =
    let set rows cost =
      t.P.meta.P.est_rows <- Float.max rows 0.0;
      t.P.meta.P.est_cost <- cost
    in
    (match t.P.node with
    | P.Scan { table; access; pages } -> (
        let rows =
          match Stats.find stats table with
          | Some tb -> float_of_int tb.Stats.rows
          | None -> float_of_int pages *. p.tuples_per_page
        in
        let dv attr =
          match Stats.find stats table with
          | Some tb -> (
              match Stats.distinct tb attr with
              | Some d -> max d 1
              | None -> p.default_distinct)
          | None -> p.default_distinct
        in
        match access with
        | P.Full -> set rows (io_pages p pages +. (p.cpu_tuple *. rows))
        | P.Ordered _ ->
            (* a full walk of the in-memory index: the heap is still read
               once to build it, plus a comparison per step for the order *)
            set rows
              (io_pages p pages +. (p.cpu_tuple *. rows) +. (p.cpu_cmp *. rows))
        | P.Point { attr; via; _ } ->
            let out = rows /. float_of_int (dv attr) in
            let probe =
              match via with
              | Indexes.Btree -> p.probe_btree
              | Indexes.Hash -> p.probe_hash
            in
            set out (probe +. (p.cpu_tuple *. out))
        | P.Range _ ->
            let out = rows *. p.range_selectivity in
            set out (p.probe_btree +. (p.cpu_tuple *. out)))
    | P.Filter (pred, c) ->
        go c;
        let n = List.length (A.conjuncts pred) in
        let sel = Float.pow p.conjunct_selectivity (float_of_int n) in
        set
          (c.P.meta.P.est_rows *. sel)
          (c.P.meta.P.est_cost
          +. (p.cpu_cmp *. c.P.meta.P.est_rows *. float_of_int (max n 1)))
    | P.Project (_, c) | P.Rename_op (_, c) ->
        go c;
        set c.P.meta.P.est_rows
          (c.P.meta.P.est_cost +. (p.cpu_tuple *. c.P.meta.P.est_rows))
    | P.Hash_join { left; right; on; build_left } ->
        go left;
        go right;
        let out = join_rows p stats left right on in
        let build =
          (if build_left then left else right).P.meta.P.est_rows
        in
        let total = left.P.meta.P.est_rows +. right.P.meta.P.est_rows in
        let spill =
          if build > float_of_int p.hash_mem_tuples then spill_pages p total
          else 0.0
        in
        set out
          (left.P.meta.P.est_cost +. right.P.meta.P.est_cost
          +. (p.cpu_hash *. total) +. (p.cpu_tuple *. out) +. spill)
    | P.Merge_join { left; right; on } ->
        go left;
        go right;
        let out = join_rows p stats left right on in
        let total = left.P.meta.P.est_rows +. right.P.meta.P.est_rows in
        set out
          (left.P.meta.P.est_cost +. right.P.meta.P.est_cost
          +. (p.cpu_cmp *. total) +. (p.cpu_tuple *. out))
    | P.Nested_product (a, b) ->
        go a;
        go b;
        let out = a.P.meta.P.est_rows *. b.P.meta.P.est_rows in
        set out
          (a.P.meta.P.est_cost +. b.P.meta.P.est_cost +. (p.cpu_tuple *. out))
    | P.Sort { input; _ } ->
        go input;
        set input.P.meta.P.est_rows
          (input.P.meta.P.est_cost +. sort_cost p input.P.meta.P.est_rows)
    | P.Union_op (a, b) | P.Inter_op (a, b) | P.Diff_op (a, b)
    | P.Divide_op (a, b) ->
        go a;
        go b;
        let la = a.P.meta.P.est_rows and lb = b.P.meta.P.est_rows in
        let out =
          match t.P.node with
          | P.Union_op _ -> la +. lb
          | P.Inter_op _ -> Float.min la lb
          | P.Diff_op _ -> la
          | _ -> la /. Float.max lb 1.0
        in
        set out
          (a.P.meta.P.est_cost +. b.P.meta.P.est_cost
          +. (p.cpu_tuple *. (la +. lb)))
    | P.Const _ -> set 1.0 p.cpu_tuple);
    ()
  in
  go plan
