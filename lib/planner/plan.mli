(** Plan selection: {!Relational.Optimizer.optimize}'s logical rewrites
    first, then a physical compile that picks access paths (sargable
    conjuncts matched against the index catalog) and join algorithms
    (hash vs merge) by {!Cost}.

    A {!ctx} snapshots the engine's public catalog, persisted statistics
    and index definitions at creation time — make one per CLI invocation
    or test scenario, after the tables it should see are saved. *)

(** Join-algorithm selection override, for tests and the bench: [Auto]
    lets cost decide. *)
type join_force = Auto | Force_hash | Force_merge

type config = {
  optimize : bool;
      (** run the logical rewrite pipeline before compiling (default);
          [false] compiles the query as written — access-path selection
          still happens, which is what makes PL001 demonstrable *)
  semantic : bool;
      (** run {!Semantic.eliminate_joins} after the syntactic rewrites
          (default): joins the chase proves redundant under the
          statistics-recorded key dependencies are dropped before
          physical compilation *)
  force_join : join_force;
  sort_spill : int option;
      (** executor sort-spill threshold in tuples; [None] uses the cost
          model's [sort_mem_tuples] *)
}
(** Planner configuration. *)

val default_config : config
(** [{ optimize = true; semantic = true; force_join = Auto;
    sort_spill = None }]. *)

type instruments = {
  i_queries : Obs.Registry.Counter.t;
  i_executions : Obs.Registry.Counter.t;
  i_index_scans : Obs.Registry.Counter.t;
  i_full_scans : Obs.Registry.Counter.t;
  i_spills : Obs.Registry.Counter.t;
  i_join_eliminations : Obs.Registry.Counter.t;
  i_certify_stages : Obs.Registry.Counter.t;
  i_certify_skipped : Obs.Registry.Counter.t;
  i_certify_failures : Obs.Registry.Counter.t;
}
(** The [plan.*], [semantic.*] and [certify.*] counters, registered on
    the engine's metric registry when the context is created (see
    docs/OBSERVABILITY.md). *)

type ctx
(** A planning context: engine handle, catalog/statistics/index
    snapshot, cost parameters, configuration, instruments. *)

val make : ?config:config -> Storage.Engine.t -> ctx
(** Snapshot a context off an open engine.  Cost parameters come from
    {!Cost.default} sized to the engine's buffer pool. *)

val engine : ctx -> Storage.Engine.t
(** The engine the context was made from. *)

val stats : ctx -> Stats.t
(** The statistics snapshot the context plans with. *)

val indexes : ctx -> Indexes.t
(** The index catalog (and build cache) the context plans with. *)

val params : ctx -> Cost.params
(** The cost parameters in use. *)

val config : ctx -> config
(** The configuration the context was made with. *)

val instruments : ctx -> instruments
(** The [plan.*] counters (the executor bumps them too). *)

val sort_spill : ctx -> int
(** The effective executor sort-spill threshold in tuples. *)

val catalog : ctx -> Relational.Algebra.catalog
(** Schema lookup over the snapshot; raises
    {!Relational.Database.Unknown_relation} on unknown names (the
    exception the CLI maps to exit 2). *)

val plan : ctx -> Relational.Algebra.t -> Physical.t
(** Type-check, optionally rewrite ([plan.optimize] span), run
    chase-based join elimination ([plan.semantic] span), compile with
    access-path and join-algorithm selection, and annotate with
    estimates.  Raises {!Relational.Algebra.Type_error} /
    {!Relational.Database.Unknown_relation} on ill-typed input. *)
