(* Durable replication metadata.  Every file here is a sequence of
   CRC-framed text payloads (Storage.Wal.frame), so the same tolerant
   scanner that reads WALs reads these: a torn tail is dropped, never
   fatal.  The descriptor and node stamps are replaced atomically
   (temp + rename); the ack journal is append-only like a log. *)

module Wal = Storage.Wal
module Fault = Storage.Fault

type sync_mode = Quorum | Async

let sync_mode_to_string = function Quorum -> "quorum" | Async -> "async"

let sync_mode_of_string = function
  | "quorum" -> Some Quorum
  | "async" -> Some Async
  | _ -> None

type group = { epoch : int; primary : int; nodes : int; sync : sync_mode }

let node_path base k = if k = 0 then base else Printf.sprintf "%s.r%d" base k
let group_path base = base ^ ".repl"
let acks_path base = base ^ ".acks"
let epoch_path node = node ^ ".node"

(* Atomic replace: frame the payload, write + fsync a temp file, rename
   over the target.  A crash before the rename leaves the old file; the
   fault injector accounts the write as one durable I/O. *)
let replace_file ?fault ~site path payload =
  let frame = Wal.frame payload in
  let tmp = path ^ ".tmp" in
  (match fault with
  | Some f ->
      Fault.io f ~at:site ~on_crash:(fun () ->
          (* the temp write dies; the published file is untouched *)
          if Sys.file_exists tmp then Sys.remove tmp)
  | None -> ());
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let n = Unix.write_substring fd frame 0 (String.length frame) in
  assert (n = String.length frame);
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path

let first_payload path =
  match Wal.frames_of_file path with (_, p) :: _, _ -> Some p | [], _ -> None

let save_group ?fault base g =
  replace_file ?fault ~site:"repl group write" (group_path base)
    (Printf.sprintf "%d %d %d %s" g.epoch g.primary g.nodes
       (sync_mode_to_string g.sync))

let load_group base =
  match first_payload (group_path base) with
  | None -> None
  | Some p -> (
      match String.split_on_char ' ' p with
      | [ e; pr; n; s ] -> (
          match
            ( int_of_string_opt e,
              int_of_string_opt pr,
              int_of_string_opt n,
              sync_mode_of_string s )
          with
          | Some epoch, Some primary, Some nodes, Some sync ->
              Some { epoch; primary; nodes; sync }
          | _ -> None)
      | _ -> None)

let discover base =
  match load_group base with
  | Some g -> g.nodes
  | None ->
      if not (Sys.file_exists base) then 0
      else begin
        let k = ref 1 in
        while Sys.file_exists (node_path base !k) do
          incr k
        done;
        !k
      end

let save_node ?fault node ~epoch ~snapshot_lsn =
  replace_file ?fault ~site:"repl node write" (epoch_path node)
    (Printf.sprintf "%d %d" epoch snapshot_lsn)

let load_node node =
  match first_payload (epoch_path node) with
  | None -> None
  | Some p -> (
      match String.split_on_char ' ' p with
      | [ e; s ] -> (
          match (int_of_string_opt e, int_of_string_opt s) with
          | Some epoch, Some snap -> Some (epoch, snap)
          | _ -> None)
      | _ -> None)

type ack = { txn : int; lsn : int; ack_epoch : int }

let append_ack ?fault base a =
  let path = acks_path base in
  let frame =
    Wal.frame (Printf.sprintf "%d %d %d" a.txn a.lsn a.ack_epoch)
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  let len = Unix.lseek fd 0 Unix.SEEK_END in
  (match fault with
  | Some f ->
      Fault.io f ~at:"ack journal append" ~on_crash:(fun () ->
          (* torn append: half the frame reaches the disk *)
          let half = String.length frame / 2 in
          ignore (Unix.write_substring fd frame 0 half : int);
          Unix.ftruncate fd (len + half);
          Unix.close fd)
  | None -> ());
  let n = Unix.write_substring fd frame 0 (String.length frame) in
  assert (n = String.length frame);
  Unix.fsync fd;
  Unix.close fd

let load_acks base =
  let frames, _ = Wal.frames_of_file (acks_path base) in
  List.filter_map
    (fun (_, p) ->
      match String.split_on_char ' ' p with
      | [ t; l; e ] -> (
          match
            (int_of_string_opt t, int_of_string_opt l, int_of_string_opt e)
          with
          | Some txn, Some lsn, Some ack_epoch -> Some { txn; lsn; ack_epoch }
          | _ -> None)
      | _ -> None)
    frames
