(** A replication group: one primary {!Storage.Engine} streaming its
    WAL over the {!Distributed.Net} message layer to N-1 {!Replica}s,
    with quorum-acknowledged or asynchronous commits, snapshot + log
    tail catch-up, and epoch-fenced failover.

    Shipping is {e physical}: after every commit the primary sends the
    durable WAL bytes each replica is missing, stamped with the group
    epoch; replicas append them verbatim and run continuous redo, so a
    caught-up replica's log is byte-identical to a prefix of the
    primary's.  The shipping channel draws [drop]/[delay]/[part] faults
    from the same shared {!Storage.Fault} injector as every disk in the
    group — one crash budget covers primary, replicas, metadata, and
    messages alike.

    Under [Quorum] sync a commit is {e acknowledged} only after a
    majority of nodes (primary included) hold its bytes, and the ack is
    journaled durably ([base.acks]) before the caller hears of it; the
    journal plus the promotion rule — failover promotes the node with
    the longest clean log — is what makes "an acked commit is never
    lost" hold, and {!Analysis.Replication_lint} checks it offline.
    Under [Async] the commit returns after local durability and
    replicas are shipped best-effort, one attempt per commit. *)

(** The shipping channel's retry policy (quorum-mode exchanges retry
    with backoff; async mode sends one attempt per commit). *)
type config = {
  msg_timeout : int;  (** ticks before one attempt is given up *)
  max_attempts : int;  (** send attempts per reliable exchange *)
  max_backoff : int;  (** backoff window cap, in ticks *)
  seed : int;  (** jitter RNG seed *)
}

val default_config : config
(** [msg_timeout = 8; max_attempts = 6; max_backoff = 64; seed = 0] —
    the same policy as the 2PC coordinator's. *)

(** What a commit achieved.  [Acked] is the full promise (quorum
    reached and journaled, or async mode's local durability);
    [Local_only] means the commit is durable on the primary but quorum
    was not reached — it may be lost by a failover and the client must
    not be told it succeeded. *)
type outcome = Acked | Local_only

exception Fenced of int
(** The primary discovered a higher epoch — it has been deposed by a
    failover and must stop accepting writes.  Carries the epoch that
    fenced it. *)

type t
(** An open replication group: the primary engine, the replica
    handles, the shipping channel, and the per-replica ack
    watermarks. *)

val open_group :
  ?replicas:int -> ?sync:Repl_meta.sync_mode -> ?config:config ->
  ?faults:Storage.Fault.spec -> ?crash_after:int ->
  ?metrics:Obs.Registry.t -> ?trace:Obs.Trace.t -> string -> t
(** Open (creating if needed) the group rooted at [base].  [replicas]
    defaults to what the group descriptor (or the [base.rK] file
    family) says; raises [Invalid_argument] when neither names any.
    The current primary (per the descriptor — possibly a promoted
    replica) opens as an ordinary engine, restart recovery included;
    every other node attaches, is prefix-verified against the
    primary's log, and is caught up (diverged nodes — a deposed
    primary rejoining — by full snapshot).  Registers the [repl.*]
    instruments on [metrics]; records [repl.ship] / [repl.snapshot] /
    [repl.catchup] / [repl.failover] spans on [trace]. *)

val close : t -> unit
(** Checkpoint and close the primary, then ship the final tail (and
    the page images the shutdown checkpoint implies) so surviving
    replicas end byte-identical — faults permitting. *)

val crash : t -> unit
(** Abandon everything without flushing — the process dying. *)

val begin_txn : t -> int
(** Start a transaction on the primary.  Raises {!Fenced} if the group
    has deposed this primary. *)

val write : t -> txn:int -> string -> int -> unit
(** A transactional write on the primary (raises what
    {!Storage.Engine.write} raises). *)

val read : t -> string -> int
(** Read the primary's committed-visible value. *)

val commit : t -> txn:int -> outcome
(** Commit on the primary (the local durability point), then ship the
    new tail to every replica.  [Quorum] mode waits for a majority of
    nodes to ack, journals the ack durably, and only then returns
    [Acked]; short of quorum it returns [Local_only].  [Async] mode
    ships one attempt per replica and returns [Acked] immediately
    after local durability. *)

val abort : t -> txn:int -> unit
(** Abort on the primary (compensations ship with the next tail). *)

val catch_up : t -> unit
(** Bring every lagging replica forward: log tail for prefix-clean
    nodes, full snapshot (page-ship + log) for fresh or diverged
    ones.  Safe to call at any quiescent point; a no-op when all
    replicas are current. *)

val failover : t -> int
(** Deterministic failover: crash the primary, rescan every other
    node's files, promote the one with the longest clean log (ties to
    the lowest node id) whose snapshot covers its last shipped
    checkpoint, bump the epoch, and reopen the winner as the new
    primary engine.  The deposed primary rejoins as a diverged replica
    (healed by snapshot on the next {!catch_up}).  Returns the new
    primary's node id. *)

val items : t -> (string * int) list
(** The primary's committed-visible KV state, sorted. *)

val primary : t -> Storage.Engine.t
(** The primary's engine (status reporting, tests). *)

val primary_id : t -> int
(** Which node is currently primary. *)

val epoch : t -> int
(** The group's current fencing epoch. *)

val node_count : t -> int
(** Total nodes, primary included. *)

val sync_mode : t -> Repl_meta.sync_mode
(** The group's acknowledgement mode. *)

val replica : t -> int -> Replica.t option
(** The handle for node [k] ([None] for the primary slot). *)

val replica_ids : t -> int list
(** Every non-primary node id, sorted. *)

val lag : t -> int
(** The worst replica lag in bytes (primary durable LSN minus the
    slowest replica's durable LSN; diverged replicas count from 0). *)

val fault : t -> Storage.Fault.t
(** The shared injector (tests arm crash budgets mid-run through
    it). *)

val net_ticks : t -> int
(** Virtual time the shipping channel consumed. *)

val base : t -> string
(** The base path the group is rooted at. *)
