(* A replica is a byte-accurate WAL tail plus continuous redo.  The
   file layout is exactly a single-node database's (db at [path], log
   at [path.wal]) so that promotion is just Storage.Engine.open_db;
   what this module adds is the streaming side: append shipped chunks
   at their primary offsets, refuse stale epochs, and keep an
   in-memory committed view current record by record. *)

module Wal = Storage.Wal
module Fault = Storage.Fault
module Engine = Storage.Engine

type t = {
  path : string;
  wal_file : string;
  node_id : int;
  fault : Fault.t;
  mutable epoch : int;
  mutable snapshot_lsn : int;
  mutable wal_len : int;  (* durable clean bytes — the replica's LSN *)
  mutable commits : int;
  pending : (int, (string * int) list) Hashtbl.t;  (* txn -> rev writes *)
  state : (string, int) Hashtbl.t;
  m_commits : Obs.Registry.Counter.t;
  m_stale : Obs.Registry.Counter.t;
}

type receipt = Acked of int | Stale_epoch | Gap of int | Snapshot_needed

(* One record through the redo loop: buffer writes per transaction,
   publish them at Commit, discard at Abort — the same winners-only
   discipline as restart recovery, applied continuously. *)
let apply t record =
  match record with
  | Wal.Begin txn -> Hashtbl.replace t.pending txn []
  | Wal.Write { txn; item; after; _ } ->
      let writes =
        match Hashtbl.find_opt t.pending txn with Some l -> l | None -> []
      in
      Hashtbl.replace t.pending txn ((item, after) :: writes)
  | Wal.Commit txn ->
      (match Hashtbl.find_opt t.pending txn with
      | Some writes ->
          List.iter
            (fun (item, v) -> Hashtbl.replace t.state item v)
            (List.rev writes)
      | None -> ());
      Hashtbl.remove t.pending txn;
      t.commits <- t.commits + 1;
      Obs.Registry.Counter.incr t.m_commits
  | Wal.Abort txn -> Hashtbl.remove t.pending txn
  | Wal.Checkpoint | Wal.Prepare _ -> ()

let replay t entries =
  Hashtbl.reset t.pending;
  Hashtbl.reset t.state;
  t.commits <- 0;
  List.iter (fun { Wal.record; _ } -> apply t record) entries

let attach ?(metrics = Obs.Registry.noop) ~fault ~node_id ~epoch path =
  let counter = Obs.Registry.counter metrics in
  let wal_file = Engine.wal_path path in
  let t =
    {
      path;
      wal_file;
      node_id;
      fault;
      epoch;
      snapshot_lsn = 0;
      wal_len = 0;
      commits = 0;
      pending = Hashtbl.create 16;
      state = Hashtbl.create 64;
      m_commits =
        counter ~unit:"txns" ~help:"transactions applied by replica redo"
          "repl.apply_commits";
      m_stale =
        counter ~unit:"msgs" ~help:"stale-epoch chunks refused (fencing)"
          "repl.stale_rejects";
    }
  in
  (match Repl_meta.load_node path with
  | Some (e, snap) ->
      t.epoch <- e;
      t.snapshot_lsn <- snap
  | None -> Repl_meta.save_node ~fault path ~epoch ~snapshot_lsn:0);
  let report = Wal.report_file wal_file in
  if report.Wal.total_bytes > report.Wal.clean_bytes then begin
    (* a crashed append left a torn tail; drop it like open_log does *)
    let fd = Unix.openfile wal_file [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd report.Wal.clean_bytes;
    Unix.close fd
  end;
  t.wal_len <- report.Wal.clean_bytes;
  replay t report.Wal.records;
  t

(* Append [chunk] at byte offset [t.wal_len], fault-injected: an
   injected crash writes only half the chunk (a torn shipment, healed
   by the torn-tail truncation of the next attach). *)
let append_bytes t chunk =
  let site = Printf.sprintf "replica %d wal append" t.node_id in
  let fd =
    Unix.openfile t.wal_file [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Unix.ftruncate fd t.wal_len;
  ignore (Unix.lseek fd t.wal_len Unix.SEEK_SET : int);
  Fault.io t.fault ~at:site ~on_crash:(fun () ->
      let half = String.length chunk / 2 in
      ignore (Unix.write_substring fd chunk 0 half : int);
      Unix.close fd);
  let n = Unix.write_substring fd chunk 0 (String.length chunk) in
  assert (n = String.length chunk);
  Unix.fsync fd;
  Unix.close fd

let adopt_epoch t epoch =
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    Repl_meta.save_node ~fault:t.fault t.path ~epoch
      ~snapshot_lsn:t.snapshot_lsn
  end

let receive t ~epoch ~start ~chunk =
  if epoch < t.epoch then begin
    Obs.Registry.Counter.incr t.m_stale;
    Stale_epoch
  end
  else begin
    adopt_epoch t epoch;
    if start > t.wal_len then Gap t.wal_len
    else begin
      let skip = t.wal_len - start in
      if skip >= String.length chunk then Acked t.wal_len
      else begin
        let fresh = String.sub chunk skip (String.length chunk - skip) in
        let entries, clean = Wal.scan fresh in
        if
          List.exists
            (fun { Wal.record; _ } -> record = Wal.Checkpoint)
            entries
        then Snapshot_needed
        else begin
          append_bytes t fresh;
          List.iter (fun { Wal.record; _ } -> apply t record) entries;
          t.wal_len <- t.wal_len + clean;
          Acked t.wal_len
        end
      end
    end
  end

let write_db_image t db_image =
  match db_image with
  | Some image ->
      let fd =
        Unix.openfile t.path
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
          0o644
      in
      let n = Unix.write_substring fd image 0 (String.length image) in
      assert (n = String.length image);
      Unix.fsync fd;
      Unix.close fd
  | None -> if Sys.file_exists t.path then Sys.remove t.path

(* The snapshot install is modeled atomic: one fault point before any
   mutation, then page image, log prefix, and epoch stamp land
   together.  A real system would order page ship / log ship / stamp
   publish behind a recovery marker; collapsing that ladder keeps the
   crash model one-budget without opening a window where the log
   claims pages the node never received (the RP004 gap). *)
let install_snapshot t ~epoch ~db_image ~wal_image ~snapshot_lsn =
  Fault.io t.fault
    ~at:(Printf.sprintf "replica %d snapshot" t.node_id)
    ~on_crash:(fun () -> ());
  write_db_image t db_image;
  let fd =
    Unix.openfile t.wal_file
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let n = Unix.write_substring fd wal_image 0 (String.length wal_image) in
  assert (n = String.length wal_image);
  Unix.fsync fd;
  Unix.close fd;
  t.epoch <- max t.epoch epoch;
  t.snapshot_lsn <- snapshot_lsn;
  Repl_meta.save_node ~fault:t.fault t.path ~epoch:t.epoch ~snapshot_lsn;
  let entries, clean = Wal.scan wal_image in
  t.wal_len <- clean;
  replay t entries

let durable_lsn t = t.wal_len
let epoch t = t.epoch
let snapshot_lsn t = t.snapshot_lsn
let node_id t = t.node_id
let path t = t.path

let state t =
  Hashtbl.fold (fun k v acc -> if v = 0 then acc else (k, v) :: acc) t.state []
  |> List.sort compare

let applied_commits t = t.commits
