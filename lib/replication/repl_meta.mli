(** Durable replication metadata: the group descriptor, per-node epoch
    stamps, and the ack journal — all small CRC-framed files beside the
    database (reusing {!Storage.Wal.frame}), scannable offline by
    [dbmeta] and {!Analysis.Replication_lint}.

    A replication group rooted at [base] is a file family: the primary's
    database at some node path, N-1 replica copies, one group descriptor
    ([base.repl]), one epoch stamp per node ([path.node]), and the ack
    journal ([base.acks]) recording every quorum-acknowledged commit —
    the durable trace of what was promised to clients, which is what
    makes "an acked commit was lost" a checkable file-level property
    (RP003) rather than a runtime assertion. *)

(** When a commit reports success: after a majority of nodes hold its
    bytes ([Quorum]) or as soon as it is locally durable ([Async], the
    lag-tolerant mode — its commits are deliberately not journaled,
    because they carry no survival promise). *)
type sync_mode = Quorum | Async

val sync_mode_to_string : sync_mode -> string
(** ["quorum"] or ["async"]. *)

val sync_mode_of_string : string -> sync_mode option
(** Inverse of {!sync_mode_to_string}; [None] on anything else. *)

type group = {
  epoch : int;  (** fencing epoch, bumped by every failover *)
  primary : int;  (** node id currently allowed to accept writes *)
  nodes : int;  (** total node count, primary included *)
  sync : sync_mode;  (** the group's commit-acknowledgement mode *)
}
(** The group descriptor stored at [base.repl] — which node is primary,
    under which epoch, over how many nodes. *)

val node_path : string -> int -> string
(** [node_path base k]: node 0 lives at [base] itself, node [k > 0] at
    [base.rK] (each with its WAL at [.wal], mirroring
    {!Storage.Engine.wal_path}). *)

val group_path : string -> string
(** [base.repl] — the group descriptor file. *)

val acks_path : string -> string
(** [base.acks] — the append-only quorum-ack journal. *)

val epoch_path : string -> string
(** [epoch_path node_path] is [node_path.node] — that node's durable
    epoch stamp and snapshot watermark. *)

val save_group : ?fault:Storage.Fault.t -> string -> group -> unit
(** Atomically replace [base.repl] (write-to-temp + rename, fsynced).
    [fault] accounts the write against the shared crash budget. *)

val load_group : string -> group option
(** Read [base.repl]; [None] when absent or unreadable. *)

val discover : string -> int
(** How many nodes the file family at [base] has: the descriptor's
    count when one exists, otherwise 1 + the number of consecutive
    [base.rK] files from [k = 1] (0 when not a replicated base at
    all). *)

val save_node : ?fault:Storage.Fault.t -> string -> epoch:int -> snapshot_lsn:int -> unit
(** Atomically replace the node's epoch stamp ([path.node]). *)

val load_node : string -> (int * int) option
(** [(epoch, snapshot_lsn)] from the node stamp; [None] when absent. *)

type ack = {
  txn : int;  (** the acknowledged transaction *)
  lsn : int;  (** primary WAL byte offset its Commit is durable below *)
  ack_epoch : int;  (** the epoch the ack was issued under *)
}
(** One quorum acknowledgement: transaction, its commit watermark, and
    the epoch that promised it.  Journal entries must be epoch-monotone
    (RP002) and their transactions present in the primary's WAL
    (RP003). *)

val append_ack : ?fault:Storage.Fault.t -> string -> ack -> unit
(** Append one CRC-framed ack to [base.acks] and fsync — durable before
    the client hears [Committed], exactly like a commit record. *)

val load_acks : string -> ack list
(** The journal's valid prefix, oldest first (torn tails tolerated). *)
