(** One replica node: a verbatim byte copy of the primary's WAL plus a
    continuous-redo apply loop over it.

    The replica's log is {e physically} identical to a prefix of the
    primary's — shipped chunks are appended at their exact primary byte
    offsets, so the replica's durable LSN is directly comparable to the
    primary's and "caught up" is byte equality, not a protocol state.
    Each appended record flows through the same redo discipline as
    restart recovery: writes buffer per transaction and apply at Commit
    (so an uncommitted or aborted transaction is never visible), which
    keeps the replica's view exactly
    {!Transactions.Recovery.committed_state} of its log prefix at all
    times.  Promotion needs no special machinery: opening a
    {!Storage.Engine} over the replica's files {e is} the promotion,
    because its snapshot db image plus verbatim log prefix are
    indistinguishable from a crashed primary's. *)

type t
(** An attached replica: its files, durable watermark, epoch, and the
    in-memory redo state. *)

type receipt =
  | Acked of int  (** appended and applied; the new durable byte offset *)
  | Stale_epoch  (** sender's epoch is behind ours — write fenced off *)
  | Gap of int  (** chunk starts past our tail; resend from this offset *)
  | Snapshot_needed
      (** the chunk carries a Checkpoint, which may only arrive through
          the atomic snapshot path — streaming it would let a crash
          leave the log claiming pages the node never received (the
          RP004 gap) *)
(** What a replica answers to one shipped chunk. *)

val attach :
  ?metrics:Obs.Registry.t -> fault:Storage.Fault.t -> node_id:int ->
  epoch:int -> string -> t
(** Attach to (or create) the replica files at a node path: truncate
    any torn WAL tail, replay the surviving prefix through redo, and
    load the node's durable epoch stamp ([epoch] seeds a stamp-less
    node).  Registers the [repl.apply_commits] / [repl.stale_rejects]
    counters on [metrics]. *)

val receive : t -> epoch:int -> start:int -> chunk:string -> receipt
(** Apply one shipped chunk of primary WAL bytes beginning at primary
    offset [start].  Chunks from a lower epoch are refused
    ([Stale_epoch] — the fencing check); a higher epoch is adopted
    durably first.  Overlap with already-held bytes is skipped
    (retries are idempotent); a chunk starting past the tail answers
    [Gap].  The append is fault-injected (site ["replica K wal
    append"]) — an injected crash tears the chunk's tail exactly like
    a crashed WAL flush. *)

val install_snapshot :
  t -> epoch:int -> db_image:string option -> wal_image:string ->
  snapshot_lsn:int -> unit
(** Full catch-up: replace the replica's database file with the shipped
    page image (remove it when the primary has none yet), replace its
    WAL with the shipped prefix, stamp epoch + snapshot watermark, and
    rebuild the redo state.  This is the page-ship path — used for
    fresh nodes, diverged nodes (a deposed primary rejoining), and
    chunks that contain a Checkpoint (whose redo-start contract needs
    the db image that accompanied it). *)

val durable_lsn : t -> int
(** Byte length of the verbatim WAL prefix this replica holds. *)

val epoch : t -> int
(** The node's durable fencing epoch. *)

val snapshot_lsn : t -> int
(** The watermark of the last installed db snapshot (0 when the node
    has only ever streamed the log). *)

val node_id : t -> int
(** The node's id within its group. *)

val path : t -> string
(** The node path (db file; WAL at [.wal], stamp at [.node]). *)

val state : t -> (string * int) list
(** The committed-visible KV state of the applied prefix, sorted,
    zero values omitted — directly comparable to
    {!Storage.Engine.items}. *)

val applied_commits : t -> int
(** Transactions applied by the redo loop since attach. *)
