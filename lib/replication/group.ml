(* The replication-group orchestrator.  The primary is an ordinary
   Storage.Engine; what this module adds is the shipping side: after
   every commit, read the durable WAL bytes each replica is missing
   straight from the log file and send them over Distributed.Net,
   stamped with the group epoch.  Replicas are byte-prefix copies, so
   "how far along is node k" is a single integer (its clean log
   length) and every protocol decision — quorum, catch-up, promotion —
   is a comparison of byte offsets.

   The checkpoint contract is the one subtlety.  ARIES redo starts at
   the last Checkpoint in the log, trusting that the pages it covers
   are on disk; a replica that holds the log bytes but not the pages
   would recover wrong state if promoted.  So any shipped chunk that
   carries a Checkpoint is followed by a page ship of the primary's
   database image, and failover refuses to promote a node whose
   snapshot watermark is behind its last shipped checkpoint. *)

module E = Storage.Engine
module Wal = Storage.Wal
module Fault = Storage.Fault
module Net = Distributed.Net
module Counter = Obs.Registry.Counter

type config = {
  msg_timeout : int;
  max_attempts : int;
  max_backoff : int;
  seed : int;
}

let default_config = { msg_timeout = 8; max_attempts = 6; max_backoff = 64; seed = 0 }

type outcome = Acked | Local_only

exception Fenced of int

type instruments = {
  m_commits : Counter.t;
  m_quorum : Counter.t;
  m_missed : Counter.t;
  m_ships : Counter.t;
  m_ship_bytes : Counter.t;
  m_snapshots : Counter.t;
  m_failovers : Counter.t;
  g_lag : Obs.Registry.Gauge.t;
}

type t = {
  base_path : string;
  nodes : int;
  sync : Repl_meta.sync_mode;
  fault : Fault.t;
  net : Net.t;
  metrics : Obs.Registry.t;
  trace : Obs.Trace.t;
  mutable engine : E.t;
  mutable primary_id : int;
  mutable epoch : int;
  replicas : (int, Replica.t) Hashtbl.t;
  acked : (int, int) Hashtbl.t;  (* node -> acked offset; -1 = diverged *)
  m : instruments;
  mutable fenced : int option;
}

(* --- file helpers (all read-only; shipping never holds the engine's
   descriptors) ------------------------------------------------------ *)

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  end

let read_span path ~from ~len =
  let ic = open_in_bin path in
  seek_in ic from;
  let s = really_input_string ic len in
  close_in ic;
  s

let primary_path t = Repl_meta.node_path t.base_path t.primary_id
let primary_wal t = E.wal_path (primary_path t)

let last_checkpoint entries =
  List.fold_left
    (fun acc { Wal.lsn; record } ->
      match record with Wal.Checkpoint -> Some lsn | _ -> acc)
    None entries

(* Is node k's log a verbatim prefix of the primary's durable log?
   Returns the prefix length, or -1 (diverged — only a snapshot can
   heal it). *)
let verify_prefix t r ~durable =
  let n = Replica.durable_lsn r in
  if n > durable then -1
  else if n = 0 then 0
  else
    let p = read_span (primary_wal t) ~from:0 ~len:n in
    let q = read_span (E.wal_path (Replica.path r)) ~from:0 ~len:n in
    if String.equal p q then n else -1

let make_instruments registry =
  let counter = Obs.Registry.counter registry in
  {
    m_commits =
      counter ~unit:"txns" ~help:"commits executed on the primary"
        "repl.commits";
    m_quorum =
      counter ~unit:"txns" ~help:"commits acknowledged by a quorum"
        "repl.quorum_acks";
    m_missed =
      counter ~unit:"txns" ~help:"commits that missed quorum (local only)"
        "repl.quorum_misses";
    m_ships =
      counter ~unit:"chunks" ~help:"WAL chunks shipped to replicas"
        "repl.ships";
    m_ship_bytes =
      counter ~unit:"bytes" ~help:"WAL bytes shipped to replicas"
        "repl.ship_bytes";
    m_snapshots =
      counter ~unit:"ships" ~help:"full snapshots (page image + log) shipped"
        "repl.snapshots";
    m_failovers =
      counter ~unit:"events" ~help:"failovers performed" "repl.failovers";
    g_lag =
      Obs.Registry.gauge registry ~unit:"bytes"
        ~help:"worst replica lag after the last ship" "repl.lag_bytes";
  }

(* --- shipping ------------------------------------------------------- *)

let exchange t ~reliable ~site handler =
  if reliable then Net.call t.net ~site handler
  else
    match Net.once t.net ~site handler with
    | Net.Reply x -> Ok x
    | Net.Lost { processed } -> Error processed

(* Full catch-up for a fresh or diverged node: the primary's page image
   plus its whole durable log, installed atomically on the replica. *)
let send_snapshot t ~reliable k r ~durable =
  Obs.Trace.with_span t.trace "repl.snapshot" (fun () ->
      let db_image = read_file (primary_path t) in
      let wal_image =
        if durable = 0 then "" else read_span (primary_wal t) ~from:0 ~len:durable
      in
      let epoch = t.epoch in
      match
        exchange t ~reliable
          ~site:(Printf.sprintf "snapshot replica %d" k)
          (fun () ->
            Replica.install_snapshot r ~epoch ~db_image ~wal_image
              ~snapshot_lsn:durable;
            durable)
      with
      | Ok n ->
          Counter.incr t.m.m_snapshots;
          Hashtbl.replace t.acked k n
      | Error _ -> Hashtbl.replace t.acked k (-1))

let ship_replica t ~reliable k ~durable =
  match Hashtbl.find_opt t.replicas k with
  | None -> ()
  | Some r ->
      let acked =
        match Hashtbl.find_opt t.acked k with Some a -> a | None -> 0
      in
      if acked < 0 then send_snapshot t ~reliable k r ~durable
      else
        let rec go from budget =
          if from >= durable || budget = 0 then Hashtbl.replace t.acked k from
          else begin
            let chunk = read_span (primary_wal t) ~from ~len:(durable - from) in
            let entries, _ = Wal.scan chunk in
            if last_checkpoint entries <> None then
              (* a Checkpoint may only travel with the page image its
                 redo-start contract assumes: take the snapshot path *)
              send_snapshot t ~reliable k r ~durable
            else begin
              Counter.incr t.m.m_ships;
              Counter.add t.m.m_ship_bytes (String.length chunk);
              let epoch = t.epoch in
              match
                exchange t ~reliable
                  ~site:(Printf.sprintf "ship replica %d" k)
                  (fun () -> Replica.receive r ~epoch ~start:from ~chunk)
              with
              | Ok (Replica.Acked n) ->
                  Hashtbl.replace t.acked k n;
                  if n < durable then go n (budget - 1)
              | Ok (Replica.Gap want) -> go want (budget - 1)
              | Ok Replica.Snapshot_needed ->
                  send_snapshot t ~reliable k r ~durable
              | Ok Replica.Stale_epoch ->
                  (* a newer epoch exists somewhere: we are deposed *)
                  t.fenced <- Some (Replica.epoch r)
              | Error _ -> ()  (* lost; the node lags until the next ship *)
            end
          end
        in
        go acked 4

let replica_ids t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.replicas [] |> List.sort compare

let update_lag t ~durable =
  let worst =
    List.fold_left
      (fun acc k ->
        let a =
          match Hashtbl.find_opt t.acked k with
          | Some a when a >= 0 -> a
          | _ -> 0
        in
        min acc a)
      durable (replica_ids t)
  in
  Obs.Registry.Gauge.set t.m.g_lag (durable - worst)

let ship_all t ~reliable ~durable =
  Obs.Trace.with_span t.trace "repl.ship" (fun () ->
      List.iter (fun k -> ship_replica t ~reliable k ~durable) (replica_ids t);
      update_lag t ~durable)

(* --- lifecycle ------------------------------------------------------ *)

let durable_now t = Wal.durable_lsn (E.wal t.engine)

let catch_up t =
  Obs.Trace.with_span t.trace "repl.catchup" (fun () ->
      ship_all t ~reliable:true ~durable:(durable_now t))

let open_group ?replicas ?sync ?(config = default_config) ?faults ?crash_after
    ?(metrics = Obs.Registry.noop) ?(trace = Obs.Trace.noop) base =
  let described = Repl_meta.load_group base in
  let nodes =
    match (described, replicas) with
    | Some g, Some r -> max g.Repl_meta.nodes (1 + r)
    | Some g, None -> g.Repl_meta.nodes
    | None, Some r -> 1 + r
    | None, None -> (
        match Repl_meta.discover base with
        | 0 | 1 ->
            invalid_arg
              "Group.open_group: no replica count given and no replica \
               files found"
        | n -> n)
  in
  if nodes < 2 then
    invalid_arg "Group.open_group: a replication group needs at least 2 nodes";
  let sync =
    match (sync, described) with
    | Some s, _ -> s
    | None, Some g -> g.Repl_meta.sync
    | None, None -> Repl_meta.Quorum
  in
  let epoch, primary_id =
    match described with
    | Some g -> (g.Repl_meta.epoch, g.Repl_meta.primary)
    | None -> (1, 0)
  in
  let fault = Fault.create () in
  (match faults with Some s -> Fault.configure fault s | None -> ());
  (match crash_after with Some n -> Fault.arm fault n | None -> ());
  Fault.set_metrics fault metrics;
  Repl_meta.save_group ~fault base
    { Repl_meta.epoch; primary = primary_id; nodes; sync };
  let net =
    Net.create ~prefix:"repl" ~metrics ~fault ~seed:config.seed
      {
        Net.msg_timeout = config.msg_timeout;
        max_attempts = config.max_attempts;
        max_backoff = config.max_backoff;
      }
  in
  let engine =
    E.open_db ~fault ~metrics ~trace (Repl_meta.node_path base primary_id)
  in
  let t =
    {
      base_path = base;
      nodes;
      sync;
      fault;
      net;
      metrics;
      trace;
      engine;
      primary_id;
      epoch;
      replicas = Hashtbl.create 4;
      acked = Hashtbl.create 4;
      m = make_instruments metrics;
      fenced = None;
    }
  in
  let durable = durable_now t in
  (* the primary's own files are self-consistent by construction; stamp
     its watermark so a later failover can judge it as a candidate *)
  Repl_meta.save_node ~fault (primary_path t) ~epoch ~snapshot_lsn:durable;
  for k = 0 to nodes - 1 do
    if k <> primary_id then begin
      let r =
        Replica.attach ~metrics ~fault ~node_id:k ~epoch
          (Repl_meta.node_path base k)
      in
      Hashtbl.replace t.replicas k r;
      Hashtbl.replace t.acked k (verify_prefix t r ~durable)
    end
  done;
  catch_up t;
  t

let close t =
  E.close t.engine;
  (* the shutdown checkpoint is on disk; ship the final tail (and the
     page images it implies) so surviving replicas end byte-identical *)
  let durable = (Wal.report_file (primary_wal t)).Wal.clean_bytes in
  Repl_meta.save_node ~fault:t.fault (primary_path t) ~epoch:t.epoch
    ~snapshot_lsn:durable;
  ship_all t ~reliable:true ~durable

let crash t = E.crash t.engine

(* --- the transactional facade -------------------------------------- *)

let check_fenced t =
  match t.fenced with Some e -> raise (Fenced e) | None -> ()

let begin_txn t =
  check_fenced t;
  E.begin_txn t.engine

let write t ~txn item v = E.write t.engine ~txn item v
let read t item = E.read t.engine item
let abort t ~txn = E.abort t.engine ~txn

let commit t ~txn =
  E.commit t.engine ~txn;
  Counter.incr t.m.m_commits;
  let durable = durable_now t in
  let reliable = t.sync = Repl_meta.Quorum in
  ship_all t ~reliable ~durable;
  match t.sync with
  | Repl_meta.Async -> Acked
  | Repl_meta.Quorum ->
      let replica_acks =
        Hashtbl.fold
          (fun _ a n -> if a >= durable then n + 1 else n)
          t.acked 0
      in
      (* the primary's own copy counts toward the majority — unless the
         ship just revealed a newer epoch, in which case this deposed
         primary must not promise anything *)
      if t.fenced = None && 2 * (replica_acks + 1) > t.nodes then begin
        Repl_meta.append_ack ~fault:t.fault t.base_path
          { Repl_meta.txn; lsn = durable; ack_epoch = t.epoch };
        Counter.incr t.m.m_quorum;
        Acked
      end
      else begin
        Counter.incr t.m.m_missed;
        Local_only
      end

(* --- failover ------------------------------------------------------- *)

(* Judge a node's files as a promotion candidate: its clean log length,
   and whether its snapshot watermark covers its last checkpoint (the
   redo-start contract; a node failing it would recover wrong state). *)
let judge_candidate path =
  let report = Wal.report_file (E.wal_path path) in
  let snap =
    match Repl_meta.load_node path with Some (_, s) -> s | None -> 0
  in
  let eligible =
    match last_checkpoint report.Wal.records with
    | None -> true
    | Some c -> snap >= c
  in
  (report.Wal.clean_bytes, eligible)

let failover t =
  Obs.Trace.with_span t.trace "repl.failover" (fun () ->
      E.crash t.engine;
      let old = t.primary_id in
      let candidates =
        List.filter (fun k -> k <> old) (List.init t.nodes (fun k -> k))
      in
      let best =
        List.fold_left
          (fun acc k ->
            let len, eligible =
              judge_candidate (Repl_meta.node_path t.base_path k)
            in
            match acc with
            | None -> Some (k, len, eligible)
            | Some (_, best_len, best_ok) ->
                (* longest eligible log wins; ties go to the lowest id;
                   an eligible node always beats an ineligible one *)
                if (eligible && not best_ok)
                   || (eligible = best_ok && len > best_len)
                then Some (k, len, eligible)
                else acc)
          None candidates
      in
      let winner =
        match best with
        | Some (k, _, _) -> k
        | None -> invalid_arg "Group.failover: no candidate node"
      in
      let epoch' = t.epoch + 1 in
      let win_path = Repl_meta.node_path t.base_path winner in
      Repl_meta.save_group ~fault:t.fault t.base_path
        { Repl_meta.epoch = epoch'; primary = winner; nodes = t.nodes;
          sync = t.sync };
      t.epoch <- epoch';
      t.primary_id <- winner;
      Hashtbl.remove t.replicas winner;
      Hashtbl.remove t.acked winner;
      t.engine <- E.open_db ~fault:t.fault ~metrics:t.metrics ~trace:t.trace win_path;
      let durable = durable_now t in
      Repl_meta.save_node ~fault:t.fault win_path ~epoch:epoch'
        ~snapshot_lsn:durable;
      Counter.incr t.m.m_failovers;
      (* the deposed primary rejoins as a (typically diverged) replica *)
      let r_old =
        Replica.attach ~metrics:t.metrics ~fault:t.fault ~node_id:old ~epoch:1
          (Repl_meta.node_path t.base_path old)
      in
      Hashtbl.replace t.replicas old r_old;
      Hashtbl.replace t.acked old (verify_prefix t r_old ~durable);
      (* surviving replicas held prefixes of the winner's log (the
         winner had the longest); re-anchor their watermarks *)
      List.iter
        (fun k ->
          if k <> old then
            match Hashtbl.find_opt t.replicas k with
            | Some r -> Hashtbl.replace t.acked k (verify_prefix t r ~durable)
            | None -> ())
        (replica_ids t);
      winner)

(* --- accessors ------------------------------------------------------ *)

let items t = E.items t.engine
let primary t = t.engine
let primary_id t = t.primary_id
let epoch t = t.epoch
let node_count t = t.nodes
let sync_mode t = t.sync
let replica t k = Hashtbl.find_opt t.replicas k

let lag t =
  let durable = durable_now t in
  List.fold_left
    (fun acc k ->
      let a =
        match Hashtbl.find_opt t.acked k with
        | Some a when a >= 0 -> a
        | _ -> 0
      in
      max acc (durable - a))
    0 (replica_ids t)

let fault t = t.fault
let net_ticks t = Net.ticks t.net
let base t = t.base_path
