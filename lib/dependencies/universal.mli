(** The universal relation interface — "universal relation assumptions"
    were one of relational theory's core PODS topics.

    Under the pure universal-relation assumption, a user queries
    attributes without naming relations; the system answers from the
    {e window} of the attribute set: the projection of the join of a
    minimal connected qualification — here the smallest subtree of the
    join tree covering the requested attributes, evaluated with
    Yannakakis' reducer. *)

exception Not_acyclic
(** The scheme has no join tree (GYO reduction leaves residue), so the
    universal-relation window is not defined here. *)

exception Not_connected of string
(** The requested attributes span disconnected parts of the scheme (their
    window would be a cross product; the interface refuses, as classical
    URA systems did). *)

exception Unknown_attribute of string

val qualification :
  Relational.Relation.t list -> Attrs.t -> Relational.Relation.t list
(** The relations of the minimal subtree covering the attributes. *)

val window : Relational.Relation.t list -> Attrs.t -> Relational.Relation.t
(** [window db attrs] = π_attrs(⋈ qualification), fully reduced. *)
