(** The chase: the workhorse proof procedure of dependency theory.

    A tableau is chased with FDs (equating symbols) and MVDs (adding
    rows); the procedure terminates because no new symbols are ever
    invented.  Its two classical applications are implemented:
    lossless-join testing for decompositions, and implication testing for
    FDs and MVDs. *)

(** Tableau entries. *)
type symbol =
  | Dist of string  (** distinguished variable a_A, one per attribute *)
  | Sub of int  (** subscripted (nondistinguished) variable b_i *)

type tableau = { universe : string list; rows : symbol array list }
(** Rows are laid out in the order of [universe]. *)

type dependency = Fd_dep of Fd.t | Mvd_dep of Mvd.t

val initial_tableau : universe:Attrs.t -> Attrs.t list -> tableau
(** One row per component of the decomposition: distinguished on the
    component's attributes, fresh subscripted symbols elsewhere. *)

val chase : tableau -> dependency list -> tableau
(** Chase to fixpoint.  FD steps equate (preferring distinguished symbols,
    then lower subscripts); MVD steps add the swapped rows. *)

val has_distinguished_row : tableau -> bool

val lossless_join : universe:Attrs.t -> Fd.t list -> Attrs.t list -> bool
(** The decomposition has a lossless join iff chasing its tableau with the
    FDs produces an all-distinguished row. *)

val lossless_join_mixed :
  universe:Attrs.t -> dependency list -> Attrs.t list -> bool

val implies_fd : universe:Attrs.t -> dependency list -> Fd.t -> bool
(** Chase-based implication test: start from two rows agreeing exactly on
    the LHS; the FD is implied iff the chase equates their RHS symbols.
    Agrees with {!Fd.implies} on pure-FD inputs (property-tested), and
    additionally handles MVDs in the antecedent. *)

val implies_mvd : universe:Attrs.t -> dependency list -> Mvd.t -> bool
(** Implied iff the chase of the two-row tableau produces the swapped
    row. *)

val to_string : tableau -> string
