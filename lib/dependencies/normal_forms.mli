(** Normal forms and decomposition: the algorithms inside the "more than
    twenty database design tools that do some form of normalization"
    ([BCN], quoted in §6).

    A relation scheme is a universe of attributes with a set of FDs; the
    checks report violations, and the two classical decompositions are
    provided: lossless BCNF decomposition and dependency-preserving 3NF
    synthesis. *)

type scheme = { name : string; attrs : Attrs.t; fds : Fd.t list }
(** A relation scheme: its attribute universe and the FDs that hold. *)

type violation = {
  fd : Fd.t;
  reason : string;  (** human-readable explanation *)
}
(** One normal-form violation: the offending dependency and why. *)

val is_2nf : scheme -> bool
val violations_2nf : scheme -> violation list
(** Partial dependencies: a nonprime attribute depending on a proper
    subset of a candidate key. *)

val is_3nf : scheme -> bool
val violations_3nf : scheme -> violation list
(** Nontrivial X → A with X not a superkey and A nonprime. *)

val is_bcnf : scheme -> bool
val violations_bcnf : scheme -> violation list
(** Nontrivial X → Y with X not a superkey. *)

val is_4nf : scheme -> Mvd.t list -> bool
(** Nontrivial MVDs (given explicitly plus those arising from the FDs)
    must have superkey left-hand sides. *)

val bcnf_decompose : scheme -> scheme list
(** Recursive split on BCNF violations.  Always lossless (by
    construction, property-tested via the chase); may lose
    dependencies. *)

val synthesize_3nf : scheme -> scheme list
(** Bernstein-style 3NF synthesis from a minimal cover.  Lossless and
    dependency-preserving (property-tested). *)

val dependency_preserving : scheme -> scheme list -> bool
(** Do the projections of the FDs onto the components imply all original
    FDs? *)

val lossless : scheme -> scheme list -> bool
(** Chase-based lossless-join test of a decomposition. *)

val scheme_to_string : scheme -> string
