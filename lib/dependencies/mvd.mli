(** Multivalued dependencies X →→ Y, the dependencies behind fourth normal
    form and the precursor of the join dependency. *)

type t = { lhs : Attrs.t; rhs : Attrs.t }

val make : Attrs.t -> Attrs.t -> t
(** [make lhs rhs] is the dependency lhs ->> rhs. *)

val of_string : string -> t
(** ["A ->> BC"]. *)

val to_string : t -> string
val equal : t -> t -> bool
(** Same lhs and rhs as attribute sets. *)

val is_trivial : t -> universe:Attrs.t -> bool
(** X →→ Y is trivial when Y ⊆ X or X ∪ Y = U. *)

val complement : t -> universe:Attrs.t -> t
(** X →→ Y entails X →→ U − X − Y. *)

val of_fd : Fd.t -> t
(** Every FD is an MVD. *)

val holds_in : Relational.Relation.t -> t -> bool
(** Direct check of the exchange property on an instance. *)

val fd_holds_in : Relational.Relation.t -> Fd.t -> bool
(** Instance-level FD check (two tuples agreeing on X agree on Y). *)
