(** Functional dependencies: Armstrong's axioms, attribute closure, keys,
    and minimal covers.

    The essay singles out normalization as a success of relational theory
    that "reached practice in the form of database design tools"; this
    module is the inference engine those tools are built on. *)

type t = { lhs : Attrs.t; rhs : Attrs.t }
(** The dependency X -> Y. *)

val make : Attrs.t -> Attrs.t -> t
(** [make lhs rhs] is the dependency lhs -> rhs. *)

val of_string : string -> t
(** ["AB -> C"] (also accepts ["AB->C"]). *)

val set_of_string : string -> t list
(** Semicolon- or newline-separated FDs. *)

val to_string : t -> string
val set_to_string : t list -> string
(** Semicolon-separated rendering, inverse of {!set_of_string}. *)

val equal : t -> t -> bool
(** Same lhs and rhs as attribute sets. *)

val is_trivial : t -> bool
(** rhs ⊆ lhs (Armstrong reflexivity gives exactly these). *)

(** Armstrong's axioms as explicit constructors — sound by construction,
    complete via {!implies} (property-tested against each other). *)

val reflexivity : Attrs.t -> Attrs.t -> t option
(** [reflexivity x y] is X → Y when Y ⊆ X. *)

val augmentation : t -> Attrs.t -> t
(** X → Y gives XZ → YZ. *)

val transitivity : t -> t -> t option
(** X → Y and Y → Z give X → Z (requires exact match of the middle). *)

val closure : Attrs.t -> t list -> Attrs.t
(** [closure x fds] is X⁺, the set of attributes determined by X. *)

val implies : t list -> t -> bool
(** [implies fds fd] decides F ⊨ X → Y via X⁺. *)

val equivalent_sets : t list -> t list -> bool

val is_superkey : Attrs.t -> universe:Attrs.t -> t list -> bool
(** X⁺ covers the universe. *)

val is_candidate_key : Attrs.t -> universe:Attrs.t -> t list -> bool
(** A superkey no proper subset of which is one. *)

val candidate_keys : universe:Attrs.t -> t list -> Attrs.t list
(** All candidate keys, smallest first.  Exponential in the number of
    attributes outside every key's mandatory core; fine for design-tool
    sized schemas. *)

val prime_attributes : universe:Attrs.t -> t list -> Attrs.t

val minimal_cover : t list -> t list
(** Canonical cover: singleton right-hand sides, no extraneous left-hand
    attributes, no redundant FDs.  Equivalent to the input
    (property-tested). *)

val project : t list -> onto:Attrs.t -> t list
(** Projection of F onto a sub-schema S: all X → X⁺∩S for X ⊆ S, returned
    as a minimal cover.  Exponential in |S| (inherently so). *)
