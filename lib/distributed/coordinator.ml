(* Two-phase commit with presumed abort over N Storage.Engine shards.

   The protocol, per multi-shard transaction:
     phase 1 — log Begin(participants) lazily, send PREPARE to each
       participant (Engine.prepare: force writes + Prepare record, keep
       locks), log each Vote.  Any no-vote or exhausted retry budget
       decides abort.
     phase 2 — on all-yes: append Decide(commit) and FLUSH (the commit
       point), then send COMMIT to each participant and log Forget once
       all acknowledge.  On abort: append Decide(abort) unforced
       (presumed abort) and send ABORTs.

   Single-participant transactions take the one-phase optimization: a
   single COMMIT message, no coordinator logging at all.

   A decision the coordinator could not deliver leaves the shard
   "stranded": prepared (or active), locks held, until a later [nudge]
   re-sends the decision — or until restart, when the termination
   protocol resolves every in-doubt prepared transaction against the
   coordinator log: a surviving Decide(commit) is completed by
   appending a Commit record to the shard's WAL before the engine
   opens; anything else is presumed aborted and undone by ordinary
   restart recovery.

   Soundness under the crash budget rests on prefix durability: the
   participant's Prepare is flushed before its yes-vote is sent, and
   every durable I/O in the process is sequenced, so a surviving
   coordinator Decide implies every participant's Prepare survived. *)

module Engine = Storage.Engine
module Wal = Storage.Wal
module Fault = Storage.Fault

type config = {
  msg_timeout : int;
  max_attempts : int;
  max_backoff : int;
  seed : int;
}

let default_config =
  { msg_timeout = 8; max_attempts = 6; max_backoff = 64; seed = 0 }

type outcome = Committed | Aborted of string

type metrics = {
  m_begins : Obs.Registry.Counter.t;
  m_commits : Obs.Registry.Counter.t;
  m_aborts : Obs.Registry.Counter.t;
  m_onephase : Obs.Registry.Counter.t;
  m_prepares : Obs.Registry.Counter.t;
  m_stranded : Obs.Registry.Counter.t;
  m_resolved : Obs.Registry.Counter.t;
}

let make_metrics registry =
  let counter = Obs.Registry.counter registry in
  {
    m_begins =
      counter ~unit:"txns" ~help:"distributed transactions begun" "2pc.begins";
    m_commits =
      counter ~unit:"txns" ~help:"transactions decided commit" "2pc.commits";
    m_aborts =
      counter ~unit:"txns" ~help:"transactions decided abort" "2pc.aborts";
    m_onephase =
      counter ~unit:"txns"
        ~help:"single-shard transactions committed without the protocol"
        "2pc.onephase";
    m_prepares =
      counter ~unit:"msgs" ~help:"PREPARE exchanges answered yes"
        "2pc.prepares";
    m_stranded =
      counter ~unit:"txns"
        ~help:"decisions that could not be delivered to every shard"
        "2pc.stranded";
    m_resolved =
      counter ~unit:"txns"
        ~help:"in-doubt prepared transactions resolved at restart"
        "2pc.resolved";
  }

type t = {
  base : string;
  config : config;
  shards : Engine.t array;
  log : Coord_log.t;
  net : Net.t;
  fault : Fault.t;
  trace : Obs.Trace.t;
  m : metrics;
  active : (int, int list ref) Hashtbl.t;
      (* txn -> participant shards, newest-touched first *)
  stranded : (int, Coord_log.decision * int list ref) Hashtbl.t;
      (* txn -> (decision, shards it still has not reached) *)
  mutable next_txn : int;
  mutable degraded : bool;  (* the coordinator log became unflushable *)
  resolved_commit : int;
  resolved_abort : int;
}

(* --- file layout --------------------------------------------------------- *)

let shard_path base k = Printf.sprintf "%s.shard%d" base k
let coord_path base = base ^ ".2pc"

let discover base =
  let rec count k = if Sys.file_exists (shard_path base k) then count (k + 1) else k in
  count 0

(* --- the termination protocol -------------------------------------------- *)

let really_write fd s pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

(* Complete decided-commit transactions on a shard whose engine is not
   open: truncate the WAL's torn tail once (appending after damage
   would read as mid-log corruption), then append and fsync a Commit
   frame per transaction.  The engine's own restart recovery then sees
   ordinary winners.  One call per shard — truncating anew for each
   transaction would chop off the commits appended just before.
   Idempotent: a crash mid-append leaves a prefix of whole frames (the
   torn one is the new tail, re-resolved next time). *)
let append_commits_offline fault wal_file clean txns ~site =
  let fd = Unix.openfile wal_file [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd clean;
      ignore (Unix.lseek fd clean Unix.SEEK_SET : int);
      let frames =
        String.concat ""
          (List.map (fun txn -> Wal.frame_of_record (Wal.Commit txn)) txns)
      in
      let len = String.length frames in
      Fault.io fault ~at:site ~on_crash:(fun () ->
          really_write fd frames 0 (len / 2));
      really_write fd frames 0 len;
      let rec fsync n =
        if Fault.transient fault ~at:site then
          if n >= 8 then begin
            Unix.ftruncate fd clean;
            raise (Fault.Io_error site)
          end
          else fsync (n + 1)
        else Unix.fsync fd
      in
      fsync 0)

(* In-doubt transactions on one shard log: prepared and still live. *)
let in_doubt_txns records =
  let live = Hashtbl.create 8 in
  let prepared = Hashtbl.create 8 in
  List.iter
    (fun record ->
      match record with
      | Wal.Begin t -> Hashtbl.replace live t ()
      | Wal.Prepare t -> if Hashtbl.mem live t then Hashtbl.replace prepared t ()
      | Wal.Commit t | Wal.Abort t ->
          Hashtbl.remove live t;
          Hashtbl.remove prepared t
      | Wal.Write _ | Wal.Checkpoint -> ())
    records;
  Hashtbl.fold (fun t () acc -> t :: acc) prepared [] |> List.sort Int.compare

(* Resolve every shard's in-doubt prepared transactions against the
   coordinator log, before any engine opens.  Returns (commits, aborts)
   resolved. *)
let resolve_in_doubt fault base n coord_entries =
  let decision = Hashtbl.create 8 in
  List.iter
    (fun { Coord_log.record; _ } ->
      match record with
      | Coord_log.Decide { txn; decision = d } ->
          if not (Hashtbl.mem decision txn) then Hashtbl.replace decision txn d
      | _ -> ())
    coord_entries;
  let commits = ref 0 and aborts = ref 0 in
  for k = 0 to n - 1 do
    let wal_file = Engine.wal_path (shard_path base k) in
    let report = Wal.report_file wal_file in
    let records = List.map (fun e -> e.Wal.record) report.Wal.records in
    let to_complete =
      List.filter
        (fun txn ->
          match Hashtbl.find_opt decision txn with
          | Some Coord_log.Commit -> true
          | Some Coord_log.Abort | None ->
              (* presumed abort: restart recovery undoes the loser *)
              incr aborts;
              false)
        (in_doubt_txns records)
    in
    if to_complete <> [] then begin
      append_commits_offline fault wal_file report.Wal.clean_bytes to_complete
        ~site:(Printf.sprintf "shard %d resolve" k);
      commits := !commits + List.length to_complete
    end
  done;
  (!commits, !aborts)

(* --- open / close -------------------------------------------------------- *)

let max_txn_of_coord entries =
  List.fold_left
    (fun m { Coord_log.record; _ } ->
      match record with
      | Coord_log.Begin { txn; _ }
      | Coord_log.Vote { txn; _ }
      | Coord_log.Decide { txn; _ }
      | Coord_log.Forget txn -> max m txn)
    0 entries

let max_txn_of_shard base k =
  List.fold_left
    (fun m { Wal.record; _ } ->
      match record with
      | Wal.Begin x | Wal.Commit x | Wal.Abort x | Wal.Prepare x -> max m x
      | Wal.Write { txn; _ } -> max m txn
      | Wal.Checkpoint -> m)
    0
    (Wal.read_entries (Engine.wal_path (shard_path base k)))

let open_dist ?shards ?(config = default_config) ?faults ?crash_after
    ?(metrics = Obs.Registry.noop) ?(trace = Obs.Trace.noop) base =
  let n =
    match shards with
    | Some n ->
        if n <= 0 then invalid_arg "Coordinator.open_dist: shards must be positive";
        n
    | None -> (
        match discover base with
        | 0 ->
            invalid_arg
              (Printf.sprintf
                 "Coordinator.open_dist: no shard files at %s; pass ~shards"
                 base)
        | n -> n)
  in
  let fault = Fault.create () in
  Fault.set_metrics fault metrics;
  (match faults with Some spec -> Fault.configure fault spec | None -> ());
  (match crash_after with Some b -> Fault.arm fault b | None -> ());
  let m = make_metrics metrics in
  let coord_entries = Coord_log.read_file (coord_path base) in
  (* the termination protocol runs before any engine opens, so each
     engine's restart recovery already sees the completed commits *)
  let resolved_commit, resolved_abort =
    Obs.Trace.with_span trace "2pc.resolve" (fun () ->
        resolve_in_doubt fault base n coord_entries)
  in
  Obs.Registry.Counter.add m.m_resolved (resolved_commit + resolved_abort);
  let next_txn =
    let mt = ref (max_txn_of_coord coord_entries) in
    for k = 0 to n - 1 do
      mt := max !mt (max_txn_of_shard base k)
    done;
    !mt + 1
  in
  let shards = Array.make n None in
  (try
     for k = 0 to n - 1 do
       shards.(k) <- Some (Engine.open_db ~fault ~metrics ~trace (shard_path base k))
     done
   with e ->
     Array.iter (function Some eng -> Engine.crash eng | None -> ()) shards;
     raise e);
  let shards = Array.map Option.get shards in
  let log, _ =
    try Coord_log.open_log ~fault (coord_path base)
    with e ->
      Array.iter Engine.crash shards;
      raise e
  in
  let net =
    Net.create ~metrics ~fault ~seed:config.seed
      {
        Net.msg_timeout = config.msg_timeout;
        max_attempts = config.max_attempts;
        max_backoff = config.max_backoff;
      }
  in
  {
    base;
    config;
    shards;
    log;
    net;
    fault;
    trace;
    m;
    active = Hashtbl.create 16;
    stranded = Hashtbl.create 8;
    next_txn;
    degraded = false;
    resolved_commit;
    resolved_abort;
  }

let crash t =
  Coord_log.abandon t.log;
  Array.iter Engine.crash t.shards

let close t =
  (if not t.degraded then
     try Coord_log.close t.log
     with Fault.Io_error _ ->
       t.degraded <- true;
       Coord_log.abandon t.log
   else Coord_log.abandon t.log);
  let err = ref None in
  Array.iter
    (fun eng ->
      match Engine.close eng with
      | () -> ()
      | exception e ->
          Engine.crash eng;
          if !err = None then err := Some e)
    t.shards;
  match !err with Some e -> raise e | None -> ()

(* --- accessors ----------------------------------------------------------- *)

let shard_count t = Array.length t.shards
let shard t k = t.shards.(k)
let fault t = t.fault
let net_ticks t = Net.ticks t.net
let resolved t = (t.resolved_commit, t.resolved_abort)
let coordinator_degraded t = t.degraded

let degraded t =
  t.degraded || Array.exists Engine.read_only t.shards

let stranded_txns t =
  Hashtbl.fold (fun txn _ acc -> txn :: acc) t.stranded [] |> List.sort Int.compare

let is_stranded t txn = Hashtbl.mem t.stranded txn

let items t =
  Array.to_list t.shards
  |> List.concat_map Engine.items
  |> List.sort compare

let recoveries t =
  Array.to_list t.shards |> List.map Engine.last_recovery

(* --- the transaction API ------------------------------------------------- *)

let participants t txn =
  match Hashtbl.find_opt t.active txn with
  | Some parts -> parts
  | None -> raise (Engine.No_such_transaction txn)

let begin_txn t =
  if t.degraded then raise (Engine.Read_only "coordinator log unflushable");
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.active id (ref []);
  Obs.Registry.Counter.incr t.m.m_begins;
  id

let route t item = Router.shard_of ~shards:(Array.length t.shards) item

let write t ~txn item value =
  let parts = participants t txn in
  let k = route t item in
  if not (List.mem k !parts) then begin
    ignore (Engine.begin_txn ~id:txn t.shards.(k) : int);
    parts := k :: !parts
  end;
  Engine.write t.shards.(k) ~txn item value

let read t item = Engine.read t.shards.(route t item) item

let strand t txn decision lost =
  Hashtbl.replace t.stranded txn (decision, ref lost);
  Obs.Registry.Counter.incr t.m.m_stranded

(* Deliver the abort decision to each participant.  Engine.abort works
   even on a degraded shard (best-effort CLRs), so the only way to miss
   a shard is message loss. *)
let deliver_aborts t ~txn parts =
  let lost =
    List.filter
      (fun k ->
        let handler () =
          try Engine.abort t.shards.(k) ~txn
          with Engine.No_such_transaction _ -> ()
        in
        match
          Net.call t.net ~site:(Printf.sprintf "abort shard %d" k) handler
        with
        | Ok () -> false
        | Error _ -> true)
      parts
  in
  if lost <> [] then strand t txn Coord_log.Abort lost

(* Deliver the commit decision.  Only a [Reply] acknowledges: a lost
   exchange whose handler did run has still committed the shard, but
   the coordinator cannot know, so the shard stays formally stranded
   until a nudge gets a reply through (the re-sent COMMIT lands on
   [No_such_transaction] and acknowledges trivially). *)
let deliver_commits t ~txn parts =
  let lost =
    List.filter
      (fun k ->
        let handler () =
          try
            Engine.commit t.shards.(k) ~txn;
            true
          with
          | Engine.No_such_transaction _ -> true
          | Engine.Read_only _ ->
              (* the shard cannot flush its Commit: in doubt locally,
                 completed by the termination protocol at restart *)
              false
        in
        match
          Net.call t.net ~site:(Printf.sprintf "commit shard %d" k) handler
        with
        | Ok true -> false
        | Ok false | Error _ -> true)
      parts
  in
  if lost = [] then begin
    if not t.degraded then Coord_log.append t.log (Coord_log.Forget txn)
  end
  else strand t txn Coord_log.Commit lost

let abort t ~txn =
  let parts = List.rev !(participants t txn) in
  Hashtbl.remove t.active txn;
  Obs.Registry.Counter.incr t.m.m_aborts;
  if parts <> [] && not t.degraded then
    Coord_log.append t.log (Coord_log.Decide { txn; decision = Coord_log.Abort });
  deliver_aborts t ~txn parts

(* The one-phase optimization: a single participant needs no protocol,
   just its own commit point. *)
let commit_one_phase t ~txn k =
  Obs.Registry.Counter.incr t.m.m_onephase;
  let handler () =
    try
      Engine.commit t.shards.(k) ~txn;
      `Ok
    with
    | Engine.No_such_transaction _ -> `Ok
    | Engine.Read_only _ -> `In_doubt
  in
  match Net.call t.net ~site:(Printf.sprintf "commit shard %d" k) handler with
  | Ok `Ok -> Committed
  | Ok `In_doubt ->
      (* no durable Commit, no coordinator Decide: a presumed-abort
         loser at restart *)
      Aborted (Printf.sprintf "shard %d degraded at commit" k)
  | Error processed_any ->
      if processed_any then
        (* the COMMIT reached the shard; only the reply was lost *)
        Committed
      else begin
        (* never delivered: abort the shard's half unilaterally *)
        strand t txn Coord_log.Abort [ k ];
        Aborted (Printf.sprintf "commit message to shard %d lost" k)
      end

let commit_two_phase t ~txn parts =
  Coord_log.append t.log (Coord_log.Begin { txn; shards = parts });
  (* phase 1: PREPARE everyone, collect votes *)
  let veto = ref None in
  Obs.Trace.with_span t.trace
    ~args:[ ("txn", string_of_int txn) ]
    "2pc.prepare"
    (fun () ->
      List.iter
        (fun k ->
          if !veto = None then
            let handler () =
              try
                Engine.prepare t.shards.(k) ~txn;
                true
              with Engine.Read_only _ -> false
            in
            match
              Net.call t.net
                ~site:(Printf.sprintf "prepare shard %d" k)
                handler
            with
            | Ok yes ->
                Coord_log.append t.log (Coord_log.Vote { txn; shard = k; yes });
                if yes then Obs.Registry.Counter.incr t.m.m_prepares
                else veto := Some (Printf.sprintf "shard %d voted no" k)
            | Error _ ->
                Coord_log.append t.log
                  (Coord_log.Vote { txn; shard = k; yes = false });
                veto :=
                  Some (Printf.sprintf "prepare for shard %d timed out" k))
        parts);
  (* phase 2: decide, force the commit point, deliver *)
  Obs.Trace.with_span t.trace
    ~args:
      [
        ("txn", string_of_int txn);
        ("decision", match !veto with None -> "commit" | Some _ -> "abort");
      ]
    "2pc.decide"
    (fun () ->
      match !veto with
      | None -> (
          Coord_log.append t.log
            (Coord_log.Decide { txn; decision = Coord_log.Commit });
          match Coord_log.flush t.log with
          | () ->
              Obs.Registry.Counter.incr t.m.m_commits;
              deliver_commits t ~txn parts;
              Committed
          | exception Fault.Io_error site ->
              (* the decision never became durable (the unsynced suffix
                 was truncated away), and no COMMIT has been sent: abort
                 is still sound, and the coordinator degrades *)
              t.degraded <- true;
              Obs.Registry.Counter.incr t.m.m_aborts;
              deliver_aborts t ~txn parts;
              Aborted (Printf.sprintf "coordinator log unflushable at %s" site))
      | Some reason ->
          if not t.degraded then
            Coord_log.append t.log
              (Coord_log.Decide { txn; decision = Coord_log.Abort });
          Obs.Registry.Counter.incr t.m.m_aborts;
          deliver_aborts t ~txn parts;
          Aborted reason)

let commit t ~txn =
  let parts = List.rev !(participants t txn) in
  Hashtbl.remove t.active txn;
  match parts with
  | [] ->
      (* read-only: nothing to make durable anywhere *)
      Obs.Registry.Counter.incr t.m.m_onephase;
      Committed
  | [ k ] -> commit_one_phase t ~txn k
  | parts ->
      if t.degraded then begin
        Obs.Registry.Counter.incr t.m.m_aborts;
        deliver_aborts t ~txn parts;
        Aborted "coordinator log unflushable"
      end
      else commit_two_phase t ~txn parts

(* Re-deliver stranded decisions, one cheap attempt per shard.  A
   commit whose earlier delivery actually ran lands on
   [No_such_transaction], which acknowledges it. *)
let nudge t =
  let finished = ref [] in
  Hashtbl.iter
    (fun txn (decision, ks) ->
      ks :=
        List.filter
          (fun k ->
            let site, handler =
              match decision with
              | Coord_log.Commit ->
                  ( Printf.sprintf "commit shard %d" k,
                    fun () ->
                      try
                        Engine.commit t.shards.(k) ~txn;
                        true
                      with
                      | Engine.No_such_transaction _ -> true
                      | Engine.Read_only _ -> false )
              | Coord_log.Abort ->
                  ( Printf.sprintf "abort shard %d" k,
                    fun () ->
                      (try Engine.abort t.shards.(k) ~txn
                       with Engine.No_such_transaction _ -> ());
                      true )
            in
            match Net.once t.net ~site handler with
            | Net.Reply true -> false
            | Net.Reply false | Net.Lost _ -> true)
          !ks;
      if !ks = [] then finished := (txn, decision) :: !finished)
    t.stranded;
  List.iter
    (fun (txn, decision) ->
      Hashtbl.remove t.stranded txn;
      if decision = Coord_log.Commit && not t.degraded then
        Coord_log.append t.log (Coord_log.Forget txn))
    !finished

(* --- the model check ----------------------------------------------------- *)

(* Expected state: Recovery.committed_state over the concatenated shard
   model logs plus a synthetic Commit for every transaction whose
   coordinator Decide(commit) survived but whose Commit record has not
   reached any shard log yet — the 2PC commit point made explicit.  The
   termination protocol appends exactly those Commits at the next open,
   so the reopened union must match. *)
let model_divergence ~path =
  let n = discover path in
  if n = 0 then invalid_arg "Coordinator.model_divergence: no shard files";
  let coord_entries = Coord_log.read_file (coord_path path) in
  let decided_commit =
    List.filter_map
      (fun { Coord_log.record; _ } ->
        match record with
        | Coord_log.Decide { txn; decision = Coord_log.Commit } -> Some txn
        | _ -> None)
      coord_entries
    |> List.sort_uniq Int.compare
  in
  let shard_records =
    List.init n (fun k ->
        List.map
          (fun e -> e.Wal.record)
          (Wal.read_entries (Engine.wal_path (shard_path path k))))
  in
  let all = List.concat shard_records in
  let committed_already =
    List.filter_map (function Wal.Commit x -> Some x | _ -> None) all
  in
  let synthetic =
    List.filter (fun x -> not (List.mem x committed_already)) decided_commit
    |> List.map (fun x -> Transactions.Recovery.Commit x)
  in
  let expected =
    Transactions.Recovery.committed_state (Wal.to_model all @ synthetic)
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.sort compare
  in
  let c = open_dist ~shards:n path in
  let actual = items c in
  close c;
  if expected = actual then None else Some (expected, actual)
