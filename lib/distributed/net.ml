(* The simulated message layer between coordinator and shards.  A
   "message" is a named exchange: the sender proposes a site (e.g.
   ["prepare shard 0"]), the fault injector draws what the link does,
   and on delivery the receiver's handler runs in-process.

   Fault semantics, per attempt:
     - drop — the request is lost; the handler never runs.
     - part — the link is partitioned and one direction (drawn by coin
       flip) carries the loss: either the request is lost, or the
       handler runs and the response is lost.  The sender cannot tell
       which, which is the whole difficulty of atomic commit.
     - delay — delivery is late by a drawn number of ticks; past the
       sender's timeout the handler still runs but the response is
       discarded (an exchange indistinguishable from a lost response).

   Lost exchanges are retried with the executor's policy: bounded
   exponential backoff with seeded jitter.  Handlers therefore MUST be
   idempotent — a retry may re-run a handler whose response was lost.
   Time is a virtual tick count; delays and backoff only advance it. *)

module Fault = Storage.Fault

type config = {
  msg_timeout : int;  (* ticks before one attempt is given up *)
  max_attempts : int;  (* send attempts per exchange *)
  max_backoff : int;  (* cap on the backoff window, in ticks *)
}

type t = {
  fault : Fault.t;
  config : config;
  rng : Support.Rng.t;
  mutable ticks : int;
  m_msgs : Obs.Registry.Counter.t;
  m_retries : Obs.Registry.Counter.t;
  m_lost : Obs.Registry.Counter.t;
  h_backoff : Obs.Histogram.t;
}

type 'a reply = Reply of 'a | Lost of { processed : bool }

let create ?(metrics = Obs.Registry.noop) ?(prefix = "2pc") ~fault ~seed config =
  let counter = Obs.Registry.counter metrics in
  let name suffix = prefix ^ "." ^ suffix in
  {
    fault;
    config;
    rng = Support.Rng.create seed;
    ticks = 0;
    m_msgs =
      counter ~unit:"msgs" ~help:"message exchanges attempted" (name "msgs");
    m_retries =
      counter ~unit:"msgs" ~help:"message attempts retried after a loss"
        (name "msg_retries");
    m_lost =
      counter ~unit:"msgs"
        ~help:"exchanges lost (dropped, partitioned, or over-delayed)"
        (name "msg_lost");
    h_backoff =
      Obs.Registry.histogram metrics ~unit:"ticks"
        ~help:"backoff drawn per message retry" (name "backoff_ticks");
  }

let ticks t = t.ticks

let lost t ~processed =
  (* the sender waited its timeout out before giving up on the reply *)
  t.ticks <- t.ticks + t.config.msg_timeout;
  Obs.Registry.Counter.incr t.m_lost;
  Lost { processed }

(* One attempt: draw the link's behaviour, maybe run the handler. *)
let once t ~site handler =
  Obs.Registry.Counter.incr t.m_msgs;
  if Fault.partitioned t.fault ~at:site then
    if Fault.flip_coin t.fault then lost t ~processed:false
    else begin
      let (_ : 'a) = handler () in
      lost t ~processed:true
    end
  else if Fault.dropped t.fault ~at:site then lost t ~processed:false
  else
    match
      Fault.delay_ticks t.fault ~at:site ~max:(2 * t.config.msg_timeout)
    with
    | Some d when d > t.config.msg_timeout ->
        (* late: the receiver acted, but the sender already gave up *)
        let (_ : 'a) = handler () in
        lost t ~processed:true
    | Some d ->
        t.ticks <- t.ticks + d;
        Reply (handler ())
    | None ->
        t.ticks <- t.ticks + 1;
        Reply (handler ())

(* The full exchange: retry lost attempts with bounded exponential
   backoff + seeded jitter (the executor's policy). *)
let call t ~site handler =
  let rec go attempt processed_any =
    match once t ~site handler with
    | Reply x -> Ok x
    | Lost { processed } ->
        let processed_any = processed_any || processed in
        if attempt >= t.config.max_attempts then Error processed_any
        else begin
          Obs.Registry.Counter.incr t.m_retries;
          let window = min t.config.max_backoff (1 lsl min 6 attempt) in
          let delay = 1 + Support.Rng.int t.rng window in
          Obs.Histogram.observe t.h_backoff delay;
          t.ticks <- t.ticks + delay;
          go (attempt + 1) processed_any
        end
  in
  go 1 false
