(* Hash partitioning: FNV-1a over the item name, reduced mod the shard
   count.  Stable across runs and processes — the same item always lands
   on the same shard, which is what lets restart recovery re-route a
   surviving workload without a placement catalog. *)

let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193

let hash item =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime land 0xFFFFFFFF)
    item;
  !h

let shard_of ~shards item =
  if shards <= 0 then invalid_arg "Router.shard_of: shard count must be positive";
  hash item mod shards
