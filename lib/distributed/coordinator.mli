(** Two-phase commit with presumed abort over N {!Storage.Engine}
    shards, one per [base.shardK] database file, with a dedicated
    coordinator log at [base.2pc] (see {!Coord_log}).

    Items are hash-partitioned by {!Router}; a transaction's
    participants are the shards its writes touched.  Single-shard
    transactions commit one-phase; multi-shard transactions run
    PREPARE/VOTE/DECIDE over the {!Net} message layer, whose drop /
    delay / partition faults come from the shared {!Storage.Fault}
    injector — the same injector every shard engine and the
    coordinator log draw their disk faults and crash budget from, so
    "crash at the N-th durable I/O anywhere" is one budget.

    Opening runs the {e termination protocol} before any engine:
    every shard transaction left prepared is resolved against the
    coordinator log — a surviving Decide(commit) is completed by
    appending a Commit record to the shard WAL offline; anything else
    is presumed aborted and undone by the engine's ordinary restart
    recovery. *)

(** The commit protocol's retry policy: message timeout, attempt
    budget, backoff cap, and the jitter seed. *)
type config = {
  msg_timeout : int;  (** ticks before one message attempt is abandoned *)
  max_attempts : int;  (** send attempts per exchange *)
  max_backoff : int;  (** backoff window cap, in ticks *)
  seed : int;  (** jitter RNG seed *)
}

val default_config : config
(** [msg_timeout = 8; max_attempts = 6; max_backoff = 64; seed = 0]. *)

(** What {!commit} decided.  [Aborted] carries the reason (a no-vote,
    a lost message, a degraded log). *)
type outcome = Committed | Aborted of string

type t
(** An open sharded database: N engines, the coordinator log, the
    message layer, and the in-flight transaction table. *)

val open_dist :
  ?shards:int -> ?config:config -> ?faults:Storage.Fault.spec ->
  ?crash_after:int -> ?metrics:Obs.Registry.t -> ?trace:Obs.Trace.t ->
  string -> t
(** Open (creating if needed) the sharded database rooted at [base].
    [shards] defaults to probing which [base.shardK] files exist;
    raises [Invalid_argument] when none do and [shards] was not given.
    Runs the termination protocol, then opens every shard engine
    (restart recovery included) under one shared fault injector.
    [crash_after] overrides the spec's crash budget, as in
    {!Storage.Engine.open_db}.  Registers the [2pc.*] instruments on
    [metrics]; records [2pc.prepare]/[2pc.decide]/[2pc.resolve] spans
    on [trace]. *)

val close : t -> unit
(** Flush the coordinator log, then close every shard engine. *)

val crash : t -> unit
(** Abandon everything without flushing — the process dying. *)

val shard_path : string -> int -> string
(** [shard_path base k] is [base.shardK] (its WAL at [.shardK.wal]). *)

val coord_path : string -> string
(** [coord_path base] is [base.2pc]. *)

val discover : string -> int
(** How many consecutive [base.shardK] files exist, from [k = 0]. *)

val begin_txn : t -> int
(** Start a distributed transaction (a globally fresh id); shards
    learn of it lazily, at the first write routed to them.  Raises
    {!Storage.Engine.Read_only} when the coordinator log has
    degraded. *)

val write : t -> txn:int -> string -> int -> unit
(** Route the write to its shard (enlisting the shard as a participant
    on first touch).  Raises what {!Storage.Engine.write} raises —
    notably {!Storage.Engine.Locked} when the item is held by a
    transaction whose decision is still stranded. *)

val read : t -> string -> int
(** Route the read to its shard. *)

val commit : t -> txn:int -> outcome
(** Run the commit protocol: one-phase for a single participant,
    PREPARE/VOTE/DECIDE for several.  [Committed] is durable (the
    coordinator's Decide(commit) — or the single shard's Commit — is
    forced); [Aborted] means every shard's half is undone, is being
    undone, or will be presumed aborted at restart. *)

val abort : t -> txn:int -> unit
(** Deliver an abort decision to every participant (the workload's
    voluntary rollback / the executor's victim restart). *)

val nudge : t -> unit
(** Re-send stranded decisions, one cheap attempt per waiting shard.
    Shards acknowledge a re-sent COMMIT that already applied via
    [No_such_transaction], which is what lets the coordinator log
    Forget. *)

val stranded_txns : t -> int list
(** Transactions whose decision has not reached every shard, sorted.
    Their shard-side locks (and the executor's top-level locks) stay
    held. *)

val is_stranded : t -> int -> bool
(** Is this transaction's decision still undelivered somewhere? *)

val items : t -> (string * int) list
(** The union of every shard's committed-visible state, sorted (shard
    item spaces are disjoint by routing). *)

val shard_count : t -> int
(** N. *)

val shard : t -> int -> Storage.Engine.t
(** Direct access to one shard's engine (tests, status reporting). *)

val fault : t -> Storage.Fault.t
(** The shared injector. *)

val net_ticks : t -> int
(** Virtual time the message layer consumed. *)

val resolved : t -> int * int
(** (commits completed, presumed aborts) the termination protocol
    resolved at open. *)

val recoveries : t -> Storage.Recovery.outcome option list
(** Each shard's restart-recovery outcome from this open, in shard
    order. *)

val degraded : t -> bool
(** Has the coordinator log or any shard degraded to read-only? *)

val coordinator_degraded : t -> bool
(** Has the coordinator log itself degraded? *)

val model_divergence : path:string -> ((string * int) list * (string * int) list) option
(** The distributed atomicity check.  Expected state is
    {!Transactions.Recovery.committed_state} over the concatenation of
    every shard's model log, plus a synthetic Commit for each
    transaction whose coordinator Decide(commit) survived without a
    shard Commit record — the 2PC commit point made explicit (such a
    transaction {e is} committed even if no COMMIT message ever
    arrived; the termination protocol completes it).  Actual state is
    the union of shard states after a faultless reopen (termination
    protocol + restart recovery).  [None] when they agree, [Some
    (expected, actual)] otherwise.  Guaranteed to be [None] under
    pure crash/message faults; probabilistic disk corruption can lose
    decided history, which {!Analysis.Commit_lint} flags instead. *)
