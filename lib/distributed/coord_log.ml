(* The coordinator's write-ahead log: 2PC protocol records in the same
   CRC frames as Storage.Wal (u32 crc | u32 len | payload), with its own
   payload codec.  Presumed abort dictates the force discipline:

     - only Decide(commit) must be forced before any COMMIT message goes
       out (the commit point);
     - Begin/Vote records ride along in the same flush — prefix
       durability of the frame stream means a surviving Decide implies
       its earlier Votes survived too;
     - Decide(abort) and Forget need never be forced: a transaction the
       log says nothing about is presumed aborted.

   An injected crash during flush leaves a torn prefix, exactly as the
   storage WAL does, and the tolerant scan stops there. *)

module Wal = Storage.Wal
module Fault = Storage.Fault

type decision = Commit | Abort

type record =
  | Begin of { txn : int; shards : int list }
  | Vote of { txn : int; shard : int; yes : bool }
  | Decide of { txn : int; decision : decision }
  | Forget of int

type entry = { off : int; record : record }

exception Corrupt of string

(* --- codec: u8 kind (1 begin, 2 vote, 3 decide, 4 forget) --------------- *)

let payload_of_record r =
  let buf = Buffer.create 16 in
  (match r with
  | Begin { txn; shards } ->
      Buffer.add_uint8 buf 1;
      Buffer.add_int32_le buf (Int32.of_int txn);
      if List.length shards > 0xffff then invalid_arg "Coord_log: too many shards";
      Buffer.add_uint16_le buf (List.length shards);
      List.iter (fun k -> Buffer.add_uint16_le buf k) shards
  | Vote { txn; shard; yes } ->
      Buffer.add_uint8 buf 2;
      Buffer.add_int32_le buf (Int32.of_int txn);
      Buffer.add_uint16_le buf shard;
      Buffer.add_uint8 buf (if yes then 1 else 0)
  | Decide { txn; decision } ->
      Buffer.add_uint8 buf 3;
      Buffer.add_int32_le buf (Int32.of_int txn);
      Buffer.add_uint8 buf (match decision with Commit -> 1 | Abort -> 0)
  | Forget txn ->
      Buffer.add_uint8 buf 4;
      Buffer.add_int32_le buf (Int32.of_int txn));
  Buffer.contents buf

let record_of_payload s =
  let pos = ref 0 in
  let u8 () =
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    let v = String.get_uint16_le s !pos in
    pos := !pos + 2;
    v
  in
  let u32 () =
    let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  try
    match u8 () with
    | 1 ->
        let txn = u32 () in
        let n = u16 () in
        Begin { txn; shards = List.init n (fun _ -> u16 ()) }
    | 2 ->
        let txn = u32 () in
        let shard = u16 () in
        Vote { txn; shard; yes = u8 () = 1 }
    | 3 ->
        let txn = u32 () in
        Decide { txn; decision = (if u8 () = 1 then Commit else Abort) }
    | 4 -> Forget (u32 ())
    | k -> raise (Corrupt (Printf.sprintf "unknown coordinator record kind %d" k))
  with Invalid_argument _ -> raise (Corrupt "truncated coordinator record")

let decision_to_string = function Commit -> "commit" | Abort -> "abort"

let record_to_string = function
  | Begin { txn; shards } ->
      Printf.sprintf "begin(%d, shards=[%s])" txn
        (String.concat "," (List.map string_of_int shards))
  | Vote { txn; shard; yes } ->
      Printf.sprintf "vote(%d, shard %d, %s)" txn shard (if yes then "yes" else "no")
  | Decide { txn; decision } ->
      Printf.sprintf "decide(%d, %s)" txn (decision_to_string decision)
  | Forget txn -> Printf.sprintf "forget(%d)" txn

(* Decode the tolerant frame scan, stopping at the first payload the
   codec rejects — damage past the valid prefix is a torn tail. *)
let entries_of_frames frames =
  let rec go acc = function
    | [] -> List.rev acc
    | (off, payload) :: rest -> (
        match record_of_payload payload with
        | record -> go ({ off; record } :: acc) rest
        | exception Corrupt _ -> List.rev acc)
  in
  go [] frames

let read_file path = entries_of_frames (fst (Wal.frames_of_file path))

(* --- the log file, mirroring Storage.Wal's flush discipline -------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  fault : Fault.t;
  pending : Buffer.t;
  mutable durable : int;
}

let max_retries = 8

let really_write fd s pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

let open_log ?(fault = Fault.create ()) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let frames, clean = Wal.frames_of_file path in
  let entries = entries_of_frames frames in
  (* like the storage WAL: the clean prefix ends at the last frame whose
     payload decodes, so appends resume on a frame boundary *)
  let clean =
    match List.rev entries with
    | [] -> if entries = [] && frames <> [] then 0 else clean
    | { off; record } :: _ ->
        if List.length entries = List.length frames then clean
        else off + 8 + String.length (payload_of_record record)
  in
  if clean < (Unix.fstat fd).Unix.st_size then Unix.ftruncate fd clean;
  ignore (Unix.lseek fd clean Unix.SEEK_SET : int);
  ({ path; fd; fault; pending = Buffer.create 256; durable = clean }, entries)

let append t record = Buffer.add_string t.pending (Wal.frame (payload_of_record record))

let flush t =
  if Buffer.length t.pending > 0 then begin
    let data = Buffer.contents t.pending and len = Buffer.length t.pending in
    Fault.io t.fault ~at:"coord flush" ~on_crash:(fun () ->
        (* the torn tail: half the pending bytes reach the platter *)
        really_write t.fd data 0 (len / 2));
    really_write t.fd data 0 len;
    (let rec fsync n =
       if Fault.transient t.fault ~at:"coord fsync" then
         if n >= max_retries then begin
           (* fsyncgate: written-but-unsynced bytes are lost, not merely
              unconfirmed — truncate back so they cannot resurface *)
           Unix.ftruncate t.fd t.durable;
           ignore (Unix.lseek t.fd t.durable Unix.SEEK_SET : int);
           raise (Fault.Io_error "coord fsync")
         end
         else fsync (n + 1)
       else Unix.fsync t.fd
     in
     fsync 0);
    t.durable <- t.durable + len;
    Buffer.clear t.pending
  end

let close t =
  flush t;
  Unix.close t.fd

let abandon t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let durable_bytes t = t.durable
let path t = t.path
