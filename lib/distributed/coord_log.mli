(** The coordinator's write-ahead log: 2PC protocol records in
    {!Storage.Wal}'s CRC frames, with a presumed-abort force
    discipline — only [Decide Commit] must be flushed (the commit
    point); abort decisions and [Forget] records never are, because a
    transaction the log says nothing about is presumed aborted. *)

(** The coordinator's verdict on a transaction. *)
type decision = Commit | Abort

(** The protocol records.  [Begin] names the participant shards (logged
    lazily, when the commit protocol starts); [Vote] records each
    shard's answer to PREPARE; [Decide] is the verdict; [Forget] marks
    that every participant acknowledged the decision, so the
    termination protocol need not consider the transaction again. *)
type record =
  | Begin of { txn : int; shards : int list }
  | Vote of { txn : int; shard : int; yes : bool }
  | Decide of { txn : int; decision : decision }
  | Forget of int

type entry = { off : int; record : record }
(** A scanned record with its byte offset in the file. *)

exception Corrupt of string
(** A structurally impossible payload (the tolerant scans stop at
    damage instead of raising). *)

type t
(** An open coordinator log: descriptor, pending buffer, durable
    watermark. *)

val open_log : ?fault:Storage.Fault.t -> string -> t * entry list
(** Open (creating if needed), scan tolerantly, truncate any torn
    tail, and return the surviving entries oldest-first.  [fault] is
    consulted at ["coord flush"]/["coord fsync"] — sharing the shards'
    injector puts the coordinator's I/O under the same crash budget. *)

val append : t -> record -> unit
(** Buffer a record; not durable until {!flush}. *)

val flush : t -> unit
(** Write + fsync everything pending.  An injected crash tears the
    pending bytes' tail; transient fsync faults are retried with a
    bounded budget before escaping as {!Storage.Fault.Io_error}, after
    which the unsynced bytes are truncated away (they are lost, not
    merely unconfirmed) and the coordinator must degrade. *)

val close : t -> unit
(** Flush whatever is pending, then close the descriptor. *)

val abandon : t -> unit
(** Close without flushing — pending records are lost, as in a crash. *)

val read_file : string -> entry list
(** Read-only tolerant scan (the termination protocol's and the
    commit lint's view).  A missing file yields []. *)

val durable_bytes : t -> int
(** Bytes made durable so far. *)

val path : t -> string
(** The log file path. *)

val decision_to_string : decision -> string
(** ["commit"] / ["abort"]. *)

val record_to_string : record -> string
(** One-line rendering for diagnostics and tests. *)
