(** Hash partitioning of items across shards.

    The placement function is pure and stable (FNV-1a mod N), so there
    is no placement catalog to recover: any process that knows the
    shard count can re-derive where every item lives. *)

val hash : string -> int
(** 32-bit FNV-1a of the item name (exposed for tests). *)

val shard_of : shards:int -> string -> int
(** Which shard owns this item, in [0 .. shards-1].  Raises
    [Invalid_argument] when [shards <= 0]. *)
