(** The distributed workload driver: {!Storage.Executor}'s round-robin
    SS2PL scheduler re-targeted at a {!Coordinator}.

    One top-level {!Storage.Lock_manager} serializes the global item
    space; commit runs the 2PC protocol and can come back
    [Aborted] — a decided abort restarts the slot with the same
    bounded-exponential-backoff policy as a deadlock victim.  A
    transaction whose decision is stranded keeps its top-level locks
    until a nudge delivers the decision to every shard. *)

(** The scheduler's knobs, mirroring {!Storage.Executor.config}. *)
type config = {
  max_steps : int;  (** scheduler-step bound (total partitions stall) *)
  max_backoff : int;  (** backoff window cap, in rounds *)
  lock_timeout : int option;  (** lock-wait timeout, in ticks *)
  seed : int;  (** jitter RNG seed *)
}

val default_config : config
(** [max_steps = 200_000; max_backoff = 64; lock_timeout = None;
    seed = 0]. *)

type stats = {
  committed : int;  (** programs that reached [Committed] *)
  restarts : int;  (** victim aborts + decided-abort retries *)
  deadlocks : int;  (** restarts from waits-for cycles *)
  timeouts : int;  (** restarts from lock-wait timeouts *)
  commit_aborts : int;  (** 2PC decided aborts (lost messages, vetos) *)
  steps : int;  (** scheduler steps taken *)
  wasted_ops : int;  (** operations re-executed after restarts *)
  stranded : int;  (** decisions still undelivered at the end *)
  resolved : int;  (** in-doubt txns the opening recovery resolved *)
  degraded : bool;  (** coordinator log or some shard went read-only *)
  crashed : Storage.Fault.crash_info option;
      (** where the injected crash fired, if one did *)
}

val throughput : stats -> float
(** Commits per scheduler step. *)

val run :
  ?config:config -> Coordinator.t ->
  Transactions.Schedule.action list array -> stats
(** Drive one program per slot to completion (or crash, degradation,
    or the step bound).  An injected {!Storage.Fault.Crash} abandons
    the coordinator and every shard, exactly as the process dying
    would; the on-disk state is whatever the WALs got to. *)
