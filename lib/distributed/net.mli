(** The simulated message layer between the 2PC coordinator and its
    shards: per-exchange fault draws (drop / delay / partition, see
    {!Storage.Fault}), per-message timeouts, and retries with bounded
    exponential backoff + seeded jitter.

    Handlers run in-process on delivery and MUST be idempotent — a
    retry may re-run a handler whose response was lost.  Time is a
    virtual tick count. *)

(** Per-exchange retry policy. *)
type config = {
  msg_timeout : int;  (** ticks before one attempt is given up *)
  max_attempts : int;  (** send attempts per exchange *)
  max_backoff : int;  (** cap on the backoff window, in ticks *)
}

type t
(** A message channel: fault injector, retry policy, jitter RNG, and
    the [2pc.msgs]/[2pc.msg_retries]/[2pc.msg_lost]/[2pc.backoff_ticks]
    instruments. *)

(** What one exchange came back with.  [Lost {processed}] means no
    reply arrived; [processed] tells whether the handler nevertheless
    ran (partition on the response path, or an over-delayed reply) —
    information a real sender would not have, exposed so callers can
    account strandedness precisely. *)
type 'a reply = Reply of 'a | Lost of { processed : bool }

val create :
  ?metrics:Obs.Registry.t -> ?prefix:string -> fault:Storage.Fault.t ->
  seed:int -> config -> t
(** A channel drawing its faults from [fault] and its backoff jitter
    from a fresh RNG seeded with [seed].  [prefix] names the channel's
    instruments ([<prefix>.msgs] etc.); it defaults to ["2pc"], and the
    replication layer passes ["repl"] so the two message planes stay
    separately observable. *)

val once : t -> site:string -> (unit -> 'a) -> 'a reply
(** One send attempt, no retries — the coordinator's cheap re-delivery
    nudge for stranded decisions. *)

val call : t -> site:string -> (unit -> 'a) -> ('a, bool) result
(** The full exchange with retries.  [Error processed_any] after the
    attempt budget: [processed_any] is true when at least one attempt
    reached the handler (so the receiver may have acted). *)

val ticks : t -> int
(** Virtual time consumed so far (delays, timeouts, backoff). *)
