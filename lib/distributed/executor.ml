(* The distributed workload driver: Storage.Executor's round-robin
   SS2PL scheduler, re-targeted at a Coordinator.  One top-level lock
   manager serializes the whole item space (items are globally named,
   so cross-shard conflicts are real conflicts); commit goes through
   the 2PC protocol and can therefore come back [Aborted] — a decided
   abort restarts the slot like a deadlock victim would.

   Stranded decisions interact with strictness: a transaction whose
   decision has not reached every shard keeps its top-level locks (the
   ISSUE's "prepared states held under the existing lock manager"), so
   no later transaction can touch its items until a [nudge] delivers
   the decision.  The scheduler nudges once per round and releases
   deferred locks as transactions unstrand. *)

module Schedule = Transactions.Schedule
module Engine = Storage.Engine
module Fault = Storage.Fault
module Lock_manager = Storage.Lock_manager

type config = {
  max_steps : int;
  max_backoff : int;
  lock_timeout : int option;
  seed : int;
}

let default_config =
  { max_steps = 200_000; max_backoff = 64; lock_timeout = None; seed = 0 }

type stats = {
  committed : int;
  restarts : int;
  deadlocks : int;
  timeouts : int;
  commit_aborts : int;  (* 2PC decided abort; the slot retried *)
  steps : int;
  wasted_ops : int;
  stranded : int;  (* decisions still undelivered when the run ended *)
  resolved : int;  (* in-doubt txns resolved by the opening recovery *)
  degraded : bool;
  crashed : Fault.crash_info option;
}

let throughput stats =
  if stats.steps = 0 then 0.
  else float_of_int stats.committed /. float_of_int stats.steps

type slot = {
  base : int;
  program : Schedule.action array;
  mutable txn : int option;
  mutable incarnation : int;
  mutable pc : int;
  mutable finished : bool;
  mutable delay : int;
}

let run ?(config = default_config) coord specs =
  let rng = Support.Rng.create config.seed in
  let metrics = Engine.metrics (Coordinator.shard coord 0) in
  let counter = Obs.Registry.counter metrics in
  let m_steps =
    counter ~unit:"attempts" ~help:"operation attempts (scheduler steps)"
      "exec.steps"
  in
  let m_restarts =
    counter ~unit:"restarts" ~help:"victim aborts (deadlock + timeout)"
      "exec.restarts"
  in
  let m_deadlocks =
    counter ~unit:"restarts" ~help:"restarts caused by waits-for cycles"
      "exec.deadlocks"
  in
  let m_timeouts =
    counter ~unit:"restarts" ~help:"restarts caused by lock-wait timeout"
      "exec.timeouts"
  in
  let m_wasted =
    counter ~unit:"ops" ~help:"operations re-executed after restarts"
      "exec.wasted_ops"
  in
  let m_backoff =
    Obs.Registry.histogram metrics ~unit:"rounds"
      ~help:"backoff drawn per restart" "exec.backoff_rounds"
  in
  let slots =
    Array.mapi
      (fun i spec ->
        {
          base = i;
          program = Array.of_list spec;
          txn = None;
          incarnation = 0;
          pc = 0;
          finished = false;
          delay = 0;
        })
      specs
  in
  let by_txn = Hashtbl.create 16 in
  let age txn =
    match Hashtbl.find_opt by_txn txn with
    | Some s -> (s.incarnation, s.base)
    | None -> (0, txn)
  in
  let lm =
    Lock_manager.create ?timeout:config.lock_timeout
      ~victim_pref:(Storage.Executor.victim_pref ~age)
      ~metrics ()
  in
  let steps = ref 0 in
  let restarts = ref 0 in
  let deadlocks = ref 0 in
  let timeouts = ref 0 in
  let commit_aborts = ref 0 in
  let wasted = ref 0 in
  let committed = ref 0 in
  let stopped = ref false in
  let next_value = ref 0 in
  (* txns whose decision is stranded: their top-level locks are released
     only once every shard has the decision *)
  let deferred = ref [] in
  let release_when_unstranded txn =
    if Coordinator.is_stranded coord txn then deferred := txn :: !deferred
    else Lock_manager.release_all lm ~txn
  in
  let drain_deferred () =
    deferred :=
      List.filter
        (fun txn ->
          if Coordinator.is_stranded coord txn then true
          else begin
            Lock_manager.release_all lm ~txn;
            false
          end)
        !deferred
  in
  let ensure_started slot =
    match slot.txn with
    | Some id -> id
    | None ->
        let id = Coordinator.begin_txn coord in
        slot.txn <- Some id;
        Hashtbl.replace by_txn id slot;
        id
  in
  let retire slot id =
    release_when_unstranded id;
    Hashtbl.remove by_txn id;
    slot.txn <- None
  in
  let backoff slot =
    slot.pc <- 0;
    slot.incarnation <- slot.incarnation + 1;
    let window = min config.max_backoff (1 lsl min 6 slot.incarnation) in
    slot.delay <- 1 + Support.Rng.int rng window;
    Obs.Histogram.observe m_backoff slot.delay
  in
  let restart slot why =
    (match slot.txn with
    | Some id ->
        Coordinator.abort coord ~txn:id;
        retire slot id
    | None -> ());
    incr restarts;
    Obs.Registry.Counter.incr m_restarts;
    (match why with
    | `Deadlock ->
        incr deadlocks;
        Obs.Registry.Counter.incr m_deadlocks
    | `Timeout ->
        incr timeouts;
        Obs.Registry.Counter.incr m_timeouts);
    wasted := !wasted + slot.pc;
    Obs.Registry.Counter.add m_wasted slot.pc;
    backoff slot
  in
  let restart_txn victim why =
    match Hashtbl.find_opt by_txn victim with
    | Some slot -> restart slot why
    | None -> ()
  in
  let commit_slot slot id =
    match Coordinator.commit coord ~txn:id with
    | Coordinator.Committed ->
        retire slot id;
        slot.finished <- true;
        incr committed
    | Coordinator.Aborted _ ->
        (* a decided abort: the work is undone (or stranded pending an
           undo); retry the whole program after backoff *)
        incr commit_aborts;
        incr restarts;
        Obs.Registry.Counter.incr m_restarts;
        wasted := !wasted + slot.pc;
        Obs.Registry.Counter.add m_wasted slot.pc;
        retire slot id;
        backoff slot
    | exception Engine.Read_only _ -> stopped := true
  in
  let attempt slot =
    incr steps;
    Obs.Registry.Counter.incr m_steps;
    let id = ensure_started slot in
    if slot.pc >= Array.length slot.program then commit_slot slot id
    else
      match slot.program.(slot.pc) with
      | Schedule.Commit -> commit_slot slot id
      | Schedule.Abort ->
          Coordinator.abort coord ~txn:id;
          retire slot id;
          slot.finished <- true
      | (Schedule.Read item | Schedule.Write item) as op -> (
          let mode =
            match op with
            | Schedule.Read _ -> Lock_manager.Shared
            | _ -> Lock_manager.Exclusive
          in
          match Lock_manager.acquire lm ~txn:id ~item mode with
          | Lock_manager.Granted -> (
              match
                match op with
                | Schedule.Read _ -> ignore (Coordinator.read coord item : int)
                | _ ->
                    incr next_value;
                    Coordinator.write coord ~txn:id item !next_value
              with
              | () -> slot.pc <- slot.pc + 1
              | exception Engine.Locked _ ->
                  (* the shard-level lock belongs to a stranded txn the
                     top-level manager no longer tracks: nudge and retry *)
                  Coordinator.nudge coord)
          | Lock_manager.Blocked -> ()
          | Lock_manager.Deadlock { victim; _ } -> restart_txn victim `Deadlock)
  in
  let all_done () = Array.for_all (fun s -> s.finished) slots in
  (try
     while (not (all_done ())) && (not !stopped) && !steps < config.max_steps do
       Array.iter
         (fun slot ->
           if (not slot.finished) && not !stopped then
             if slot.delay > 0 then slot.delay <- slot.delay - 1
             else
               try attempt slot with Engine.Read_only _ -> stopped := true)
         slots;
       if not !stopped then begin
         Coordinator.nudge coord;
         drain_deferred ();
         List.iter (fun txn -> restart_txn txn `Timeout) (Lock_manager.tick lm)
       end
     done;
     (* give undelivered decisions a final chance before the run ends *)
     if not !stopped then begin
       Coordinator.nudge coord;
       drain_deferred ()
     end
   with Fault.Crash _ -> Coordinator.crash coord);
  let resolved_commit, resolved_abort = Coordinator.resolved coord in
  {
    committed = !committed;
    restarts = !restarts;
    deadlocks = !deadlocks;
    timeouts = !timeouts;
    commit_aborts = !commit_aborts;
    steps = !steps;
    wasted_ops = !wasted;
    stranded = List.length (Coordinator.stranded_txns coord);
    resolved = resolved_commit + resolved_abort;
    degraded = Coordinator.degraded coord;
    crashed = Fault.crashed_at (Coordinator.fault coord);
  }
