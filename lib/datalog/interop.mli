(** Bridge between the untyped Datalog fact stores and the typed
    relational model, so Datalog programs can run over relational
    instances and their answers flow back into the algebra. *)

val facts_of_database : Relational.Database.t -> Facts.t
(** Every relation becomes a predicate of the same name. *)

val relation_of_tuples :
  Facts.Tuple_set.t -> columns:string list -> Relational.Relation.t
(** Builds a typed relation from a tuple set, inferring each column's type
    from the first tuple.  Raises [Invalid_argument] on an empty set with
    no way to infer types, or on heterogeneous columns. *)

val cq_of_algebra :
  Relational.Algebra.catalog ->
  Relational.Algebra.t ->
  Containment.cq option
(** Conjunctive queries correspond to select-project-join algebra; returns
    [None] for expressions outside that fragment (union, difference,
    negation, division, non-equality selections). *)

(** The richer translation behind the semantic lint and the plan
    certifier.  [Spj] carries the body atoms plus the binding of each
    output attribute to its term; non-equality comparisons ride along as
    pseudo-atoms over the reserved predicates [$lt]/[$le]/[$ne]
    (normalized orientation), uninterpreted by the homomorphism test —
    which keeps every containment verdict sound, if conservative.
    [Spj_empty] is a query provably empty on every instance (conflicting
    constants); [Spj_outside] is one outside the select-project-join-
    rename fragment, with the offending operator named. *)
type spj =
  | Spj of { body : Ast.atom list; binding : (string * Ast.term) list }
  | Spj_empty of string
  | Spj_outside of string

val spj_of_algebra : Relational.Algebra.catalog -> Relational.Algebra.t -> spj
(** Unlike {!cq_of_algebra} this supports [Singleton], distinguishes
    provably-empty from non-conjunctive, and admits non-equality
    selections (as pseudo-atoms).  May raise the catalog's exception on
    unknown relations — type-check first. *)

val is_comparison_atom : Ast.atom -> bool
(** Whether an atom is one of the comparison pseudo-atoms. *)

val comparison_contradiction : Ast.atom list -> string option
(** The first comparison pseudo-atom that is unsatisfiable on its own
    (both sides constant and false, or a strict/inequality comparison of
    a term with itself), rendered for a diagnostic. *)

val canonical_cq :
  (string * Ast.term) list -> Ast.atom list -> Containment.cq
(** [canonical_cq binding body] builds a CQ whose head lists the bound
    terms in sorted attribute-name order — the canonical form that makes
    two SPJ expressions comparable even after rewrites permute their
    output columns. *)

val saturate : Containment.cq -> Containment.cq
(** Close the comparison pseudo-atoms under the implications the
    homomorphism test cannot see ([x < y] entails [x <= y] and [x <> y];
    [<>] is symmetric), deduplicating.  Saturating both sides before a
    containment check avoids refuting rewrites that only weaken a strict
    bound into an implied non-strict one. *)

val algebra_of_cq :
  Relational.Algebra.catalog ->
  out:(string * Ast.term) list ->
  Ast.atom list ->
  Relational.Algebra.t option
(** Back-translation for chase-based join elimination: realize a CQ body
    (relation atoms plus comparison pseudo-atoms) with output attributes
    [out] (in order) as rename→product→select→rename→project.  [None]
    when the body cannot be realized — e.g. an output attribute whose
    term has no remaining dedicated column (the algebra cannot duplicate
    a column), or a variable living only in comparisons. *)
