module R = Relational

let facts_of_database db =
  R.Database.fold
    (fun name rel acc ->
      Facts.set acc name (R.Relation.tuples rel))
    db Facts.empty

let relation_of_tuples tuples ~columns =
  match Facts.Tuple_set.choose_opt tuples with
  | None ->
      invalid_arg
        "relation_of_tuples: cannot infer column types from an empty set"
  | Some witness ->
      if Array.length witness <> List.length columns then
        invalid_arg "relation_of_tuples: column count mismatch";
      let schema =
        R.Schema.make
          (List.mapi
             (fun i name -> (name, R.Value.type_of witness.(i)))
             columns)
      in
      R.Relation.of_tuples schema (Facts.Tuple_set.elements tuples)

(* Select-project-join expressions with equality-only predicates map to
   conjunctive queries; we translate by threading a variable environment
   per attribute. *)
let cq_of_algebra catalog expr =
  let module A = R.Algebra in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "V%d" !counter
  in
  (* returns (atoms, binding of output attribute -> term) *)
  let rec go expr =
    match expr with
    | A.Rel name ->
        let attrs = R.Schema.attributes (catalog name) in
        let binding = List.map (fun a -> (a, Ast.Var (fresh ()))) attrs in
        Some ([ Ast.atom name (List.map snd binding) ], binding)
    | A.Project (attrs, e) ->
        Option.map
          (fun (atoms, binding) ->
            (atoms, List.filter (fun (a, _) -> List.mem a attrs) binding))
          (go e)
    | A.Rename (mapping, e) ->
        Option.map
          (fun (atoms, binding) ->
            ( atoms,
              List.map
                (fun (a, t) ->
                  match List.assoc_opt a mapping with
                  | Some b -> (b, t)
                  | None -> (a, t))
                binding ))
          (go e)
    | A.Select (p, e) -> (
        match go e with
        | None -> None
        | Some (atoms, binding) ->
            (* only conjunctions of equalities stay conjunctive *)
            let rec conj = function
              | A.True -> Some []
              | A.And (a, b) -> (
                  match (conj a, conj b) with
                  | Some xs, Some ys -> Some (xs @ ys)
                  | _ -> None)
              | A.Cmp (A.Eq, l, r) -> Some [ (l, r) ]
              | A.Cmp _ | A.Or _ | A.Not _ | A.False -> None
            in
            (match conj p with
            | None -> None
            | Some eqs ->
                (* each equality merges terms: substitute one side by the
                   other throughout atoms and binding *)
                let term_of = function
                  | A.Attr a -> List.assoc_opt a binding
                  | A.Const c -> Some (Ast.Const c)
                in
                let substitute from_ to_ (atoms, binding) =
                  let fix t = if t = from_ then to_ else t in
                  ( List.map
                      (fun at -> { at with Ast.args = List.map fix at.Ast.args })
                      atoms,
                    List.map (fun (a, t) -> (a, fix t)) binding )
                in
                let rec apply eqs acc =
                  match (eqs, acc) with
                  | [], _ -> Some acc
                  | (l, r) :: rest, (atoms, binding) -> (
                      match (term_of l, term_of r) with
                      | Some tl, Some tr -> (
                          match (tl, tr) with
                          | Ast.Const a, Ast.Const b ->
                              if R.Value.equal a b then apply rest acc else None
                          | Ast.Var _, _ ->
                              apply rest (substitute tl tr (atoms, binding))
                          | _, Ast.Var _ ->
                              apply rest (substitute tr tl (atoms, binding))
                          )
                      | _ -> None)
                in
                (* re-resolve term_of after each substitution by rebuilding
                   bindings: handled by substitute over binding *)
                apply eqs (atoms, binding)))
    | A.Product (a, b) | A.Join (a, b) -> (
        match (go a, go b) with
        | Some (atoms_a, bind_a), Some (atoms_b, bind_b) ->
            (* natural join: shared attributes are equated *)
            let shared =
              List.filter (fun (attr, _) -> List.mem_assoc attr bind_a) bind_b
            in
            let merged = ref (atoms_a @ atoms_b, bind_a @ bind_b) in
            let ok =
              List.for_all
                (fun (attr, tb) ->
                  let ta = List.assoc attr bind_a in
                  match (ta, tb) with
                  | Ast.Const a, Ast.Const b -> R.Value.equal a b
                  | Ast.Var _, t ->
                      let atoms, binding = !merged in
                      let fix x = if x = ta then t else x in
                      merged :=
                        ( List.map
                            (fun at ->
                              { at with Ast.args = List.map fix at.Ast.args })
                            atoms,
                          List.map (fun (a, x) -> (a, fix x)) binding );
                      true
                  | t, Ast.Var _ ->
                      let atoms, binding = !merged in
                      let fix x = if x = tb then t else x in
                      merged :=
                        ( List.map
                            (fun at ->
                              { at with Ast.args = List.map fix at.Ast.args })
                            atoms,
                          List.map (fun (a, x) -> (a, fix x)) binding );
                      true)
                shared
            in
            if ok then begin
              let atoms, binding = !merged in
              (* deduplicate binding entries by attribute (shared attrs
                 appear twice with now-equal terms) *)
              let seen = Hashtbl.create 8 in
              let binding =
                List.filter
                  (fun (a, _) ->
                    if Hashtbl.mem seen a then false
                    else begin
                      Hashtbl.add seen a ();
                      true
                    end)
                  binding
              in
              Some (atoms, binding)
            end
            else None
        | _ -> None)
    | A.Singleton _ | A.Union _ | A.Inter _ | A.Diff _ | A.Divide _ -> None
  in
  match go expr with
  | None -> None
  | Some (atoms, binding) ->
      let attrs = R.Schema.attributes (R.Algebra.schema_of catalog expr) in
      let head = List.map (fun a -> List.assoc a binding) attrs in
      Some { Containment.head; body = atoms }

(* --- the richer SPJ translation behind the semantic analyses ------------- *)

(* Non-equality comparisons ride along as pseudo-atoms over reserved
   predicates, normalized to < / <= / <> with Gt/Ge flipped.  They are
   uninterpreted by the homomorphism test, which keeps every containment
   verdict sound (if conservative). *)
let pseudo_lt = "$lt"
let pseudo_le = "$le"
let pseudo_ne = "$ne"

let is_comparison_atom a =
  String.length a.Ast.pred > 0 && a.Ast.pred.[0] = '$'

(* Truth of a comparison atom decidable without an instance: both sides
   constant, or literally the same term. *)
let comparison_truth pred tl tr =
  match (tl, tr) with
  | Ast.Const a, Ast.Const b ->
      let c = R.Value.compare a b in
      if pred = pseudo_lt then Some (c < 0)
      else if pred = pseudo_le then Some (c <= 0)
      else if pred = pseudo_ne then Some (c <> 0)
      else None
  | _ -> if tl = tr then Some (pred = pseudo_le) else None

let comparison_contradiction atoms =
  List.find_map
    (fun a ->
      match a.Ast.args with
      | [ x; y ] when is_comparison_atom a -> (
          match comparison_truth a.Ast.pred x y with
          | Some false -> Some (Ast.atom_to_string a)
          | _ -> None)
      | _ -> None)
    atoms

type spj =
  | Spj of { body : Ast.atom list; binding : (string * Ast.term) list }
  | Spj_empty of string
  | Spj_outside of string

exception Spj_empty_exn of string
exception Spj_outside_exn of string

let spj_of_algebra catalog expr =
  let module A = R.Algebra in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "V%d" !counter
  in
  let subst from_ to_ (atoms, binding) =
    let fix t = if t = from_ then to_ else t in
    ( List.map (fun at -> { at with Ast.args = List.map fix at.Ast.args }) atoms,
      List.map (fun (a, t) -> (a, fix t)) binding )
  in
  let add_cmp pred tl tr (atoms, binding) =
    match comparison_truth pred tl tr with
    | Some true -> (atoms, binding)
    | Some false ->
        raise
          (Spj_empty_exn
             (Printf.sprintf "comparison %s is never satisfied"
                (Ast.atom_to_string (Ast.atom pred [ tl; tr ]))))
    | None -> (atoms @ [ Ast.atom pred [ tl; tr ] ], binding)
  in
  let rec go expr =
    match expr with
    | A.Rel name ->
        let attrs = R.Schema.attributes (catalog name) in
        let binding = List.map (fun a -> (a, Ast.Var (fresh ()))) attrs in
        ([ Ast.atom name (List.map snd binding) ], binding)
    | A.Singleton bindings ->
        ([], List.map (fun (a, v) -> (a, Ast.Const v)) bindings)
    | A.Project (attrs, e) ->
        let atoms, binding = go e in
        (atoms, List.filter (fun (a, _) -> List.mem a attrs) binding)
    | A.Rename (mapping, e) ->
        let atoms, binding = go e in
        ( atoms,
          List.map
            (fun (a, t) ->
              match List.assoc_opt a mapping with
              | Some b -> (b, t)
              | None -> (a, t))
            binding )
    | A.Select (p, e) ->
        let acc = go e in
        let rec literals = function
          | A.True -> []
          | A.False ->
              raise (Spj_empty_exn "selection predicate is the constant false")
          | A.And (a, b) -> literals a @ literals b
          | A.Cmp (c, l, r) -> [ (c, l, r) ]
          | A.Or _ -> raise (Spj_outside_exn "disjunctive selection")
          | A.Not _ -> raise (Spj_outside_exn "negated selection")
        in
        List.fold_left
          (fun (atoms, binding) (c, l, r) ->
            let term_of = function
              | A.Attr a -> (
                  match List.assoc_opt a binding with
                  | Some t -> t
                  | None ->
                      raise
                        (Spj_outside_exn
                           (Printf.sprintf "unknown attribute %s" a)))
              | A.Const v -> Ast.Const v
            in
            let tl = term_of l and tr = term_of r in
            match c with
            | A.Eq -> (
                match (tl, tr) with
                | Ast.Const a, Ast.Const b ->
                    if R.Value.equal a b then (atoms, binding)
                    else
                      raise
                        (Spj_empty_exn
                           (Printf.sprintf "selection requires %s = %s"
                              (R.Value.to_string a) (R.Value.to_string b)))
                | (Ast.Var _ as v), t -> subst v t (atoms, binding)
                | t, (Ast.Var _ as v) -> subst v t (atoms, binding))
            | A.Ne -> add_cmp pseudo_ne tl tr (atoms, binding)
            | A.Lt -> add_cmp pseudo_lt tl tr (atoms, binding)
            | A.Gt -> add_cmp pseudo_lt tr tl (atoms, binding)
            | A.Le -> add_cmp pseudo_le tl tr (atoms, binding)
            | A.Ge -> add_cmp pseudo_le tr tl (atoms, binding))
          acc (literals p)
    | A.Product (a, b) | A.Join (a, b) ->
        let atoms_a, bind_a = go a in
        let atoms_b, bind_b = go b in
        let merged_atoms = ref (atoms_a @ atoms_b) in
        let ba = ref bind_a and bb = ref bind_b in
        let substitute from_ to_ =
          let fix t = if t = from_ then to_ else t in
          merged_atoms :=
            List.map
              (fun at -> { at with Ast.args = List.map fix at.Ast.args })
              !merged_atoms;
          ba := List.map (fun (a, t) -> (a, fix t)) !ba;
          bb := List.map (fun (a, t) -> (a, fix t)) !bb
        in
        (* natural join: re-resolve both sides' current terms per shared
           attribute so chained unifications compose *)
        List.iter
          (fun (attr, _) ->
            match List.assoc_opt attr !ba with
            | None -> ()
            | Some ta -> (
                let tb = List.assoc attr !bb in
                if ta <> tb then
                  match (ta, tb) with
                  | Ast.Const x, Ast.Const y ->
                      if not (R.Value.equal x y) then
                        raise
                          (Spj_empty_exn
                             (Printf.sprintf
                                "join requires %s = %s on attribute %s"
                                (R.Value.to_string x) (R.Value.to_string y)
                                attr))
                  | (Ast.Var _ as v), t -> substitute v t
                  | t, (Ast.Var _ as v) -> substitute v t))
          bind_b;
        ( !merged_atoms,
          !ba
          @ List.filter (fun (a, _) -> not (List.mem_assoc a !ba)) !bb )
    | A.Union _ -> raise (Spj_outside_exn "union")
    | A.Inter _ -> raise (Spj_outside_exn "intersection")
    | A.Diff _ -> raise (Spj_outside_exn "difference")
    | A.Divide _ -> raise (Spj_outside_exn "division")
  in
  try
    let body, binding = go expr in
    Spj { body; binding }
  with
  | Spj_empty_exn reason -> Spj_empty reason
  | Spj_outside_exn reason -> Spj_outside reason

let canonical_cq binding body =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) binding in
  { Containment.head = List.map snd sorted; body }

let saturate cq =
  let extra =
    List.concat_map
      (fun a ->
        match (a.Ast.pred, a.Ast.args) with
        | p, [ x; y ] when p = pseudo_lt ->
            [
              Ast.atom pseudo_le [ x; y ];
              Ast.atom pseudo_ne [ x; y ];
              Ast.atom pseudo_ne [ y; x ];
            ]
        | p, [ x; y ] when p = pseudo_ne -> [ Ast.atom pseudo_ne [ y; x ] ]
        | _ -> [])
      cq.Containment.body
  in
  let seen = Hashtbl.create 8 in
  {
    cq with
    Containment.body =
      List.filter
        (fun a ->
          if Hashtbl.mem seen a then false
          else begin
            Hashtbl.add seen a ();
            true
          end)
        (cq.Containment.body @ extra);
  }

let algebra_of_cq catalog ~out body =
  let module A = R.Algebra in
  let rels, cmps = List.partition (fun a -> not (is_comparison_atom a)) body in
  match rels with
  | [] ->
      let consts =
        List.map
          (fun (a, t) ->
            match t with Ast.Const v -> Some (a, v) | Ast.Var _ -> None)
          out
      in
      if cmps = [] && out <> [] && List.for_all Option.is_some consts then
        Some (A.Singleton (List.map Option.get consts))
      else None
  | _ -> (
      try
        let cols = ref [] in
        let parts =
          List.mapi
            (fun i atom ->
              let schema = catalog atom.Ast.pred in
              let attrs = R.Schema.attributes schema in
              if List.length attrs <> List.length atom.Ast.args then raise Exit;
              let mapping =
                List.map2
                  (fun a t ->
                    let col = Printf.sprintf "#%d.%s" i a in
                    cols := !cols @ [ (t, col) ];
                    (a, col))
                  attrs atom.Ast.args
              in
              A.Rename (mapping, A.Rel atom.Ast.pred))
            rels
        in
        let core =
          List.fold_left
            (fun acc p -> A.Product (acc, p))
            (List.hd parts) (List.tl parts)
        in
        (* equate repeated variables, pin constants *)
        let first = Hashtbl.create 8 in
        let eqs =
          List.filter_map
            (fun (t, c) ->
              match t with
              | Ast.Const v -> Some (A.Cmp (A.Eq, A.Attr c, A.Const v))
              | Ast.Var _ -> (
                  match Hashtbl.find_opt first t with
                  | None ->
                      Hashtbl.add first t c;
                      None
                  | Some c0 -> Some (A.Cmp (A.Eq, A.Attr c0, A.Attr c))))
            !cols
        in
        let operand = function
          | Ast.Const v -> A.Const v
          | Ast.Var _ as t -> (
              match Hashtbl.find_opt first t with
              | Some c -> A.Attr c
              | None -> raise Exit)
        in
        let cmp_conj =
          List.map
            (fun a ->
              match (a.Ast.pred, a.Ast.args) with
              | p, [ x; y ] when p = pseudo_lt ->
                  A.Cmp (A.Lt, operand x, operand y)
              | p, [ x; y ] when p = pseudo_le ->
                  A.Cmp (A.Le, operand x, operand y)
              | p, [ x; y ] when p = pseudo_ne ->
                  A.Cmp (A.Ne, operand x, operand y)
              | _ -> raise Exit)
            cmps
        in
        let constrained =
          match eqs @ cmp_conj with
          | [] -> core
          | cs -> A.Select (A.conjoin cs, core)
        in
        (* realize the head: a distinct source column per output attribute *)
        let used = Hashtbl.create 8 in
        let pick t =
          let candidate =
            List.find_map
              (fun (t', c) ->
                if t' = t && not (Hashtbl.mem used c) then Some c else None)
              !cols
          in
          match candidate with
          | Some c ->
              Hashtbl.add used c ();
              c
          | None -> raise Exit
        in
        let assignment = List.map (fun (attr, t) -> (pick t, attr)) out in
        let renamed = A.Rename (assignment, constrained) in
        Some (A.Project (List.map snd assignment, renamed))
      with Exit | R.Schema.Schema_error _ | Not_found -> None)
