(** Shared rule-application machinery for the evaluation strategies.

    A rule is evaluated by folding its body left-to-right, maintaining a
    list of partial variable assignments; positive atoms extend
    assignments by matching tuples, negative atoms filter (safety
    guarantees they are ground by match time).  The sources of tuples are
    abstracted so naive, semi-naive, and magic evaluation can plug in
    full relations or deltas per body position. *)

module Tuple_set = Relational.Relation.Tuple_set
(** The tuple sets rules match against. *)

type env = (string * Relational.Value.t) list
(** A partial variable assignment, built up left-to-right. *)

val match_tuple : Ast.term list -> Relational.Tuple.t -> env -> env option
(** Unify an argument pattern against one tuple under an environment. *)

val match_atom : Tuple_set.t -> Ast.atom -> env -> env list
(** All extensions of the environment by tuples of the set matching the
    atom's pattern. *)

val comparison_holds :
  Relational.Algebra.comparison -> Ast.term -> Ast.term -> env -> bool
(** Decide a ground comparison under the environment; raises
    [Invalid_argument] on an unbound variable (a safety violation). *)

val instantiate : Ast.atom -> env -> Relational.Tuple.t
(** Ground the atom under the environment; raises [Invalid_argument] on an
    unbound variable (a safety violation). *)

val eval_rule :
  pos_source:(int -> string -> Tuple_set.t) ->
  neg_source:(string -> Tuple_set.t) ->
  Ast.rule ->
  Tuple_set.t
(** Head tuples derivable in one application of the rule.  [pos_source i
    p] supplies the tuples for the positive literal at body position [i]
    (0-based over the whole body); [neg_source p] supplies the relation a
    negated atom is tested against. *)

val stratum_preds : Ast.program -> string list
(** Head predicates of a rule list. *)
