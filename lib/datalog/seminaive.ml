module Tuple_set = Relational.Relation.Tuple_set

let eval_with_stats ?(metrics = Obs.Registry.noop) prog edb =
  Checks.check_safety prog;
  let strata = Checks.stratify prog in
  let edb = Facts.union edb (Facts.of_program_facts prog) in
  let iterations = ref 0 and derivations = ref 0 in
  let counter = Obs.Registry.counter metrics in
  let m_iterations =
    counter ~unit:"rounds" ~help:"semi-naive evaluation rounds"
      "datalog.iterations"
  in
  let m_derivations =
    counter ~unit:"tuples" ~help:"tuples derived (before dedup)"
      "datalog.derivations"
  in
  let m_strata =
    counter ~unit:"strata" ~help:"strata evaluated" "datalog.strata"
  in
  let m_delta =
    Obs.Registry.histogram metrics ~unit:"tuples"
      ~help:"delta size per semi-naive round" "datalog.delta_size"
  in
  let eval_stratum all rules =
    Obs.Registry.Counter.incr m_strata;
    let rules = List.filter (fun r -> r.Ast.body <> []) rules in
    let recursive = Engine.stratum_preds rules in
    let is_recursive_pred p = List.mem p recursive in
    (* first round: plain evaluation over everything known so far *)
    incr iterations;
    let first =
      List.fold_left
        (fun acc rule ->
          let out =
            Engine.eval_rule
              ~pos_source:(fun _ p -> Facts.get all p)
              ~neg_source:(Facts.get all) rule
          in
          derivations := !derivations + Tuple_set.cardinal out;
          Facts.set acc rule.Ast.head.Ast.pred
            (Tuple_set.union (Facts.get acc rule.Ast.head.Ast.pred) out))
        Facts.empty rules
    in
    let delta = Facts.diff_new first all in
    let rec loop prev delta =
      if Facts.is_empty delta then prev
      else begin
        incr iterations;
        Obs.Histogram.observe m_delta (Facts.total delta);
        let full = Facts.union prev delta in
        let candidate =
          List.fold_left
            (fun acc rule ->
              (* one delta-rule per recursive body position *)
              let rec_positions =
                List.mapi (fun i lit -> (i, lit)) rule.Ast.body
                |> List.filter_map (fun (i, lit) ->
                       match (lit : Ast.literal) with
                       | Ast.Pos a when is_recursive_pred a.Ast.pred -> Some i
                       | Ast.Pos _ | Ast.Neg _ | Ast.Cmp _ -> None)
              in
              List.fold_left
                (fun acc k ->
                  let pos_source i p =
                    if i = k then Facts.get delta p
                    else if i < k then Facts.get full p
                    else Facts.get prev p
                  in
                  let out =
                    Engine.eval_rule ~pos_source ~neg_source:(Facts.get full)
                      rule
                  in
                  derivations := !derivations + Tuple_set.cardinal out;
                  Facts.set acc rule.Ast.head.Ast.pred
                    (Tuple_set.union
                       (Facts.get acc rule.Ast.head.Ast.pred)
                       out))
                acc rec_positions)
            Facts.empty rules
        in
        let delta' = Facts.diff_new candidate full in
        loop full delta'
      end
    in
    loop all delta
  in
  let result = List.fold_left eval_stratum edb strata in
  Obs.Registry.Counter.add m_iterations !iterations;
  Obs.Registry.Counter.add m_derivations !derivations;
  (result, { Naive.iterations = !iterations; derivations = !derivations })

let eval prog edb = fst (eval_with_stats prog edb)

let query prog edb q =
  Naive.filter_by_query (Facts.get (eval prog edb) q.Ast.pred) q
