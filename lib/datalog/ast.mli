(** Datalog abstract syntax: terms, atoms, literals, rules, programs.

    Predicates are untyped here (a predicate is a set of value tuples);
    the {!Interop} module bridges to the typed relational model. *)

type term = Var of string | Const of Relational.Value.t
(** A variable or a constant value. *)

type atom = { pred : string; args : term list }
(** A predicate applied to terms, e.g. [edge(X, 2)]. *)

type literal =
  | Pos of atom
  | Neg of atom
  | Cmp of Relational.Algebra.comparison * term * term
      (** built-in comparison, e.g. [X < Y]; both sides must be bound by
          positive atoms (enforced by {!Checks.check_safety}) *)

type rule = { head : atom; body : literal list }

type program = rule list
(** A program is its rules, in source order; facts are bodyless rules. *)

type query = atom
(** A query is an atom, e.g. [path(1, X)]: constants restrict, variables
    are outputs. *)

val atom : string -> term list -> atom
val fact : string -> Relational.Value.t list -> rule
(** A rule with an empty body and constant head. *)

val atom_of : literal -> atom option
(** [None] for comparison literals. *)

val is_positive : literal -> bool
(** True only for [Pos]. *)

val is_comparison : literal -> bool

val term_vars : term -> string list
(** The variable of a [Var], nothing for a [Const]. *)

val atom_vars : atom -> string list
(** Variables of the atom's arguments, sorted, without duplicates. *)

val literal_vars : literal -> string list
(** Variables of the literal, sorted, without duplicates. *)

val rule_vars : rule -> string list
(** Variables of head and body, sorted, without duplicates. *)

val head_pred : rule -> string
(** The predicate the rule defines. *)

val body_preds : rule -> string list
(** Predicates of the body's atoms (positive and negative), in order. *)

val idb_predicates : program -> string list
(** Predicates occurring in some head, sorted. *)

val edb_predicates : program -> string list
(** Predicates occurring only in bodies, sorted. *)

val arity_map : program -> (string * int) list
(** Arity of every predicate; raises [Invalid_argument] on inconsistent
    use. *)

val rename_rule_apart : rule -> suffix:string -> rule
(** Renames every variable of the rule by appending [suffix]. *)

val term_to_string : term -> string
(** Source rendering of one term. *)

val atom_to_string : atom -> string
(** Source rendering of one atom, e.g. ["edge(X, 2)"]. *)

val literal_to_string : literal -> string
(** Source rendering of one literal (["not p(X)"] for negation). *)

val rule_to_string : rule -> string
(** Source rendering of one rule, trailing period included. *)

val program_to_string : program -> string
(** Source rendering of the whole program, one rule per line. *)

val pp_rule : Format.formatter -> rule -> unit
(** {!rule_to_string}, as a formatter printer. *)

val pp_program : Format.formatter -> program -> unit
(** {!program_to_string}, as a formatter printer. *)
