(** Fact stores: immutable maps from predicate names to sets of value
    tuples.  Used for EDB inputs, IDB results, and the per-iteration
    deltas of semi-naive evaluation. *)

module Tuple_set = Relational.Relation.Tuple_set

type t
(** An immutable predicate-to-tuple-set map. *)

val empty : t
(** No facts at all. *)

val is_empty : t -> bool
(** Whether no predicate holds any tuple. *)

val add : t -> string -> Relational.Tuple.t -> t
(** Adds one tuple to a predicate (a set: re-adding is a no-op). *)

val add_list : t -> string -> Relational.Value.t list list -> t
(** Adds every value list as a tuple of the predicate. *)

val get : t -> string -> Tuple_set.t
(** Empty set for unknown predicates. *)

val mem : t -> string -> Relational.Tuple.t -> bool
val set : t -> string -> Tuple_set.t -> t
(** Replaces a predicate's tuples wholesale. *)

val preds : t -> string list
(** Predicates holding at least one tuple, sorted. *)

val cardinality : t -> string -> int
(** Number of tuples of one predicate. *)

val total : t -> int
(** Total number of facts across all predicates. *)

val union : t -> t -> t
val diff_new : t -> t -> t
(** [diff_new candidate old] keeps only tuples of [candidate] absent from
    [old] — the semi-naive delta step. *)

val equal : t -> t -> bool
val fold : (string -> Tuple_set.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over predicates in sorted name order. *)

val of_program_facts : Ast.program -> t
(** Extracts the ground facts (empty-body, constant-head rules) of a
    program.  Raises [Invalid_argument] on a non-ground fact. *)

val to_string : t -> string
