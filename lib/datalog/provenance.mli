(** Why-provenance for Datalog: every derived fact carries one
    justification — the rule that produced it and the body facts it
    consumed — from which a full proof tree can be unfolded.

    Deductive databases' answer to "why is this tuple in the answer?";
    also the machinery behind the {!explain} output of the CLI. *)

type justification = {
  rule : Ast.rule;
  body : (string * Relational.Tuple.t) list;
      (** positive body facts, in rule order *)
  negated : (string * Relational.Tuple.t) list;
      (** negated atoms verified absent *)
}

type t
(** A provenance store for one evaluation. *)

val eval : Ast.program -> Facts.t -> Facts.t * t
(** Stratified semi-naive-flavoured evaluation that records the first
    justification of each derived fact.  Same answers as {!Seminaive.eval}
    (property-tested). *)

val justification_of :
  t -> string -> Relational.Tuple.t -> justification option
(** [None] for EDB facts and unknown facts. *)

type proof =
  | Edb_fact of string * Relational.Tuple.t
  | Derived of string * Relational.Tuple.t * Ast.rule * proof list * (string * Relational.Tuple.t) list
      (** predicate, tuple, rule, sub-proofs of the positive body, the
          negated atoms checked absent *)

val proof_of : t -> string -> Relational.Tuple.t -> proof option
(** Unfolds justifications into a full proof tree. *)

val proof_depth : proof -> int
val proof_size : proof -> int
(** Nodes in the proof tree (how many rule applications and leaves). *)

val explain : t -> string -> Relational.Tuple.t -> string
(** Pretty proof tree, or a note that the fact is EDB / underivable. *)
