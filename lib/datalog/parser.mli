(** Hand-written Datalog parser.

    Syntax (Prolog-like):
    {v
    % transitive closure
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    answer(X) :- path(1, X), not blocked(X).
    short(X, Y) :- path(X, Y), X < Y, Y <= 10.
    v}

    Variables start with an uppercase letter or [_]; lowercase identifiers
    in argument position are string constants; integer, float, and quoted
    string literals are constants of the corresponding type; [true]/[false]
    are booleans.  Comments run from [%] or [#] to end of line. *)

exception Parse_error of string
(** Carries a message with line and column. *)

val parse_program : string -> Ast.program
val parse_rule : string -> Ast.rule
(** One rule or fact, trailing period optional. *)

val parse_query : string -> Ast.query
(** Accepts ["p(1, X)"], with an optional ["?-"] prefix and ["."] suffix. *)
