(** Semi-naive bottom-up evaluation with differential (delta) relations.

    Within each stratum, iteration [i+1] only joins derivations that use
    at least one tuple first derived at iteration [i]: for a rule with
    recursive body atoms at positions [k], one delta-rule per [k] reads
    Δᵢ at [k], the post-iteration-[i] relation before [k], and the
    pre-iteration-[i] relation after [k].  This is the optimization whose
    effect the recursive-query benchmark measures against {!Naive}. *)

val eval : Ast.program -> Facts.t -> Facts.t
(** Same contract as {!Naive.eval}; the two agree on every safe
    stratifiable program (property-tested). *)

val eval_with_stats :
  ?metrics:Obs.Registry.t -> Ast.program -> Facts.t -> Facts.t * Naive.stats
(** As {!eval}, also returning iteration/derivation counts.  [metrics]
    (default {!Obs.Registry.noop}) receives the [datalog.*] instruments:
    iteration/derivation/strata counters and the [datalog.delta_size]
    histogram, one observation per semi-naive round. *)

val query : Ast.program -> Facts.t -> Ast.query -> Facts.Tuple_set.t
