(** Conjunctive-query containment, equivalence, and minimization.

    The Chandra–Merlin theorem: Q1 ⊆ Q2 iff there is a homomorphism from
    Q2 to (the frozen) Q1.  Deciding this is NP-complete — one of the
    "negative methodology" results (§3) that computer science exports; we
    solve it with backtracking, which also powers CQ minimization (the
    core of a query). *)

type cq = { head : Ast.term list; body : Ast.atom list }
(** A conjunctive query: head terms over the body's variables, positive
    body atoms only. *)

exception Not_conjunctive of string

val of_rule : Ast.rule -> cq
(** Raises {!Not_conjunctive} if the rule has a negated literal. *)

val to_rule : string -> cq -> Ast.rule

val homomorphism :
  cq -> cq -> (string * Ast.term) list option
(** [homomorphism q2 q1] finds a mapping of q2's variables to q1's terms
    that maps every atom of q2's body into q1's body and q2's head to
    q1's head — the witness that q1 ⊆ q2. *)

val contained : cq -> cq -> bool
(** [contained q1 q2] decides Q1 ⊆ Q2. *)

val equivalent : cq -> cq -> bool

val minimize : cq -> cq
(** The core: a minimal equivalent subquery, computed by repeatedly
    dropping redundant atoms (folding the query onto itself). *)

type fd = { fd_pred : string; fd_lhs : int list; fd_rhs : int list }
(** A functional dependency on a predicate, by argument position: in any
    admissible instance, two [fd_pred] facts agreeing on every [fd_lhs]
    position agree on every [fd_rhs] position. *)

exception Unsatisfiable of string
(** Raised by {!chase} when a dependency forces two distinct constants
    equal — the query is empty on every instance satisfying the fds. *)

val chase : fd list -> cq -> cq
(** The chase with equality-generating dependencies: while two body atoms
    agree on a dependency's lhs positions but differ at an rhs position,
    equate the offending terms (substituting through body and head).
    Terminates (each step removes a term), deduplicates collapsed atoms,
    and raises {!Unsatisfiable} on a constant clash.  The result is
    equivalent to the input on every instance satisfying [fds]. *)

val chase_opt : fd list -> cq -> cq option
(** {!chase}, with [None] instead of {!Unsatisfiable}. *)

val contained_under : fd list -> cq -> cq -> bool
(** [contained_under fds q1 q2] decides Q1 ⊆ Q2 over instances satisfying
    [fds]: a homomorphism from q2 into the chased q1 (or q1 chases to a
    contradiction). *)

val equivalent_under : fd list -> cq -> cq -> bool
(** Containment both ways, under the dependencies. *)

val minimize_under : fd list -> cq -> cq
(** Chase, then minimize: the core of the query under the dependencies.
    Unlike {!minimize}, the result is only guaranteed equivalent on
    instances satisfying [fds] — exactly what chase-based join
    elimination needs.  Raises {!Unsatisfiable} as {!chase} does. *)
