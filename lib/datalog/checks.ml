exception Unsafe_rule of string
exception Not_stratifiable of string

module Ss = Set.Make (String)

let check_rule_safety rule =
  let positive_vars =
    List.fold_left
      (fun acc lit ->
        match lit with
        | Ast.Pos a -> Ss.union acc (Ss.of_list (Ast.atom_vars a))
        | Ast.Neg _ | Ast.Cmp _ -> acc)
      Ss.empty rule.Ast.body
  in
  let require where vars =
    List.iter
      (fun v ->
        if not (Ss.mem v positive_vars) then
          raise
            (Unsafe_rule
               (Printf.sprintf
                  "variable %S in %s of %S does not occur in a positive body \
                   atom"
                  v where (Ast.rule_to_string rule))))
      vars
  in
  require "the head" (Ast.atom_vars rule.Ast.head);
  List.iter
    (function
      | Ast.Neg a -> require "a negated atom" (Ast.atom_vars a)
      | Ast.Cmp (_, a, b) ->
          require "a comparison"
            (List.sort_uniq String.compare
               (Ast.term_vars a @ Ast.term_vars b))
      | Ast.Pos _ -> ())
    rule.Ast.body

let check_safety prog =
  let (_ : (string * int) list) = Ast.arity_map prog in
  List.iter check_rule_safety prog

(* Non-raising variant: collect every range-restriction violation of every
   rule instead of stopping at the first.  The analysis layer turns each
   entry into one diagnostic. *)
let rule_safety_violations rule =
  let positive_vars =
    List.fold_left
      (fun acc lit ->
        match lit with
        | Ast.Pos a -> Ss.union acc (Ss.of_list (Ast.atom_vars a))
        | Ast.Neg _ | Ast.Cmp _ -> acc)
      Ss.empty rule.Ast.body
  in
  let missing where vars =
    List.filter_map
      (fun v ->
        if Ss.mem v positive_vars then None
        else
          Some
            (Printf.sprintf
               "variable %S in %s of %S does not occur in a positive body atom"
               v where (Ast.rule_to_string rule)))
      vars
  in
  missing "the head" (Ast.atom_vars rule.Ast.head)
  @ List.concat_map
      (function
        | Ast.Neg a -> missing "a negated atom" (Ast.atom_vars a)
        | Ast.Cmp (_, a, b) ->
            missing "a comparison"
              (List.sort_uniq String.compare (Ast.term_vars a @ Ast.term_vars b))
        | Ast.Pos _ -> [])
      rule.Ast.body

let safety_violations prog = List.concat_map rule_safety_violations prog

let is_safe prog =
  match check_safety prog with
  | () -> true
  | exception Unsafe_rule _ -> false
  | exception Invalid_argument _ -> false

type dependency = { from_pred : string; to_pred : string; negated : bool }

let dependencies prog =
  List.concat_map
    (fun rule ->
      List.filter_map
        (fun lit ->
          match Ast.atom_of lit with
          | Some a ->
              Some
                {
                  from_pred = Ast.head_pred rule;
                  to_pred = a.Ast.pred;
                  negated = not (Ast.is_positive lit);
                }
          | None -> None)
        rule.Ast.body)
    prog
  |> List.sort_uniq compare

(* Tarjan's strongly-connected components, emitted in reverse topological
   order (which for head -> body edges means callees first). *)
let tarjan nodes successors =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan emits components in reverse topological order of the condensed
     graph when edges point from caller to callee; accumulate order *)
  List.rev !components

let all_preds prog =
  List.sort_uniq String.compare
    (List.concat_map
       (fun r -> Ast.head_pred r :: Ast.body_preds r)
       prog)

let sccs prog =
  let deps = dependencies prog in
  let succ v =
    List.filter_map
      (fun d -> if String.equal d.from_pred v then Some d.to_pred else None)
      deps
  in
  tarjan (all_preds prog) succ

let is_recursive prog =
  let deps = dependencies prog in
  List.exists
    (fun comp ->
      match comp with
      | [ p ] ->
          List.exists
            (fun d -> String.equal d.from_pred p && String.equal d.to_pred p)
            deps
      | _ :: _ :: _ -> true
      | [] -> false)
    (sccs prog)

(* Non-raising stratifiability test: a program is stratifiable iff no
   negated dependency edge has both endpoints in the same strongly
   connected component.  Returns a message naming the offending edge. *)
let stratification_conflict prog =
  let components = sccs prog in
  let component_of p =
    List.find_opt (fun comp -> List.mem p comp) components
  in
  List.find_map
    (fun d ->
      if not d.negated then None
      else
        match component_of d.from_pred with
        | Some comp when List.mem d.to_pred comp ->
            Some
              (Printf.sprintf
                 "predicate %s depends negatively on %s through a recursive \
                  cycle (%s); no stratification exists"
                 d.from_pred d.to_pred
                 (String.concat " -> " comp))
        | _ -> None)
    (dependencies prog)

let strata_of_predicates prog =
  let idb = Ast.idb_predicates prog in
  let deps = dependencies prog in
  let stratum = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace stratum p 0) idb;
  let n = List.length idb in
  let get p = match Hashtbl.find_opt stratum p with Some s -> s | None -> 0 in
  (* Bellman-Ford style relaxation: stratum(head) >= stratum(body),
     strictly greater across negation.  More than n*|deps| relaxations
     means a negative cycle. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > n + 1 then
      raise
        (Not_stratifiable
           "negation through recursion: no stratification exists");
    List.iter
      (fun d ->
        if List.mem d.to_pred idb then begin
          let need = get d.to_pred + if d.negated then 1 else 0 in
          if get d.from_pred < need then begin
            Hashtbl.replace stratum d.from_pred need;
            changed := true
          end
        end)
      deps
  done;
  List.map (fun p -> (p, get p)) idb

let stratify prog =
  let strata = strata_of_predicates prog in
  let max_stratum = List.fold_left (fun acc (_, s) -> max acc s) 0 strata in
  List.init (max_stratum + 1) (fun i ->
      List.filter
        (fun r -> List.assoc (Ast.head_pred r) strata = i)
        prog)
  |> List.filter (fun rules -> rules <> [])
