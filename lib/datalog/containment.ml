type cq = { head : Ast.term list; body : Ast.atom list }

exception Not_conjunctive of string

let of_rule rule =
  let body =
    List.map
      (function
        | Ast.Pos a -> a
        | Ast.Neg a ->
            raise
              (Not_conjunctive
                 (Printf.sprintf "negated atom %s" (Ast.atom_to_string a)))
        | Ast.Cmp _ as l ->
            raise
              (Not_conjunctive
                 (Printf.sprintf "comparison %s" (Ast.literal_to_string l))))
      rule.Ast.body
  in
  { head = rule.Ast.head.Ast.args; body }

let to_rule pred cq =
  {
    Ast.head = Ast.atom pred cq.head;
    body = List.map (fun a -> Ast.Pos a) cq.body;
  }

(* Substitutions map source-query variables to target-query terms; the
   target's variables are "frozen" (treated as constants) and never bound. *)
let unify_term subst source target =
  match source with
  | Ast.Const c -> (
      match target with
      | Ast.Const c' when Relational.Value.equal c c' -> Some subst
      | _ -> None)
  | Ast.Var v -> (
      match List.assoc_opt v subst with
      | Some t -> if t = target then Some subst else None
      | None -> Some ((v, target) :: subst))

let unify_atoms subst (source : Ast.atom) (target : Ast.atom) =
  if not (String.equal source.Ast.pred target.Ast.pred) then None
  else if List.length source.Ast.args <> List.length target.Ast.args then None
  else
    List.fold_left2
      (fun acc s t ->
        match acc with None -> None | Some subst -> unify_term subst s t)
      (Some subst) source.Ast.args target.Ast.args

(* Find a homomorphism mapping [source]'s atoms into [target]'s atoms and
   source head to target head. *)
let homomorphism source target =
  let rec assign subst = function
    | [] -> Some subst
    | atom :: rest ->
        List.find_map
          (fun candidate ->
            match unify_atoms subst atom candidate with
            | Some subst' -> assign subst' rest
            | None -> None)
          target.body
  in
  (* head compatibility first: source head term i must map to target head
     term i *)
  let head_subst =
    if List.length source.head <> List.length target.head then None
    else
      List.fold_left2
        (fun acc s t ->
          match acc with
          | None -> None
          | Some subst -> unify_term subst s t)
        (Some []) source.head target.head
  in
  match head_subst with
  | None -> None
  | Some subst -> assign subst source.body

let contained q1 q2 =
  (* Q1 ⊆ Q2 iff Q2 maps homomorphically onto Q1 *)
  Option.is_some (homomorphism q2 q1)

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let minimize cq =
  (* repeatedly try to drop an atom while staying equivalent; the result
     is the core (unique up to isomorphism) *)
  let rec shrink body =
    let try_drop i =
      let smaller = { cq with body = List.filteri (fun j _ -> j <> i) body } in
      if equivalent { cq with body } smaller then Some smaller.body else None
    in
    let rec attempt i =
      if i >= List.length body then body
      else
        match try_drop i with
        | Some smaller -> shrink smaller
        | None -> attempt (i + 1)
    in
    attempt 0
  in
  { cq with body = shrink cq.body }

(* --- the chase on conjunctive queries ----------------------------------- *)

type fd = { fd_pred : string; fd_lhs : int list; fd_rhs : int list }

exception Unsatisfiable of string

let subst_cq from_ to_ cq =
  let fix t = if t = from_ then to_ else t in
  {
    head = List.map fix cq.head;
    body =
      List.map
        (fun a -> { a with Ast.args = List.map fix a.Ast.args })
        cq.body;
  }

(* One applicable egd: two atoms of [fd.fd_pred] that agree on every lhs
   position but differ at some rhs position.  Returns the pair of terms
   the dependency forces equal. *)
let chase_step fds cq =
  let atoms = Array.of_list cq.body in
  let n = Array.length atoms in
  let found = ref None in
  (try
     List.iter
       (fun fd ->
         for i = 0 to n - 1 do
           for j = i + 1 to n - 1 do
             let a = atoms.(i) and b = atoms.(j) in
             if a.Ast.pred = fd.fd_pred && b.Ast.pred = fd.fd_pred then begin
               let agree =
                 List.for_all
                   (fun k ->
                     match
                       (List.nth_opt a.Ast.args k, List.nth_opt b.Ast.args k)
                     with
                     | Some x, Some y -> x = y
                     | _ -> false)
                   fd.fd_lhs
               in
               if agree then
                 List.iter
                   (fun k ->
                     match
                       (List.nth_opt a.Ast.args k, List.nth_opt b.Ast.args k)
                     with
                     | Some x, Some y when x <> y ->
                         found := Some (x, y);
                         raise Exit
                     | _ -> ())
                   fd.fd_rhs
             end
           done
         done)
       fds
   with Exit -> ());
  !found

let chase fds cq =
  let rec fix cq =
    match chase_step fds cq with
    | None -> cq
    | Some (x, y) -> (
        match (x, y) with
        | Ast.Var _, t -> fix (subst_cq x t cq)
        | t, Ast.Var _ -> fix (subst_cq y t cq)
        | Ast.Const a, Ast.Const b ->
            raise
              (Unsatisfiable
                 (Printf.sprintf
                    "a functional dependency forces %s = %s"
                    (Relational.Value.to_string a)
                    (Relational.Value.to_string b))))
  in
  let chased = fix cq in
  (* equating terms can make atoms identical; keep one of each *)
  let seen = Hashtbl.create 8 in
  {
    chased with
    body =
      List.filter
        (fun a ->
          if Hashtbl.mem seen a then false
          else begin
            Hashtbl.add seen a ();
            true
          end)
        chased.body;
  }

let chase_opt fds cq = try Some (chase fds cq) with Unsatisfiable _ -> None

let contained_under fds q1 q2 =
  match chase_opt fds q1 with
  | None -> true (* Q1 is empty on every instance satisfying the fds *)
  | Some c1 -> contained c1 q2

let equivalent_under fds q1 q2 =
  match (chase_opt fds q1, chase_opt fds q2) with
  | None, None -> true
  | None, Some _ | Some _, None -> false
  | Some c1, Some c2 -> contained c1 q2 && contained c2 q1

let minimize_under fds cq = minimize (chase fds cq)
