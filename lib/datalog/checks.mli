(** Static checks on Datalog programs: range restriction (safety) and
    stratifiability, plus the predicate dependency graph they share. *)

exception Unsafe_rule of string

exception Not_stratifiable of string
(** Raised by {!check_stratifiable} when negation sits on a recursive
    cycle. *)

val check_safety : Ast.program -> unit
(** Every rule must be range-restricted: each head variable and each
    variable of a negated atom occurs in some positive body atom.
    Raises {!Unsafe_rule} otherwise. *)

val is_safe : Ast.program -> bool

val safety_violations : Ast.program -> string list
(** Non-raising variant of {!check_safety}: every range-restriction
    violation of every rule, in program order; [[]] iff the program is
    safe (arity consistency is not checked here). *)

val stratification_conflict : Ast.program -> string option
(** Non-raising stratifiability test: [None] iff {!stratify} would
    succeed, otherwise a message naming a negated dependency edge that
    lies on a recursive cycle. *)

type dependency = { from_pred : string; to_pred : string; negated : bool }

val dependencies : Ast.program -> dependency list
(** Edges head-pred → body-pred of the predicate dependency graph. *)

val sccs : Ast.program -> string list list
(** Strongly connected components of the dependency graph over all
    predicates of the program, in reverse topological order (callees
    before callers) — i.e. valid evaluation order. *)

val is_recursive : Ast.program -> bool

val stratify : Ast.program -> Ast.program list
(** Partitions the rules into strata such that negation never crosses
    within a stratum and each stratum only reads IDB predicates defined in
    itself or earlier strata.  Raises {!Not_stratifiable} when a negative
    edge lies on a cycle (e.g. win(X) :- move(X,Y), not win(Y) over a
    cyclic graph of moves is still stratifiable — the classic failure is
    p :- not p). *)

val strata_of_predicates : Ast.program -> (string * int) list
(** The stratum index assigned to each IDB predicate. *)
