(** Generalized magic-sets rewriting (left-to-right sideways information
    passing), for positive Datalog programs and point queries.

    Given [path(1, X)?], evaluating the whole transitive closure wastes
    work on sources other than 1; the magic transformation specializes
    the program so bottom-up evaluation only derives facts relevant to
    the query's bound arguments — recovering the efficiency of top-down
    evaluation while keeping set-at-a-time semantics.  This is the
    centerpiece of the "beautiful ideas … for the implementation of
    recursive queries" (§6). *)

exception Unsupported of string
(** Raised on programs with negation (the rewriting implemented here is
    for positive programs). *)

type adornment = bool list
(** Per-argument binding pattern, [true] = bound. *)

val adornment_to_string : adornment -> string
(** e.g. "bf". *)

val adorned_name : string -> adornment -> string
val magic_name : string -> adornment -> string
(** The adorned / magic predicate names, e.g. ["path_bf"] and
    ["m_path_bf"]. *)

val adornment_of_query : Ast.query -> adornment
(** Constants are bound; repeated variables after their first occurrence
    are also bound. *)

val rewrite : Ast.program -> Ast.query -> Ast.program * Ast.query
(** [rewrite program query] returns the magic program (transformed rules,
    magic rules, and the magic seed fact) and the query re-aimed at the
    adorned answer predicate. *)

val query : Ast.program -> Facts.t -> Ast.query -> Facts.Tuple_set.t
(** Rewrite, evaluate semi-naively, and read the answers off the adorned
    predicate.  Agrees with {!Seminaive.query} on positive programs
    (property-tested). *)

val query_with_stats :
  Ast.program -> Facts.t -> Ast.query -> Facts.Tuple_set.t * Naive.stats
