(** Static analysis of physical query plans ([dbmeta lint plan]).

    Diagnostic codes:
    - [PL001] (warning) full scan despite a usable index — a sequential
      scan of a table while an enclosing filter holds a sargable
      conjunct (attribute compared to a constant) that an existing index
      on that table could serve
    - [PL002] (error) cartesian product — a join whose sides share no
      attribute, so every pair of rows is combined
    - [PL003] (warning) estimate divergence — after execution, a node's
      estimated cardinality is more than 8x off its actual row count
      (stale or missing statistics); unexecuted nodes are skipped
    - [PL004] (info) unused projected columns — a non-root projection
      keeps columns no ancestor operator consumes

    The plan is produced by [Planner.Plan.plan] (and, for PL003,
    executed by [Planner.Exec.run] first so the actual row counts are
    filled in). *)

type input = { plan : Planner.Physical.t; indexes : Planner.Indexes.def list }
(** What the passes see: the physical plan plus the index definitions
    the planner had available (PL001 must know what was on offer, not
    what was chosen). *)

val passes : input Pass.t list
(** The PL pass suite, for {!Pass.run_all} / {!Pass.drive}. *)

val lint : input -> Diagnostic.t list
(** Runs every pass and returns the sorted diagnostics. *)
