(* Concurrency prediction over lock-annotated schedules: an Eraser-style
   lockset race detector and a GoodLock-style lock-order graph.  Both
   are *predictive* — they flag interleavings 2PL could drive into a
   race or a deadlock even when the observed schedule happens to execute
   cleanly — which is what makes them strictly stronger than the
   observational TX passes they ride alongside ([schedule_passes] is the
   full pipeline `dbmeta lint schedule` drives).

   Like the TX lock-discipline passes, everything here is gated on the
   schedule actually carrying lock operations: a plain r/w/c/a history
   has no locksets to analyse. *)

module S = Transactions.Schedule
module Ls = Transactions.Locked_schedule
module Locks = Transactions.Locks

type input = Ls.t

(* Shared trace simulation: for every data access, the set of (lock,
   mode) pairs its transaction held at that moment; for every lock
   acquisition, the set of locks already held (the GoodLock edge).
   Termination releases everything, as strict 2PL does. *)
type access = {
  a_txn : S.txn;
  a_item : S.item;
  a_write : bool;
  a_pos : int;
  a_held : (S.item * Locks.mode) list;
}

type acquisition = {
  q_txn : S.txn;
  q_item : S.item;
  q_mode : Locks.mode;
  q_pos : int;
  q_held : (S.item * Locks.mode) list;  (* held before this acquisition *)
}

let simulate (sched : input) =
  let held : (S.txn, (S.item * Locks.mode) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let held_of t =
    match Hashtbl.find_opt held t with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace held t r;
        r
  in
  let accesses = ref [] and acquisitions = ref [] in
  List.iteri
    (fun i (o : Ls.op) ->
      let h = held_of o.Ls.txn in
      match o.Ls.action with
      | Ls.Lock (mode, item) ->
          acquisitions :=
            {
              q_txn = o.Ls.txn;
              q_item = item;
              q_mode = mode;
              q_pos = i;
              q_held = !h;
            }
            :: !acquisitions;
          (* an exclusive request upgrades a shared hold *)
          let others = List.remove_assoc item !h in
          let effective =
            match (List.assoc_opt item !h, mode) with
            | Some Locks.Exclusive, _ -> Locks.Exclusive
            | _, m -> m
          in
          h := (item, effective) :: others
      | Ls.Unlock item -> h := List.remove_assoc item !h
      | Ls.Op (S.Read item) ->
          accesses :=
            {
              a_txn = o.Ls.txn;
              a_item = item;
              a_write = false;
              a_pos = i;
              a_held = !h;
            }
            :: !accesses
      | Ls.Op (S.Write item) ->
          accesses :=
            {
              a_txn = o.Ls.txn;
              a_item = item;
              a_write = true;
              a_pos = i;
              a_held = !h;
            }
            :: !accesses
      | Ls.Op (S.Commit | S.Abort) -> h := [])
    sched;
  (List.rev !accesses, List.rev !acquisitions)

let intersect sets =
  match sets with
  | [] -> []
  | first :: rest ->
      List.filter (fun x -> List.for_all (List.mem x) rest) first

let items_of_accesses accs =
  List.sort_uniq String.compare (List.map (fun a -> a.a_item) accs)

(* CC001/CC002/CC003 — the Eraser lockset discipline, per item: over all
   conflicting accesses the common lockset must stay non-empty (CC001),
   must protect the writes in exclusive mode (CC002), and when the
   convention is a guard lock other than the item itself we say so
   (CC003, informational). *)
let lockset_pass (sched : input) =
  if not (Ls.has_lock_ops sched) then []
  else begin
    let accesses, _ = simulate sched in
    List.concat_map
      (fun item ->
        let accs = List.filter (fun a -> a.a_item = item) accesses in
        let txns = List.sort_uniq Int.compare (List.map (fun a -> a.a_txn) accs) in
        let writers =
          List.sort_uniq Int.compare
            (List.filter_map
               (fun a -> if a.a_write then Some a.a_txn else None)
               accs)
        in
        let conflicting =
          List.length txns >= 2
          && List.exists
               (fun a ->
                 List.exists
                   (fun a' ->
                     a.a_txn <> a'.a_txn && (a.a_write || a'.a_write))
                   accs)
               accs
        in
        if not conflicting then []
        else begin
          let locksets =
            List.map (fun a -> List.map fst a.a_held) accs
          in
          let common = intersect locksets in
          let txns_s =
            String.concat ", " (List.map string_of_int txns)
          in
          if common = [] then
            [
              Diagnostic.error
                ~subject:
                  (Printf.sprintf "transactions {%s} access %s" txns_s item)
                "CC001"
                (Printf.sprintf
                   "lockset race: %s is accessed by transactions {%s} with \
                    at least one write, but no lock is held across every \
                    access — the accesses are unordered"
                   item txns_s);
            ]
          else begin
            let exclusive_at_writes =
              intersect
                (List.filter_map
                   (fun a ->
                     if a.a_write then
                       Some
                         (List.filter_map
                            (fun (l, m) ->
                              if m = Locks.Exclusive then Some l else None)
                            a.a_held)
                     else None)
                   accs)
            in
            let insufficient =
              writers <> [] && exclusive_at_writes = []
            in
            let guard =
              if List.mem item common then []
              else
                [
                  Diagnostic.info
                    ~subject:
                      (Printf.sprintf "common lockset: {%s}"
                         (String.concat ", "
                            (List.sort String.compare common)))
                    "CC003"
                    (Printf.sprintf
                       "guard-lock convention: %s is consistently protected \
                        by a lock other than its own (%s)"
                       item
                       (String.concat ", " (List.sort String.compare common)));
                ]
            in
            (if insufficient then
               [
                 Diagnostic.warning
                   ~subject:
                     (Printf.sprintf "common lockset: {%s}"
                        (String.concat ", " (List.sort String.compare common)))
                   "CC002"
                   (Printf.sprintf
                      "insufficient lock mode: %s is written, but no lock in \
                       the common lockset is held exclusively at every \
                       write — shared holders can interleave"
                      item);
               ]
             else [])
            @ guard
          end
        end)
      (items_of_accesses accesses)
  end

(* Strongly connected components by pairwise reachability — lock-order
   graphs are tiny (a handful of locks). *)
let components nodes edges =
  let reaches a b =
    let rec go seen frontier =
      match frontier with
      | [] -> false
      | x :: rest ->
          if x = b then true
          else if List.mem x seen then go seen rest
          else
            go (x :: seen)
              (List.filter_map
                 (fun (s, d) -> if s = x then Some d else None)
                 edges
              @ rest)
    in
    go [] (List.filter_map (fun (s, d) -> if s = a then Some d else None) edges)
  in
  let comps =
    List.map
      (fun v ->
        List.filter (fun w -> v = w || (reaches v w && reaches w v)) nodes)
      nodes
  in
  List.sort_uniq compare (List.filter (fun c -> List.length c >= 2) comps)

(* CC004/CC005 — the GoodLock lock-order graph: an edge a -> b whenever
   some transaction acquires b while holding a.  A cycle reached by two
   or more transactions predicts a deadlock even if this particular
   interleaving ran serially (strictly stronger than watching waits).
   The classic refinement: when every edge of the cycle was taken while
   holding a common *gate* lock, the gate serializes the contenders and
   the reversal cannot actually deadlock (CC005, informational). *)
let lock_order_pass (sched : input) =
  if not (Ls.has_lock_ops sched) then []
  else begin
    let _, acquisitions = simulate sched in
    let edges =
      List.concat_map
        (fun q ->
          List.filter_map
            (fun (l, _) ->
              if l = q.q_item then None
              else Some (l, q.q_item, q.q_txn, List.map fst q.q_held))
            q.q_held)
        acquisitions
    in
    let nodes =
      List.sort_uniq String.compare
        (List.concat_map (fun (a, b, _, _) -> [ a; b ]) edges)
    in
    let graph =
      List.sort_uniq compare (List.map (fun (a, b, _, _) -> (a, b)) edges)
    in
    List.filter_map
      (fun comp ->
        let in_comp = List.filter
            (fun (a, b, _, _) -> List.mem a comp && List.mem b comp)
            edges
        in
        let txns =
          List.sort_uniq Int.compare (List.map (fun (_, _, t, _) -> t) in_comp)
        in
        if List.length txns < 2 then None
        else begin
          let locks = List.sort String.compare comp in
          let gate =
            intersect
              (List.map
                 (fun (_, _, _, held) ->
                   List.filter (fun l -> not (List.mem l comp)) held)
                 in_comp)
          in
          let locks_s = String.concat ", " locks in
          let txns_s = String.concat ", " (List.map string_of_int txns) in
          if gate <> [] then
            Some
              (Diagnostic.info
                 ~subject:
                   (Printf.sprintf "gate lock(s): %s"
                      (String.concat ", " (List.sort String.compare gate)))
                 "CC005"
                 (Printf.sprintf
                    "gated lock-order reversal: transactions {%s} acquire \
                     {%s} in opposite orders, but every acquisition holds a \
                     common gate lock — the reversal cannot deadlock"
                    txns_s locks_s))
          else
            Some
              (Diagnostic.warning
                 ~subject:(Printf.sprintf "locks involved: %s" locks_s)
                 "CC004"
                 (Printf.sprintf
                    "lock-order cycle: transactions {%s} acquire {%s} in \
                     opposite orders while holding one another's locks — \
                     some interleaving of this program deadlocks"
                    txns_s locks_s))
        end)
      (components nodes graph)
  end

(* CC006 — the upgrade deadlock: two transactions hold the same item
   shared at the same time and both later upgrade to exclusive.  Neither
   upgrade can be granted before the other's shared lock goes away, and
   under 2PL neither will release first: a guaranteed deadlock that
   waits-for detection only catches once it has already happened. *)
let upgrade_pass (sched : input) =
  if not (Ls.has_lock_ops sched) then []
  else begin
    let _, acquisitions = simulate sched in
    let upgrades =
      List.filter
        (fun q ->
          q.q_mode = Locks.Exclusive
          && List.assoc_opt q.q_item q.q_held = Some Locks.Shared)
        acquisitions
    in
    (* shared holders of q's item at q's position, other than q's txn *)
    let holders_at q =
      let held : (S.txn, (S.item * Locks.mode) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let held_of t =
        match Hashtbl.find_opt held t with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace held t r;
            r
      in
      List.iteri
        (fun i (o : Ls.op) ->
          if i < q.q_pos then
            let h = held_of o.Ls.txn in
            match o.Ls.action with
            | Ls.Lock (mode, item) ->
                let others = List.remove_assoc item !h in
                let effective =
                  match (List.assoc_opt item !h, mode) with
                  | Some Locks.Exclusive, _ -> Locks.Exclusive
                  | _, m -> m
                in
                h := (item, effective) :: others
            | Ls.Unlock item -> h := List.remove_assoc item !h
            | Ls.Op (S.Commit | S.Abort) -> h := []
            | Ls.Op _ -> ())
        sched;
      Hashtbl.fold
        (fun t h acc ->
          if t <> q.q_txn && List.assoc_opt q.q_item !h = Some Locks.Shared
          then t :: acc
          else acc)
        held []
    in
    let pairs = ref [] in
    List.iter
      (fun q ->
        List.iter
          (fun other ->
            if
              List.exists
                (fun q' -> q'.q_txn = other && q'.q_item = q.q_item)
                upgrades
            then begin
              let pair =
                (min q.q_txn other, max q.q_txn other, q.q_item)
              in
              if not (List.mem pair !pairs) then pairs := pair :: !pairs
            end)
          (holders_at q))
      upgrades;
    List.rev_map
      (fun (t1, t2, item) ->
        Diagnostic.error
          ~subject:(Printf.sprintf "sl%d(%s) and sl%d(%s)" t1 item t2 item)
          "CC006"
          (Printf.sprintf
             "upgrade deadlock: transactions %d and %d hold %s shared \
              simultaneously and both upgrade to exclusive — neither \
              upgrade can ever be granted"
             t1 t2 item))
      !pairs
  end

let passes : input Pass.t list =
  [
    Pass.make "lockset-race" lockset_pass;
    Pass.make "lock-order-graph" lock_order_pass;
    Pass.make "upgrade-deadlock" upgrade_pass;
  ]

let schedule_passes : input Pass.t list = Transaction_lint.passes @ passes

let lint sched = Pass.run_all passes sched

let lint_string text = lint (Ls.of_string text)
