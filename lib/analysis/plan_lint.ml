(* Static analysis of physical plans: the PL00x suite run by
   [dbmeta lint plan].  The artifact is a compiled (and optionally
   executed) Planner.Physical.t plus the index catalog the planner saw,
   so the passes can ask the questions the planner itself answers —
   "was there a cheaper access path?" — as well as post-execution ones
   the planner cannot ("how wrong were the estimates?"). *)

module R = Relational
module A = R.Algebra
module P = Planner.Physical
module I = Planner.Indexes

type input = { plan : P.t; indexes : I.def list }

let subject = P.label

(* Attributes compared against a constant in some conjunct, with the
   comparison (either operand orientation). *)
let sargable_attrs pred =
  List.filter_map
    (function
      | A.Cmp (cmp, A.Attr a, A.Const _) | A.Cmp (cmp, A.Const _, A.Attr a) ->
          Some (cmp, a)
      | _ -> None)
    (A.conjuncts pred)

(* Can some index on [table](attr) serve a conjunct with this
   comparison?  Equality probes work on either kind; inequalities need
   key order, so only a B+tree. *)
let usable indexes table cmp attr =
  List.exists
    (fun d ->
      d.I.table = table && d.I.attr = attr
      &&
      match cmp with
      | A.Eq -> true
      | A.Lt | A.Le | A.Gt | A.Ge -> d.I.kind = I.Btree
      | A.Ne -> false)
    indexes

(* PL001: a sequential scan of a table while an enclosing filter holds a
   sargable conjunct an existing index could have served.  The planner
   avoids this when selections sit directly on the table; the warning
   fires when they do not (e.g. an unpushed selection above a join,
   visible under [--no-optimize]). *)
let full_scan_pass { plan; indexes } =
  let diags = ref [] in
  let idx = ref (-1) in
  let rec go carried t =
    incr idx;
    let here = !idx in
    (match t.P.node with
    | P.Scan { table; access = P.Full; _ } ->
        let attrs =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (cmp, a) ->
                 if R.Schema.mem t.P.schema a && usable indexes table cmp a
                 then Some a
                 else None)
               carried)
        in
        List.iter
          (fun a ->
            diags :=
              Diagnostic.warning ~subject:(subject t) ~loc:here "PL001"
                (Printf.sprintf
                   "full scan of %s although an index on %S could serve the \
                    enclosing filter"
                   table a)
              :: !diags)
          attrs
    | _ -> ());
    let carried =
      match t.P.node with
      | P.Filter (p, _) -> sargable_attrs p @ carried
      | P.Rename_op _ -> [] (* names change; stop attributing conjuncts *)
      | _ -> carried
    in
    List.iter (go carried) (P.children t)
  in
  go [] plan;
  List.rev !diags

(* PL002: a join with no equi-join attribute — every pair of input rows
   is combined.  Almost always a query bug (a missing shared column), so
   an error. *)
let cartesian_pass { plan; _ } =
  let idx = ref (-1) in
  let diags = ref [] in
  let rec go t =
    incr idx;
    (match t.P.node with
    | P.Nested_product (a, b) ->
        diags :=
          Diagnostic.error ~subject:(subject t) ~loc:!idx "PL002"
            (Printf.sprintf
               "cartesian product: %s x %s share no join attribute"
               (R.Schema.to_string a.P.schema)
               (R.Schema.to_string b.P.schema))
          :: !diags
    | _ -> ());
    List.iter go (P.children t)
  in
  go plan;
  List.rev !diags

(* PL003: after execution, an estimate more than [divergence_factor] off
   the actual row count.  Nodes that never ran (actual_rows < 0) are
   skipped, so the pass is a no-op on unexecuted plans. *)
let divergence_factor = 8.0

let divergence_pass { plan; _ } =
  let idx = ref (-1) in
  let diags = ref [] in
  let rec go t =
    incr idx;
    let actual = t.P.meta.P.actual_rows in
    (if actual >= 0 then
       let est = t.P.meta.P.est_rows in
       let hi = Float.max est (float_of_int actual) in
       let lo = Float.max 1.0 (Float.min est (float_of_int actual)) in
       if hi /. lo > divergence_factor then
         diags :=
           Diagnostic.warning ~subject:(subject t) ~loc:!idx "PL003"
             (Printf.sprintf
                "estimated %.1f rows but produced %d (off by %.0fx): \
                 statistics may be stale"
                est actual (hi /. lo))
           :: !diags);
    List.iter go (P.children t)
  in
  go plan;
  List.rev !diags

(* PL004: a projection (other than the plan root, whose width the query
   dictates) keeps columns no ancestor consumes — wasted copying in
   every tuple that flows through.  Needed attributes are pushed down
   from the root: predicates, join and sort keys add needs; set
   operations and division compare whole tuples, so they need every
   column of their inputs. *)
let rec pred_attrs = function
  | A.True | A.False -> []
  | A.Cmp (_, l, r) ->
      let side = function A.Attr a -> [ a ] | A.Const _ -> [] in
      side l @ side r
  | A.And (p, q) | A.Or (p, q) -> pred_attrs p @ pred_attrs q
  | A.Not p -> pred_attrs p

let unused_projection_pass { plan; _ } =
  let idx = ref (-1) in
  let diags = ref [] in
  let union a b = List.sort_uniq String.compare (a @ b) in
  let restrict needed schema =
    List.filter (fun a -> R.Schema.mem schema a) needed
  in
  let rec go ~root needed t =
    incr idx;
    let here = !idx in
    match t.P.node with
    | P.Scan _ | P.Const _ -> ()
    | P.Filter (p, c) -> go ~root:false (union needed (pred_attrs p)) c
    | P.Project (attrs, c) ->
        (if not root then
           let unused =
             List.filter (fun a -> not (List.mem a needed)) attrs
           in
           if unused <> [] then
             diags :=
               Diagnostic.info ~subject:(subject t) ~loc:here "PL004"
                 (Printf.sprintf "projected column%s %s never used above"
                    (if List.length unused = 1 then "" else "s")
                    (String.concat ", "
                       (List.map (Printf.sprintf "%S") unused)))
               :: !diags);
        go ~root:false attrs c
    | P.Rename_op (m, c) ->
        let back a =
          match List.find_opt (fun (_, n) -> n = a) m with
          | Some (o, _) -> o
          | None -> a
        in
        go ~root:false (List.map back needed) c
    | P.Hash_join { left; right; on; _ } | P.Merge_join { left; right; on } ->
        let n = union needed on in
        go ~root:false (restrict n left.P.schema) left;
        go ~root:false (restrict n right.P.schema) right
    | P.Nested_product (a, b) ->
        go ~root:false (restrict needed a.P.schema) a;
        go ~root:false (restrict needed b.P.schema) b
    | P.Sort { on; input } -> go ~root:false (union needed on) input
    | P.Union_op (a, b)
    | P.Inter_op (a, b)
    | P.Diff_op (a, b)
    | P.Divide_op (a, b) ->
        go ~root:false (R.Schema.attributes a.P.schema) a;
        go ~root:false (R.Schema.attributes b.P.schema) b
  in
  go ~root:true (R.Schema.attributes plan.P.schema) plan;
  List.rev !diags

let passes : input Pass.t list =
  [
    Pass.make "full-scan-despite-index" full_scan_pass;
    Pass.make "cartesian-product" cartesian_pass;
    Pass.make "estimate-divergence" divergence_pass;
    Pass.make "unused-projection" unused_projection_pass;
  ]

let lint input = Pass.run_all passes input
