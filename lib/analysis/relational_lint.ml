module Algebra = Relational.Algebra
module Schema = Relational.Schema
module Value = Relational.Value
open Algebra

type input = { catalog : string -> Schema.t option; plan : Algebra.t }

let node_subject e = Algebra.to_string e

(* Schema inference with recovery: unlike [Algebra.schema_of], an error
   does not abort the walk — it becomes a diagnostic, the offending
   subtree's schema becomes [None], and inference continues so one bad
   leaf does not hide every other defect in the plan. *)
let infer catalog plan =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let operand_type schema op ctx =
    match op with
    | Const v -> Some (Value.type_of v)
    | Attr a ->
        if Schema.mem schema a then Some (Schema.type_of_attr schema a)
        else begin
          emit
            (Diagnostic.error ~subject:ctx "RA002"
               (Printf.sprintf
                  "unknown attribute %S: schema here is %s" a
                  (Schema.to_string schema)));
          None
        end
  in
  let rec check_predicate schema ctx = function
    | True | False -> ()
    | Cmp (_, l, r) -> (
        match (operand_type schema l ctx, operand_type schema r ctx) with
        | Some tl, Some tr when tl <> tr ->
            emit
              (Diagnostic.error ~subject:ctx "RA003"
                 (Printf.sprintf "comparison between %s %s and %s %s"
                    (Value.ty_to_string tl)
                    (Algebra.operand_to_string l)
                    (Value.ty_to_string tr)
                    (Algebra.operand_to_string r)))
        | _ -> ())
    | And (p, q) | Or (p, q) ->
        check_predicate schema ctx p;
        check_predicate schema ctx q
    | Not p -> check_predicate schema ctx p
  in
  let rec go expr =
    let ctx = node_subject expr in
    match expr with
    | Rel name -> (
        match catalog name with
        | Some s -> Some s
        | None ->
            emit
              (Diagnostic.error ~subject:ctx "RA001"
                 (Printf.sprintf "unknown relation %S" name));
            None)
    | Singleton bindings -> (
        try Some (Schema.make (List.map (fun (a, v) -> (a, Value.type_of v)) bindings))
        with Schema.Schema_error m ->
          emit (Diagnostic.error ~subject:ctx "RA002" ("singleton: " ^ m));
          None)
    | Select (p, e) ->
        let s = go e in
        Option.iter (fun s -> check_predicate s ctx p) s;
        s
    | Project (attrs, e) -> (
        match go e with
        | None -> None
        | Some s ->
            let known =
              List.filter
                (fun a ->
                  if Schema.mem s a then true
                  else begin
                    emit
                      (Diagnostic.error ~subject:ctx "RA002"
                         (Printf.sprintf
                            "projection onto unknown attribute %S: schema \
                             here is %s"
                            a (Schema.to_string s)));
                    false
                  end)
                attrs
            in
            let known =
              List.fold_left
                (fun acc a -> if List.mem a acc then acc else acc @ [ a ])
                [] known
            in
            (try Some (Schema.project s known)
             with Schema.Schema_error m ->
               emit (Diagnostic.error ~subject:ctx "RA002" ("project: " ^ m));
               None))
    | Rename (mapping, e) -> (
        match go e with
        | None -> None
        | Some s -> (
            try Some (Schema.rename s mapping)
            with Schema.Schema_error m ->
              emit (Diagnostic.error ~subject:ctx "RA002" ("rename: " ^ m));
              None))
    | Product (a, b) -> (
        match (go a, go b) with
        | Some sa, Some sb -> (
            try Some (Schema.product sa sb)
            with Schema.Schema_error m ->
              emit (Diagnostic.error ~subject:ctx "RA002" ("product: " ^ m));
              None)
        | _ -> None)
    | Join (a, b) -> (
        match (go a, go b) with
        | Some sa, Some sb -> (
            try Some (Schema.join sa sb)
            with Schema.Schema_error m ->
              emit (Diagnostic.error ~subject:ctx "RA003" ("join: " ^ m));
              None)
        | _ -> None)
    | Union (a, b) | Inter (a, b) | Diff (a, b) -> (
        match (go a, go b) with
        | Some sa, Some sb ->
            if Schema.union_compatible sa sb then Some sa
            else begin
              emit
                (Diagnostic.error ~subject:ctx "RA003"
                   (Printf.sprintf
                      "set operation over incompatible schemas %s and %s"
                      (Schema.to_string sa) (Schema.to_string sb)));
              None
            end
        | _ -> None)
    | Divide (a, b) -> (
        match (go a, go b) with
        | Some sa, Some sb ->
            let missing =
              List.filter
                (fun attr -> not (Schema.mem sa attr))
                (Schema.attributes sb)
            in
            List.iter
              (fun attr ->
                emit
                  (Diagnostic.error ~subject:ctx "RA002"
                     (Printf.sprintf
                        "divide: divisor attribute %S absent from dividend %s"
                        attr (Schema.to_string sa))))
              missing;
            if missing <> [] then None
            else
              let keep =
                List.filter
                  (fun a -> not (List.mem a (Schema.attributes sb)))
                  (Schema.attributes sa)
              in
              Some (Schema.project sa keep)
        | _ -> None)
  in
  let schema = go plan in
  (schema, List.rev !diags)

let schema_opt catalog e = fst (infer catalog e)

(* RA001/RA002/RA003 — unknown relations and attributes, type mismatches. *)
let typing_pass { catalog; plan } = snd (infer catalog plan)

(* RA004 — cartesian products: explicit [Product] nodes, and [Join]s whose
   sides share no attribute (a natural join over disjoint schemas IS the
   product). *)
let cross_product_pass { catalog; plan } =
  let rec go expr =
    let here =
      match expr with
      | Product (_, _) ->
          [
            Diagnostic.warning ~subject:(node_subject expr) "RA004"
              "explicit cartesian product: result size is |L| x |R|";
          ]
      | Join (a, b) -> (
          match (schema_opt catalog a, schema_opt catalog b) with
          | Some sa, Some sb when (try Schema.common sa sb = [] with _ -> false)
            ->
              [
                Diagnostic.warning ~subject:(node_subject expr) "RA004"
                  "join sides share no attribute: this natural join \
                   degenerates to a cartesian product";
              ]
          | _ -> [])
      | _ -> []
    in
    here
    @
    match expr with
    | Rel _ | Singleton _ -> []
    | Select (_, e) | Project (_, e) | Rename (_, e) -> go e
    | Product (a, b) | Join (a, b) | Union (a, b) | Inter (a, b)
    | Diff (a, b) | Divide (a, b) ->
        go a @ go b
  in
  go plan

(* Collapse chains of selections into one sorted conjunct set so that
   plans differing only in how conjuncts are grouped compare equal. *)
let rec normalize_selects expr =
  match expr with
  | Select (p, e) -> (
      match normalize_selects e with
      | Select (q, e') ->
          Select (conjoin (List.sort compare (conjuncts p @ conjuncts q)), e')
      | e' -> Select (conjoin (List.sort compare (conjuncts p)), e'))
  | Rel _ | Singleton _ -> expr
  | Project (a, e) -> Project (a, normalize_selects e)
  | Rename (m, e) -> Rename (m, normalize_selects e)
  | Product (a, b) -> Product (normalize_selects a, normalize_selects b)
  | Join (a, b) -> Join (normalize_selects a, normalize_selects b)
  | Union (a, b) -> Union (normalize_selects a, normalize_selects b)
  | Inter (a, b) -> Inter (normalize_selects a, normalize_selects b)
  | Diff (a, b) -> Diff (normalize_selects a, normalize_selects b)
  | Divide (a, b) -> Divide (normalize_selects a, normalize_selects b)

(* RA005 — the optimizer's selection push-down would change the plan:
   some selection sits higher than it needs to.  Only meaningful when the
   plan types cleanly, since push-down consults schemas. *)
let pushdown_pass { catalog; plan } =
  match infer catalog plan with
  | Some _, [] ->
      let raising name =
        match catalog name with
        | Some s -> s
        | None -> raise (Algebra.Type_error (Printf.sprintf "unknown relation %S" name))
      in
      let pushed = Relational.Optimizer.push_selections raising plan in
      if normalize_selects pushed = normalize_selects plan then []
      else
        [
          Diagnostic.warning ~subject:(node_subject plan) "RA005"
            (Printf.sprintf
               "selection(s) can be pushed toward the leaves; consider %s \
                (or run with -O)"
               (Algebra.to_string pushed));
        ]
  | _ -> []

(* RA006 — a projection under a join drops attributes the two sides
   share: the join silently stops matching on them. *)
let projection_drops_key_pass { catalog; plan } =
  let dropped_keys side other =
    match side with
    | Project (attrs, inner) -> (
        match (schema_opt catalog inner, schema_opt catalog other) with
        | Some si, Some so ->
            let shared = try Schema.common si so with _ -> [] in
            List.filter (fun a -> not (List.mem a attrs)) shared
        | _ -> [])
    | _ -> []
  in
  let rec go expr =
    let here =
      match expr with
      | Join (a, b) ->
          List.map
            (fun key ->
              Diagnostic.warning ~subject:(node_subject expr) "RA006"
                (Printf.sprintf
                   "projection drops attribute %S that the other join side \
                    also has: the join no longer matches on it"
                   key))
            (dropped_keys a b @ dropped_keys b a)
      | _ -> []
    in
    here
    @
    match expr with
    | Rel _ | Singleton _ -> []
    | Select (_, e) | Project (_, e) | Rename (_, e) -> go e
    | Product (a, b) | Join (a, b) | Union (a, b) | Inter (a, b)
    | Diff (a, b) | Divide (a, b) ->
        go a @ go b
  in
  go plan

let passes : input Pass.t list =
  [
    Pass.make "typing" typing_pass;
    Pass.make "cross-product" cross_product_pass;
    Pass.make "selection-pushdown" pushdown_pass;
    Pass.make "projection-drops-join-key" projection_drops_key_pass;
  ]

let lint ~catalog plan = Pass.run_all passes { catalog; plan }

let catalog_of_database db name =
  Option.map Relational.Relation.schema (Relational.Database.find_opt db name)

let catalog_of_alist schemas name = List.assoc_opt name schemas
