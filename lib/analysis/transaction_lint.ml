module S = Transactions.Schedule
module Ls = Transactions.Locked_schedule
module Ser = Transactions.Serializability
module Locks = Transactions.Locks

type input = Ls.t

let op_subject o = Ls.op_to_string o

(* TX001 — operations of a transaction after it committed or aborted. *)
let well_formed_pass (sched : input) =
  let terminated : (S.txn, unit) Hashtbl.t = Hashtbl.create 8 in
  List.concat
    (List.mapi
       (fun i (o : Ls.op) ->
         let already = Hashtbl.mem terminated o.txn in
         (match o.action with
         | Ls.Op (S.Commit | S.Abort) -> Hashtbl.replace terminated o.txn ()
         | _ -> ());
         if already then
           [
             Diagnostic.error ~subject:(op_subject o) ~loc:i "TX001"
               (Printf.sprintf
                  "transaction %d acts after it already terminated" o.txn);
           ]
         else [])
       sched)

(* Strongly connected components of a small int digraph, by pairwise
   reachability — schedules have a handful of transactions. *)
let cycles nodes edges =
  let reaches a b =
    let rec go seen frontier =
      match frontier with
      | [] -> false
      | x :: rest ->
          if x = b then true
          else if List.mem x seen then go seen rest
          else
            go (x :: seen)
              (List.filter_map
                 (fun (s, d) -> if s = x then Some d else None)
                 edges
              @ rest)
    in
    go [] (List.filter_map (fun (s, d) -> if s = a then Some d else None) edges)
  in
  let comps =
    List.map
      (fun v -> List.filter (fun w -> (v = w) || (reaches v w && reaches w v)) nodes)
      nodes
  in
  (* keep one representative per component, only real cycles *)
  List.sort_uniq compare (List.filter (fun c -> List.length c >= 2) comps)

(* TX002 — conflict-serializability: every cycle of the precedence graph,
   with a witnessing conflict pair per edge. *)
let serializability_pass (sched : input) =
  let s = Ls.to_schedule sched in
  let graph = Ser.precedence_graph s in
  let witnesses = Ser.conflict_pairs (S.committed_projection s) in
  let witness src dst =
    List.find_opt
      (fun ((o : S.op), (o' : S.op)) -> o.S.txn = src && o'.S.txn = dst)
      witnesses
  in
  List.map
    (fun comp ->
      let in_comp (a, b) = List.mem a comp && List.mem b comp in
      let edge_desc =
        List.filter_map
          (fun (a, b) ->
            if not (in_comp (a, b)) then None
            else
              match witness a b with
              | Some (o, o') ->
                  Some
                    (Printf.sprintf "%s before %s"
                       (S.to_string [ o ])
                       (S.to_string [ o' ]))
              | None -> Some (Printf.sprintf "T%d -> T%d" a b))
          graph
      in
      Diagnostic.error
        ~subject:(String.concat ", " edge_desc)
        "TX002"
        (Printf.sprintf
           "not conflict-serializable: transactions {%s} form a conflict \
            cycle"
           (String.concat ", " (List.map string_of_int comp))))
    (cycles (S.committed s) graph)

(* reads-from with positions: (reader txn, read position, writer txn,
   write position), writer by a different transaction and not already
   aborted at read time. *)
let read_from_pairs s =
  let ops = List.mapi (fun i o -> (i, o)) s in
  let termination t =
    List.find_map
      (fun (i, (o : S.op)) ->
        if o.S.txn = t then
          match o.S.action with
          | S.Commit -> Some (i, `Commit)
          | S.Abort -> Some (i, `Abort)
          | _ -> None
        else None)
      ops
  in
  let pairs =
    List.filter_map
      (fun (i, (o : S.op)) ->
        match o.S.action with
        | S.Read item ->
            List.fold_left
              (fun acc (j, (o' : S.op)) ->
                match o'.S.action with
                | S.Write item'
                  when j < i && String.equal item item' && o'.S.txn <> o.S.txn
                  -> (
                    match termination o'.S.txn with
                    | Some (k, `Abort) when k < i -> acc
                    | _ -> Some (o.S.txn, i, item, o'.S.txn, j))
                | _ -> acc)
              None ops
        | _ -> None)
      ops
  in
  (pairs, termination)

(* TX003 — unrecoverable: a reader commits before the transaction it read
   from does. *)
let recoverability_pass (sched : input) =
  let s = Ls.to_schedule sched in
  let pairs, termination = read_from_pairs s in
  List.filter_map
    (fun (reader, pos, item, writer, _) ->
      match (termination reader, termination writer) with
      | Some (ci, `Commit), Some (cj, `Commit) when cj < ci -> None
      | Some (_, `Commit), _ ->
          Some
            (Diagnostic.error ~loc:pos
               ~subject:(Printf.sprintf "r%d(%s)" reader item)
               "TX003"
               (Printf.sprintf
                  "unrecoverable: transaction %d reads %s from transaction \
                   %d but commits before %d does"
                  reader item writer writer))
      | _ -> None)
    pairs

(* TX004 — cascading-abort exposure: reading a value whose writer has not
   committed yet at read time. *)
let cascading_pass (sched : input) =
  let s = Ls.to_schedule sched in
  let pairs, termination = read_from_pairs s in
  List.filter_map
    (fun (reader, pos, item, writer, _) ->
      match termination writer with
      | Some (cj, `Commit) when cj < pos -> None
      | _ ->
          Some
            (Diagnostic.warning ~loc:pos
               ~subject:(Printf.sprintf "r%d(%s)" reader item)
               "TX004"
               (Printf.sprintf
                  "cascading-abort risk: transaction %d reads %s from \
                   transaction %d before %d commits"
                  reader item writer writer)))
    pairs

(* TX005 — non-strict: reading or overwriting an item whose last writer
   has not terminated. *)
let strictness_pass (sched : input) =
  let s = Ls.to_schedule sched in
  let ops = List.mapi (fun i o -> (i, o)) s in
  let _, termination = read_from_pairs s in
  List.filter_map
    (fun (i, (o : S.op)) ->
      match o.S.action with
      | S.Read item | S.Write item -> (
          let last_writer =
            List.fold_left
              (fun acc (j, (o' : S.op)) ->
                match o'.S.action with
                | S.Write item'
                  when j < i && String.equal item item' && o'.S.txn <> o.S.txn
                  ->
                    Some o'.S.txn
                | _ -> acc)
              None ops
          in
          match last_writer with
          | None -> None
          | Some wt -> (
              match termination wt with
              | Some (k, _) when k < i -> None
              | _ ->
                  Some
                    (Diagnostic.info ~loc:i ~subject:(S.to_string [ o ])
                       "TX005"
                       (Printf.sprintf
                          "not strict: %s %s while its last writer \
                           (transaction %d) has not terminated"
                          (match o.S.action with
                          | S.Read _ -> "reads"
                          | _ -> "overwrites")
                          item wt))))
      | _ -> None)
    ops

(* --- lock-discipline passes (only for lock-annotated schedules) ---------- *)

let conflicting_modes m m' =
  not (m = Locks.Shared && m' = Locks.Shared)

(* Simulates the lock table over the trace.  Emits:
   TX006 — read/write without the required lock, unlock of a lock not held
   TX007 — lock acquired after the transaction already released one (the
           two-phase rule)
   TX008 — lock granted while another transaction holds a conflicting one
   TX009 — locks still held when the schedule ends *)
let lock_discipline_pass (sched : input) =
  if not (Ls.has_lock_ops sched) then []
  else begin
    let held : (S.txn * S.item, Locks.mode) Hashtbl.t = Hashtbl.create 16 in
    let shrinking : (S.txn, unit) Hashtbl.t = Hashtbl.create 8 in
    let diags = ref [] in
    let emit d = diags := d :: !diags in
    List.iteri
      (fun i (o : Ls.op) ->
        match o.Ls.action with
        | Ls.Lock (mode, item) ->
            if Hashtbl.mem shrinking o.Ls.txn then
              emit
                (Diagnostic.error ~loc:i ~subject:(op_subject o) "TX007"
                   (Printf.sprintf
                      "two-phase violation: transaction %d acquires a lock \
                       after having released one"
                      o.Ls.txn));
            Hashtbl.iter
              (fun (t, it) m ->
                if
                  t <> o.Ls.txn
                  && String.equal it item
                  && conflicting_modes m mode
                then
                  emit
                    (Diagnostic.error ~loc:i ~subject:(op_subject o) "TX008"
                       (Printf.sprintf
                          "conflicting lock grant: transaction %d takes a%s \
                           lock on %s while transaction %d holds a%s lock"
                          o.Ls.txn
                          (match mode with
                          | Locks.Shared -> " shared"
                          | Locks.Exclusive -> "n exclusive")
                          item t
                          (match m with
                          | Locks.Shared -> " shared"
                          | Locks.Exclusive -> "n exclusive"))))
              (Hashtbl.copy held);
            (* an exclusive request upgrades a shared hold *)
            let current = Hashtbl.find_opt held (o.Ls.txn, item) in
            let effective =
              match (current, mode) with
              | Some Locks.Exclusive, _ -> Locks.Exclusive
              | _, m -> m
            in
            Hashtbl.replace held (o.Ls.txn, item) effective
        | Ls.Unlock item ->
            if not (Hashtbl.mem held (o.Ls.txn, item)) then
              emit
                (Diagnostic.error ~loc:i ~subject:(op_subject o) "TX006"
                   (Printf.sprintf
                      "lock discipline: transaction %d unlocks %s without \
                       holding a lock on it"
                      o.Ls.txn item))
            else Hashtbl.remove held (o.Ls.txn, item);
            Hashtbl.replace shrinking o.Ls.txn ()
        | Ls.Op (S.Read item) ->
            if Hashtbl.find_opt held (o.Ls.txn, item) = None then
              emit
                (Diagnostic.error ~loc:i ~subject:(op_subject o) "TX006"
                   (Printf.sprintf
                      "unlocked access: transaction %d reads %s without \
                       holding a lock"
                      o.Ls.txn item))
        | Ls.Op (S.Write item) ->
            if Hashtbl.find_opt held (o.Ls.txn, item) <> Some Locks.Exclusive
            then
              emit
                (Diagnostic.error ~loc:i ~subject:(op_subject o) "TX006"
                   (Printf.sprintf
                      "unlocked access: transaction %d writes %s without \
                       holding an exclusive lock"
                      o.Ls.txn item))
        | Ls.Op (S.Commit | S.Abort) ->
            (* termination releases everything (strict 2PL's release
               point), so holding locks here is not a defect *)
            Hashtbl.iter
              (fun (t, it) _ ->
                if t = o.Ls.txn then Hashtbl.remove held (t, it))
              (Hashtbl.copy held))
      sched;
    Hashtbl.iter
      (fun (t, item) _ ->
        emit
          (Diagnostic.warning "TX009"
             (Printf.sprintf
                "lock leak: transaction %d still holds a lock on %s when \
                 the schedule ends"
                t item)))
      held;
    List.rev !diags
  end

(* TX010 — potential deadlock: conflicting claims taken in opposite
   orders.  With explicit lock operations the claim points are the lock
   acquisitions; otherwise the data accesses stand in for them (what 2PL
   would lock).  A cycle among those orderings is a schedule 2PL could
   drive into deadlock. *)
let deadlock_pass (sched : input) =
  let with_locks = Ls.has_lock_ops sched in
  let acquisitions =
    List.mapi (fun i o -> (i, o)) sched
    |> List.filter_map (fun (i, (o : Ls.op)) ->
           match o.Ls.action with
           | Ls.Lock (mode, item) when with_locks ->
               Some (i, o.Ls.txn, item, mode)
           | Ls.Op (S.Read item) when not with_locks ->
               Some (i, o.Ls.txn, item, Locks.Shared)
           | Ls.Op (S.Write item) when not with_locks ->
               Some (i, o.Ls.txn, item, Locks.Exclusive)
           | _ -> None)
  in
  let edges =
    List.concat_map
      (fun (i, t, item, m) ->
        List.filter_map
          (fun (j, t', item', m') ->
            if
              i < j && t <> t'
              && String.equal item item'
              && conflicting_modes m m'
            then Some ((t, t'), item)
            else None)
          acquisitions)
      acquisitions
  in
  let graph = List.sort_uniq compare (List.map fst edges) in
  let nodes = Ls.txns sched in
  List.map
    (fun comp ->
      let items =
        List.sort_uniq String.compare
          (List.filter_map
             (fun ((a, b), it) ->
               if List.mem a comp && List.mem b comp then Some it else None)
             edges)
      in
      Diagnostic.warning
        ~subject:
          (Printf.sprintf "items involved: %s" (String.concat ", " items))
        "TX010"
        (Printf.sprintf
           "potential deadlock: transactions {%s} claim conflicting locks \
            on %s in opposite orders; under 2PL this interleaving can \
            deadlock"
           (String.concat ", " (List.map string_of_int comp))
           (String.concat ", " items)))
    (cycles nodes graph)

let passes : input Pass.t list =
  [
    Pass.make "well-formed" well_formed_pass;
    Pass.make "conflict-serializability" serializability_pass;
    Pass.make "recoverability" recoverability_pass;
    Pass.make "cascading-aborts" cascading_pass;
    Pass.make "strictness" strictness_pass;
    Pass.make "lock-discipline" lock_discipline_pass;
    Pass.make "potential-deadlock" deadlock_pass;
  ]

let lint sched = Pass.run_all passes sched

let lint_string text = lint (Ls.of_string text)
