(* The distributed-protocol lint: cross-log checks over a coordinator
   log and its shard WALs, all scanned read-only.  Where Wal_lint checks
   one log's internal protocol, these passes check the *agreement*
   between logs that two-phase commit is supposed to enforce — the
   checks are exactly the invariants the presumed-abort force discipline
   guarantees under crash faults, so any 2C error on a survivor set is
   either silent disk corruption (lost history) or a protocol bug. *)

module Wal = Storage.Wal
module Coord_log = Distributed.Coord_log

type input = {
  coord : Coord_log.entry list;
  shards : (int * Wal.entry list) list;
}

let of_base base =
  let n = Distributed.Coordinator.discover base in
  {
    coord = Coord_log.read_file (Distributed.Coordinator.coord_path base);
    shards =
      List.init n (fun k ->
          ( k,
            Wal.read_entries
              (Storage.Engine.wal_path (Distributed.Coordinator.shard_path base k))
          ));
  }

(* --- shared projections --------------------------------------------------- *)

(* participants of each coordinator-known (multi-shard) transaction *)
let participants_of input =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun { Coord_log.record; _ } ->
      match record with
      | Coord_log.Begin { txn; shards } ->
          if not (Hashtbl.mem tbl txn) then Hashtbl.replace tbl txn shards
      | _ -> ())
    input.coord;
  tbl

(* first Decide per transaction (later conflicting ones are 2C005's job) *)
let decisions_of input =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun { Coord_log.record; _ } ->
      match record with
      | Coord_log.Decide { txn; decision } ->
          if not (Hashtbl.mem tbl txn) then Hashtbl.replace tbl txn decision
      | _ -> ())
    input.coord;
  tbl

(* per shard: transactions left prepared-and-live when the log ends *)
let prepared_at_end entries =
  let live = Hashtbl.create 8 in
  let prepared = Hashtbl.create 8 in
  List.iter
    (fun { Wal.record; _ } ->
      match record with
      | Wal.Begin t -> Hashtbl.replace live t ()
      | Wal.Prepare t -> if Hashtbl.mem live t then Hashtbl.replace prepared t ()
      | Wal.Commit t | Wal.Abort t ->
          Hashtbl.remove live t;
          Hashtbl.remove prepared t
      | Wal.Write _ | Wal.Checkpoint -> ())
    entries;
  Hashtbl.fold (fun t () acc -> t :: acc) prepared [] |> List.sort Int.compare

(* per shard: the first terminal record (Commit/Abort) per transaction *)
let outcomes_of entries =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun { Wal.record; _ } ->
      match record with
      | Wal.Commit t -> if not (Hashtbl.mem tbl t) then Hashtbl.replace tbl t `Commit
      | Wal.Abort t -> if not (Hashtbl.mem tbl t) then Hashtbl.replace tbl t `Abort
      | _ -> ())
    entries;
  tbl

let sorted_txns tbl =
  Hashtbl.fold (fun t _ acc -> t :: acc) tbl [] |> List.sort_uniq Int.compare

(* --- 2C001 / 2C005 — the coordinator log's own coherence ------------------ *)

let decide_pass input =
  let participants = participants_of input in
  let votes = Hashtbl.create 8 in
  List.iter
    (fun { Coord_log.record; _ } ->
      match record with
      | Coord_log.Vote { txn; shard; yes } ->
          if yes then Hashtbl.replace votes (txn, shard) ()
      | _ -> ())
    input.coord;
  let first_decision = Hashtbl.create 8 in
  let diags = ref [] in
  List.iteri
    (fun i { Coord_log.record; _ } ->
      match record with
      | Coord_log.Decide { txn; decision } -> (
          (match Hashtbl.find_opt first_decision txn with
          | Some d when d <> decision ->
              diags :=
                Diagnostic.error ~loc:i
                  ~subject:(Coord_log.record_to_string record) "2C005"
                  (Printf.sprintf
                     "conflicting decisions: transaction %d was already \
                      decided %s, now decided %s"
                     txn
                     (Coord_log.decision_to_string d)
                     (Coord_log.decision_to_string decision))
                :: !diags
          | Some _ -> ()
          | None -> Hashtbl.replace first_decision txn decision);
          if decision = Coord_log.Commit then
            match Hashtbl.find_opt participants txn with
            | None ->
                diags :=
                  Diagnostic.error ~loc:i
                    ~subject:(Coord_log.record_to_string record) "2C001"
                    (Printf.sprintf
                       "decide(commit) for transaction %d without a Begin \
                        naming its participants"
                       txn)
                  :: !diags
            | Some shards ->
                let missing =
                  List.filter
                    (fun k -> not (Hashtbl.mem votes (txn, k)))
                    shards
                in
                if missing <> [] then
                  diags :=
                    Diagnostic.error ~loc:i
                      ~subject:(Coord_log.record_to_string record) "2C001"
                      (Printf.sprintf
                         "decide(commit) for transaction %d without a \
                          yes-vote from every participant (missing shard%s \
                          %s)"
                         txn
                         (if List.length missing = 1 then "" else "s")
                         (String.concat ", " (List.map string_of_int missing)))
                    :: !diags)
      | _ -> ())
    input.coord;
  List.rev !diags

(* --- 2C002 — prepared-forever shards -------------------------------------- *)

let prepared_pass input =
  let decisions = decisions_of input in
  List.concat_map
    (fun (k, entries) ->
      List.map
        (fun txn ->
          let tail =
            match Hashtbl.find_opt decisions txn with
            | Some Coord_log.Commit ->
                "the coordinator decided commit; restart resolution will \
                 complete it"
            | Some Coord_log.Abort ->
                "the coordinator decided abort; restart recovery will undo it"
            | None ->
                "no surviving decision; restart recovery will presume abort"
          in
          Diagnostic.warning
            ~subject:(Printf.sprintf "shard %d: prepare(%d)" k txn)
            "2C002"
            (Printf.sprintf
               "shard %d leaves transaction %d prepared (in doubt) — %s" k txn
               tail))
        (prepared_at_end entries))
    input.shards

(* --- 2C003 — a commit with no surviving prepare ---------------------------- *)

let provenance_pass input =
  let participants = participants_of input in
  List.concat_map
    (fun (k, entries) ->
      let prepared = Hashtbl.create 8 in
      let diags = ref [] in
      List.iteri
        (fun i { Wal.record; _ } ->
          match record with
          | Wal.Prepare t -> Hashtbl.replace prepared t ()
          | Wal.Commit t ->
              if Hashtbl.mem participants t && not (Hashtbl.mem prepared t)
              then
                diags :=
                  Diagnostic.error ~loc:i
                    ~subject:(Printf.sprintf "shard %d: commit(%d)" k t)
                    "2C003"
                    (Printf.sprintf
                       "shard %d commits distributed transaction %d with no \
                        surviving Prepare — the vote this commit depends on \
                        is gone from the log"
                       k t)
                  :: !diags
          | _ -> ())
        entries;
      List.rev !diags)
    input.shards

(* --- 2C004 — mixed outcomes across shards ---------------------------------- *)

let agreement_pass input =
  let per_txn = Hashtbl.create 8 in
  List.iter
    (fun (k, entries) ->
      let outcomes = outcomes_of entries in
      Hashtbl.iter
        (fun txn o ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt per_txn txn)
          in
          Hashtbl.replace per_txn txn ((k, o) :: prev))
        outcomes)
    input.shards;
  List.filter_map
    (fun txn ->
      let outs = List.rev (Hashtbl.find per_txn txn) in
      let committed = List.filter (fun (_, o) -> o = `Commit) outs in
      let aborted = List.filter (fun (_, o) -> o = `Abort) outs in
      if committed <> [] && aborted <> [] then
        let names l = String.concat ", " (List.map (fun (k, _) -> string_of_int k) l) in
        Some
          (Diagnostic.error
             ~subject:(Printf.sprintf "transaction %d" txn)
             "2C004"
             (Printf.sprintf
                "atomicity violation: transaction %d committed on shard%s %s \
                 but aborted on shard%s %s"
                txn
                (if List.length committed = 1 then "" else "s")
                (names committed)
                (if List.length aborted = 1 then "" else "s")
                (names aborted)))
      else None)
    (sorted_txns per_txn)

(* --- 2C006 — forgetting too early ------------------------------------------ *)

let forget_pass input =
  let decisions = decisions_of input in
  let prepared =
    List.concat_map
      (fun (k, entries) ->
        List.map (fun t -> (t, k)) (prepared_at_end entries))
      input.shards
  in
  let diags = ref [] in
  List.iteri
    (fun i { Coord_log.record; _ } ->
      match record with
      | Coord_log.Forget txn -> (
          (if not (Hashtbl.mem decisions txn) then
             diags :=
               Diagnostic.error ~loc:i
                 ~subject:(Coord_log.record_to_string record) "2C006"
                 (Printf.sprintf
                    "forget(%d) without a surviving decision — the \
                     coordinator forgot a transaction it never decided"
                    txn)
               :: !diags);
          let still_prepared =
            List.filter_map
              (fun (t, k) -> if t = txn then Some k else None)
              prepared
          in
          if still_prepared <> [] then
            diags :=
              Diagnostic.error ~loc:i
                ~subject:(Coord_log.record_to_string record) "2C006"
                (Printf.sprintf
                   "forget(%d) while shard%s %s still hold%s it prepared — \
                    the coordinator forgot before every acknowledgement"
                   txn
                   (if List.length still_prepared = 1 then "" else "s")
                   (String.concat ", " (List.map string_of_int still_prepared))
                   (if List.length still_prepared = 1 then "s" else ""))
              :: !diags)
      | _ -> ())
    input.coord;
  List.rev !diags

let passes =
  [
    Pass.make "2pc-decisions" decide_pass;
    Pass.make "2pc-prepared" prepared_pass;
    Pass.make "2pc-provenance" provenance_pass;
    Pass.make "2pc-agreement" agreement_pass;
    Pass.make "2pc-forget" forget_pass;
  ]

let lint input = Pass.run_all passes input
let lint_base base = lint (of_base base)
