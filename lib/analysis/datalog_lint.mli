(** Static analysis of Datalog programs.

    Diagnostic codes:
    - [DL001] (error) unsafe rule — a head / negated-atom / comparison
      variable does not occur in a positive body atom
    - [DL002] (error) not stratifiable — negation on a recursive cycle
    - [DL003] (error) predicate used with inconsistent arities
    - [DL004] (warning) referenced predicate with no rules and no facts
    - [DL005] (warning) defined predicate that nothing reads
    - [DL006] (warning) cartesian-product rule body (variable-disjoint
      positive atoms)
    - [DL007] (warning) duplicate or subsumed rule (CQ containment)
    - [DL008] (info) dead rule — unreachable from the query (only
      emitted when a query is supplied) *)

type input = {
  program : Datalog.Ast.program;
  query : Datalog.Ast.query option;
}
(** What the passes see: the program plus the optional query that
    enables reachability-based analyses. *)

val passes : input Pass.t list
(** The DL pass suite, for {!Pass.run_all} / {!Pass.drive}. *)

val lint : ?query:Datalog.Ast.query -> Datalog.Ast.program -> Diagnostic.t list
(** Runs every pass and returns the sorted diagnostics. *)
