module Ast = Datalog.Ast
module Checks = Datalog.Checks
module Containment = Datalog.Containment

type input = { program : Ast.program; query : Ast.query option }

let rule_subject r = Ast.rule_to_string r

(* DL001 — range-restriction (safety) violations, all of them. *)
let safety_pass { program; _ } =
  List.concat
    (List.mapi
       (fun i rule ->
         List.map
           (fun msg ->
             Diagnostic.error ~subject:(rule_subject rule) ~loc:i "DL001" msg)
           (Checks.safety_violations [ rule ]))
       program)

(* DL002 — negation through recursion: no stratification exists. *)
let stratification_pass { program; _ } =
  match Checks.stratification_conflict program with
  | Some msg -> [ Diagnostic.error "DL002" msg ]
  | None -> []

(* DL003 — a predicate used with two different arities.  The first use
   fixes the expected arity; every later disagreeing use is reported. *)
let arity_pass { program; query } =
  let expected : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let check loc atom =
    let n = List.length atom.Ast.args in
    match Hashtbl.find_opt expected atom.Ast.pred with
    | None ->
        Hashtbl.add expected atom.Ast.pred n;
        []
    | Some n' when n = n' -> []
    | Some n' ->
        [
          Diagnostic.error ?loc ~subject:(Ast.atom_to_string atom) "DL003"
            (Printf.sprintf
               "predicate %s used with arity %d here but arity %d elsewhere"
               atom.Ast.pred n n');
        ]
  in
  let from_rules =
    List.concat
      (List.mapi
         (fun i rule ->
           check (Some i) rule.Ast.head
           @ List.concat_map
               (fun lit ->
                 match Ast.atom_of lit with
                 | Some a -> check (Some i) a
                 | None -> [])
               rule.Ast.body)
         program)
  in
  let from_query =
    match query with Some q -> check None q | None -> []
  in
  from_rules @ from_query

(* DL004 — a referenced predicate with no rules and no facts: under
   in-file evaluation it is always empty, so every rule reading it
   positively derives nothing. *)
let undefined_pass { program; query } =
  let defined = Ast.idb_predicates program in
  let first_use p =
    List.find_index
      (fun r -> List.mem p (Ast.body_preds r))
      program
  in
  let from_bodies =
    List.filter_map
      (fun p ->
        if List.mem p defined then None
        else
          Some
            (Diagnostic.warning ?loc:(first_use p) "DL004"
               (Printf.sprintf
                  "predicate %s has no rules and no facts; it is always empty"
                  p)))
      (List.sort_uniq String.compare (List.concat_map Ast.body_preds program))
  in
  let from_query =
    match query with
    | Some q
      when (not (List.mem q.Ast.pred defined))
           && not
                (List.mem q.Ast.pred
                   (List.concat_map Ast.body_preds program)) ->
        [
          Diagnostic.warning ~subject:(Ast.atom_to_string q) "DL004"
            (Printf.sprintf
               "queried predicate %s has no rules and no facts; the answer \
                is always empty"
               q.Ast.pred);
        ]
    | _ -> []
  in
  from_bodies @ from_query

(* DL005 — a defined predicate nothing reads.  With a query, anything
   other than the query target counts; without one every rule-defined
   predicate is a potential output, so only fact-only predicates are
   flagged. *)
let unused_pass { program; query } =
  let used = List.concat_map Ast.body_preds program in
  let rule_defined =
    List.filter_map
      (fun r -> if r.Ast.body = [] then None else Some (Ast.head_pred r))
      program
  in
  List.filter_map
    (fun p ->
      let is_query = match query with Some q -> q.Ast.pred = p | None -> false in
      let fact_only = not (List.mem p rule_defined) in
      if List.mem p used || is_query then None
      else if query = None && not fact_only then None
      else
        let loc = List.find_index (fun r -> Ast.head_pred r = p) program in
        Some
          (Diagnostic.warning ?loc "DL005"
             (Printf.sprintf
                "predicate %s is defined but never used%s" p
                (match query with
                | Some _ -> " and is not the query target"
                | None -> " by any rule"))))
    (Ast.idb_predicates program)

(* DL006 — a rule body whose positive atoms split into variable-disjoint
   groups: evaluation forms their cartesian product. *)
let cartesian_pass { program; _ } =
  let module Ss = Set.Make (String) in
  List.concat
    (List.mapi
       (fun i rule ->
         let var_atoms =
           List.filter_map
             (fun lit ->
               match lit with
               | Ast.Pos a when Ast.atom_vars a <> [] ->
                   Some (Ss.of_list (Ast.atom_vars a))
               | _ -> None)
             rule.Ast.body
         in
         (* comparisons can connect two atoms (q(X), r(Y), X < Y) *)
         let connectors =
           List.filter_map
             (fun lit ->
               match lit with
               | Ast.Cmp (_, a, b) ->
                   let vs = Ast.term_vars a @ Ast.term_vars b in
                   if List.length vs >= 2 then Some (Ss.of_list vs) else None
               | _ -> None)
             rule.Ast.body
         in
         let rec components groups = function
           | [] -> groups
           | vs :: rest ->
               let overlapping, disjoint =
                 List.partition (fun g -> not (Ss.is_empty (Ss.inter g vs))) groups
               in
               let merged = List.fold_left Ss.union vs overlapping in
               components (merged :: disjoint) rest
         in
         (* seed with the atoms, then let connectors merge groups; a
            connector can bridge previously-merged groups, so iterate to a
            fixpoint over the connector list *)
         let rec fix groups =
           let groups' = components groups connectors in
           if List.length groups' = List.length groups then groups'
           else fix groups'
         in
         let groups = fix (components [] var_atoms) in
         if List.length var_atoms >= 2 && List.length groups >= 2 then
           [
             Diagnostic.warning ~subject:(rule_subject rule) ~loc:i "DL006"
               (Printf.sprintf
                  "rule body forms a cartesian product: its positive atoms \
                   split into %d variable-disjoint groups"
                  (List.length groups));
           ]
         else [])
       program)

(* DL007 — duplicate or subsumed rules, by Chandra–Merlin containment on
   the rules read as conjunctive queries (sound per derivation step, so
   also sound under recursion). *)
let subsumption_pass { program; _ } =
  let as_cq r = try Some (Containment.of_rule r) with _ -> None in
  let indexed = List.mapi (fun i r -> (i, r, as_cq r)) program in
  List.concat_map
    (fun (i, ri, qi) ->
      List.concat_map
        (fun (j, rj, qj) ->
          if j <= i || Ast.head_pred ri <> Ast.head_pred rj then []
          else
            match (qi, qj) with
            | Some qi, Some qj ->
                if Containment.equivalent qi qj then
                  [
                    Diagnostic.warning ~subject:(rule_subject rj) ~loc:j "DL007"
                      (Printf.sprintf
                         "rule #%d duplicates rule #%d (equivalent as \
                          conjunctive queries)"
                         j i);
                  ]
                else if Containment.contained qi qj then
                  [
                    Diagnostic.warning ~subject:(rule_subject ri) ~loc:i "DL007"
                      (Printf.sprintf
                         "rule #%d is subsumed by rule #%d: everything it \
                          derives, #%d derives too"
                         i j j);
                  ]
                else if Containment.contained qj qi then
                  [
                    Diagnostic.warning ~subject:(rule_subject rj) ~loc:j "DL007"
                      (Printf.sprintf
                         "rule #%d is subsumed by rule #%d: everything it \
                          derives, #%d derives too"
                         j i i);
                  ]
                else []
            | _ -> [])
        indexed)
    indexed

(* DL008 — rules that cannot contribute to the query: their head
   predicate is unreachable from the query predicate in the dependency
   graph. *)
let dead_rule_pass { program; query } =
  match query with
  | None -> []
  | Some q ->
      let deps = Checks.dependencies program in
      let rec reach seen frontier =
        match frontier with
        | [] -> seen
        | p :: rest ->
            if List.mem p seen then reach seen rest
            else
              let next =
                List.filter_map
                  (fun d ->
                    if d.Checks.from_pred = p then Some d.Checks.to_pred
                    else None)
                  deps
              in
              reach (p :: seen) (next @ rest)
      in
      let reachable = reach [] [ q.Ast.pred ] in
      List.concat
        (List.mapi
           (fun i rule ->
             if List.mem (Ast.head_pred rule) reachable then []
             else
               [
                 Diagnostic.info ~subject:(rule_subject rule) ~loc:i "DL008"
                   (Printf.sprintf
                      "dead rule: %s is unreachable from the query %s"
                      (Ast.head_pred rule)
                      (Ast.atom_to_string q));
               ])
           program)

let passes : input Pass.t list =
  [
    Pass.make "safety" safety_pass;
    Pass.make "stratification" stratification_pass;
    Pass.make "arity" arity_pass;
    Pass.make "undefined-predicate" undefined_pass;
    Pass.make "unused-predicate" unused_pass;
    Pass.make "cartesian-body" cartesian_pass;
    Pass.make "rule-subsumption" subsumption_pass;
    Pass.make "dead-rule" dead_rule_pass;
  ]

let lint ?query program = Pass.run_all passes { program; query }
