(** The offline WAL verifier behind [dbmeta lint wal]: protocol checks
    over a read-only scan ({!Storage.Wal.report}) of a binary log,
    runnable against a log owned by a crashed process.

    Diagnostic codes:
    - [WL001] (error) non-monotone LSN — a record's byte offset does not
      advance past its predecessor's
    - [WL002] (error) overlapping frames — a record starts inside the
      previous record's frame
    - [WL003] (error) Write/Commit/Abort without a live Begin
    - [WL004] (error) duplicate Begin, or activity after termination
    - [WL005] (error) compensation record outside an abort/recovery
      episode — no matching forward write, or the transaction later
      commits
    - [WL006] (error) checkpoint contradicts the live-transaction set
      (this engine's checkpoints are quiescent)
    - [WL007] (warning) torn tail — bytes after the last valid frame
      that never resync; the tolerated crash artifact the next open
      truncates
    - [WL008] (error) mid-log corruption — an invalid frame with intact,
      decodable frames after it; a tolerant open would silently lose the
      suffix
    - [WL009] (info) a transaction is still live when the log ends —
      normal after a crash; restart recovery resolves it as a loser
    - [WL010] (error) broken before-image chain — a write's before-image
      disagrees with the item's last logged after-image (repeating
      history made impossible)

    The engine-correctness contract, QCheck-tested: any log produced by
    {!Storage.Engine} (and, for crash-only fault specs, any survivor log
    it leaves behind) lints with {e zero errors}, while a single mutated
    byte in the durable prefix yields at least one WL diagnostic. *)

type input = Storage.Wal.report
(** The read-only scan the passes interpret. *)

val passes : input Pass.t list
(** The WL pass suite, for {!Pass.run_all} / {!Pass.drive}. *)

val lint : input -> Diagnostic.t list
(** Runs every pass over a scan report and returns sorted diagnostics. *)

val lint_file : string -> Diagnostic.t list
(** {!lint} over {!Storage.Wal.report_file} — the file is opened
    read-only, never truncated or repaired. *)

val lint_entries : Storage.Wal.entry list -> Diagnostic.t list
(** {!lint} over a synthetic damage-free report built from the entries
    (for tests and for auditing an in-memory log). *)
