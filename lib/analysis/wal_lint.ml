(* The offline WAL verifier: protocol checks over a read-only scan of a
   binary log (Storage.Wal.report).  The engine's logging discipline —
   frame integrity, transaction bracketing, compensation episodes,
   quiescent checkpoints, the before-image chain — is small enough to
   state exactly, so any engine-produced log must lint with zero errors
   and any seeded corruption must surface.  Tolerated crash damage (a
   torn tail) is a warning; damage the tolerant open would silently
   amplify into data loss (mid-log corruption with intact frames after
   it) is an error. *)

module Wal = Storage.Wal

type input = Wal.report

let subject_of entry =
  Printf.sprintf "lsn %d: %s" entry.Wal.lsn (Wal.record_to_string entry.Wal.record)

let frame_length entry = String.length (Wal.frame_of_record entry.Wal.record)

(* WL001/WL002 — LSNs must advance, and by at least the previous frame's
   length: a record's LSN is its byte offset, so anything else means the
   entry list does not describe a physically possible file. *)
let framing_pass (r : input) =
  let diags = ref [] in
  let prev = ref None in
  List.iteri
    (fun i entry ->
      (match !prev with
      | Some p when entry.Wal.lsn <= p.Wal.lsn ->
          diags :=
            Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL001"
              (Printf.sprintf
                 "non-monotone LSN: record at offset %d follows one at \
                  offset %d"
                 entry.Wal.lsn p.Wal.lsn)
            :: !diags
      | Some p when entry.Wal.lsn < p.Wal.lsn + frame_length p ->
          diags :=
            Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL002"
              (Printf.sprintf
                 "overlapping frames: record at offset %d starts inside the \
                  %d-byte frame at offset %d"
                 entry.Wal.lsn (frame_length p) p.Wal.lsn)
            :: !diags
      | _ -> ());
      prev := Some entry)
    r.Wal.records;
  List.rev !diags

(* WL007/WL008 — bytes after the last valid frame.  Without a resync
   point this is the torn tail every crash leaves (tolerated: the next
   open truncates it); with one, intact history follows the damage, and
   the tolerant open would silently discard it — data loss. *)
let damage_pass (r : input) =
  if r.Wal.clean_bytes >= r.Wal.total_bytes then []
  else
    let tail = r.Wal.total_bytes - r.Wal.clean_bytes in
    match r.Wal.resync with
    | None ->
        [
          Diagnostic.warning ~loc:(List.length r.Wal.records) "WL007"
            (Printf.sprintf
               "torn tail: %d byte(s) after the last valid frame at offset \
                %d do not form a record — tolerated crash damage; the next \
                open truncates it"
               tail r.Wal.clean_bytes);
        ]
    | Some { Wal.resync_at; resync_records } ->
        [
          Diagnostic.error ~loc:(List.length r.Wal.records)
            ~subject:
              (Printf.sprintf "%d decodable record(s) resume at offset %d"
                 (List.length resync_records) resync_at)
            "WL008"
            (Printf.sprintf
               "mid-log corruption: the frame at offset %d is invalid but \
                intact frames resume at offset %d — a tolerant open would \
                silently lose the %d-byte suffix"
               r.Wal.clean_bytes resync_at
               (r.Wal.total_bytes - r.Wal.clean_bytes));
        ]

type fate = Live | Committed | Aborted

(* WL003/WL004/WL009 — transaction bracketing: every Write/Commit/Abort
   needs a live Begin, no id begins or terminates twice, and whoever is
   still live when the log ends is a loser for recovery to resolve
   (informational: that is the normal after-crash state). *)
let bracket_pass (r : input) =
  let state : (int, fate) Hashtbl.t = Hashtbl.create 8 in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let require_live i entry t what =
    match Hashtbl.find_opt state t with
    | Some Live -> true
    | Some _ ->
        emit
          (Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL004"
             (Printf.sprintf
                "transaction %d %s after it already terminated" t what));
        false
    | None ->
        emit
          (Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL003"
             (Printf.sprintf
                "transaction %d %s without a live Begin" t what));
        false
  in
  List.iteri
    (fun i entry ->
      match entry.Wal.record with
      | Wal.Begin t -> (
          match Hashtbl.find_opt state t with
          | None -> Hashtbl.replace state t Live
          | Some _ ->
              emit
                (Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL004"
                   (Printf.sprintf
                      "duplicate Begin: transaction id %d was already used"
                      t)))
      | Wal.Write { txn; compensation; _ } ->
          ignore
            (require_live i entry txn
               (if compensation then "logs a compensation write"
                else "writes")
              : bool)
      | Wal.Commit t ->
          if require_live i entry t "commits" then
            Hashtbl.replace state t Committed
      | Wal.Abort t ->
          if require_live i entry t "aborts" then
            Hashtbl.replace state t Aborted
      | Wal.Prepare t ->
          (* a prepared txn is still live: only a Commit/Abort ends it *)
          ignore (require_live i entry t "prepares" : bool)
      | Wal.Checkpoint -> ())
    r.Wal.records;
  let live =
    Hashtbl.fold (fun t f acc -> if f = Live then t :: acc else acc) state []
    |> List.sort Int.compare
  in
  List.iter
    (fun t ->
      emit
        (Diagnostic.info "WL009"
           (Printf.sprintf
              "transaction %d is still live when the log ends — restart \
               recovery will resolve it as a loser"
              t)))
    live;
  List.rev !diags

(* WL005 — compensation records belong to abort/recovery episodes: a CLR
   must undo a write this transaction actually logged, and the
   transaction must end in Abort (or the log's end), never Commit. *)
let compensation_pass (r : input) =
  let commits =
    List.filter_map
      (fun e -> match e.Wal.record with Wal.Commit t -> Some t | _ -> None)
      r.Wal.records
  in
  let written : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let diags = ref [] in
  List.iteri
    (fun i entry ->
      match entry.Wal.record with
      | Wal.Write { txn; item; compensation = false; _ } ->
          Hashtbl.replace written (txn, item) ()
      | Wal.Write { txn; item; compensation = true; _ } ->
          if not (Hashtbl.mem written (txn, item)) then
            diags :=
              Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL005"
                (Printf.sprintf
                   "compensation outside an abort episode: transaction %d \
                    never logged a write to %s, so there is nothing to undo"
                   txn item)
              :: !diags
          else if List.mem txn commits then
            diags :=
              Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL005"
                (Printf.sprintf
                   "compensation outside an abort episode: transaction %d \
                    logs a compensation write but later commits"
                   txn)
              :: !diags
      | _ -> ())
    r.Wal.records;
  List.rev !diags

(* WL006 — checkpoints are quiescent in this engine: one taken while
   transactions are live contradicts the live-transaction set and would
   let redo start too late. *)
let checkpoint_pass (r : input) =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let diags = ref [] in
  List.iteri
    (fun i entry ->
      match entry.Wal.record with
      | Wal.Begin t -> Hashtbl.replace live t ()
      | Wal.Commit t | Wal.Abort t -> Hashtbl.remove live t
      | Wal.Write _ | Wal.Prepare _ -> ()
      | Wal.Checkpoint ->
          if Hashtbl.length live > 0 then
            let txns =
              Hashtbl.fold (fun t () acc -> t :: acc) live []
              |> List.sort Int.compare |> List.map string_of_int
              |> String.concat ", "
            in
            diags :=
              Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL006"
                (Printf.sprintf
                   "checkpoint contradicts the live-transaction set: \
                    transaction(s) {%s} are still running at a quiescent \
                    checkpoint"
                   txns)
              :: !diags)
    r.Wal.records;
  List.rev !diags

(* WL010 — the before-image chain: repeating history means every write's
   before-image equals the item's last logged after-image (0 for a fresh
   item), compensation writes included.  A broken chain is a write that
   was logged against state the log cannot account for. *)
let chain_pass (r : input) =
  let last : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let diags = ref [] in
  List.iteri
    (fun i entry ->
      match entry.Wal.record with
      | Wal.Write { item; before; after; _ } ->
          let expected =
            Option.value ~default:0 (Hashtbl.find_opt last item)
          in
          if before <> expected then
            diags :=
              Diagnostic.error ~loc:i ~subject:(subject_of entry) "WL010"
                (Printf.sprintf
                   "broken before-image chain: the write claims %s was %d \
                    but the log last left it at %d"
                   item before expected)
              :: !diags;
          Hashtbl.replace last item after
      | _ -> ())
    r.Wal.records;
  List.rev !diags

let passes : input Pass.t list =
  [
    Pass.make "framing" framing_pass;
    Pass.make "damage" damage_pass;
    Pass.make "transaction-bracketing" bracket_pass;
    Pass.make "compensation-episodes" compensation_pass;
    Pass.make "quiescent-checkpoints" checkpoint_pass;
    Pass.make "before-image-chain" chain_pass;
  ]

let lint report = Pass.run_all passes report

let lint_file path = lint (Wal.report_file path)

let lint_entries records =
  let total =
    List.fold_left
      (fun acc e -> max acc (e.Wal.lsn + frame_length e))
      0 records
  in
  lint
    { Wal.records; clean_bytes = total; total_bytes = total; resync = None }
