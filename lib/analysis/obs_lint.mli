(** The metric-catalogue lint behind [dbmeta lint metrics]: checks the
    runtime's registered metric names against the documented catalogue
    (docs/OBSERVABILITY.md) in both directions.

    Codes:
    - {b OB001} (error) — a metric name registered at runtime does not
      appear in the catalogue; the docs are incomplete.
    - {b OB002} (warning) — the catalogue documents an exact name in a
      metric family the runtime knows (same first dotted segment), but
      the runtime never registers it; the docs are stale.

    A catalogue entry is any backtick-quoted dotted token, e.g.
    [`pool.hits`].  A trailing [*] segment documents a whole family —
    [`fault.torn.*`] covers every per-site torn-write counter — since
    per-site names are data-dependent and cannot be enumerated.  When
    the text has a [## Metric catalogue] heading, only that section (up
    to the next level-2 heading) is scanned, so span names documented
    elsewhere in the file are not mistaken for metrics. *)

val documented_names : string -> string list
(** The metric names (and [family.*] globs) a catalogue text documents,
    sorted and deduplicated — exposed for tests. *)

type input = { registered : string list; catalogue_text : string }
(** [registered] is the name set from a fully-instrumented synthetic run
    ({!Obs.Registry.names}); [catalogue_text] is the markdown catalogue. *)

val passes : input Pass.t list
(** The suite [dbmeta lint metrics] drives through {!Pass.drive} — the
    same pipeline as every other lint subcommand. *)

val lint : registered:string list -> catalogue_text:string -> Diagnostic.t list
(** Runs {!passes}; returns sorted diagnostics (errors first). *)
