(** Severity-graded diagnostics shared by every lint suite.

    A diagnostic carries a stable machine-readable code (["DL001"],
    ["RA002"], ["TX003"], ...), a severity, a message, and optionally the
    offending artifact fragment ([subject]) and its position ([loc]: rule
    index in a program, operation index in a schedule).  Renderers
    produce both a human text format and a machine JSON format; the JSON
    round-trips through {!list_of_json}. *)

type severity = Error | Warning | Info
(** Errors fail the lint (exit 1); warnings and infos do not. *)

type t = {
  code : string;
  severity : severity;
  message : string;
  subject : string option;
  loc : int option;
}
(** One finding: stable code, severity, message, and the optional
    offending fragment and position. *)

val make :
  ?subject:string -> ?loc:int -> code:string -> severity:severity -> string -> t
(** The general constructor behind {!error}/{!warning}/{!info}. *)

val error : ?subject:string -> ?loc:int -> string -> string -> t
(** [error code message]. *)

val warning : ?subject:string -> ?loc:int -> string -> string -> t
(** [warning code message]. *)

val info : ?subject:string -> ?loc:int -> string -> string -> t
(** [info code message]. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], or ["info"]. *)

val severity_of_string : string -> severity option
(** Inverse of {!severity_to_string}. *)

val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties broken by code, then
    location, then message. *)

val sort : t list -> t list

val has_errors : t list -> bool
(** Whether any diagnostic is error-severity. *)

val exit_code : t list -> int
(** Exit-code policy: 1 when any [Error] is present, 0 otherwise
    (warnings and infos do not fail the lint). *)

val to_text : t -> string
val list_to_text : t list -> string
(** One line per diagnostic plus a severity-count summary line. *)

val summary : t list -> string

val to_json : t -> string
(** One diagnostic as a JSON object. *)

val list_to_json : t list -> string
(** A JSON array of objects with fields [code], [severity], [message],
    and optional [subject], [loc]. *)

exception Json_error of string

val list_of_json : string -> t list
(** Inverse of {!list_to_json}.  Raises {!Json_error} on malformed
    input. *)
