(** The distributed-protocol lint behind [dbmeta lint commit]:
    cross-log agreement checks between a 2PC coordinator log and its
    shard WALs, all scanned read-only (runnable against the survivor
    files of a crashed run).

    Diagnostic codes:
    - [2C001] (error) Decide(commit) without a yes-vote from every
      participant (or without a Begin naming the participants at all)
    - [2C002] (warning) a shard leaves a transaction prepared (in
      doubt) at the end of its log — normal after a crash; the message
      says how restart resolution will settle it
    - [2C003] (error) a shard commits a distributed transaction with
      no surviving Prepare — the vote the commit depends on is gone
    - [2C004] (error) atomicity violation: one transaction committed
      on some shards and aborted on others
    - [2C005] (error) conflicting Decide records for one transaction
    - [2C006] (error) Forget while some shard still holds the
      transaction prepared, or Forget without any surviving decision

    The protocol-correctness contract, QCheck-tested: survivor logs of
    any crash-budget sweep over a 2PC workload lint with zero errors
    (2C002 warnings are expected — they are what the termination
    protocol resolves).  Probabilistic disk corruption can lose
    decided history; the errors then name exactly what was lost. *)

type input = {
  coord : Distributed.Coord_log.entry list;
  shards : (int * Storage.Wal.entry list) list;
}
(** The coordinator's surviving records plus each shard's, by shard
    id. *)

val of_base : string -> input
(** Scan [base.2pc] and every discovered [base.shardK.wal]
    read-only. *)

val passes : input Pass.t list
(** The 2C pass suite, for {!Pass.run_all} / {!Pass.drive}. *)

val lint : input -> Diagnostic.t list
(** Runs every pass and returns sorted diagnostics. *)

val lint_base : string -> Diagnostic.t list
(** {!lint} over {!of_base}. *)
