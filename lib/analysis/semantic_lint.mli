(** Semantic query analysis — the lint passes that apply the paper's
    metatheory (Chandra–Merlin containment, tableau minimization, the
    chase under functional dependencies) to queries, Datalog programs,
    and the planner's own rewrites.

    Relational codes (over algebra plans):
    - [SQ001] (warning) unsatisfiable selection — contradictory constant
      constraints found by interval analysis of the conjuncts
    - [SQ002] (warning) query provably empty — conflicting constants
      after join unification, a self-contradictory comparison, or a
      chase failure under the supplied dependencies
    - [SQ003] (warning) redundant join — the CQ core (chase + tableau
      minimization) needs strictly fewer relation occurrences
    - [SQ004] (warning) set-operation arms related by containment — a
      union arm that adds nothing, an intersection equal to one arm, a
      difference that is provably empty
    - [SQ005] (info) cartesian product bridged by an equality selection
      — a rename away from a natural join

    Datalog codes (over {!Datalog_lint.input}, alongside the DL suite):
    - [SQ006] (info) bounded recursion — every directly-recursive rule
      of a predicate is contained in a non-recursive rule of it
    - [SQ007] (warning) dead rule — a positive body atom over a
      provably-empty predicate, or (given a query whose predicate feeds
      nothing else) a head whose constants cannot unify with the query's
    - [SQ008] (info) redundant body atom — tableau minimization drops it

    Certifier codes (from {!Planner.Certify} reports):
    - [SQ101] (error) a logical rewrite stage refuted
    - [SQ102] (error) the physical plan's logical shadow refuted
    - [SQ103] (info) a stage outside the certifiable fragment, skipped *)

type input = {
  catalog : string -> Relational.Schema.t option;
  fds : Datalog.Containment.fd list;
  plan : Relational.Algebra.t;
}
(** What the relational passes see: {!Relational_lint.input} widened
    with the functional dependencies to chase under (possibly empty —
    containment and minimization still apply). *)

val passes : input Pass.t list
(** The SQ001–SQ005 suite, for {!Pass.run_all} / {!Pass.drive}.  Use
    {!Pass.adapt} to run it in one drive with the RA passes. *)

val lint :
  catalog:(string -> Relational.Schema.t option) ->
  ?fds:Datalog.Containment.fd list ->
  Relational.Algebra.t ->
  Diagnostic.t list
(** Runs the relational suite and returns the sorted diagnostics. *)

val datalog_passes : Datalog_lint.input Pass.t list
(** The SQ006–SQ008 suite, over the same artifact as
    {!Datalog_lint.passes} so the two concatenate. *)

val of_certify : Planner.Certify.report -> Diagnostic.t list
(** The certifier's verdicts as diagnostics: refuted stages are SQ101
    (SQ102 for the physical shadow) errors, skipped stages SQ103 info,
    equivalent stages silent. *)

val fd_of_spec :
  catalog:(string -> Relational.Schema.t option) ->
  string ->
  (Datalog.Containment.fd, string) result
(** Parses a ["table: a b -> c d"] dependency spec (the CLI's [--fd]
    flag) against the catalog into a positional dependency. *)
