(** Static analysis of relational algebra plans against a catalog.

    Diagnostic codes:
    - [RA001] (error) unknown relation
    - [RA002] (error) unknown / duplicate attribute (projection, rename,
      predicate, product clash, divide)
    - [RA003] (error) type mismatch — comparison across types, join on a
      shared attribute with differing types, incompatible set operation
    - [RA004] (warning) cartesian product — explicit, or a natural join
      whose sides share no attribute
    - [RA005] (warning) missed selection push-down — the optimizer's
      push-down pass would move a selection closer to the leaves
    - [RA006] (warning) projection drops a join key — an attribute shared
      with the other join side is projected away before the join

    The schema inference behind the typing pass recovers from errors (an
    ill-typed subtree gets schema [None]) so a single bad leaf does not
    mask other defects. *)

type input = {
  catalog : string -> Relational.Schema.t option;
  plan : Relational.Algebra.t;
}
(** What the passes see: the plan plus the catalog resolving its leaf
    relations. *)

val infer :
  (string -> Relational.Schema.t option) ->
  Relational.Algebra.t ->
  Relational.Schema.t option * Diagnostic.t list
(** Error-recovering schema inference: the plan's schema when it has one,
    plus every typing diagnostic found along the way. *)

val passes : input Pass.t list
(** The RA pass suite, for {!Pass.run_all} / {!Pass.drive}. *)

val lint :
  catalog:(string -> Relational.Schema.t option) ->
  Relational.Algebra.t ->
  Diagnostic.t list
(** Runs every pass and returns the sorted diagnostics. *)

val catalog_of_database :
  Relational.Database.t -> string -> Relational.Schema.t option
(** A catalog backed by a loaded database's table schemas. *)

val catalog_of_alist :
  (string * Relational.Schema.t) list -> string -> Relational.Schema.t option
(** A catalog backed by an explicit name/schema list. *)
