(** The pass-pipeline driver: a pass is a named analysis from an artifact
    to diagnostics; a suite is a list of passes run in order over the
    same artifact, with the results merged and severity-sorted. *)

type 'a t
(** A named analysis pass over artifacts of type ['a]. *)

val make : string -> ('a -> Diagnostic.t list) -> 'a t
(** [make name f] wraps an analysis function as a pass. *)

val name : 'a t -> string
(** The pass name (used in [LINT99] crash diagnostics). *)

val adapt : ('b -> 'a) -> 'a t -> 'b t
(** [adapt f p] runs [p] on [f artifact] — the contravariant map that
    lets suites over different artifact types share one {!drive} (the
    SQ passes widen the RA input with dependencies this way). *)

val run_one : 'a t -> 'a -> Diagnostic.t list
(** Runs one pass; a raised exception becomes a single [LINT99] error
    diagnostic instead of aborting the pipeline. *)

val run_all : 'a t list -> 'a -> Diagnostic.t list
(** Runs every pass and returns the sorted union of their diagnostics. *)

type format = Text | Json
(** The two renderings every lint subcommand offers. *)

val render : format -> Diagnostic.t list -> string
(** {!Diagnostic.list_to_text} or {!Diagnostic.list_to_json}. *)

val drive : format:format -> 'a t list -> 'a -> string * int
(** The one driver behind every [dbmeta lint] subcommand: run the suite,
    render in the requested format, and return the output together with
    the {!Diagnostic.exit_code} (1 when any error-severity diagnostic
    fired, 0 otherwise).  Keeping text/JSON/exit behaviour here — not in
    each CLI front-end — is what makes the subcommands uniform. *)
