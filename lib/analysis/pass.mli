(** The pass-pipeline driver: a pass is a named analysis from an artifact
    to diagnostics; a suite is a list of passes run in order over the
    same artifact, with the results merged and severity-sorted. *)

type 'a t

val make : string -> ('a -> Diagnostic.t list) -> 'a t
val name : 'a t -> string

val run_one : 'a t -> 'a -> Diagnostic.t list
(** Runs one pass; a raised exception becomes a single [LINT99] error
    diagnostic instead of aborting the pipeline. *)

val run_all : 'a t list -> 'a -> Diagnostic.t list
(** Runs every pass and returns the sorted union of their diagnostics. *)
