(** Static analysis of transaction schedules, optionally annotated with
    explicit lock operations ({!Transactions.Locked_schedule}).

    Diagnostic codes:
    - [TX001] (error) malformed schedule — a transaction acts after
      terminating
    - [TX002] (error) not conflict-serializable — each precedence-graph
      cycle is reported with witnessing conflict pairs
    - [TX003] (error) unrecoverable — a reader commits before the writer
      it read from
    - [TX004] (warning) cascading-abort risk — reading from a
      still-active transaction
    - [TX005] (info) not strict — reading or overwriting an item whose
      last writer has not terminated
    - [TX006] (error) lock discipline — access without the required lock,
      or unlock of a lock not held (lock-annotated schedules only)
    - [TX007] (error) two-phase violation — a lock acquired after the
      transaction released one (lock-annotated schedules only)
    - [TX008] (error) conflicting lock grant (lock-annotated schedules
      only)
    - [TX009] (warning) lock leak — a lock still held when the schedule
      ends (lock-annotated schedules only)
    - [TX010] (warning) potential deadlock — conflicting claims taken in
      opposite orders by a cycle of transactions *)

type input = Transactions.Locked_schedule.t
(** A parsed schedule; plain (lock-free) histories skip the
    lock-discipline passes. *)

val passes : input Pass.t list
(** The TX pass suite, for {!Pass.run_all} / {!Pass.drive} (see also
    {!Concurrency_lint.schedule_passes}). *)

val lint : input -> Diagnostic.t list
(** Runs every pass and returns the sorted diagnostics. *)

val lint_string : string -> Diagnostic.t list
(** Parses with {!Transactions.Locked_schedule.of_string}; raises
    [Invalid_argument] on malformed input. *)
