(** The replication lint behind [dbmeta lint repl]: cross-log agreement
    checks between a replication group's primary and replica WALs, plus
    its metadata and ack journal — all scanned read-only, runnable
    against the survivor files of a crashed or failed-over group.

    Diagnostic codes:
    - [RP001] (error) diverged replica: a node stamped with the current
      epoch whose log is not a byte prefix of the primary's (a
      stale-epoch node's divergence is expected — the snapshot catch-up
      heals it — and reported as info)
    - [RP002] (error) stale-epoch write accepted: the ack journal's
      epochs regress, or exceed the group's — a deposed primary kept
      promising commits past its fencing
    - [RP003] (error) acked-but-lost commit: a journaled quorum ack
      whose transaction has no Commit in the current primary's log, or
      whose watermark lies beyond it — the client was promised a commit
      the group no longer holds
    - [RP004] (error) snapshot/log-tail gap: a node's snapshot
      watermark runs ahead of its clean log, or behind a shipped
      Checkpoint — either way the node's page image and log disagree
      about where redo may start, so promoting it would recover wrong
      state

    The protocol-correctness contract, QCheck-tested: survivor files of
    any quorum-mode crash/loss sweep — failovers included — lint with
    zero errors. *)

type node = {
  id : int;  (** node id within the group *)
  path : string;  (** the node's database path *)
  node_epoch : int option;  (** its durable epoch stamp, when present *)
  node_snapshot : int option;  (** its snapshot watermark, when present *)
  wal : Storage.Wal.report;  (** the tolerant scan of its WAL *)
  wal_prefix : string;  (** the clean prefix's raw bytes (for the
                            byte-identity check behind RP001) *)
}
(** Everything the lint knows about one node, from its files alone. *)

type input = {
  group : Replication.Repl_meta.group option;  (** the descriptor, when readable *)
  nodes : node list;  (** every node of the family, primary included *)
  acks : Replication.Repl_meta.ack list;  (** the quorum-ack journal *)
}
(** The offline view of a replication group. *)

val of_base : string -> input
(** Scan [base.repl], [base.acks], and every node's WAL and epoch stamp
    read-only. *)

val passes : input Pass.t list
(** The RP pass suite, for {!Pass.run_all} / {!Pass.drive}. *)

val lint : input -> Diagnostic.t list
(** Runs every pass and returns sorted diagnostics. *)

val lint_base : string -> Diagnostic.t list
(** {!lint} over {!of_base}. *)
