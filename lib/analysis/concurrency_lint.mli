(** Predictive concurrency analysis over lock-annotated schedules
    ({!Transactions.Locked_schedule}): an Eraser-style lockset race
    detector and a GoodLock-style lock-order graph.  Both passes reason
    about what {e other} interleavings of the same program could do, so
    they fire on schedules that happen to execute cleanly — strictly
    stronger than the observational TX passes, which they subsume as
    stages of {!schedule_passes} (the pipeline behind
    [dbmeta lint schedule]).

    Diagnostic codes:
    - [CC001] (error) lockset race — an item with conflicting accesses
      from two or more transactions and an empty common lockset; no lock
      orders the accesses
    - [CC002] (warning) insufficient lock mode — the common lockset is
      non-empty, but no lock in it is held exclusively at every write;
      shared holders can interleave
    - [CC003] (info) guard-lock convention — the accesses are
      consistently protected, but by a lock other than the item itself
    - [CC004] (warning) lock-order cycle — two or more transactions
      acquire the same locks in opposite orders while holding one
      another's locks; some interleaving deadlocks (GoodLock)
    - [CC005] (info) gated lock-order reversal — a lock-order cycle
      whose every acquisition holds a common gate lock; the gate
      serializes the contenders and the reversal cannot deadlock
    - [CC006] (error) upgrade deadlock — two transactions hold the same
      item shared simultaneously and both upgrade to exclusive; neither
      grant can ever be made

    Like the TX lock-discipline passes, every pass here is silent on
    schedules without explicit lock operations. *)

type input = Transactions.Locked_schedule.t
(** A parsed schedule; schedules without lock operations are skipped by
    every CC pass. *)

val passes : input Pass.t list
(** The CC passes alone. *)

val schedule_passes : input Pass.t list
(** {!Transaction_lint.passes} followed by {!passes} — everything
    [dbmeta lint schedule] runs, through one {!Pass.drive}. *)

val lint : input -> Diagnostic.t list
(** Runs the CC passes only (the TX passes are separate; use
    {!schedule_passes} with {!Pass.run_all} for the full pipeline). *)

val lint_string : string -> Diagnostic.t list
(** Parses with {!Transactions.Locked_schedule.of_string}; raises
    [Invalid_argument] on malformed input. *)
