(* The metric-catalogue lint: the single source of truth for metric
   names is docs/OBSERVABILITY.md, and this pass keeps it honest in both
   directions — every runtime-registered name must appear there (OB001),
   and every catalogued name in a family the runtime knows must still be
   registered (OB002, catching stale docs after a rename).

   The catalogue side is parsed structurally: any backtick-quoted token
   that looks like a dotted metric name counts as documented, and a
   token whose last segment is [*] documents a whole family (the
   fault-injection counters are per-site, so the catalogue lists
   [fault.torn.*] rather than an open-ended site enumeration). *)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_'

(* A documented metric token: dotted, >= 2 segments, each segment of
   name characters — except the last, which may be the glob [*]. *)
let is_metric_token s =
  match String.split_on_char '.' s with
  | [] | [ _ ] -> false
  | segments ->
      let rec check = function
        | [] -> true
        | [ "*" ] -> true
        | seg :: rest -> seg <> "" && String.for_all is_name_char seg && check rest
      in
      check segments

(* Every `...` span in the text (markdown inline code). *)
let backtick_tokens text =
  let n = String.length text in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '`' then begin
      match String.index_from_opt text (!i + 1) '`' with
      | Some j ->
          tokens := String.sub text (!i + 1) (j - !i - 1) :: !tokens;
          i := j + 1
      | None -> i := n
    end
    else incr i
  done;
  List.rev !tokens

(* The catalogue file also documents span names in the same backtick
   style; those are not metrics and must not trip OB002.  When the text
   has a "Metric catalogue" level-2 heading, scanning is scoped to that
   section (up to the next level-2 heading); otherwise the whole text is
   the catalogue. *)
let catalogue_section text =
  let lines = String.split_on_char '\n' text in
  let is_h2 line =
    String.length line > 3
    && String.sub line 0 3 = "## "
  in
  let is_catalogue_h2 line =
    is_h2 line
    && String.lowercase_ascii line = "## metric catalogue"
  in
  if not (List.exists is_catalogue_h2 lines) then text
  else
    let buf = Buffer.create (String.length text) in
    let in_section = ref false in
    List.iter
      (fun line ->
        if is_catalogue_h2 line then in_section := true
        else if is_h2 line then in_section := false
        else if !in_section then begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        end)
      lines;
    Buffer.contents buf

let documented_names text =
  List.filter is_metric_token (backtick_tokens (catalogue_section text))
  |> List.sort_uniq String.compare

let family name =
  match String.index_opt name '.' with
  | Some i -> Some (String.sub name 0 i)
  | None -> None

type input = { registered : string list; catalogue_text : string }

let run_lint { registered; catalogue_text } =
  let registered = List.sort_uniq String.compare registered in
  let documented = documented_names catalogue_text in
  let globs, exact =
    List.partition
      (fun d -> String.length d >= 2 && Filename.check_suffix d ".*")
      documented
  in
  (* keep the trailing dot so [pool.*] covers [pool.hits], not [poolx] *)
  let prefixes = List.map (fun g -> String.sub g 0 (String.length g - 1)) globs in
  let covers name =
    List.mem name exact
    || List.exists
         (fun p ->
           String.length name > String.length p
           && String.sub name 0 (String.length p) = p)
         prefixes
  in
  let families =
    List.sort_uniq String.compare (List.filter_map family registered)
  in
  let undocumented =
    List.filter_map
      (fun name ->
        if covers name then None
        else
          Some
            (Diagnostic.error ~subject:name "OB001"
               (Printf.sprintf
                  "metric %S is registered at runtime but missing from the \
                   catalogue"
                  name)))
      registered
  in
  let stale =
    List.filter_map
      (fun name ->
        if
          (not (List.mem name registered))
          && (match family name with
             | Some f -> List.mem f families
             | None -> false)
        then
          Some
            (Diagnostic.warning ~subject:name "OB002"
               (Printf.sprintf
                  "catalogue documents %S but the runtime never registers it \
                   (stale name?)"
                  name))
        else None)
      exact
  in
  Diagnostic.sort (undocumented @ stale)

let passes = [ Pass.make "metric-catalogue" run_lint ]

let lint ~registered ~catalogue_text =
  Pass.run_all passes { registered; catalogue_text }
