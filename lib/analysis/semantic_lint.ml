(* Semantic query analysis: the lint passes that use the metatheory
   itself — Chandra–Merlin containment, tableau minimization, the chase
   under functional dependencies — rather than syntax.  SQ001–SQ005 work
   on relational algebra, SQ006–SQ008 on Datalog programs, and the
   SQ100-series renders Planner.Certify's translation-validation
   verdicts as diagnostics. *)

module A = Relational.Algebra
module Schema = Relational.Schema
module Value = Relational.Value
module Ast = Datalog.Ast
module C = Datalog.Containment
module I = Datalog.Interop
module Magic = Datalog.Magic

type input = {
  catalog : string -> Schema.t option;
  fds : C.fd list;
  plan : A.t;
}

let subject e = A.to_string e

(* The semantic passes need the raising catalog the Interop translators
   take; unknown relations surface as RA001 from the typing pass, so
   here the exception just silences the pass for that subtree. *)
let raising catalog name =
  match catalog name with Some s -> s | None -> raise Exit

let children = function
  | A.Rel _ | A.Singleton _ -> []
  | A.Select (_, e) | A.Project (_, e) | A.Rename (_, e) -> [ e ]
  | A.Product (a, b)
  | A.Join (a, b)
  | A.Union (a, b)
  | A.Inter (a, b)
  | A.Diff (a, b)
  | A.Divide (a, b) ->
      [ a; b ]

let peel_selections e =
  let rec go acc = function
    | A.Select (p, i) -> go (A.conjuncts p @ acc) i
    | i -> (acc, i)
  in
  go [] e

(* SQ001 — a selection no tuple can satisfy, found by interval analysis
   of its conjuncts: a literal [false], a false constant comparison, a
   strict comparison of an attribute with itself, or per-attribute
   constant constraints (equalities, bounds, disequalities) that
   contradict each other. *)
let contradictions conjs =
  let flip = function
    | A.Lt -> A.Gt
    | A.Le -> A.Ge
    | A.Gt -> A.Lt
    | A.Ge -> A.Le
    | (A.Eq | A.Ne) as c -> c
  in
  let direct =
    List.filter_map
      (fun c ->
        match c with
        | A.False -> Some "literal false"
        | A.Cmp (cmp, A.Const u, A.Const v) ->
            let d = Value.compare u v in
            let holds =
              match cmp with
              | A.Eq -> d = 0
              | A.Ne -> d <> 0
              | A.Lt -> d < 0
              | A.Le -> d <= 0
              | A.Gt -> d > 0
              | A.Ge -> d >= 0
            in
            if holds then None
            else Some ("constant comparison is false: " ^ A.predicate_to_string c)
        | A.Cmp ((A.Lt | A.Gt | A.Ne), A.Attr a, A.Attr b) when a = b ->
            Some ("attribute compared against itself: " ^ A.predicate_to_string c)
        | _ -> None)
      conjs
  in
  (* per-attribute constant constraints, attribute normalized left *)
  let constraints =
    List.filter_map
      (fun c ->
        match c with
        | A.Cmp (cmp, A.Attr a, A.Const v) -> Some (a, cmp, v)
        | A.Cmp (cmp, A.Const v, A.Attr a) -> Some (a, flip cmp, v)
        | _ -> None)
      conjs
  in
  let attrs =
    List.sort_uniq compare (List.map (fun (a, _, _) -> a) constraints)
  in
  let per_attr a =
    let mine = List.filter (fun (a', _, _) -> a' = a) constraints in
    let eqs = List.filter_map (fun (_, c, v) -> if c = A.Eq then Some v else None) mine in
    let nes = List.filter_map (fun (_, c, v) -> if c = A.Ne then Some v else None) mine in
    let lo =
      (* tightest lower bound, (value, strict) *)
      List.fold_left
        (fun acc (_, c, v) ->
          let cand =
            match c with
            | A.Gt -> Some (v, true)
            | A.Ge -> Some (v, false)
            | _ -> None
          in
          match (acc, cand) with
          | None, c -> c
          | c, None -> c
          | Some (v', s'), Some (v, s) ->
              let d = Value.compare v v' in
              if d > 0 || (d = 0 && s) then Some (v, s) else Some (v', s'))
        None mine
    in
    let hi =
      List.fold_left
        (fun acc (_, c, v) ->
          let cand =
            match c with
            | A.Lt -> Some (v, true)
            | A.Le -> Some (v, false)
            | _ -> None
          in
          match (acc, cand) with
          | None, c -> c
          | c, None -> c
          | Some (v', s'), Some (v, s) ->
              let d = Value.compare v v' in
              if d < 0 || (d = 0 && s) then Some (v, s) else Some (v', s'))
        None mine
    in
    let contradiction_for_eq v =
      if List.exists (fun v' -> Value.compare v v' <> 0) eqs then
        Some (Printf.sprintf "%s equals two distinct constants" a)
      else if List.exists (fun v' -> Value.compare v v' = 0) nes then
        Some (Printf.sprintf "%s both equals and differs from %s" a (Value.to_string v))
      else
        let below =
          match lo with
          | Some (l, strict) ->
              let d = Value.compare v l in
              d < 0 || (d = 0 && strict)
          | None -> false
        in
        let above =
          match hi with
          | Some (h, strict) ->
              let d = Value.compare v h in
              d > 0 || (d = 0 && strict)
          | None -> false
        in
        if below || above then
          Some (Printf.sprintf "%s = %s violates its bounds" a (Value.to_string v))
        else None
    in
    match eqs with
    | v :: _ -> contradiction_for_eq v
    | [] -> (
        match (lo, hi) with
        | Some (l, sl), Some (h, sh) ->
            let d = Value.compare l h in
            if d > 0 || (d = 0 && (sl || sh)) then
              Some (Printf.sprintf "bounds on %s exclude every value" a)
            else None
        | _ -> None)
  in
  direct @ List.filter_map per_attr attrs

let unsatisfiable_selection_pass { plan; _ } =
  let rec walk expr =
    match expr with
    | A.Select _ ->
        let conjs, core = peel_selections expr in
        List.map
          (fun why ->
            Diagnostic.warning ~subject:(subject expr) "SQ001"
              ("selection is unsatisfiable: " ^ why))
          (contradictions conjs)
        @ walk core
    | _ -> List.concat_map walk (children expr)
  in
  walk plan

(* The maximal conjunctive regions of a plan: translate top-down and
   recurse past the operators outside the SPJ fragment. *)
type region =
  | Cq of A.t * (string * Ast.term) list * Ast.atom list
  | Empty of A.t * string

let regions catalog plan =
  let rcat = raising catalog in
  let rec go expr =
    match (try Some (I.spj_of_algebra rcat expr) with _ -> None) with
    | Some (I.Spj { binding; body }) -> [ Cq (expr, binding, body) ]
    | Some (I.Spj_empty why) -> [ Empty (expr, why) ]
    | Some (I.Spj_outside _) | None -> List.concat_map go (children expr)
  in
  go plan

(* SQ002 — empty under the dependencies: the translation itself proves
   emptiness (conflicting constants), a comparison pseudo-atom is
   self-contradictory, or the chase under the supplied fds derives a
   constant clash (possibly surfacing a comparison contradiction). *)
let empty_under_fds_pass { catalog; fds; plan } =
  List.filter_map
    (function
      | Empty (e, why) ->
          Some
            (Diagnostic.warning ~subject:(subject e) "SQ002"
               ("provably empty: " ^ why))
      | Cq (e, binding, body) -> (
          match I.comparison_contradiction body with
          | Some why ->
              Some
                (Diagnostic.warning ~subject:(subject e) "SQ002"
                   ("provably empty: contradictory comparison " ^ why))
          | None -> (
              match C.chase_opt fds (I.canonical_cq binding body) with
              | None ->
                  Some
                    (Diagnostic.warning ~subject:(subject e) "SQ002"
                       "provably empty under the dependencies: the chase \
                        equates two distinct constants")
              | Some chased -> (
                  match I.comparison_contradiction chased.C.body with
                  | Some why ->
                      Some
                        (Diagnostic.warning ~subject:(subject e) "SQ002"
                           ("provably empty under the dependencies: the \
                             chase forces contradictory comparison " ^ why))
                  | None -> None))))
    (regions catalog plan)

let real_atoms body = List.filter (fun a -> not (I.is_comparison_atom a)) body

(* SQ003 — redundant joins: the CQ core (chase under the dependencies,
   then tableau minimization) uses strictly fewer relation atoms than
   the query joins. *)
let redundant_join_pass { catalog; fds; plan } =
  List.filter_map
    (function
      | Empty _ -> None
      | Cq (e, binding, body) ->
          let before = List.length (real_atoms body) in
          if before < 2 then None
          else (
            match C.chase_opt fds (I.canonical_cq binding body) with
            | None -> None (* SQ002's finding, not a join issue *)
            | Some chased ->
                let core = C.minimize chased in
                let after = List.length (real_atoms core.C.body) in
                if after < before then
                  Some
                    (Diagnostic.warning ~subject:(subject e) "SQ003"
                       (Printf.sprintf
                          "%d of %d joined relation occurrences are \
                           redundant: the query's core under the \
                           dependencies needs only %d"
                          (before - after) before after))
                else None))
    (regions catalog plan)

(* SQ004 — set-operation arms related by containment: the union arm that
   adds nothing, the intersection that equals one arm, the difference
   that is provably empty. *)
let contained_arm_pass { catalog; fds; plan } =
  let rcat = raising catalog in
  let arm e =
    match (try Some (I.spj_of_algebra rcat e) with _ -> None) with
    | Some (I.Spj { binding; body }) ->
        Some (I.saturate (I.canonical_cq binding body))
    | _ -> None
  in
  let rec walk expr =
    let here =
      match expr with
      | A.Union (a, b) | A.Inter (a, b) | A.Diff (a, b) -> (
          match (arm a, arm b) with
          | Some qa, Some qb -> (
              let op =
                match expr with
                | A.Union _ -> `Union
                | A.Inter _ -> `Inter
                | _ -> `Diff
              in
              let warn msg =
                [ Diagnostic.warning ~subject:(subject expr) "SQ004" msg ]
              in
              let a_in_b = C.contained_under fds qa qb in
              let b_in_a = C.contained_under fds qb qa in
              match (op, a_in_b, b_in_a) with
              | _, true, true ->
                  warn "both arms are equivalent: the set operation is redundant"
              | `Union, true, false ->
                  warn "left union arm is contained in the right: it adds nothing"
              | `Union, false, true ->
                  warn "right union arm is contained in the left: it adds nothing"
              | `Inter, true, false ->
                  warn "left arm is contained in the right: the intersection \
                        equals the left arm"
              | `Inter, false, true ->
                  warn "right arm is contained in the left: the intersection \
                        equals the right arm"
              | `Diff, true, false ->
                  warn "the minuend is contained in the subtrahend: the \
                        difference is provably empty"
              | _ -> [])
          | _ -> [])
      | _ -> []
    in
    here @ List.concat_map walk (children expr)
  in
  walk plan

(* SQ005 — a cartesian product bridged by an equality selection between
   the two sides: renaming one column turns it into a natural join the
   planner can use hash/merge algorithms on. *)
let product_join_pass { catalog; plan; _ } =
  let rcat = raising catalog in
  let schema_of e = try Some (A.schema_of rcat e) with _ -> None in
  let rec walk expr =
    let here =
      match expr with
      | A.Select _ -> (
          let conjs, core = peel_selections expr in
          match core with
          | A.Product (a, b) -> (
              match (schema_of a, schema_of b) with
              | Some sa, Some sb ->
                  List.filter_map
                    (fun c ->
                      match c with
                      | A.Cmp (A.Eq, A.Attr x, A.Attr y)
                        when (Schema.mem sa x && Schema.mem sb y)
                             || (Schema.mem sb x && Schema.mem sa y) ->
                          Some
                            (Diagnostic.info ~subject:(subject expr) "SQ005"
                               (Printf.sprintf
                                  "cartesian product bridged by %s = %s: a \
                                   rename turns it into a natural join"
                                  x y))
                      | _ -> None)
                    conjs
              | _ -> [])
          | _ -> [])
      | _ -> []
    in
    here @ List.concat_map walk (children expr)
  in
  walk plan

let passes : input Pass.t list =
  [
    Pass.make "unsatisfiable-selection" unsatisfiable_selection_pass;
    Pass.make "empty-under-dependencies" empty_under_fds_pass;
    Pass.make "redundant-join" redundant_join_pass;
    Pass.make "contained-arm" contained_arm_pass;
    Pass.make "product-bridged-by-equality" product_join_pass;
  ]

let lint ~catalog ?(fds = []) plan =
  Pass.run_all passes { catalog; fds; plan }

(* ------------------------------------------------------------------ *)
(* Datalog-side passes, over Datalog_lint's artifact.                  *)

let rule_subject r = Ast.rule_to_string r

let cq_of_rule_opt r = try Some (C.of_rule r) with _ -> None

let is_fact r = r.Ast.body = []

(* SQ006 — bounded recursion: every directly-recursive rule of a
   predicate is contained (as a CQ, the predicate treated as plain data)
   in some non-recursive rule of the same predicate.  Then the least
   model without the recursive rules already satisfies them — the
   recursion derives nothing. *)
let bounded_recursion_pass { Datalog_lint.program; _ } =
  let heads =
    List.sort_uniq compare
      (List.filter_map
         (fun r -> if is_fact r then None else Some (Ast.head_pred r))
         program)
  in
  List.concat_map
    (fun p ->
      let rules =
        List.filter (fun r -> (not (is_fact r)) && Ast.head_pred r = p) program
      in
      let recursive, base =
        List.partition (fun r -> List.mem p (Ast.body_preds r)) rules
      in
      if recursive = [] || base = [] then []
      else
        let base_cqs = List.filter_map cq_of_rule_opt base in
        let subsumed r =
          match cq_of_rule_opt r with
          | None -> false
          | Some rcq -> List.exists (fun bcq -> C.contained rcq bcq) base_cqs
        in
        if List.for_all subsumed recursive then
          [
            Diagnostic.info ~subject:p "SQ006"
              (Printf.sprintf
                 "recursion on %s is bounded: every recursive rule is \
                  contained in a non-recursive rule of %s"
                 p p);
          ]
        else [])
    heads

(* SQ007 — dead rules.  (1) A rule with a positive body atom over a
   predicate that is provably empty: defined in the program (so not
   database-backed), no facts, and every defining rule itself dead —
   computed as an emptiness fixpoint.  (2) When a query is supplied and
   its predicate feeds nothing else, a rule whose head constants cannot
   unify with the query's constants. *)
let dead_rule_pass { Datalog_lint.program; query } =
  let idb = Ast.idb_predicates program in
  let nonempty = Hashtbl.create 16 in
  let mark p = if not (Hashtbl.mem nonempty p) then Hashtbl.add nonempty p () in
  (* database-backed (non-IDB) predicates may hold facts at run time *)
  List.iter
    (fun r -> List.iter (fun p -> if not (List.mem p idb) then mark p) (Ast.body_preds r))
    program;
  List.iter (fun r -> if is_fact r then mark (Ast.head_pred r)) program;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if
          (not (Hashtbl.mem nonempty (Ast.head_pred r)))
          && List.for_all (fun p -> Hashtbl.mem nonempty p) (Ast.body_preds r)
        then begin
          mark (Ast.head_pred r);
          changed := true
        end)
      program
  done;
  let empty_body =
    List.concat
      (List.mapi
         (fun i r ->
           match
             List.find_opt (fun p -> not (Hashtbl.mem nonempty p)) (Ast.body_preds r)
           with
           | Some p when not (is_fact r) ->
               [
                 Diagnostic.warning ~subject:(rule_subject r) ~loc:i "SQ007"
                   (Printf.sprintf
                      "rule can never fire: predicate %s is provably empty" p);
               ]
           | _ -> [])
         program)
  in
  let query_mismatch =
    match query with
    | None -> []
    | Some q ->
        let consumed_elsewhere =
          List.exists (fun r -> List.mem q.Ast.pred (Ast.body_preds r)) program
        in
        if consumed_elsewhere then []
        else
          List.concat
            (List.mapi
               (fun i r ->
                 if
                   Ast.head_pred r = q.Ast.pred
                   && List.length r.Ast.head.Ast.args = List.length q.Ast.args
                   && List.exists2
                        (fun qa ha ->
                          match (qa, ha) with
                          | Ast.Const u, Ast.Const v -> not (Value.equal u v)
                          | _ -> false)
                        q.Ast.args r.Ast.head.Ast.args
                 then
                   [
                     Diagnostic.warning ~subject:(rule_subject r) ~loc:i "SQ007"
                       (Printf.sprintf
                          "rule cannot contribute to query %s (binding \
                           pattern %s): head constants disagree"
                          (Ast.atom_to_string q)
                          (Magic.adornment_to_string (Magic.adornment_of_query q)));
                   ]
                 else [])
               program)
  in
  empty_body @ query_mismatch

(* SQ008 — a rule body atom that tableau minimization proves redundant:
   the rule is equivalent with the atom dropped. *)
let redundant_atom_pass { Datalog_lint.program; _ } =
  List.concat
    (List.mapi
       (fun i r ->
         if is_fact r then []
         else
           match cq_of_rule_opt r with
           | None -> []
           | Some cq ->
               if List.length cq.C.body < 2 then []
               else
                 let core = C.minimize cq in
                 let dropped = List.length cq.C.body - List.length core.C.body in
                 if dropped > 0 then
                   [
                     Diagnostic.info ~subject:(rule_subject r) ~loc:i "SQ008"
                       (Printf.sprintf
                          "%d redundant body atom(s): the rule is equivalent \
                           to %s"
                          dropped
                          (Ast.rule_to_string (C.to_rule (Ast.head_pred r) core)));
                   ]
                 else [])
       program)

let datalog_passes : Datalog_lint.input Pass.t list =
  [
    Pass.make "bounded-recursion" bounded_recursion_pass;
    Pass.make "dead-rule" dead_rule_pass;
    Pass.make "redundant-body-atom" redundant_atom_pass;
  ]

(* ------------------------------------------------------------------ *)
(* Certifier verdicts as diagnostics.                                  *)

let of_certify report =
  List.concat_map
    (fun (s : Planner.Certify.stage) ->
      match s.Planner.Certify.verdict with
      | Planner.Certify.Equivalent -> []
      | Planner.Certify.Refuted why ->
          let code =
            if s.Planner.Certify.name = "physical_shadow" then "SQ102"
            else "SQ101"
          in
          [
            Diagnostic.error ~subject:s.Planner.Certify.name code
              ("rewrite stage is not equivalence-preserving: " ^ why);
          ]
      | Planner.Certify.Skipped why ->
          [
            Diagnostic.info ~subject:s.Planner.Certify.name "SQ103"
              ("stage not certified: " ^ why);
          ])
    report

(* ------------------------------------------------------------------ *)
(* "table: a b -> c d" dependency specs, for the CLI's --fd flag.      *)

let fd_of_spec ~catalog spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt spec ':' with
  | None -> fail "--fd %S: expected \"table: lhs... -> rhs...\"" spec
  | Some i -> (
      let table = String.trim (String.sub spec 0 i) in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let split_arrow s =
        let needle = "->" in
        let n = String.length s in
        let rec find j =
          if j + 2 > n then None
          else if String.sub s j 2 = needle then Some j
          else find (j + 1)
        in
        match find 0 with
        | None -> None
        | Some j ->
            Some (String.sub s 0 j, String.sub s (j + 2) (n - j - 2))
      in
      match split_arrow rest with
      | None -> fail "--fd %S: missing \"->\"" spec
      | Some (lhs, rhs) -> (
          match catalog table with
          | None -> fail "--fd %S: unknown table %S" spec table
          | Some schema -> (
              let attrs = Schema.attributes schema in
              let words s =
                List.filter (fun w -> w <> "")
                  (String.split_on_char ' '
                     (String.map (function '\t' | ',' -> ' ' | c -> c) s))
              in
              let position a =
                let rec go i = function
                  | [] -> None
                  | a' :: _ when a' = a -> Some i
                  | _ :: tl -> go (i + 1) tl
                in
                go 0 attrs
              in
              let resolve side =
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | a :: tl -> (
                      match position a with
                      | Some i -> go (i :: acc) tl
                      | None ->
                          fail "--fd %S: %S is not a column of %S" spec a table)
                in
                go [] (words side)
              in
              match (resolve lhs, resolve rhs) with
              | Ok [], _ -> fail "--fd %S: empty left-hand side" spec
              | _, Ok [] -> fail "--fd %S: empty right-hand side" spec
              | Ok l, Ok r ->
                  Ok { C.fd_pred = table; fd_lhs = l; fd_rhs = r }
              | (Error _ as e), _ | _, (Error _ as e) -> e)))
