type 'a t = { name : string; run : 'a -> Diagnostic.t list }

let make name run = { name; run }

let name p = p.name

(* A crashing pass must not take the whole pipeline down: surface the
   crash as its own error diagnostic and keep running the other passes. *)
let run_one pass artifact =
  try pass.run artifact
  with exn ->
    [
      Diagnostic.error "LINT99"
        (Printf.sprintf "internal: pass %S failed: %s" pass.name
           (Printexc.to_string exn));
    ]

let run_all passes artifact =
  Diagnostic.sort (List.concat_map (fun p -> run_one p artifact) passes)
