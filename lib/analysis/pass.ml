type 'a t = { name : string; run : 'a -> Diagnostic.t list }

let make name run = { name; run }

let name p = p.name
let adapt f p = { name = p.name; run = (fun artifact -> p.run (f artifact)) }

(* A crashing pass must not take the whole pipeline down: surface the
   crash as its own error diagnostic and keep running the other passes. *)
let run_one pass artifact =
  try pass.run artifact
  with exn ->
    [
      Diagnostic.error "LINT99"
        (Printf.sprintf "internal: pass %S failed: %s" pass.name
           (Printexc.to_string exn));
    ]

let run_all passes artifact =
  Diagnostic.sort (List.concat_map (fun p -> run_one p artifact) passes)

(* One rendering + exit-code policy for every lint subcommand: the CLI
   front-ends parse their artifact, then hand it here. *)

type format = Text | Json

let render format diags =
  match format with
  | Text -> Diagnostic.list_to_text diags
  | Json -> Diagnostic.list_to_json diags

let drive ~format passes artifact =
  let diags = run_all passes artifact in
  (render format diags, Diagnostic.exit_code diags)
