(* Cross-log agreement for a replication group, from files alone.
   Replication here is physical — a correct replica's log is a byte
   prefix of the primary's — so the checks are mostly comparisons of
   byte strings and offsets: prefix identity (RP001), epoch monotony
   in the ack journal (RP002), journal-vs-log containment (RP003),
   and the snapshot/checkpoint watermark contract (RP004). *)

module Wal = Storage.Wal
module Engine = Storage.Engine
module Repl_meta = Replication.Repl_meta
module D = Diagnostic

type node = {
  id : int;
  path : string;
  node_epoch : int option;
  node_snapshot : int option;
  wal : Wal.report;
  wal_prefix : string;
}

type input = {
  group : Repl_meta.group option;
  nodes : node list;
  acks : Repl_meta.ack list;
}

let read_prefix path len =
  if len = 0 || not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    let n = min len (in_channel_length ic) in
    let s = really_input_string ic n in
    close_in ic;
    s
  end

let of_base base =
  let group = Repl_meta.load_group base in
  let count = Repl_meta.discover base in
  let nodes =
    List.init count (fun id ->
        let path = Repl_meta.node_path base id in
        let wal_file = Engine.wal_path path in
        let wal = Wal.report_file wal_file in
        let node_epoch, node_snapshot =
          match Repl_meta.load_node path with
          | Some (e, s) -> (Some e, Some s)
          | None -> (None, None)
        in
        {
          id;
          path;
          node_epoch;
          node_snapshot;
          wal;
          wal_prefix = read_prefix wal_file wal.Wal.clean_bytes;
        })
  in
  { group; nodes; acks = Repl_meta.load_acks base }

let find_node input id = List.find_opt (fun n -> n.id = id) input.nodes

let is_prefix ~of_:whole s =
  String.length s <= String.length whole
  && String.equal s (String.sub whole 0 (String.length s))

(* RP001: every node stamped with the current epoch must hold a byte
   prefix of the primary's log; stale-epoch nodes are expected to
   diverge until the snapshot catch-up reaches them. *)
let check_divergence input =
  match input.group with
  | None -> []
  | Some g -> (
      match find_node input g.Repl_meta.primary with
      | None -> []
      | Some primary ->
          List.concat_map
            (fun n ->
              if n.id = g.Repl_meta.primary then []
              else
                let current = n.node_epoch = Some g.Repl_meta.epoch in
                let prefix = is_prefix ~of_:primary.wal_prefix n.wal_prefix in
                if prefix then []
                else if current then
                  [
                    D.error ~loc:n.id "RP001"
                      (Printf.sprintf
                         "node %d is at the current epoch %d but its log \
                          (%d clean bytes) is not a prefix of the \
                          primary's (%d clean bytes) — a diverged replica"
                         n.id g.Repl_meta.epoch
                         (String.length n.wal_prefix)
                         (String.length primary.wal_prefix));
                  ]
                else
                  [
                    D.info ~loc:n.id "RP001"
                      (Printf.sprintf
                         "node %d diverges at stale epoch %s — expected \
                          for a deposed primary; snapshot catch-up heals it"
                         n.id
                         (match n.node_epoch with
                         | Some e -> string_of_int e
                         | None -> "(unstamped)"));
                  ])
            input.nodes)

(* RP002: the ack journal is append-only, so its epochs may never
   regress, and none may exceed the group's — either would mean a
   fenced-off primary kept promising commits. *)
let check_stale_epoch input =
  let group_epoch =
    match input.group with Some g -> Some g.Repl_meta.epoch | None -> None
  in
  let _, diags =
    List.fold_left
      (fun (i, (prev, acc)) (a : Repl_meta.ack) ->
        let acc =
          if a.ack_epoch < prev then
            D.error ~loc:i "RP002"
              (Printf.sprintf
                 "ack journal epoch regresses at entry %d: txn %d acked \
                  under epoch %d after epoch %d — a stale-epoch primary \
                  accepted writes past its fencing"
                 i a.txn a.ack_epoch prev)
            :: acc
          else acc
        in
        let acc =
          match group_epoch with
          | Some ge when a.ack_epoch > ge ->
              D.error ~loc:i "RP002"
                (Printf.sprintf
                   "ack journal entry %d claims epoch %d beyond the \
                    group's epoch %d"
                   i a.ack_epoch ge)
              :: acc
          | _ -> acc
        in
        (i + 1, (max prev a.ack_epoch, acc)))
      (0, (min_int, []))
      input.acks
    |> snd
  in
  List.rev diags

(* RP003: every journaled quorum ack must still be honored by the
   current primary — its Commit present, its watermark within the
   clean log.  This is the "an acked commit is never lost" contract
   made file-checkable. *)
let check_acked_lost input =
  match input.group with
  | None -> []
  | Some g -> (
      match find_node input g.Repl_meta.primary with
      | None -> []
      | Some primary ->
          let committed =
            List.filter_map
              (fun { Wal.record; _ } ->
                match record with Wal.Commit t -> Some t | _ -> None)
              primary.wal.Wal.records
          in
          List.concat
            (List.mapi
               (fun i (a : Repl_meta.ack) ->
                 if a.lsn > primary.wal.Wal.clean_bytes then
                   [
                     D.error ~loc:i "RP003"
                       (Printf.sprintf
                          "acked commit lost: txn %d was quorum-acked to \
                           watermark %d but the primary's clean log ends \
                           at %d"
                          a.txn a.lsn primary.wal.Wal.clean_bytes);
                   ]
                 else if not (List.mem a.txn committed) then
                   [
                     D.error ~loc:i "RP003"
                       (Printf.sprintf
                          "acked commit lost: txn %d is in the ack \
                           journal but has no Commit record in the \
                           primary's log"
                          a.txn);
                   ]
                 else [])
               input.acks))

let last_checkpoint entries =
  List.fold_left
    (fun acc { Wal.lsn; record } ->
      match record with Wal.Checkpoint -> Some lsn | _ -> acc)
    None entries

(* RP004: a node's page image and log must agree about where redo may
   start.  The snapshot watermark may not run ahead of the clean log
   (pages the log cannot explain) and — for replicas — may not lag a
   shipped Checkpoint (a redo start whose pages never arrived). *)
let check_snapshot_gap input =
  let primary_id =
    match input.group with Some g -> Some g.Repl_meta.primary | None -> None
  in
  List.concat_map
    (fun n ->
      let snap = match n.node_snapshot with Some s -> s | None -> 0 in
      let ahead =
        if snap > n.wal.Wal.clean_bytes then
          [
            D.error ~loc:n.id "RP004"
              (Printf.sprintf
                 "node %d: snapshot watermark %d runs ahead of its clean \
                  log (%d bytes) — pages without the log that explains \
                  them"
                 n.id snap n.wal.Wal.clean_bytes);
          ]
        else []
      in
      let behind =
        if primary_id = Some n.id then []
        else
          match last_checkpoint n.wal.Wal.records with
          | Some c when snap < c ->
              [
                D.error ~loc:n.id "RP004"
                  (Printf.sprintf
                     "node %d: log holds a Checkpoint at %d beyond its \
                      snapshot watermark %d — redo would trust pages the \
                      node never received"
                     n.id c snap);
              ]
          | _ -> []
      in
      ahead @ behind)
    input.nodes

let passes =
  [
    Pass.make "repl-divergence" check_divergence;
    Pass.make "repl-stale-epoch" check_stale_epoch;
    Pass.make "repl-acked-lost" check_acked_lost;
    Pass.make "repl-snapshot-gap" check_snapshot_gap;
  ]

let lint input = Pass.run_all passes input
let lint_base base = lint (of_base base)
