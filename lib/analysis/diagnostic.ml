type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  message : string;
  subject : string option;
  loc : int option;
}

let make ?subject ?loc ~code ~severity message =
  { code; severity; message; subject; loc }

let error ?subject ?loc code message =
  make ?subject ?loc ~code ~severity:Error message

let warning ?subject ?loc code message =
  make ?subject ?loc ~code ~severity:Warning message

let info ?subject ?loc code message =
  make ?subject ?loc ~code ~severity:Info message

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c =
        Option.compare Int.compare a.loc b.loc
      in
      if c <> 0 then c else String.compare a.message b.message

let sort diags = List.stable_sort compare diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(* Exit-code policy: 0 = clean (warnings and infos allowed), 1 = at least
   one error.  Parse failures exit 2 before any diagnostics exist. *)
let exit_code diags = if has_errors diags then 1 else 0

(* --- text rendering ------------------------------------------------------ *)

let to_text d =
  let head =
    Printf.sprintf "%s[%s]: %s" (severity_to_string d.severity) d.code
      d.message
  in
  let where =
    match (d.loc, d.subject) with
    | Some i, Some s -> Printf.sprintf "\n  --> #%d: %s" i s
    | Some i, None -> Printf.sprintf "\n  --> #%d" i
    | None, Some s -> Printf.sprintf "\n  --> %s" s
    | None, None -> ""
  in
  head ^ where

let summary diags =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) diags) in
  Printf.sprintf "%d error(s), %d warning(s), %d info(s)" (count Error)
    (count Warning) (count Info)

let list_to_text diags =
  match diags with
  | [] -> "no diagnostics\n"
  | _ ->
      String.concat "" (List.map (fun d -> to_text d ^ "\n") diags)
      ^ summary diags ^ "\n"

(* --- JSON rendering and parsing ------------------------------------------ *)

(* A tiny self-contained JSON codec for the fixed diagnostic shape, so the
   output is machine-readable and round-trippable without external
   dependencies. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let fields =
    [
      Printf.sprintf {|"code":"%s"|} (json_escape d.code);
      Printf.sprintf {|"severity":"%s"|} (severity_to_string d.severity);
      Printf.sprintf {|"message":"%s"|} (json_escape d.message);
    ]
    @ (match d.subject with
      | Some s -> [ Printf.sprintf {|"subject":"%s"|} (json_escape s) ]
      | None -> [])
    @
    match d.loc with
    | Some i -> [ Printf.sprintf {|"loc":%d|} i ]
    | None -> []
  in
  "{" ^ String.concat "," fields ^ "}"

let list_to_json diags =
  "[" ^ String.concat "," (List.map to_json diags) ^ "]\n"

exception Json_error of string

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jstring of string
  | Jlist of json list
  | Jobj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstring (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jlist []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jlist (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (fields [])
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        let rec digits () =
          match peek () with
          | Some '0' .. '9' ->
              advance ();
              digits ()
          | _ -> ()
        in
        digits ();
        (match int_of_string_opt (String.sub s start (!pos - start)) with
        | Some i -> Jint i
        | None -> fail "bad number")
    | Some 't' when !pos + 4 <= n && String.sub s !pos 4 = "true" ->
        pos := !pos + 4;
        Jbool true
    | Some 'f' when !pos + 5 <= n && String.sub s !pos 5 = "false" ->
        pos := !pos + 5;
        Jbool false
    | Some 'n' when !pos + 4 <= n && String.sub s !pos 4 = "null" ->
        pos := !pos + 4;
        Jnull
    | _ -> fail "unexpected input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let of_json_value = function
  | Jobj fields ->
      let str k =
        match List.assoc_opt k fields with
        | Some (Jstring s) -> Some s
        | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with Some (Jint i) -> Some i | _ -> None
      in
      let code =
        match str "code" with
        | Some c -> c
        | None -> raise (Json_error "diagnostic missing \"code\"")
      in
      let severity =
        match Option.bind (str "severity") severity_of_string with
        | Some s -> s
        | None -> raise (Json_error "diagnostic missing or bad \"severity\"")
      in
      let message =
        match str "message" with
        | Some m -> m
        | None -> raise (Json_error "diagnostic missing \"message\"")
      in
      { code; severity; message; subject = str "subject"; loc = int "loc" }
  | _ -> raise (Json_error "diagnostic is not an object")

let list_of_json s =
  match parse_json (String.trim s) with
  | Jlist items -> List.map of_json_value items
  | _ -> raise (Json_error "expected a top-level array of diagnostics")
