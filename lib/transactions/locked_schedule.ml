type action =
  | Lock of Locks.mode * Schedule.item
  | Unlock of Schedule.item
  | Op of Schedule.action

type op = { txn : Schedule.txn; action : action }

type t = op list

let sl txn item = { txn; action = Lock (Locks.Shared, item) }
let xl txn item = { txn; action = Lock (Locks.Exclusive, item) }
let u txn item = { txn; action = Unlock item }
let op { Schedule.txn; action } = { txn; action = Op action }

(* Tokens extend Schedule.of_string's grammar with sl1(x), xl1(x) (shared /
   exclusive lock), l1(x) (alias for exclusive), and u1(x) (unlock). *)
let of_string s =
  let tokens = String.split_on_char ' ' s |> List.filter (fun x -> x <> "") in
  let parse_lockish tok =
    let fail () =
      invalid_arg (Printf.sprintf "Locked_schedule.of_string: bad token %S" tok)
    in
    let tail prefix =
      String.sub tok (String.length prefix)
        (String.length tok - String.length prefix)
    in
    let split_item rest =
      match String.index_opt rest '(' with
      | Some i
        when String.length rest > i + 1 && rest.[String.length rest - 1] = ')'
        -> (
          let n = String.sub rest 0 i in
          let item = String.sub rest (i + 1) (String.length rest - i - 2) in
          match int_of_string_opt n with
          | Some n when item <> "" -> (n, item)
          | _ -> fail ())
      | _ -> fail ()
    in
    let prefixed p =
      String.length tok > String.length p
      && String.equal (String.sub tok 0 (String.length p)) p
    in
    if prefixed "sl" then
      let n, item = split_item (tail "sl") in
      Some (sl n item)
    else if prefixed "xl" then
      let n, item = split_item (tail "xl") in
      Some (xl n item)
    else if prefixed "u" then
      let n, item = split_item (tail "u") in
      Some (u n item)
    else if prefixed "l" then
      let n, item = split_item (tail "l") in
      Some (xl n item)
    else None
  in
  List.map
    (fun tok ->
      match parse_lockish tok with
      | Some o -> o
      | None -> (
          match Schedule.of_string tok with
          | [ o ] -> op o
          | _ ->
              invalid_arg
                (Printf.sprintf "Locked_schedule.of_string: bad token %S" tok)))
    tokens

let op_to_string { txn; action } =
  match action with
  | Lock (Locks.Shared, item) -> Printf.sprintf "sl%d(%s)" txn item
  | Lock (Locks.Exclusive, item) -> Printf.sprintf "xl%d(%s)" txn item
  | Unlock item -> Printf.sprintf "u%d(%s)" txn item
  | Op (Schedule.Read item) -> Printf.sprintf "r%d(%s)" txn item
  | Op (Schedule.Write item) -> Printf.sprintf "w%d(%s)" txn item
  | Op Schedule.Commit -> Printf.sprintf "c%d" txn
  | Op Schedule.Abort -> Printf.sprintf "a%d" txn

let to_string t = String.concat " " (List.map op_to_string t)

let to_schedule t =
  List.filter_map
    (fun o ->
      match o.action with
      | Op a -> Some { Schedule.txn = o.txn; action = a }
      | Lock _ | Unlock _ -> None)
    t

let has_lock_ops t =
  List.exists
    (fun o -> match o.action with Lock _ | Unlock _ -> true | Op _ -> false)
    t

let txns t = List.sort_uniq Int.compare (List.map (fun o -> o.txn) t)
