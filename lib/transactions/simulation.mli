(** The execution driver: feeds transaction programs to a protocol,
    handles blocking, restarts, and deadlock resolution, and reports the
    outcome statistics the concurrency-control benchmark tabulates.

    Restarted transactions run under a fresh incarnation id
    (base + 1000·k), so the recorded history stays well-formed and its
    committed projection is analyzable with {!Serializability}. *)

type spec = Schedule.action list
(** Read/Write steps only; the driver issues the commit. *)

type stats = {
  protocol : string;
  committed : int;  (** transactions that eventually committed *)
  restarts : int;  (** aborts due to rejection or deadlock *)
  deadlocks : int;  (** restarts caused by deadlock resolution *)
  steps : int;  (** total operation attempts, a proxy for time *)
  wasted_ops : int;  (** operations re-executed because of restarts *)
  history : Schedule.t;  (** as recorded by the protocol *)
}

val run : ?max_steps:int -> ?rng:Support.Rng.t -> Protocol.t -> spec array -> stats
(** Round-robin driver.  When every live transaction is blocked, the
    youngest blocked one is aborted and restarted (deadlock victim).
    [max_steps] (default 1_000_000) bounds livelock.  [rng] seeds the
    restart-backoff jitter, making runs reproducible from a seed;
    without it the jitter hashes (transaction, incarnation) as before. *)

val throughput : stats -> float
(** committed / steps. *)

val base_txn : Schedule.txn -> Schedule.txn
(** Incarnation id → original transaction index. *)
