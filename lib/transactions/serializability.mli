(** Serializability and recoverability analysis.

    Conflict serializability is decided by acyclicity of the precedence
    graph (polynomial); view serializability by exhaustive search over
    serial orders (the problem is NP-complete [Pai] — one of the negative
    results that, per §3, "severely delimit the feasibly implementable
    solutions" and justify why products settled on conflict-based
    protocols). *)

val precedence_graph : Schedule.t -> (Schedule.txn * Schedule.txn) list
(** Edges t → t' between committed transactions with conflicting
    operations, first operation first.  Deduplicated. *)

val is_conflict_serializable : Schedule.t -> bool
(** Acyclic precedence graph (over the committed projection). *)

val conflict_equivalent_serial_order : Schedule.t -> Schedule.txn list option
(** A topological order of the precedence graph, when one exists. *)

val conflict_equivalent : Schedule.t -> Schedule.t -> bool
(** Same operations and same ordering of conflicting pairs. *)

val conflict_pairs : Schedule.t -> (Schedule.op * Schedule.op) list
(** Ordered pairs of conflicting operations, first operation first —
    the witnesses behind {!precedence_graph} edges. *)

val reads_from : Schedule.t -> (Schedule.txn * Schedule.item * Schedule.txn option) list
(** [(reader, item, writer)] triples; [None] = reads the initial value.
    Computed on the given schedule as-is. *)

val view_equivalent : Schedule.t -> Schedule.t -> bool
(** Same reads-from relation and same final writers. *)

val is_view_serializable : Schedule.t -> bool
(** Some serial order of the committed transactions is view-equivalent.
    Exponential search — keep transaction counts small. *)

(** Recoverability hierarchy: ST ⊂ ACA ⊂ RC (checked on the full
    schedule, aborted transactions included). *)

val is_recoverable : Schedule.t -> bool
(** Every reader commits only after the writers it read from. *)

val avoids_cascading_aborts : Schedule.t -> bool
(** Transactions only read values written by already-terminated-committed
    transactions. *)

val is_strict : Schedule.t -> bool
(** No read or overwrite of an item with an uncommitted last writer. *)
