(** Schedules annotated with explicit lock and unlock operations, for
    lock-discipline analysis (2PL phase rule, unlocked access).

    The concrete syntax extends {!Schedule.of_string}: [sl1(x)] /
    [xl1(x)] acquire a shared / exclusive lock ([l1(x)] is an alias for
    exclusive), [u1(x)] releases, and the plain [r1(x) w1(x) c1 a1]
    tokens keep their meaning. *)

type action =
  | Lock of Locks.mode * Schedule.item
  | Unlock of Schedule.item
  | Op of Schedule.action

type op = { txn : Schedule.txn; action : action }

type t = op list

val sl : Schedule.txn -> Schedule.item -> op
val xl : Schedule.txn -> Schedule.item -> op
val u : Schedule.txn -> Schedule.item -> op
val op : Schedule.op -> op

val of_string : string -> t
(** Raises [Invalid_argument] on malformed tokens. *)

val op_to_string : op -> string
val to_string : t -> string

val to_schedule : t -> Schedule.t
(** Erase the lock operations, keeping reads/writes/terminations. *)

val has_lock_ops : t -> bool
val txns : t -> Schedule.txn list
