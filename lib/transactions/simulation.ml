type spec = Schedule.action list

type stats = {
  protocol : string;
  committed : int;
  restarts : int;
  deadlocks : int;
  steps : int;
  wasted_ops : int;
  history : Schedule.t;
}

let incarnation_stride = 1000

let base_txn t = t mod incarnation_stride

let items_of_spec spec =
  List.filter_map
    (function
      | Schedule.Read i | Schedule.Write i -> Some i
      | Schedule.Commit | Schedule.Abort -> None)
    spec
  |> List.sort_uniq String.compare

type txn_state = {
  base : int;
  program : Schedule.action array;
  mutable incarnation : int;
  mutable pc : int;
  mutable finished : bool;
  mutable blocked : bool;
  mutable delay : int;  (* rounds to sit out after a restart (backoff) *)
}

let run ?(max_steps = 200_000) ?rng (protocol : Protocol.t) specs =
  let states =
    Array.mapi
      (fun i spec ->
        {
          base = i;
          program = Array.of_list spec;
          incarnation = 0;
          pc = 0;
          finished = false;
          blocked = false;
          delay = 0;
        })
      specs
  in
  let runtime_id st = st.base + (incarnation_stride * st.incarnation) in
  let start st =
    let id = runtime_id st in
    protocol.Protocol.declare id (items_of_spec (Array.to_list st.program));
    protocol.Protocol.begin_txn id
  in
  Array.iter start states;
  let steps = ref 0 in
  let restarts = ref 0 in
  let deadlocks = ref 0 in
  let wasted = ref 0 in
  let committed = ref 0 in
  let restart st =
    protocol.Protocol.rollback (runtime_id st);
    incr restarts;
    wasted := !wasted + st.pc;
    st.incarnation <- st.incarnation + 1;
    st.pc <- 0;
    st.blocked <- false;
    (* jittered exponential backoff: symmetric deterministic backoffs can
       recreate the same deadlock cycle forever, so the jitter breaks the
       symmetry.  With a seeded [rng] the jitter is reproducible from the
       seed; without one it falls back to hashing the transaction and its
       incarnation (deterministic per schedule, as before) *)
    let window = min 64 (1 lsl min 6 st.incarnation) in
    let jitter =
      match rng with
      | Some r -> Support.Rng.int r window
      | None -> Hashtbl.hash (st.base, st.incarnation) mod window
    in
    st.delay <- 1 + jitter;
    start st
  in
  let attempt st =
    incr steps;
    let id = runtime_id st in
    if st.pc >= Array.length st.program then begin
      match protocol.Protocol.try_commit id with
      | Protocol.Granted ->
          st.finished <- true;
          incr committed
      | Protocol.Rejected -> restart st
      | Protocol.Blocked -> st.blocked <- true
    end
    else begin
      match protocol.Protocol.request id st.program.(st.pc) with
      | Protocol.Granted ->
          st.pc <- st.pc + 1;
          st.blocked <- false
      | Protocol.Blocked -> st.blocked <- true
      | Protocol.Rejected -> restart st
    end
  in
  let all_done () = Array.for_all (fun st -> st.finished) states in
  (* The driver cannot see which lock a protocol is blocked on, so it
     cannot trace the wait-for graph.  Instead, on a no-progress round it
     picks the most-starved blocked transaction as the survivor and aborts
     every other blocked transaction with a backoff long enough for the
     survivor to finish alone — guaranteeing the cycle breaks and someone
     makes progress (starvation-free: the survivor choice prefers the
     highest incarnation). *)
  let break_deadlock () =
    let blocked =
      Array.to_list states
      |> List.filter (fun st -> (not st.finished) && st.blocked)
    in
    match blocked with
    | [] -> ()
    | first :: _ ->
        let survivor =
          List.fold_left
            (fun best st ->
              if
                st.incarnation > best.incarnation
                || (st.incarnation = best.incarnation && st.base < best.base)
              then st
              else best)
            first blocked
        in
        let grace = Array.length survivor.program + 3 in
        List.iter
          (fun st ->
            if st.base <> survivor.base then begin
              incr deadlocks;
              restart st;
              st.delay <- st.delay + grace
            end)
          blocked
  in
  let rec loop () =
    if (not (all_done ())) && !steps < max_steps then begin
      let progressed = ref false in
      Array.iter
        (fun st ->
          if not st.finished then
            if st.delay > 0 then begin
              st.delay <- st.delay - 1;
              progressed := true
            end
            else begin
              let pc_before = st.pc
              and fin_before = st.finished
              and inc_before = st.incarnation in
              attempt st;
              if
                st.pc <> pc_before || st.finished <> fin_before
                || st.incarnation <> inc_before
              then progressed := true
            end)
        states;
      if not !progressed then break_deadlock ();
      loop ()
    end
  in
  loop ();
  {
    protocol = protocol.Protocol.name;
    committed = !committed;
    restarts = !restarts;
    deadlocks = !deadlocks;
    steps = !steps;
    wasted_ops = !wasted;
    history = protocol.Protocol.history ();
  }

let throughput stats =
  if stats.steps = 0 then 0.
  else float_of_int stats.committed /. float_of_int stats.steps
