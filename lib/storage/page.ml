(* Slotted pages: the classic layout.  Records grow upward from the
   header, the slot directory grows downward from the end; a slot is
   (offset, length) and length 0xffff marks a dead slot.  The first four
   bytes hold the CRC32 of the rest of the page, written by the pager on
   flush and verified on read.

   layout (little-endian):
     0  u32  crc32 of bytes 4..size-1
     4  u8   kind
     5  i64  lsn of the last logged update applied to this page
     13 u32  next page id in the chain (0 = end)
     17 u16  slot count
     19 u16  free-space offset (first unused data byte)
     21 ...  record data
     size - 4*nslots ... size: slot directory, 4 bytes per slot *)

let size = 4096
let header_bytes = 21
let dead = 0xffff

type t = Bytes.t

exception Page_full

let kind p = Bytes.get_uint8 p 4
let lsn p = Int64.to_int (Bytes.get_int64_le p 5)
let set_lsn p l = Bytes.set_int64_le p 5 (Int64.of_int (max l (lsn p)))
let next p = Int32.to_int (Bytes.get_int32_le p 13)
let set_next p n = Bytes.set_int32_le p 13 (Int32.of_int n)
let nslots p = Bytes.get_uint16_le p 17
let set_nslots p n = Bytes.set_uint16_le p 17 n
let free_off p = Bytes.get_uint16_le p 19
let set_free_off p n = Bytes.set_uint16_le p 19 n

let init ~kind =
  let p = Bytes.make size '\000' in
  Bytes.set_uint8 p 4 kind;
  set_free_off p header_bytes;
  p

let slot_pos i = size - (4 * (i + 1))

let slot p i =
  let pos = slot_pos i in
  (Bytes.get_uint16_le p pos, Bytes.get_uint16_le p (pos + 2))

let set_slot p i ~off ~len =
  let pos = slot_pos i in
  Bytes.set_uint16_le p pos off;
  Bytes.set_uint16_le p (pos + 2) len

let free_space p = size - (4 * nslots p) - free_off p

let insert p record =
  let len = String.length record in
  if len >= dead then invalid_arg "Page.insert: record too large";
  if free_space p < len + 4 then raise Page_full;
  let off = free_off p in
  Bytes.blit_string record 0 p off len;
  let i = nslots p in
  set_nslots p (i + 1);
  set_slot p i ~off ~len;
  set_free_off p (off + len);
  i

let read_slot p i =
  if i < 0 || i >= nslots p then invalid_arg "Page.read_slot: bad slot";
  let off, len = slot p i in
  if len = dead then None else Some (Bytes.sub_string p off len)

let overwrite p i record =
  if i < 0 || i >= nslots p then invalid_arg "Page.overwrite: bad slot";
  let off, len = slot p i in
  if len = dead || len <> String.length record then false
  else begin
    Bytes.blit_string record 0 p off len;
    true
  end

let delete_slot p i =
  if i < 0 || i >= nslots p then invalid_arg "Page.delete_slot: bad slot";
  let off, _ = slot p i in
  set_slot p i ~off ~len:dead

let records p =
  let out = ref [] in
  for i = nslots p - 1 downto 0 do
    match read_slot p i with
    | Some r -> out := (i, r) :: !out
    | None -> ()
  done;
  !out

let seal p =
  let crc = Support.Crc32.bytes p ~pos:4 ~len:(size - 4) in
  Bytes.set_int32_le p 0 (Int32.of_int crc)

let check p =
  let stored = Int32.to_int (Bytes.get_int32_le p 0) land 0xFFFFFFFF in
  let computed = Support.Crc32.bytes p ~pos:4 ~len:(size - 4) in
  stored = computed
