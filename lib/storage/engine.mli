(** The storage engine: pager + buffer pool + binary WAL + ARIES-lite
    recovery behind one transactional facade, plus a persistent
    heap-table layer for relational instances.

    Policies: {e steal} (eviction may flush uncommitted pages, behind the
    WAL barrier), {e no-force} (commit makes only the log durable), and
    {e strict} per-item write locks held to commit/abort — exactly the
    regime {!Transactions.Recovery} models in memory, now against real
    bytes.  Opening a database always runs restart recovery; the
    invariant (crash-matrix-tested) is that after a crash at any I/O the
    reopened store holds exactly the committed transactions' writes in
    log order.

    Fault tolerance (see {!Fault} for the taxonomy): CRC-corrupt
    item-store pages are {e quarantined and repaired} by replaying the
    full WAL (which is never truncated), transient I/O errors are
    retried inside {!Pager}/{!Wal}, and a WAL that cannot be flushed
    degrades the engine to {e read-only} ({!Read_only}) instead of
    crashing.  Table chains are not WAL-protected; their corruption
    stays a hard {!Pager.Corrupt}. *)

type t
(** An open database handle. *)

type repair = { quarantined : int list; replayed : int }
(** One quarantine-and-repair event: the page ids abandoned and the
    number of WAL write records replayed to rebuild the item plane. *)

exception Locked of string * int
(** The item is write-locked by another transaction (strictness). *)

exception No_such_transaction of int
(** The transaction id is not active. *)

exception Active_transactions
(** Raised by {!checkpoint} while transactions are running. *)

exception Unknown_table of string
(** No catalog entry under that name. *)

exception Read_only of string
(** The engine has degraded to read-only (an unflushable WAL): writes,
    commits, and new transactions are refused.  The payload names the
    I/O site whose failure triggered the degradation. *)

val open_db :
  ?pool_size:int -> ?crash_after:int -> ?faults:Fault.spec ->
  ?fault:Fault.t ->
  ?metrics:Obs.Registry.t -> ?trace:Obs.Trace.t -> string -> t
(** Open or create the database at [path] (the WAL lives at
    [path ^ ".wal"]).  [crash_after] arms fault injection: that many
    durable I/Os succeed, the next raises {!Fault.Crash} — including
    I/Os issued by recovery itself.  [faults] installs a full fault
    spec (crash budget, torn-write/bit-flip/EIO probabilities, RNG
    seed); [crash_after] overrides its crash budget when both given.
    [fault] supplies the injector itself instead of creating one —
    several engines sharing one injector share one crash budget and
    one RNG stream, which is how the distributed layer crashes "the
    whole process" at its N-th durable I/O regardless of which shard
    (or the coordinator log) issues it.
    A corrupt item-store page found during the open is quarantined and
    the item plane rebuilt from the log before recovery runs.

    [metrics] is threaded into every layer (pager, pool, WAL, fault
    injector) and receives the engine's own [engine.*] instruments;
    [trace] records [engine.recovery]/[engine.checkpoint]/
    [engine.commit]/[engine.abort]/[engine.repair] and [wal.flush]
    spans.  Both default to the shared no-ops, costing only integer
    increments on the hot paths. *)

val close : t -> unit
(** Clean shutdown: checkpoint (when quiescent) and close.  A degraded
    (read-only) engine abandons instead — its pending WAL bytes cannot
    be made durable, and restart recovery repairs from the log. *)

val crash : t -> unit
(** Abandon without flushing anything — simulates the process dying.
    The on-disk state is whatever the WAL and stolen pages got to. *)

val begin_txn : ?id:int -> t -> int
(** Start a transaction (fresh id unless [id] is given); logs Begin. *)

val write : t -> txn:int -> string -> int -> unit
(** Logs (item, before, after) then applies in the pool; raises
    {!Locked} when another transaction holds the item, {!Read_only}
    when the engine is degraded, and [Invalid_argument] when the
    transaction has already prepared (a prepared participant may only
    await its decision). *)

val read : t -> string -> int
(** Current value; absent items read 0. *)

val prepare : t -> txn:int -> unit
(** The participant side of two-phase commit: append [Prepare] and
    flush, making the transaction's writes and its yes-vote durable.
    The transaction stays active — locks held, undo info kept — until
    {!commit} or {!abort} delivers the coordinator's decision, possibly
    only after a restart (the termination protocol).  Idempotent (the
    coordinator retries lost PREPARE messages); raises {!Read_only}
    when the vote cannot be made durable, in which case the shard must
    vote no. *)

val prepared_txns : t -> int list
(** Active transactions whose [Prepare] is durable, sorted. *)

val commit : t -> txn:int -> unit
(** Appends Commit and flushes the WAL — the commit point.  If the
    flush fails past its retries the engine degrades and raises
    {!Read_only}: the transaction is in doubt in this process and
    resolved (aborted) by restart recovery. *)

val abort : t -> txn:int -> unit
(** Undoes the transaction's writes newest-first, logging compensation
    records, then appends Abort. *)

val checkpoint : t -> unit
(** Quiescent checkpoint: flush all pages, then log Checkpoint.  Raises
    {!Active_transactions} when transactions are running. *)

val lock_holder : t -> string -> int option
(** Which transaction write-locks the item, if any. *)

val active_txns : t -> int list
(** Ids of the currently running transactions, sorted. *)

val items : t -> (string * int) list
(** The committed-visible KV state, sorted, zero values omitted. *)

val item_count : t -> int
(** Number of nonzero committed items. *)

val save_table : t -> string -> Relational.Relation.t -> unit
(** Persist a relation under a name (replacing any previous binding) and
    checkpoint. *)

val load_table : t -> string -> Relational.Relation.t
(** Raises {!Unknown_table}.  Unlike the enumeration APIs below this
    also resolves {!reserved} names, which is how the planner reaches
    its bookkeeping tables. *)

val reserved : string -> bool
(** Whether a table name is reserved for engine-internal state (a
    ["__"] prefix — planner statistics, index definitions).  Reserved
    tables are stored in the ordinary catalog but hidden from
    {!table_names}, {!table_info}, and {!database}. *)

val table_names : t -> string list
(** Catalogued table names in catalog order, {!reserved} names
    omitted. *)

val table_info : t -> (string * Relational.Schema.t * int) list
(** (name, schema, first page id) per catalog entry, {!reserved} names
    omitted. *)

val database : t -> Relational.Database.t
(** Load every public table — a {!Relational.Database} instance served
    from disk through the buffer pool. *)

val pool : t -> Buffer_pool.t
(** The engine's buffer pool (tests and benches poke at it directly). *)

val pager : t -> Pager.t
(** The underlying pager. *)

val wal : t -> Wal.t
(** The write-ahead log handle. *)

val fault : t -> Fault.t
(** The fault injector every layer of this engine consults. *)

val metrics : t -> Obs.Registry.t
(** The registry passed to {!open_db} ({!Obs.Registry.noop} when none
    was) — layers above the engine register their instruments here. *)

val trace : t -> Obs.Trace.t
(** The span recorder passed to {!open_db}. *)

val last_recovery : t -> Recovery.outcome option
(** The outcome of the restart recovery this open performed, if the log
    was non-empty. *)

val read_only : t -> bool
(** Has the engine degraded to read-only? *)

val degraded_reason : t -> string option
(** Why the engine degraded to read-only (the failing I/O site). *)

val repairs : t -> int
(** Quarantine-and-repair events since open (including one performed by
    the open itself, if the on-disk item plane was corrupt). *)

val last_repair : t -> repair option
(** Details of the most recent repair event. *)

val io_retries : t -> int
(** Transient-EIO retries (pager + WAL) that eventually succeeded. *)

val wal_path : string -> string
(** [wal_path db_path] is where {!open_db} keeps the log:
    [db_path ^ ".wal"]. *)
