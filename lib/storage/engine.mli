(** The storage engine: pager + buffer pool + binary WAL + ARIES-lite
    recovery behind one transactional facade, plus a persistent
    heap-table layer for relational instances.

    Policies: {e steal} (eviction may flush uncommitted pages, behind the
    WAL barrier), {e no-force} (commit makes only the log durable), and
    {e strict} per-item write locks held to commit/abort — exactly the
    regime {!Transactions.Recovery} models in memory, now against real
    bytes.  Opening a database always runs restart recovery; the
    invariant (crash-matrix-tested) is that after a crash at any I/O the
    reopened store holds exactly the committed transactions' writes in
    log order. *)

type t

exception Locked of string * int
(** The item is write-locked by another transaction (strictness). *)

exception No_such_transaction of int
exception Active_transactions
exception Unknown_table of string

val open_db : ?pool_size:int -> ?crash_after:int -> string -> t
(** Open or create the database at [path] (the WAL lives at
    [path ^ ".wal"]).  [crash_after] arms fault injection: that many
    durable I/Os succeed, the next raises {!Fault.Crash} — including
    I/Os issued by recovery itself. *)

val close : t -> unit
(** Clean shutdown: checkpoint (when quiescent) and close. *)

val crash : t -> unit
(** Abandon without flushing anything — simulates the process dying.
    The on-disk state is whatever the WAL and stolen pages got to. *)

val begin_txn : ?id:int -> t -> int
val write : t -> txn:int -> string -> int -> unit
(** Logs (item, before, after) then applies in the pool; raises
    {!Locked} when another transaction holds the item. *)

val read : t -> string -> int
(** Current value; absent items read 0. *)

val commit : t -> txn:int -> unit
(** Appends Commit and flushes the WAL — the commit point. *)

val abort : t -> txn:int -> unit
(** Undoes the transaction's writes newest-first, logging compensation
    records, then appends Abort. *)

val checkpoint : t -> unit
(** Quiescent checkpoint: flush all pages, then log Checkpoint.  Raises
    {!Active_transactions} when transactions are running. *)

val lock_holder : t -> string -> int option
val active_txns : t -> int list

val items : t -> (string * int) list
(** The committed-visible KV state, sorted, zero values omitted. *)

val item_count : t -> int

val save_table : t -> string -> Relational.Relation.t -> unit
(** Persist a relation under a name (replacing any previous binding) and
    checkpoint. *)

val load_table : t -> string -> Relational.Relation.t
(** Raises {!Unknown_table}. *)

val table_names : t -> string list
val table_info : t -> (string * Relational.Schema.t * int) list
(** (name, schema, first page id) per catalog entry. *)

val database : t -> Relational.Database.t
(** Load every table — a {!Relational.Database} instance served from
    disk through the buffer pool. *)

val pool : t -> Buffer_pool.t
val pager : t -> Pager.t
val wal : t -> Wal.t
val fault : t -> Fault.t

val last_recovery : t -> Recovery.outcome option
(** The outcome of the restart recovery this open performed, if the log
    was non-empty. *)

val wal_path : string -> string
