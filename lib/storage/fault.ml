exception Crash of string
exception Io_error of string

type crash_info = { site : string; io_index : int }

(* --- specs: the --faults mini-language ---------------------------------- *)

type rule = { scope : string option; prob : float }

type spec = {
  crash_after : int option;
  torn : rule list;
  flip : rule list;
  eio : rule list;
  drop : rule list;
  delay : rule list;
  part : rule list;
  seed : int option;
}

let no_faults =
  {
    crash_after = None;
    torn = [];
    flip = [];
    eio = [];
    drop = [];
    delay = [];
    part = [];
    seed = None;
  }

let grammar =
  "the grammar is crash=N, seed=N, torn|flip|eio[@site]=PROB, \
   drop|delay|part[@site]=PROB"

let spec_of_string s =
  let fail fmt =
    Printf.ksprintf (fun msg -> invalid_arg (msg ^ "; " ^ grammar)) fmt
  in
  let parse_clause spec clause =
    match String.index_opt clause '=' with
    | None -> fail "fault clause %S has no '='" clause
    | Some i -> (
        let key = String.sub clause 0 i in
        let v = String.sub clause (i + 1) (String.length clause - i - 1) in
        let kind, scope =
          match String.index_opt key '@' with
          | None -> (key, None)
          | Some j ->
              let site = String.sub key (j + 1) (String.length key - j - 1) in
              if site = "" then fail "empty @site in fault clause %S" clause;
              (String.sub key 0 j, Some site)
        in
        let prob () =
          match float_of_string_opt v with
          | Some p when p >= 0. && p <= 1. -> p
          | _ ->
              fail "fault clause %S needs a probability in [0,1], got %S" clause
                v
        in
        let int () =
          match int_of_string_opt v with
          | Some n when n >= 0 -> n
          | _ ->
              fail "fault clause %S needs a nonnegative integer, got %S" clause
                v
        in
        let unscoped () =
          if scope <> None then
            fail "fault kind %S takes no @site scope (clause %S)" kind clause
        in
        let rule () = { scope; prob = prob () } in
        match kind with
        | "crash" ->
            unscoped ();
            { spec with crash_after = Some (int ()) }
        | "seed" ->
            unscoped ();
            { spec with seed = Some (int ()) }
        | "torn" -> { spec with torn = spec.torn @ [ rule () ] }
        | "flip" -> { spec with flip = spec.flip @ [ rule () ] }
        | "eio" -> { spec with eio = spec.eio @ [ rule () ] }
        | "drop" -> { spec with drop = spec.drop @ [ rule () ] }
        | "delay" -> { spec with delay = spec.delay @ [ rule () ] }
        | "part" -> { spec with part = spec.part @ [ rule () ] }
        | _ -> fail "unknown fault kind %S in clause %S" kind clause)
  in
  String.split_on_char ',' s
  |> List.filter (fun c -> String.trim c <> "")
  |> List.map String.trim
  |> List.fold_left parse_clause no_faults

let spec_to_string spec =
  let rules kind l =
    List.map
      (fun { scope; prob } ->
        match scope with
        | None -> Printf.sprintf "%s=%g" kind prob
        | Some s -> Printf.sprintf "%s@%s=%g" kind s prob)
      l
  in
  let clauses =
    (match spec.crash_after with
    | Some n -> [ Printf.sprintf "crash=%d" n ]
    | None -> [])
    @ rules "torn" spec.torn @ rules "flip" spec.flip @ rules "eio" spec.eio
    @ rules "drop" spec.drop @ rules "delay" spec.delay
    @ rules "part" spec.part
    @ (match spec.seed with Some n -> [ Printf.sprintf "seed=%d" n ] | None -> [])
  in
  String.concat "," clauses

(* --- the injector -------------------------------------------------------- *)

type counts = {
  torn : int;
  flips : int;
  eios : int;
  drops : int;
  delays : int;
  parts : int;
}

type t = {
  mutable budget : int option;
  mutable crashed : crash_info option;
  mutable ios : int;
  mutable rng : Support.Rng.t;
  mutable torn_rules : rule list;
  mutable flip_rules : rule list;
  mutable eio_rules : rule list;
  mutable drop_rules : rule list;
  mutable delay_rules : rule list;
  mutable part_rules : rule list;
  mutable torn_count : int;
  mutable flip_count : int;
  mutable eio_count : int;
  mutable drop_count : int;
  mutable delay_count : int;
  mutable part_count : int;
  mutable registry : Obs.Registry.t;
  fired : (string, Obs.Registry.Counter.t) Hashtbl.t;
}

let create () =
  {
    budget = None;
    crashed = None;
    ios = 0;
    rng = Support.Rng.create 0;
    torn_rules = [];
    flip_rules = [];
    eio_rules = [];
    drop_rules = [];
    delay_rules = [];
    part_rules = [];
    torn_count = 0;
    flip_count = 0;
    eio_count = 0;
    drop_count = 0;
    delay_count = 0;
    part_count = 0;
    registry = Obs.Registry.noop;
    fired = Hashtbl.create 8;
  }

let set_metrics t registry =
  t.registry <- registry;
  Hashtbl.reset t.fired

(* Site names carry page ids ("page 12 write"); metric names must form a
   closed set, so digit runs normalize to "N" and spaces to "_" — the
   catalogue documents the per-kind families as [fault.<kind>.*]. *)
let normalize_site at =
  let buf = Buffer.create (String.length at) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          if not !in_digits then Buffer.add_char buf 'N';
          in_digits := true
      | c ->
          in_digits := false;
          Buffer.add_char buf (if c = ' ' then '_' else c))
    at;
  Buffer.contents buf

let fired t kind ~at =
  let name = Printf.sprintf "fault.%s.%s" kind (normalize_site at) in
  let counter =
    match Hashtbl.find_opt t.fired name with
    | Some c -> c
    | None ->
        let c =
          Obs.Registry.counter t.registry ~unit:"events"
            ~help:(Printf.sprintf "injected %s faults fired at this site" kind)
            name
        in
        Hashtbl.add t.fired name c;
        c
  in
  Obs.Registry.Counter.incr counter

let configure t spec =
  t.budget <- spec.crash_after;
  t.torn_rules <- spec.torn;
  t.flip_rules <- spec.flip;
  t.eio_rules <- spec.eio;
  t.drop_rules <- spec.drop;
  t.delay_rules <- spec.delay;
  t.part_rules <- spec.part;
  t.rng <- Support.Rng.create (match spec.seed with Some s -> s | None -> 0)

let arm t n =
  if n < 0 then invalid_arg "Fault.arm: negative budget";
  t.budget <- Some n

let disarm t = t.budget <- None
let armed t = t.budget <> None
let crashed_at t = t.crashed
let io_index t = t.ios

let io t ~at ~on_crash =
  match t.budget with
  | None -> t.ios <- t.ios + 1
  | Some n when n > 0 ->
      t.budget <- Some (n - 1);
      t.ios <- t.ios + 1
  | Some _ ->
      t.budget <- None;
      (* the uniform payload: every site records where and when *)
      t.crashed <- Some { site = at; io_index = t.ios };
      fired t "crash" ~at;
      on_crash ();
      raise (Crash at)

(* A site-scoped probability: the strongest matching rule wins. *)
let prob rules ~at =
  List.fold_left
    (fun acc { scope; prob } ->
      let matches =
        match scope with
        | None -> true
        | Some s ->
            let ls = String.length s and lat = String.length at in
            let rec scan i =
              i + ls <= lat && (String.sub at i ls = s || scan (i + 1))
            in
            scan 0
      in
      if matches then Float.max acc prob else acc)
    0. rules

let draw t rules ~at =
  let p = prob rules ~at in
  p > 0. && Support.Rng.float t.rng 1.0 < p

let torn_write t ~at =
  let fires = draw t t.torn_rules ~at in
  if fires then begin
    t.torn_count <- t.torn_count + 1;
    fired t "torn" ~at
  end;
  fires

let bit_flip t ~at ~len =
  if len > 0 && draw t t.flip_rules ~at then begin
    t.flip_count <- t.flip_count + 1;
    fired t "flip" ~at;
    Some (Support.Rng.int t.rng (len * 8))
  end
  else None

let transient t ~at =
  let fires = draw t t.eio_rules ~at in
  if fires then begin
    t.eio_count <- t.eio_count + 1;
    fired t "eio" ~at
  end;
  fires

(* --- the message-fault family (distributed commit) ----------------------- *)

let dropped t ~at =
  let fires = draw t t.drop_rules ~at in
  if fires then begin
    t.drop_count <- t.drop_count + 1;
    fired t "drop" ~at
  end;
  fires

let delay_ticks t ~at ~max =
  if max > 0 && draw t t.delay_rules ~at then begin
    t.delay_count <- t.delay_count + 1;
    fired t "delay" ~at;
    Some (1 + Support.Rng.int t.rng max)
  end
  else None

let partitioned t ~at =
  let fires = draw t t.part_rules ~at in
  if fires then begin
    t.part_count <- t.part_count + 1;
    fired t "part" ~at
  end;
  fires

let flip_coin t = Support.Rng.int t.rng 2 = 0

let counts t =
  {
    torn = t.torn_count;
    flips = t.flip_count;
    eios = t.eio_count;
    drops = t.drop_count;
    delays = t.delay_count;
    parts = t.part_count;
  }
