exception Crash of string

type t = { mutable budget : int option; mutable crashed_at : string option }

let create () = { budget = None; crashed_at = None }

let arm t n =
  if n < 0 then invalid_arg "Fault.arm: negative budget";
  t.budget <- Some n

let disarm t = t.budget <- None
let armed t = t.budget <> None
let crashed_at t = t.crashed_at

let io t ~at ~on_crash =
  match t.budget with
  | None -> ()
  | Some n when n > 0 -> t.budget <- Some (n - 1)
  | Some _ ->
      t.budget <- None;
      t.crashed_at <- Some at;
      on_crash ();
      raise (Crash at)
