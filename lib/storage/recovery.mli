(** ARIES-lite restart recovery: analysis, redo from the last
    (quiescent) checkpoint repeating history, then undo of losers in
    reverse-LSN order with compensation logging.

    The algorithm is store-agnostic: the engine supplies [read]/[write]
    over its item pages and [log] appending to its WAL, so the same pass
    structure is unit-testable against a plain hash table.  The
    correctness target is {!Transactions.Recovery.committed_state}: after
    recovery the store holds exactly the committed transactions' writes
    in log order. *)

(** What one restart recovery did — surfaced by [db status] and
    {!Engine.last_recovery}. *)
type outcome = {
  checkpoint_lsn : int option;
  winners : int list;  (** committed in the surviving log *)
  losers : int list;  (** begun, neither committed nor aborted *)
  redo_applied : int;
  redo_skipped : int;  (** writes the page-LSN test proved already present *)
  undone : int;
}

val analyze : Wal.entry list -> int option * int list * int list
(** (last checkpoint LSN, winners, losers). *)

val run :
  entries:Wal.entry list ->
  read:(string -> int) ->
  write:(lsn:int -> string -> int -> bool) ->
  log:(Wal.record -> int) ->
  outcome
(** [write ~lsn item v] must apply the page-LSN test: return [false]
    (skip) when the item's page already carries an LSN ≥ [lsn], [true]
    after applying and raising the page LSN.  [log] appends a WAL record
    and returns its LSN. *)

val outcome_to_string : outcome -> string
