(* Heap storage over the pager: page chains of variable-length records.

   Three uses share the machinery:
     - the item store (the transactional KV plane the WAL protects):
       records are (item, i64 value), updated in place — the value field
       is fixed-width, so an update never moves a record;
     - table chains: one chain of tuple records per relation;
     - the catalog: one chain of (name, schema, first-page) records
       describing the tables.

   All access goes through the buffer pool, so scans and point reads are
   counted in its hit/miss statistics. *)

let kind_items = 2
let kind_table = 3
let kind_catalog = 4

let iter_chain pool ~first f =
  let id = ref first in
  while !id <> 0 do
    let next =
      Buffer_pool.with_page pool !id (fun page ->
          List.iter (fun (slot, r) -> f !id slot r) (Page.records page);
          Page.next page)
    in
    id := next
  done

let page_records pool id =
  Buffer_pool.with_page pool id (fun page ->
      (List.map snd (Page.records page), Page.next page))

let chain_pages pool ~first =
  let n = ref 0 and id = ref first in
  while !id <> 0 do
    incr n;
    id := Buffer_pool.with_page pool !id Page.next
  done;
  !n

(* A page chain with a remembered tail, so appends are O(1) in chain
   length.  [on_first] persists the root of a chain created lazily (e.g.
   into the pager header or the catalog). *)
module Chain = struct
  type t = {
    pool : Buffer_pool.t;
    kind : int;
    mutable first : int;  (* 0 = not yet created *)
    mutable tail : int;
    on_first : int -> unit;
  }

  let make pool ~kind ~first ~on_first =
    let tail = ref first in
    (* find the real tail of an existing chain *)
    let id = ref first in
    while !id <> 0 do
      tail := !id;
      id := Buffer_pool.with_page pool !id Page.next
    done;
    { pool; kind; first; tail = !tail; on_first }

  let fresh_page c =
    let pager = Buffer_pool.pager c.pool in
    let id = Pager.allocate pager ~kind:c.kind in
    (* adopt the known-good in-memory image rather than reading back what
       allocate just wrote: the disk copy may be torn or bit-flipped under
       fault injection, and re-reading it would turn a write fault into an
       instant CRC failure — including inside the repair rebuild itself.
       Dirty-marking makes the next flush overwrite the suspect image. *)
    let page = Page.init ~kind:c.kind in
    Page.seal page;
    Buffer_pool.adopt c.pool id page;
    Buffer_pool.mark_dirty c.pool id;
    id

  let force c =
    if c.first = 0 then begin
      let id = fresh_page c in
      c.first <- id;
      c.tail <- id;
      c.on_first id
    end;
    c.first

  (* Append a record; returns (page, slot). *)
  let append c record =
    ignore (force c : int);
    let inserted =
      Buffer_pool.with_page c.pool c.tail (fun page ->
          match Page.insert page record with
          | slot ->
              Buffer_pool.mark_dirty c.pool c.tail;
              Some slot
          | exception Page.Page_full -> None)
    in
    match inserted with
    | Some slot -> (c.tail, slot)
    | None ->
        let id = fresh_page c in
        Buffer_pool.with_page c.pool c.tail (fun page ->
            Page.set_next page id;
            Buffer_pool.mark_dirty c.pool c.tail);
        let slot =
          Buffer_pool.with_page c.pool id (fun page ->
              let s = Page.insert page record in
              Buffer_pool.mark_dirty c.pool id;
              s)
        in
        c.tail <- id;
        (id, slot)
end

(* --- the item store ----------------------------------------------------- *)

module Items = struct
  type loc = { page : int; slot : int }

  type t = {
    pool : Buffer_pool.t;
    dir : (string, loc) Hashtbl.t;  (* item -> location, built at open *)
    chain : Chain.t;
  }

  let encode item value =
    let buf = Buffer.create (String.length item + 10) in
    Buffer.add_uint16_le buf (String.length item);
    Buffer.add_string buf item;
    Buffer.add_int64_le buf (Int64.of_int value);
    Buffer.contents buf

  let decode r =
    let len = String.get_uint16_le r 0 in
    let item = String.sub r 2 len in
    let value = Int64.to_int (String.get_int64_le r (2 + len)) in
    (item, value)

  let load pool =
    let pager = Buffer_pool.pager pool in
    let first = Pager.items_root pager in
    let dir = Hashtbl.create 64 in
    if first <> 0 then
      iter_chain pool ~first (fun page slot r ->
          let item, _ = decode r in
          Hashtbl.replace dir item { page; slot });
    let chain =
      Chain.make pool ~kind:kind_items ~first ~on_first:(fun id ->
          Pager.set_items_root pager id)
    in
    { pool; dir; chain }

  let get t item =
    match Hashtbl.find_opt t.dir item with
    | None -> 0
    | Some { page; slot } ->
        Buffer_pool.with_page t.pool page (fun p ->
            match Page.read_slot p slot with
            | Some r -> snd (decode r)
            | None -> 0)

  (* The page-LSN test: apply the write unless the item's current page
     already carries this LSN (then the logged effect is present).  New
     items always apply. *)
  let set t ~lsn item value =
    let record = encode item value in
    match Hashtbl.find_opt t.dir item with
    | Some { page; slot } ->
        Buffer_pool.with_page t.pool page (fun p ->
            if Page.lsn p >= lsn then false
            else begin
              if not (Page.overwrite p slot record) then
                invalid_arg "Items.set: record size changed";
              Page.set_lsn p lsn;
              Buffer_pool.mark_dirty t.pool page;
              true
            end)
    | None ->
        let page, slot = Chain.append t.chain record in
        Buffer_pool.with_page t.pool page (fun p ->
            Page.set_lsn p lsn;
            Buffer_pool.mark_dirty t.pool page);
        Hashtbl.replace t.dir item { page; slot };
        true

  let all t =
    Hashtbl.fold (fun item _ acc -> item :: acc) t.dir []
    |> List.sort String.compare
    |> List.filter_map (fun item ->
           match get t item with 0 -> None | v -> Some (item, v))

  let count t = Hashtbl.length t.dir

  (* (page id, page LSN) down the chain — the engine compares these
     against the surviving log's end to spot stolen pages whose log
     records were lost (a corrupted WAL frame truncates the scan). *)
  let page_lsns t =
    let out = ref [] in
    let id = ref t.chain.Chain.first in
    while !id <> 0 do
      let next =
        Buffer_pool.with_page t.pool !id (fun p ->
            out := (!id, Page.lsn p) :: !out;
            Page.next p)
      in
      id := next
    done;
    List.rev !out
end

(* --- relations ----------------------------------------------------------- *)

let save_relation pool rel =
  let chain =
    Chain.make pool ~kind:kind_table ~first:0 ~on_first:(fun _ -> ())
  in
  Relational.Relation.iter
    (fun tuple ->
      ignore (Chain.append chain (Relational.Codec.tuple_to_string tuple)))
    rel;
  (* an empty relation still needs a chain for the catalog to point at *)
  Chain.force chain

let load_relation pool ~schema ~first =
  let tuples = ref [] in
  iter_chain pool ~first (fun _ _ r ->
      tuples := Relational.Codec.tuple_of_string r :: !tuples);
  Relational.Relation.of_tuples schema (List.rev !tuples)

(* --- the catalog ---------------------------------------------------------- *)

type table = { name : string; schema : Relational.Schema.t; first : int }

let encode_table t =
  let buf = Buffer.create 64 in
  Buffer.add_uint16_le buf (String.length t.name);
  Buffer.add_string buf t.name;
  Relational.Codec.add_schema buf t.schema;
  Buffer.add_int32_le buf (Int32.of_int t.first);
  Buffer.contents buf

let decode_table r =
  let pos = ref 0 in
  let len = String.get_uint16_le r !pos in
  pos := !pos + 2;
  let name = String.sub r !pos len in
  pos := !pos + len;
  let schema = Relational.Codec.read_schema r pos in
  let first = Int32.to_int (String.get_int32_le r !pos) in
  { name; schema; first }

let catalog_chain pool =
  let pager = Buffer_pool.pager pool in
  Chain.make pool ~kind:kind_catalog ~first:(Pager.catalog_root pager)
    ~on_first:(fun id -> Pager.set_catalog_root pager id)

let catalog pool =
  let first = Pager.catalog_root (Buffer_pool.pager pool) in
  let out = ref [] in
  if first <> 0 then
    iter_chain pool ~first (fun _ _ r -> out := decode_table r :: !out);
  List.rev !out

let add_table pool table =
  ignore (Chain.append (catalog_chain pool) (encode_table table))

(* Replacing a table rewrites the whole catalog chain in place (the old
   data chain's pages are leaked — no free list yet, see DESIGN.md). *)
let replace_table pool table =
  let existing = catalog pool in
  if not (List.exists (fun t -> t.name = table.name) existing) then
    add_table pool table
  else begin
    let tables =
      List.map (fun t -> if t.name = table.name then table else t) existing
    in
    (* clear the existing catalog pages, keeping the chain links *)
    let first = Pager.catalog_root (Buffer_pool.pager pool) in
    let id = ref first in
    while !id <> 0 do
      let next =
        Buffer_pool.with_page pool !id (fun page ->
            let n = Page.next page in
            let blank = Page.init ~kind:kind_catalog in
            Page.set_next blank n;
            Bytes.blit blank 0 page 0 Page.size;
            Buffer_pool.mark_dirty pool !id;
            n)
      in
      id := next
    done;
    let chain = catalog_chain pool in
    List.iter (fun t -> ignore (Chain.append chain (encode_table t))) tables
  end
