(* The buffer pool: a bounded cache of pages with pin counts, dirty
   tracking, and LRU eviction.  Evicting a dirty page flushes it — the
   "steal" in steal/no-force — but only after the WAL hook has made the
   log durable up to that page's LSN (write-ahead rule). *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
}

type frame = {
  page : Page.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable stamp : int;
}

type metrics = {
  m_hits : Obs.Registry.Counter.t;
  m_misses : Obs.Registry.Counter.t;
  m_evictions : Obs.Registry.Counter.t;
  m_flushes : Obs.Registry.Counter.t;
  m_resident : Obs.Registry.Gauge.t;
}

let make_metrics registry =
  let counter = Obs.Registry.counter registry in
  {
    m_hits = counter ~unit:"fetches" ~help:"fetches served from the pool" "pool.hits";
    m_misses =
      counter ~unit:"fetches" ~help:"fetches that read from disk" "pool.misses";
    m_evictions = counter ~unit:"pages" ~help:"frames evicted (LRU)" "pool.evictions";
    m_flushes =
      counter ~unit:"pages" ~help:"dirty frames written back" "pool.flushes";
    m_resident =
      Obs.Registry.gauge registry ~unit:"pages" ~help:"frames currently cached"
        "pool.resident";
  }

type t = {
  pager : Pager.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  stats : stats;
  metrics : metrics;
  mutable clock : int;
  mutable wal_barrier : int -> unit;
}

exception Pool_exhausted

let create ?(capacity = 64) ?(metrics = Obs.Registry.noop) pager =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    pager;
    capacity;
    frames = Hashtbl.create (2 * capacity);
    stats = { hits = 0; misses = 0; evictions = 0; flushes = 0 };
    metrics = make_metrics metrics;
    clock = 0;
    wal_barrier = (fun _ -> ());
  }

let pager t = t.pager
let stats t = t.stats
let capacity t = t.capacity
let set_wal_barrier t f = t.wal_barrier <- f

let touch t frame =
  t.clock <- t.clock + 1;
  frame.stamp <- t.clock

let flush_frame t id frame =
  if frame.dirty then begin
    t.wal_barrier (Page.lsn frame.page);
    Pager.write_page t.pager id frame.page;
    frame.dirty <- false;
    t.stats.flushes <- t.stats.flushes + 1;
    Obs.Registry.Counter.incr t.metrics.m_flushes
  end

let evict_one t =
  let victim =
    Hashtbl.fold
      (fun id frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | Some (_, b) when b.stamp <= frame.stamp -> best
          | _ -> Some (id, frame))
      t.frames None
  in
  match victim with
  | None -> raise Pool_exhausted
  | Some (id, frame) ->
      flush_frame t id frame;
      Hashtbl.remove t.frames id;
      t.stats.evictions <- t.stats.evictions + 1;
      Obs.Registry.Counter.incr t.metrics.m_evictions;
      Obs.Registry.Gauge.set t.metrics.m_resident (Hashtbl.length t.frames)

let fetch t id =
  match Hashtbl.find_opt t.frames id with
  | Some frame ->
      t.stats.hits <- t.stats.hits + 1;
      Obs.Registry.Counter.incr t.metrics.m_hits;
      frame.pins <- frame.pins + 1;
      touch t frame;
      frame.page
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      Obs.Registry.Counter.incr t.metrics.m_misses;
      if Hashtbl.length t.frames >= t.capacity then evict_one t;
      let page = Pager.read_page t.pager id in
      let frame = { page; dirty = false; pins = 1; stamp = 0 } in
      touch t frame;
      Hashtbl.replace t.frames id frame;
      Obs.Registry.Gauge.set t.metrics.m_resident (Hashtbl.length t.frames);
      page

let frame_exn t id what =
  match Hashtbl.find_opt t.frames id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Buffer_pool.%s: page %d not resident" what id)

let unpin t id =
  let f = frame_exn t id "unpin" in
  if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: not pinned";
  f.pins <- f.pins - 1

let mark_dirty t id = (frame_exn t id "mark_dirty").dirty <- true

let with_page t id f =
  let page = fetch t id in
  Fun.protect ~finally:(fun () -> unpin t id) (fun () -> f page)

let adopt t id page =
  if Hashtbl.length t.frames >= t.capacity then evict_one t;
  let frame = { page; dirty = false; pins = 0; stamp = 0 } in
  touch t frame;
  Hashtbl.replace t.frames id frame;
  Obs.Registry.Gauge.set t.metrics.m_resident (Hashtbl.length t.frames)

let flush_page t id =
  match Hashtbl.find_opt t.frames id with
  | Some frame -> flush_frame t id frame
  | None -> ()

let flush_all t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.frames []
  |> List.sort Int.compare
  |> List.iter (fun id -> flush_page t id)

let drop_clean t =
  let victims =
    Hashtbl.fold
      (fun id f acc -> if (not f.dirty) && f.pins = 0 then id :: acc else acc)
      t.frames []
  in
  List.iter (Hashtbl.remove t.frames) victims;
  Obs.Registry.Gauge.set t.metrics.m_resident (Hashtbl.length t.frames)

let resident t = Hashtbl.length t.frames
