(* The storage engine: pager + buffer pool + WAL + ARIES-lite recovery
   behind one transactional facade.

   Policies, stated once:
     steal    — the buffer pool may flush a dirty page while its
                transaction is running (eviction), after the WAL barrier;
     no-force — commit makes only the WAL durable, never the pages;
     strict   — per-item write locks are held to commit/abort, so undo by
                before-image is sound (the discipline Transactions.Recovery
                assumes and its docs spell out).

   Opening a database always runs restart recovery over the surviving
   log; a database file abandoned mid-flight (or killed by Fault
   injection) is repaired to exactly the committed transactions' writes.

   Robustness (the fault taxonomy, see Fault):
     quarantine-and-repair — a CRC-corrupt item-store page (torn write,
       bit flip) is abandoned, not fatal: the item plane is rebuilt by
       replaying every surviving WAL write record (the log is never
       truncated, so the full history is available).  A page whose LSN
       is newer than the surviving log's end betrays a lost log suffix
       (a corrupted WAL frame truncates the opening scan) and is
       quarantined the same way.
     read-only degradation — a WAL flush whose fsync fails past its
       retry budget means durability can no longer be promised: the
       engine flips to read-only and refuses begin/write/commit with
       [Read_only] instead of crashing.  Reads still work.
     Table chains are not WAL-protected; a corrupt table page remains a
       hard [Pager.Corrupt] (documented limitation). *)

type repair = { quarantined : int list; replayed : int }

type emetrics = {
  m_begins : Obs.Registry.Counter.t;
  m_commits : Obs.Registry.Counter.t;
  m_aborts : Obs.Registry.Counter.t;
  m_repairs : Obs.Registry.Counter.t;
  m_degraded : Obs.Registry.Gauge.t;
}

let make_metrics registry =
  let counter = Obs.Registry.counter registry in
  {
    m_begins = counter ~unit:"txns" ~help:"transactions begun" "engine.begins";
    m_commits =
      counter ~unit:"txns" ~help:"transactions committed (durable)"
        "engine.commits";
    m_aborts = counter ~unit:"txns" ~help:"transactions aborted" "engine.aborts";
    m_repairs =
      counter ~unit:"events" ~help:"quarantine-and-repair events"
        "engine.repairs";
    m_degraded =
      Obs.Registry.gauge registry ~unit:"flag"
        ~help:"1 once the engine degraded to read-only" "engine.degraded";
  }

type t = {
  pager : Pager.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
  mutable items : Heap.Items.t;
  fault : Fault.t;
  metrics : Obs.Registry.t;
  emetrics : emetrics;
  trace : Obs.Trace.t;
  locks : (string, int) Hashtbl.t;
  active : (int, (string * int) list ref) Hashtbl.t;
      (* txn -> (item, before-image) newest first *)
  prepared : (int, unit) Hashtbl.t;
      (* active txns whose Prepare record is durable (2PC participants) *)
  mutable next_txn : int;
  mutable last_recovery : Recovery.outcome option;
  mutable read_only : bool;
  mutable degraded_reason : string option;
  mutable repairs : int;
  mutable last_repair : repair option;
}

exception Locked of string * int
exception No_such_transaction of int
exception Active_transactions
exception Unknown_table of string
exception Read_only of string

let wal_path path = path ^ ".wal"

let degrade t site =
  t.read_only <- true;
  Obs.Registry.Gauge.set t.emetrics.m_degraded 1;
  if t.degraded_reason = None then t.degraded_reason <- Some site

let check_writable t =
  if t.read_only then
    match t.degraded_reason with
    | Some site -> raise (Read_only (Printf.sprintf "wal unflushable at %s" site))
    | None -> raise (Read_only "engine is read-only")

let checkpoint_now t =
  Obs.Trace.with_span t.trace "engine.checkpoint" (fun () ->
      (* order is the whole point: pages first, checkpoint record after,
         so redo may really start at the checkpoint *)
      Wal.flush t.wal;
      Buffer_pool.flush_all t.pool;
      ignore (Wal.append t.wal Wal.Checkpoint : int);
      Wal.flush t.wal;
      Pager.set_flushed_lsn t.pager (Wal.durable_lsn t.wal);
      Pager.sync t.pager)

let checkpoint t =
  if Hashtbl.length t.active > 0 then raise Active_transactions;
  check_writable t;
  try checkpoint_now t
  with Fault.Io_error site ->
    degrade t site;
    raise (Read_only (Printf.sprintf "wal unflushable at %s" site))

(* --- quarantine and repair ----------------------------------------------- *)

(* Rebuild the item plane from scratch by replaying every surviving WAL
   write record with its LSN.  Sound because the log is never truncated:
   it holds the full history since the database was created, and the
   page-LSN test keeps the replay idempotent. *)
let replay_items pool entries =
  let items = Heap.Items.load pool in
  let replayed = ref 0 in
  List.iter
    (fun { Wal.lsn; record } ->
      match record with
      | Wal.Write { item; after; _ } ->
          ignore (Heap.Items.set items ~lsn item after : bool);
          incr replayed
      | _ -> ())
    entries;
  (items, !replayed)

let note_repair t ~quarantined ~replayed =
  Pager.forget_corrupt t.pager;
  t.repairs <- t.repairs + 1;
  Obs.Registry.Counter.incr t.emetrics.m_repairs;
  t.last_repair <- Some { quarantined; replayed }

(* Runtime repair: flush what we can (so the rebuilt plane reflects every
   applied write), abandon the corrupt chain, and rebuild from the log on
   disk.  Active transactions stay valid — their undo information is the
   WAL itself plus the in-memory before-images. *)
let repair_now t =
  Obs.Trace.with_span t.trace "engine.repair" (fun () ->
      (try Wal.flush t.wal with Fault.Io_error site -> degrade t site);
      let quarantined = Pager.corrupt_pages t.pager in
      let entries = Wal.read_entries (Wal.path t.wal) in
      Pager.set_items_root t.pager 0;
      let items, replayed = replay_items t.pool entries in
      t.items <- items;
      note_repair t ~quarantined ~replayed)

(* Run an item-plane access, repairing once on a CRC failure. *)
let with_repair t f =
  try f ()
  with Pager.Corrupt _ ->
    repair_now t;
    f ()

(* --- open / close --------------------------------------------------------- *)

let open_db ?(pool_size = 64) ?crash_after ?faults ?fault
    ?(metrics = Obs.Registry.noop) ?(trace = Obs.Trace.noop) path =
  (* [?fault] shares one injector (and so one crash budget / RNG stream)
     across several engines — how the distributed layer makes "crash at
     the N-th I/O anywhere in the system" a single budget *)
  let fault =
    match fault with
    | Some f -> f
    | None ->
        let f = Fault.create () in
        Fault.set_metrics f metrics;
        f
  in
  (match faults with Some spec -> Fault.configure fault spec | None -> ());
  (match crash_after with Some n -> Fault.arm fault n | None -> ());
  (* a zero-length file is a creation that crashed before its header
     write — treat it as fresh so such a database is still recoverable *)
  let fresh =
    (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0
  in
  let pager =
    if fresh then Pager.create ~fault ~metrics path
    else Pager.open_file ~fault ~metrics path
  in
  let wal, entries =
    try Wal.open_log ~fault ~metrics ~trace (wal_path path)
    with e ->
      Pager.abandon pager;
      raise e
  in
  let pool = Buffer_pool.create ~capacity:pool_size ~metrics pager in
  Buffer_pool.set_wal_barrier pool (fun lsn -> Wal.flush_to wal lsn);
  let items, first_repair =
    try
      let loaded =
        match Heap.Items.load pool with
        | items ->
            (* pages newer than the surviving log betray a lost suffix *)
            let horizon = Wal.durable_lsn wal in
            let future =
              List.filter_map
                (fun (page, lsn) -> if lsn >= horizon && lsn > 0 then Some page else None)
                (Heap.Items.page_lsns items)
            in
            if future = [] then Ok items else Error future
        | exception Pager.Corrupt _ -> Error (Pager.corrupt_pages pager)
      in
      match loaded with
      | Ok items -> (items, None)
      | Error quarantined ->
          Pager.set_items_root pager 0;
          let items, replayed = replay_items pool entries in
          (items, Some { quarantined; replayed })
    with e ->
      Wal.abandon wal;
      Pager.abandon pager;
      raise e
  in
  let t =
    {
      pager;
      pool;
      wal;
      items;
      fault;
      metrics;
      emetrics = make_metrics metrics;
      trace;
      locks = Hashtbl.create 16;
      active = Hashtbl.create 16;
      prepared = Hashtbl.create 4;
      next_txn = 1;
      last_recovery = None;
      read_only = false;
      degraded_reason = None;
      repairs = 0;
      last_repair = None;
    }
  in
  (match first_repair with
  | Some { quarantined; replayed } ->
      Pager.forget_corrupt pager;
      t.repairs <- 1;
      Obs.Registry.Counter.incr t.emetrics.m_repairs;
      t.last_repair <- Some { quarantined; replayed }
  | None -> ());
  let max_txn =
    List.fold_left
      (fun m { Wal.record; _ } ->
        match record with
        | Wal.Begin x | Wal.Commit x | Wal.Abort x | Wal.Prepare x -> max m x
        | Wal.Write { txn; _ } -> max m txn
        | Wal.Checkpoint -> m)
      0 entries
  in
  t.next_txn <- max_txn + 1;
  (try
     if entries <> [] then begin
       let rec run_recovery tries =
         try
           Recovery.run ~entries
             ~read:(fun item -> Heap.Items.get t.items item)
             ~write:(fun ~lsn item v -> Heap.Items.set t.items ~lsn item v)
             ~log:(fun r -> Wal.append t.wal r)
         with Pager.Corrupt _ when tries < 2 ->
           (* a page corrupted by recovery's own (faulty) page writes:
              quarantine, rebuild, and re-run — the replay is idempotent *)
           let quarantined = Pager.corrupt_pages t.pager in
           Pager.set_items_root t.pager 0;
           let items, replayed = replay_items t.pool entries in
           t.items <- items;
           note_repair t ~quarantined ~replayed;
           run_recovery (tries + 1)
       in
       let outcome =
         Obs.Trace.with_span trace "engine.recovery" (fun () -> run_recovery 0)
       in
       t.last_recovery <- Some outcome;
       (* the post-recovery checkpoint is an optimization: if the WAL (or
          pager) reports persistent EIO, skip it — the log on disk still
          covers everything, the appended undo records stay pending for
          the next flush, and a WAL that keeps failing degrades the
          engine to read-only at the first commit instead of making the
          database unopenable *)
       try checkpoint_now t with Fault.Io_error _ -> ()
     end
   with e ->
     (* a crash injected into recovery itself: release the descriptors so
        the caller can retry the open (the crash-matrix tests do) *)
     Wal.abandon wal;
     Pager.abandon pager;
     raise e);
  t

let crash t =
  Wal.abandon t.wal;
  Pager.abandon t.pager

let close t =
  if t.read_only then
    (* degraded: the WAL cannot be made durable, so a checkpoint or even
       a final flush would lie — abandon, exactly as a crash would *)
    crash t
  else begin
    (try if Hashtbl.length t.active = 0 then checkpoint_now t
     with Fault.Io_error site -> degrade t site);
    if t.read_only then crash t
    else begin
      Wal.close t.wal;
      Pager.close t.pager
    end
  end

(* --- transactions -------------------------------------------------------- *)

let writes_of t txn =
  match Hashtbl.find_opt t.active txn with
  | Some w -> w
  | None -> raise (No_such_transaction txn)

let begin_txn ?id t =
  check_writable t;
  let id =
    match id with
    | Some i -> i
    | None ->
        let i = t.next_txn in
        t.next_txn <- i + 1;
        i
  in
  if Hashtbl.mem t.active id then
    invalid_arg (Printf.sprintf "Engine.begin_txn: txn %d already active" id);
  t.next_txn <- max t.next_txn (id + 1);
  ignore (Wal.append t.wal (Wal.Begin id) : int);
  Hashtbl.replace t.active id (ref []);
  Obs.Registry.Counter.incr t.emetrics.m_begins;
  id

let lock_holder t item = Hashtbl.find_opt t.locks item

let read t item = with_repair t (fun () -> Heap.Items.get t.items item)

let write t ~txn item value =
  check_writable t;
  let writes = writes_of t txn in
  if Hashtbl.mem t.prepared txn then
    invalid_arg
      (Printf.sprintf "Engine.write: txn %d is prepared and awaiting its \
                       commit decision" txn);
  (match Hashtbl.find_opt t.locks item with
  | Some holder when holder <> txn -> raise (Locked (item, holder))
  | _ -> Hashtbl.replace t.locks item txn);
  let before = with_repair t (fun () -> Heap.Items.get t.items item) in
  let lsn =
    Wal.append t.wal
      (Wal.Write { txn; item; before; after = value; compensation = false })
  in
  (match with_repair t (fun () -> Heap.Items.set t.items ~lsn item value) with
  | (_ : bool) -> ()
  | exception Fault.Io_error site ->
      (* the steal barrier could not flush the log: durability is gone *)
      degrade t site;
      raise (Read_only (Printf.sprintf "wal unflushable at %s" site)));
  writes := (item, before) :: !writes

let release_locks t txn =
  let mine =
    Hashtbl.fold
      (fun item holder acc -> if holder = txn then item :: acc else acc)
      t.locks []
  in
  List.iter (Hashtbl.remove t.locks) mine

(* The participant side of two-phase commit: force the txn's writes and
   a Prepare record to disk, then hold everything (locks, undo info)
   until the coordinator's decision arrives — possibly only after a
   restart, via the termination protocol.  Idempotent, because the
   coordinator retries lost PREPARE messages. *)
let prepare t ~txn =
  check_writable t;
  ignore (writes_of t txn);
  if not (Hashtbl.mem t.prepared txn) then begin
    ignore (Wal.append t.wal (Wal.Prepare txn) : int);
    match Wal.flush t.wal with
    | () -> Hashtbl.replace t.prepared txn ()
    | exception Fault.Io_error site ->
        (* the vote cannot be made durable: this shard must vote no *)
        degrade t site;
        raise (Read_only (Printf.sprintf "wal unflushable at %s" site))
  end

let prepared_txns t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.prepared [] |> List.sort Int.compare

let commit t ~txn =
  check_writable t;
  ignore (writes_of t txn);
  Obs.Trace.with_span t.trace
    ~args:[ ("txn", string_of_int txn) ]
    "engine.commit"
    (fun () ->
      ignore (Wal.append t.wal (Wal.Commit txn) : int);
      (* the commit point: the flush that makes the Commit record durable *)
      match Wal.flush t.wal with
      | () -> ()
      | exception Fault.Io_error site ->
          (* the Commit record stays pending and is dropped by the degraded
             close (abandon), so recovery treats the transaction as a loser:
             in-doubt in this process, aborted after restart *)
          degrade t site;
          raise (Read_only (Printf.sprintf "wal unflushable at %s" site)));
  release_locks t txn;
  Hashtbl.remove t.active txn;
  Hashtbl.remove t.prepared txn;
  Obs.Registry.Counter.incr t.emetrics.m_commits

let abort t ~txn =
  let writes = writes_of t txn in
  (* undo newest-first, logging a compensation per undone write — these
     are ordinary history for any later recovery (never re-undone).
     In degraded mode this is best-effort: the CLRs cannot be flushed,
     but restart recovery re-derives the same undo from the log. *)
  Obs.Trace.with_span t.trace
    ~args:[ ("txn", string_of_int txn) ]
    "engine.abort"
    (fun () ->
      try
        List.iter
          (fun (item, before) ->
            let current = with_repair t (fun () -> Heap.Items.get t.items item) in
            let lsn =
              Wal.append t.wal
                (Wal.Write
                   { txn; item; before = current; after = before; compensation = true })
            in
            ignore (with_repair t (fun () -> Heap.Items.set t.items ~lsn item before) : bool))
          !writes;
        ignore (Wal.append t.wal (Wal.Abort txn) : int);
        Wal.flush t.wal
      with Fault.Io_error site -> degrade t site);
  release_locks t txn;
  Hashtbl.remove t.active txn;
  Hashtbl.remove t.prepared txn;
  Obs.Registry.Counter.incr t.emetrics.m_aborts

let items t = with_repair t (fun () -> Heap.Items.all t.items)
let item_count t = Heap.Items.count t.items
let active_txns t = Hashtbl.fold (fun k _ acc -> k :: acc) t.active [] |> List.sort Int.compare

(* --- tables --------------------------------------------------------------- *)

(* Tables whose names start with "__" are reserved for engine-internal
   state (planner statistics, index definitions).  They live in the same
   catalog but are hidden from the public enumeration APIs so [db status]
   and [database] keep showing only user data; [save_table]/[load_table]
   still address them by exact name. *)
let reserved name =
  String.length name >= 2 && name.[0] = '_' && name.[1] = '_'

let public_catalog pool =
  List.filter (fun tb -> not (reserved tb.Heap.name)) (Heap.catalog pool)

let save_table t name rel =
  check_writable t;
  let first = Heap.save_relation t.pool rel in
  Heap.replace_table t.pool
    { Heap.name; schema = Relational.Relation.schema rel; first };
  try checkpoint_now t
  with Fault.Io_error site ->
    degrade t site;
    raise (Read_only (Printf.sprintf "wal unflushable at %s" site))

let table_info t =
  List.map (fun { Heap.name; schema; first } -> (name, schema, first)) (public_catalog t.pool)

let load_table t name =
  match List.find_opt (fun tb -> tb.Heap.name = name) (Heap.catalog t.pool) with
  | Some { Heap.schema; first; _ } ->
      Heap.load_relation t.pool ~schema ~first
  | None -> raise (Unknown_table name)

let table_names t =
  List.map (fun tb -> tb.Heap.name) (public_catalog t.pool)

let database t =
  List.fold_left
    (fun db { Heap.name; schema; first } ->
      Relational.Database.add db name (Heap.load_relation t.pool ~schema ~first))
    Relational.Database.empty (public_catalog t.pool)

(* --- observability ---------------------------------------------------------- *)

let pool t = t.pool
let pager t = t.pager
let wal t = t.wal
let fault t = t.fault
let metrics t = t.metrics
let trace t = t.trace
let last_recovery t = t.last_recovery
let read_only t = t.read_only
let degraded_reason t = t.degraded_reason
let repairs t = t.repairs
let last_repair t = t.last_repair
let io_retries t = Pager.retries t.pager + Wal.retries t.wal
