(* The storage engine: pager + buffer pool + WAL + ARIES-lite recovery
   behind one transactional facade.

   Policies, stated once:
     steal    — the buffer pool may flush a dirty page while its
                transaction is running (eviction), after the WAL barrier;
     no-force — commit makes only the WAL durable, never the pages;
     strict   — per-item write locks are held to commit/abort, so undo by
                before-image is sound (the discipline Transactions.Recovery
                assumes and its docs spell out).

   Opening a database always runs restart recovery over the surviving
   log; a database file abandoned mid-flight (or killed by Fault
   injection) is repaired to exactly the committed transactions' writes. *)

type t = {
  pager : Pager.t;
  pool : Buffer_pool.t;
  wal : Wal.t;
  items : Heap.Items.t;
  fault : Fault.t;
  locks : (string, int) Hashtbl.t;
  active : (int, (string * int) list ref) Hashtbl.t;
      (* txn -> (item, before-image) newest first *)
  mutable next_txn : int;
  mutable last_recovery : Recovery.outcome option;
}

exception Locked of string * int
exception No_such_transaction of int
exception Active_transactions
exception Unknown_table of string

let wal_path path = path ^ ".wal"

let checkpoint_now t =
  (* order is the whole point: pages first, checkpoint record after, so
     redo may really start at the checkpoint *)
  Wal.flush t.wal;
  Buffer_pool.flush_all t.pool;
  ignore (Wal.append t.wal Wal.Checkpoint : int);
  Wal.flush t.wal;
  Pager.set_flushed_lsn t.pager (Wal.durable_lsn t.wal);
  Pager.sync t.pager

let checkpoint t =
  if Hashtbl.length t.active > 0 then raise Active_transactions;
  checkpoint_now t

let open_db ?(pool_size = 64) ?crash_after path =
  let fault = Fault.create () in
  (match crash_after with Some n -> Fault.arm fault n | None -> ());
  (* a zero-length file is a creation that crashed before its header
     write — treat it as fresh so such a database is still recoverable *)
  let fresh =
    (not (Sys.file_exists path)) || (Unix.stat path).Unix.st_size = 0
  in
  let pager =
    if fresh then Pager.create ~fault path else Pager.open_file ~fault path
  in
  let wal, entries =
    try Wal.open_log ~fault (wal_path path)
    with e ->
      Pager.abandon pager;
      raise e
  in
  let pool = Buffer_pool.create ~capacity:pool_size pager in
  Buffer_pool.set_wal_barrier pool (fun lsn -> Wal.flush_to wal lsn);
  let items =
    try Heap.Items.load pool
    with e ->
      Wal.abandon wal;
      Pager.abandon pager;
      raise e
  in
  let t =
    {
      pager;
      pool;
      wal;
      items;
      fault;
      locks = Hashtbl.create 16;
      active = Hashtbl.create 16;
      next_txn = 1;
      last_recovery = None;
    }
  in
  let max_txn =
    List.fold_left
      (fun m { Wal.record; _ } ->
        match record with
        | Wal.Begin x | Wal.Commit x | Wal.Abort x -> max m x
        | Wal.Write { txn; _ } -> max m txn
        | Wal.Checkpoint -> m)
      0 entries
  in
  t.next_txn <- max_txn + 1;
  (try
     if entries <> [] then begin
       let outcome =
         Recovery.run ~entries
           ~read:(fun item -> Heap.Items.get items item)
           ~write:(fun ~lsn item v -> Heap.Items.set items ~lsn item v)
           ~log:(fun r -> Wal.append wal r)
       in
       t.last_recovery <- Some outcome;
       checkpoint_now t
     end
   with e ->
     (* a crash injected into recovery itself: release the descriptors so
        the caller can retry the open (the crash-matrix tests do) *)
     Wal.abandon wal;
     Pager.abandon pager;
     raise e);
  t

let close t =
  if Hashtbl.length t.active = 0 then checkpoint_now t;
  Wal.close t.wal;
  Pager.close t.pager

let crash t =
  Wal.abandon t.wal;
  Pager.abandon t.pager

(* --- transactions -------------------------------------------------------- *)

let writes_of t txn =
  match Hashtbl.find_opt t.active txn with
  | Some w -> w
  | None -> raise (No_such_transaction txn)

let begin_txn ?id t =
  let id =
    match id with
    | Some i -> i
    | None ->
        let i = t.next_txn in
        t.next_txn <- i + 1;
        i
  in
  if Hashtbl.mem t.active id then
    invalid_arg (Printf.sprintf "Engine.begin_txn: txn %d already active" id);
  t.next_txn <- max t.next_txn (id + 1);
  ignore (Wal.append t.wal (Wal.Begin id) : int);
  Hashtbl.replace t.active id (ref []);
  id

let lock_holder t item = Hashtbl.find_opt t.locks item

let read t item = Heap.Items.get t.items item

let write t ~txn item value =
  let writes = writes_of t txn in
  (match Hashtbl.find_opt t.locks item with
  | Some holder when holder <> txn -> raise (Locked (item, holder))
  | _ -> Hashtbl.replace t.locks item txn);
  let before = Heap.Items.get t.items item in
  let lsn =
    Wal.append t.wal
      (Wal.Write { txn; item; before; after = value; compensation = false })
  in
  ignore (Heap.Items.set t.items ~lsn item value : bool);
  writes := (item, before) :: !writes

let release_locks t txn =
  let mine =
    Hashtbl.fold
      (fun item holder acc -> if holder = txn then item :: acc else acc)
      t.locks []
  in
  List.iter (Hashtbl.remove t.locks) mine

let commit t ~txn =
  ignore (writes_of t txn);
  ignore (Wal.append t.wal (Wal.Commit txn) : int);
  (* the commit point: the flush that makes the Commit record durable *)
  Wal.flush t.wal;
  release_locks t txn;
  Hashtbl.remove t.active txn

let abort t ~txn =
  let writes = writes_of t txn in
  (* undo newest-first, logging a compensation per undone write — these
     are ordinary history for any later recovery (never re-undone) *)
  List.iter
    (fun (item, before) ->
      let current = Heap.Items.get t.items item in
      let lsn =
        Wal.append t.wal
          (Wal.Write
             { txn; item; before = current; after = before; compensation = true })
      in
      ignore (Heap.Items.set t.items ~lsn item before : bool))
    !writes;
  ignore (Wal.append t.wal (Wal.Abort txn) : int);
  Wal.flush t.wal;
  release_locks t txn;
  Hashtbl.remove t.active txn

let items t = Heap.Items.all t.items
let item_count t = Heap.Items.count t.items
let active_txns t = Hashtbl.fold (fun k _ acc -> k :: acc) t.active [] |> List.sort Int.compare

(* --- tables --------------------------------------------------------------- *)

let save_table t name rel =
  let first = Heap.save_relation t.pool rel in
  Heap.replace_table t.pool
    { Heap.name; schema = Relational.Relation.schema rel; first };
  checkpoint_now t

let table_info t =
  List.map (fun { Heap.name; schema; first } -> (name, schema, first)) (Heap.catalog t.pool)

let load_table t name =
  match List.find_opt (fun tb -> tb.Heap.name = name) (Heap.catalog t.pool) with
  | Some { Heap.schema; first; _ } ->
      Heap.load_relation t.pool ~schema ~first
  | None -> raise (Unknown_table name)

let table_names t =
  List.map (fun tb -> tb.Heap.name) (Heap.catalog t.pool)

let database t =
  List.fold_left
    (fun db { Heap.name; schema; first } ->
      Relational.Database.add db name (Heap.load_relation t.pool ~schema ~first))
    Relational.Database.empty (Heap.catalog t.pool)

(* --- observability ---------------------------------------------------------- *)

let pool t = t.pool
let pager t = t.pager
let wal t = t.wal
let fault t = t.fault
let last_recovery t = t.last_recovery
