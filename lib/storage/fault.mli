(** Crash injection for the storage engine.

    Every durable I/O (WAL flush, page write, header write) consumes one
    unit of an optional budget; when the budget is exhausted the I/O runs
    its [on_crash] action (e.g. writing a torn prefix of a WAL flush) and
    raises {!Crash}.  Tests iterate the budget over every I/O index of a
    workload and assert the recovery invariant at each crash point. *)

exception Crash of string
(** The argument names the I/O that was killed, e.g. ["wal flush"]. *)

type t

val create : unit -> t
(** Unarmed: all I/O proceeds normally. *)

val arm : t -> int -> unit
(** [arm t n]: the next [n] I/Os succeed, the one after crashes. *)

val disarm : t -> unit
val armed : t -> bool

val crashed_at : t -> string option
(** Where the injected crash fired, once it has. *)

val io : t -> at:string -> on_crash:(unit -> unit) -> unit
(** Account one I/O.  Raises {!Crash} (after running [on_crash]) when the
    budget is exhausted; otherwise returns unit and the caller performs
    the real I/O. *)
