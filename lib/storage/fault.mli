(** Fault injection for the storage engine: a taxonomy of disk failures.

    Every durable I/O names its {e site} (e.g. ["wal flush"], ["page 3
    write"], ["pager fsync"], ["page read"]) and consults this module
    before touching the file.  Four fault kinds are modelled:

    - {e crash} — the process dies at the [n]-th durable I/O (a budget,
      as before).  Every site records a uniform {!crash_info} payload
      and simulates its partial effect (a torn prefix for WAL flushes
      and page writes; lost unsynced write-tails for a crashed fsync).
    - {e torn write} — a page or WAL write silently loses its tail half
      (power blip inside the drive); detected later by CRC.
    - {e bit flip} — one random bit of the written image is corrupted
      in flight; detected later by CRC.
    - {e transient EIO} — a read or fsync fails with a retryable I/O
      error; callers retry with bounded backoff and raise {!Io_error}
      only when the budgeted retries are exhausted.

    Three further kinds model the {e network} between a commit
    coordinator and its shards (sites are message names such as
    ["prepare shard 0"]):

    - {e drop} — the message is lost before the receiver sees it.
    - {e delay} — delivery is late by a drawn number of scheduler
      ticks; past the caller's timeout the response is discarded even
      though the receiver processed the request.
    - {e part} — the link is partitioned: either direction may be the
      one that is down, so the sender cannot tell whether the receiver
      acted.

    The probabilistic kinds fire per-site under a seeded RNG, so every
    fault run is reproducible from its printed seed.  Specs are written
    in a small language (see {!spec_of_string}):

    {v crash=7,torn=0.1,flip@page=0.02,drop@prepare=0.3,seed=42 v}

    where [kind@site=p] scopes the probability to sites containing the
    substring [site], and an unscoped [kind=p] applies everywhere. *)

exception Crash of string
(** The argument names the I/O that was killed, e.g. ["wal flush"]. *)

exception Io_error of string
(** A transient I/O error that survived every retry (names the site). *)

type crash_info = { site : string; io_index : int }
(** The uniform payload recorded at the moment an injected crash fires:
    which site, and how many durable I/Os had succeeded before it. *)

(* --- specs: the --faults mini-language ---------------------------------- *)

type rule = { scope : string option; prob : float }
(** [scope = None] matches every site; [Some s] matches sites whose
    name contains [s] as a substring. *)

type spec = {
  crash_after : int option;  (** crash budget: this many I/Os succeed *)
  torn : rule list;
  flip : rule list;
  eio : rule list;
  drop : rule list;  (** message loss (request never delivered) *)
  delay : rule list;  (** late delivery, may exceed the sender's timeout *)
  part : rule list;  (** link partition: loss in an unknown direction *)
  seed : int option;  (** RNG seed for the probabilistic draws *)
}

val no_faults : spec
(** The empty spec: no crash budget, no probabilistic rules. *)

val spec_of_string : string -> spec
(** Parse the mini-language; raises [Invalid_argument] on malformed
    input with a message that names the offending clause (and the bad
    token within it) followed by the accepted grammar. *)

val spec_to_string : spec -> string
(** Round-trips through {!spec_of_string}. *)

(* --- the injector -------------------------------------------------------- *)

type t
(** The injector: crash budget, per-kind rules, seeded RNG, and firing
    counts. *)

val create : unit -> t
(** Unarmed: all I/O proceeds normally. *)

val set_metrics : t -> Obs.Registry.t -> unit
(** Route per-site firing counters into [registry].  Each fault that
    fires bumps a lazily registered counter named
    [fault.<kind>.<site>], where [<kind>] is [crash]/[torn]/[flip]/[eio]
    and [<site>] is the I/O site normalized to a closed name set
    (spaces become [_], digit runs become [N]: ["page 12 write"] yields
    [fault.torn.page_N_write]).  Defaults to {!Obs.Registry.noop}. *)

val configure : t -> spec -> unit
(** Install a spec (crash budget, probabilities, RNG seed). *)

val arm : t -> int -> unit
(** [arm t n]: the next [n] I/Os succeed, the one after crashes.
    Equivalent to configuring [{no_faults with crash_after = Some n}]
    without touching the probabilistic rules. *)

val disarm : t -> unit
(** Cancel the crash budget (probabilistic rules stay installed). *)

val armed : t -> bool
(** Is a crash budget currently installed? *)

val crashed_at : t -> crash_info option
(** Where the injected crash fired, once it has. *)

val io : t -> at:string -> on_crash:(unit -> unit) -> unit
(** Account one durable I/O against the crash budget.  When the budget
    is exhausted: records the uniform {!crash_info} payload, runs
    [on_crash] (the site's partial-effect simulation), and raises
    {!Crash}.  Otherwise returns unit and the caller performs the real
    I/O. *)

val io_index : t -> int
(** Durable I/Os accounted so far. *)

val torn_write : t -> at:string -> bool
(** Should this write lose its tail?  (Counted when it fires.) *)

val bit_flip : t -> at:string -> len:int -> int option
(** Should this [len]-byte image be corrupted?  [Some bit_index] when
    the fault fires (the caller flips that bit in a copy). *)

val transient : t -> at:string -> bool
(** Should this read/fsync attempt fail with a transient error?  Each
    retry draws afresh, so with p < 1 retries eventually succeed. *)

val dropped : t -> at:string -> bool
(** Should this message be lost before the receiver sees it?  Each
    send attempt draws afresh.  (Counted when it fires.) *)

val delay_ticks : t -> at:string -> max:int -> int option
(** Should this message be delivered late?  [Some d] draws a delay of
    [d] scheduler ticks in [1..max]; the caller compares [d] against
    its timeout.  (Counted when it fires.) *)

val partitioned : t -> at:string -> bool
(** Is the link carrying this message partitioned?  The sender learns
    nothing about whether the receiver acted; pair with {!flip_coin}
    to decide which direction was down. *)

val flip_coin : t -> bool
(** A fair draw from the injector's seeded RNG, for tie-breaks such as
    the direction of a partition loss. *)

type counts = {
  torn : int;
  flips : int;
  eios : int;
  drops : int;
  delays : int;
  parts : int;
}
(** Aggregate firing totals (the per-site split lives in the metric
    registry; see {!set_metrics}). *)

val counts : t -> counts
(** How many probabilistic faults actually fired. *)
