(** Slotted pages over raw bytes — the classic layout: records grow up
    from the header, the slot directory grows down from the end, and a
    deleted slot keeps its index (so record ids stay stable) but is marked
    dead.  The first four bytes carry a CRC32 of the rest of the page,
    written on flush ({!seal}) and verified on read ({!check}). *)

val size : int
(** Fixed page size in bytes (4096). *)

type t = Bytes.t
(** Always exactly {!size} bytes. *)

exception Page_full

val init : kind:int -> t
(** A fresh, formatted, empty page. *)

val kind : t -> int
(** The page kind tag it was {!init}ialized with (see {!Heap}). *)

val lsn : t -> int
(** The stored page LSN; see {!set_lsn}. *)

val set_lsn : t -> int -> unit
(** Page LSN: the newest logged update applied to this page.  [set_lsn]
    is monotone (keeps the max), which is what the ARIES redo test
    needs. *)

val next : t -> int
val set_next : t -> int -> unit
(** Chain link to the next page id; 0 means end of chain. *)

val nslots : t -> int
(** Slot-directory size, dead slots included. *)

val free_space : t -> int
(** Bytes left between the record heap and the slot directory. *)

val insert : t -> string -> int
(** Appends a record, returns its slot id.  Raises {!Page_full} when the
    record plus a slot entry does not fit, [Invalid_argument] when the
    record could never fit a page. *)

val read_slot : t -> int -> string option
(** [None] for a dead (deleted) slot. *)

val overwrite : t -> int -> string -> bool
(** In-place update; only same-length rewrites are supported ([false]
    otherwise — callers then delete + reinsert). *)

val delete_slot : t -> int -> unit
(** Mark the slot dead (its index stays allocated). *)

val records : t -> (int * string) list
(** Live records with their slot ids, in slot order. *)

val seal : t -> unit
(** Compute and store the CRC (call just before writing to disk). *)

val check : t -> bool
(** Verify the stored CRC (call just after reading from disk). *)
