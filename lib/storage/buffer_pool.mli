(** A bounded page cache with pin/unpin, dirty tracking, LRU eviction,
    and hit/miss/eviction/flush counters.

    Evicting a dirty page writes it back even if the transaction that
    dirtied it is still running — the {e steal} policy — but only after
    the WAL barrier has made the log durable up to that page's LSN
    (the write-ahead rule).  Commit does not force pages ({e no-force});
    durability comes from the WAL alone. *)

(** Legacy in-process counters (predates [lib/obs]); kept because tests
    and the storage bench read them without wiring a registry. *)
type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
}

type t
(** A pool: a bounded frame table over a {!Pager.t}. *)

exception Pool_exhausted
(** Every frame is pinned and a new page was requested. *)

val create : ?capacity:int -> ?metrics:Obs.Registry.t -> Pager.t -> t
(** [capacity] frames (default 64).  [metrics] receives the [pool.*]
    instruments (hit/miss/eviction/flush counters and the
    [pool.resident] gauge), mirroring the legacy {!stats} record;
    defaults to {!Obs.Registry.noop}. *)

val fetch : t -> int -> Page.t
(** Pin and return the page, reading (and possibly evicting) on miss. *)

val unpin : t -> int -> unit
(** Drop one pin; the frame becomes evictable at zero pins. *)

val with_page : t -> int -> (Page.t -> 'a) -> 'a
(** Fetch, apply, unpin (exception-safe). *)

val mark_dirty : t -> int -> unit
(** The caller mutated the page; it must currently be resident. *)

val adopt : t -> int -> Page.t -> unit
(** Insert a freshly allocated page into the pool without re-reading it. *)

val flush_page : t -> int -> unit
(** Write back one dirty frame (after the WAL barrier); no-op if clean
    or absent. *)

val flush_all : t -> unit
(** Write back dirty frames (in page-id order, for determinism). *)

val drop_clean : t -> unit
(** Forget clean unpinned frames — used by tests to simulate a cold
    cache without closing the file. *)

val set_wal_barrier : t -> (int -> unit) -> unit
(** [f lsn] is called before any dirty page with page-LSN [lsn] is
    written back; the engine points it at WAL flush. *)

val stats : t -> stats
(** The live legacy counters (mutated in place). *)

val capacity : t -> int
(** Frame budget this pool was created with. *)

val resident : t -> int
(** Frames currently cached (= the [pool.resident] gauge). *)

val pager : t -> Pager.t
(** The underlying pager. *)
