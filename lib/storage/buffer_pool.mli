(** A bounded page cache with pin/unpin, dirty tracking, LRU eviction,
    and hit/miss/eviction/flush counters.

    Evicting a dirty page writes it back even if the transaction that
    dirtied it is still running — the {e steal} policy — but only after
    the WAL barrier has made the log durable up to that page's LSN
    (the write-ahead rule).  Commit does not force pages ({e no-force});
    durability comes from the WAL alone. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
}

type t

exception Pool_exhausted
(** Every frame is pinned and a new page was requested. *)

val create : ?capacity:int -> Pager.t -> t
(** [capacity] frames (default 64). *)

val fetch : t -> int -> Page.t
(** Pin and return the page, reading (and possibly evicting) on miss. *)

val unpin : t -> int -> unit

val with_page : t -> int -> (Page.t -> 'a) -> 'a
(** Fetch, apply, unpin (exception-safe). *)

val mark_dirty : t -> int -> unit
(** The caller mutated the page; it must currently be resident. *)

val adopt : t -> int -> Page.t -> unit
(** Insert a freshly allocated page into the pool without re-reading it. *)

val flush_page : t -> int -> unit
val flush_all : t -> unit
(** Write back dirty frames (in page-id order, for determinism). *)

val drop_clean : t -> unit
(** Forget clean unpinned frames — used by tests to simulate a cold
    cache without closing the file. *)

val set_wal_barrier : t -> (int -> unit) -> unit
(** [f lsn] is called before any dirty page with page-LSN [lsn] is
    written back; the engine points it at WAL flush. *)

val stats : t -> stats
val capacity : t -> int
val resident : t -> int
val pager : t -> Pager.t
