(** A real lock manager for the executor: shared/exclusive modes, FIFO
    wait queues per item, a waits-for graph with cycle detection, and
    victim selection mirroring {!Transactions.Simulation}'s deadlock
    policy so the two layers can be cross-checked.

    The manager is passive bookkeeping: {!acquire} never blocks the
    caller (the executor is a single-threaded round-robin scheduler, as
    [Simulation] is); a request that cannot be granted is queued and the
    caller re-issues it on its next turn.  Grant order is strictly FIFO
    per item — a shared request queues behind an earlier exclusive
    waiter even when it is compatible with the holders, preventing
    writer starvation.  The one exception is the classic upgrade rule: a
    sole holder of a shared lock upgrades to exclusive immediately.

    Deadlocks: whenever a request blocks, the waits-for graph (edges
    from each waiter to the conflicting holders and conflicting earlier
    waiters of its item) is checked for a cycle; if one exists the
    victim is chosen by folding [victim_pref] over the cycle.  The
    manager only {e reports} the victim — the caller aborts it and then
    calls {!release_all}.

    Timeouts: the manager counts scheduler ticks ({!tick}); a request
    waiting longer than [timeout] ticks is reported expired (lock-wait
    timeout), the blunt fallback for deadlocks that cycle detection
    already catches and for starvation that FIFO already prevents —
    kept configurable because real systems keep both. *)

type mode = Shared | Exclusive
(** Lock modes: any number of shared holders, or one exclusive. *)

type outcome =
  | Granted
  | Blocked
  | Deadlock of { victim : int; cycle : int list }
      (** A waits-for cycle exists; [cycle] lists its transactions and
          [victim] is the one [victim_pref] condemns.  The requester
          stays queued unless it is itself the victim. *)

type t
(** A lock table: holders and FIFO wait queues per item, plus the wait
    clock. *)

val create :
  ?timeout:int -> ?victim_pref:(int -> int -> int) ->
  ?metrics:Obs.Registry.t -> unit -> t
(** [victim_pref a b] returns the transaction to abort if the choice is
    between [a] and [b]; the default prefers the larger id (the
    youngest, under sequential id assignment).  [timeout] is in
    {!tick}s; omitted = no lock-wait timeout.

    [metrics] receives the [lock.*] instruments: request/grant/block/
    deadlock/timeout counters, the [lock.wait_rounds] histogram (ticks a
    request waited before its grant), the [lock.queue_depth] histogram
    (item queue depth seen at enqueue), and the [lock.waiting] gauge.
    Defaults to {!Obs.Registry.noop}. *)

val acquire : t -> txn:int -> item:string -> mode -> outcome
(** Idempotent: re-issuing a queued request re-checks grantability (and
    deadlock) without re-queueing.  A holder re-requesting a mode its
    current lock covers gets [Granted] immediately. *)

val release_all : t -> txn:int -> unit
(** Drop every lock and queued request of [txn] (commit, abort, or
    victim death), then grant whatever the departures unblocked. *)

val tick : t -> int list
(** Advance the wait clock; returns the transactions whose oldest
    queued request has now waited longer than the configured timeout
    (empty when no timeout is set).  The caller aborts them. *)

val holders : t -> item:string -> (int * mode) list
(** Current lock holders of the item (granted, not queued). *)

val waiters : t -> item:string -> (int * mode) list
(** Queued requests in FIFO order. *)

val holds : t -> txn:int -> item:string -> mode option
(** The mode [txn] currently holds on [item], if any. *)

val waits_for : t -> (int * int) list
(** The current waits-for edges (waiter, holder-or-earlier-waiter),
    deduplicated — exposed for the QCheck cross-check against
    {!find_cycle}. *)

val find_cycle : (int * int) list -> int list option
(** Pure cycle finder over an edge list, exposed for property tests:
    [Some [t1; ...; tn]] where each [ti] waits for [t(i+1)] and [tn]
    waits for [t1]. *)

val no_conflicts : t -> bool
(** Invariant: for every item, the holders are one exclusive or all
    shared, and no transaction holds an item twice. *)
