(* ARIES-lite restart recovery over the binary WAL.

   Three passes, as in the real thing:
     analysis — find the last checkpoint, the winners (Commit in the
       log) and the losers (Begin but no Commit/Abort);
     redo     — repeat history from the checkpoint: every logged write,
       winner or loser, is re-applied unless the page-LSN test shows the
       page already carries it;
     undo     — roll the losers back in reverse-LSN order, logging a
       compensation record for every undone write and an Abort when a
       loser is fully undone.

   "Lite" relative to ARIES: checkpoints are quiescent (taken only when
   no transaction is active, so redo can really start there), there is no
   dirty-page table, and compensation records carry no undo-next pointer
   (a crash during undo just re-undoes; repeating history keeps that
   idempotent).  Transactions whose Abort record made it to the log are
   NOT re-undone: their compensations are ordinary logged history, which
   the redo pass repeats — this is what makes an abort followed by a
   committed overwrite of the same item crash-safe.

   The committed-state invariant (the specification in
   Transactions.Recovery): after recovery the store holds exactly the
   winners' writes applied in log order. *)

type outcome = {
  checkpoint_lsn : int option;
  winners : int list;
  losers : int list;
  redo_applied : int;
  redo_skipped : int;
  undone : int;
}

let analyze entries =
  let checkpoint = ref None in
  let begun = ref [] in
  let committed = ref [] in
  let ended = ref [] in
  List.iter
    (fun { Wal.lsn; record } ->
      match record with
      | Wal.Checkpoint -> checkpoint := Some lsn
      | Wal.Begin t -> begun := t :: !begun
      | Wal.Commit t ->
          committed := t :: !committed;
          ended := t :: !ended
      | Wal.Abort t -> ended := t :: !ended
      (* presumed abort: a surviving Prepare alone leaves the txn live,
         hence a loser; the distributed termination protocol appends a
         Commit before recovery when the coordinator decided commit *)
      | Wal.Prepare _ -> ()
      | Wal.Write _ -> ())
    entries;
  let uniq l = List.sort_uniq Int.compare l in
  let winners = uniq !committed in
  let ended = uniq !ended in
  let losers =
    List.filter (fun t -> not (List.mem t ended)) (uniq !begun)
  in
  (!checkpoint, winners, losers)

let run ~entries ~read ~write ~log =
  let checkpoint_lsn, winners, losers = analyze entries in
  (* redo: repeat history from the checkpoint *)
  let redo_applied = ref 0 and redo_skipped = ref 0 in
  let start = match checkpoint_lsn with Some l -> l | None -> -1 in
  List.iter
    (fun { Wal.lsn; record } ->
      if lsn > start then
        match record with
        | Wal.Write { item; after; _ } ->
            if write ~lsn item after then incr redo_applied
            else incr redo_skipped
        | _ -> ())
    entries;
  (* undo: losers' writes, newest first, with compensation logging *)
  let undone = ref 0 in
  List.iter
    (fun { Wal.lsn = _; record } ->
      match record with
      | Wal.Write { txn; item; before; after = _; compensation = _ }
        when List.mem txn losers ->
          let current = read item in
          let clr =
            Wal.Write
              {
                txn;
                item;
                before = current;
                after = before;
                compensation = true;
              }
          in
          let lsn = log clr in
          ignore (write ~lsn item before : bool);
          incr undone
      | _ -> ())
    (List.rev entries);
  List.iter (fun t -> ignore (log (Wal.Abort t) : int)) losers;
  { checkpoint_lsn; winners; losers; redo_applied = !redo_applied;
    redo_skipped = !redo_skipped; undone = !undone }

let outcome_to_string o =
  let ids l = String.concat "," (List.map string_of_int l) in
  Printf.sprintf
    "checkpoint=%s winners=[%s] losers=[%s] redo=%d skipped=%d undone=%d"
    (match o.checkpoint_lsn with None -> "none" | Some l -> string_of_int l)
    (ids o.winners) (ids o.losers) o.redo_applied o.redo_skipped o.undone
