(** The binary write-ahead log: an append-only file of CRC-framed
    records whose LSN is their byte offset.

    Appends are buffered; {!flush} makes them durable with one write +
    fsync (group commit).  An injected crash during flush leaves a torn
    prefix of the pending bytes on disk, and the opening scan stops —
    without failing — at the first incomplete or CRC-invalid frame,
    exactly as recovery after a power cut must.

    The record type deliberately mirrors {!Transactions.Recovery.record}
    (the paper's §6 in-memory model); {!to_model}/{!of_model} are the
    bridge, round-trip tested.  Compensation records ([compensation =
    true]) are the undo writes logged during abort and recovery — the
    ARIES CLR, minus the undo-next pointer. *)

(** The logged record kinds, mirroring
    {!Transactions.Recovery.record} plus [Checkpoint] and [Prepare] —
    the durable vote of a two-phase-commit participant: the txn's
    writes and its [Prepare] are on disk before the shard votes yes,
    so a surviving [Prepare] marks an in-doubt transaction that
    restart recovery must resolve against the coordinator log. *)
type record =
  | Begin of int
  | Write of { txn : int; item : string; before : int; after : int; compensation : bool }
  | Commit of int
  | Abort of int
  | Checkpoint
  | Prepare of int

type entry = { lsn : int; record : record }
(** A scanned record with its LSN (byte offset in the file). *)

exception Corrupt of string
(** A structurally impossible log (raised by strict internal checks;
    the tolerant scans stop at damage instead of raising). *)

type t
(** An open log: file descriptor, pending append buffer, and durable
    watermark. *)

val open_log :
  ?fault:Fault.t -> ?metrics:Obs.Registry.t -> ?trace:Obs.Trace.t ->
  string -> t * entry list
(** Open (creating if needed), scan tolerantly, physically truncate any
    torn tail, and return the surviving entries oldest-first.  The count
    of truncated tail bytes is reported by {!truncated_at_open} rather
    than silently dropped.

    [metrics] receives the [wal.*] instruments (append/flush counters
    and byte totals, [wal.fsync_ns]/[wal.flush_ns] latency histograms);
    [trace] records a [wal.flush] span per durable flush.  Both default
    to the shared no-ops. *)

val truncated_at_open : t -> int
(** Torn-tail bytes the opening scan found after the last valid frame
    and physically truncated (0 when the log was clean). *)

val append : t -> record -> int
(** Buffer a record; returns its LSN.  Not durable until {!flush}. *)

val flush : t -> unit
(** Write + fsync everything pending — a fault-injection point: an
    injected crash tears the pending bytes' tail, probabilistic torn
    writes/bit flips corrupt the flushed image silently (detected by the
    next open's scan, which truncates the log there), and transient
    fsync faults are retried with a bounded budget before escaping as
    {!Fault.Io_error} (the engine then degrades to read-only). *)

val flush_to : t -> int -> unit
(** Ensure durability up to (and including) the given LSN — the
    write-ahead barrier the buffer pool calls before a steal. *)

val next_lsn : t -> int
(** The LSN the next {!append} will get. *)

val durable_lsn : t -> int
(** Everything below this byte offset has been fsynced. *)

val close : t -> unit
(** Flush whatever is pending, then close the descriptor. *)

val abandon : t -> unit
(** Close the descriptor without flushing — pending records are lost,
    as in a crash. *)

val stats : t -> int * int * int
(** (appends, flushes, durable bytes). *)

val retries : t -> int
(** Transient-EIO retries that eventually succeeded. *)

val path : t -> string
(** The log file path. *)

val read_entries : string -> entry list
(** Read-only tolerant scan of a log file (for [db status]). *)

val scan : string -> entry list * int
(** Tolerant scan of an in-memory log image; returns the entries and the
    clean byte length (exposed for tests). *)

type resync = { resync_at : int; resync_records : entry list }
(** Where valid frames resume after mid-log damage, and what they decode
    to.  A torn tail never resyncs (partial frame, zeros, end of file);
    a frame corrupted {e between} intact appends does — the frames after
    it are real history that the tolerant open would silently discard. *)

type report = {
  records : entry list;  (** the valid prefix, oldest-first *)
  clean_bytes : int;  (** length of the valid prefix *)
  total_bytes : int;  (** length of the whole image/file *)
  resync : resync option;
      (** present only when damage is followed by decodable frames *)
}
(** Everything a read-only scan can say about a log image: the surviving
    records, how much of the file they cover, and — when the file is
    longer — whether the damage looks like a tolerated torn tail or like
    mid-log corruption.  This is the input to {!Analysis.Wal_lint}. *)

val scan_report : string -> report
(** Full tolerant scan of an in-memory log image, with damage
    classification (byte-by-byte resync search after the valid prefix). *)

val report_file : string -> report
(** {!scan_report} over a file, opened read-only — safe to run against a
    log owned by a crashed (or even live) process.  A missing file
    yields the empty report. *)

val fold_file : string -> init:'a -> f:('a -> entry -> 'a) -> 'a
(** Fold over the valid prefix of a log file without ever holding a
    writable descriptor (the offline verifier's iteration API). *)

val frame_of_record : record -> string
(** The exact on-disk frame (exposed for tests and the offline
    termination protocol, which appends decided commits to a shard log
    without opening the engine). *)

val frame : string -> string
(** CRC-frame an arbitrary payload ([u32 crc | u32 len | payload]) —
    the generic framing layer the coordinator log reuses with its own
    record payloads. *)

val scan_frames : string -> (int * string) list * int
(** Tolerant payload-level scan of a framed image: [(offset, payload)]
    pairs up to the first incomplete or CRC-invalid frame, plus the
    clean byte length.  The inverse of repeated {!frame}. *)

val frames_of_file : string -> (int * string) list * int
(** {!scan_frames} over a file; a missing file yields [([], 0)]. *)

val to_model : record list -> Transactions.Recovery.log
(** Checkpoints are dropped, as are prepares — a prepared-but-undecided
    transaction is still a loser (presumed abort); compensation writes
    become ordinary model writes (the model replays them like any
    other). *)

val of_model : Transactions.Recovery.record -> record
(** The inverse bridge; model records never carry [Checkpoint]. *)

val record_to_string : record -> string
(** One-line rendering for [db status] and the tests. *)
