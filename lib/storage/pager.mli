(** The pager: a file of fixed-size, CRC-checked pages behind a header
    page carrying magic, format version, page count, and the chain roots
    for the table catalog and the transactional item store.

    Page id 0 is the header and is not directly readable; data pages are
    allocated sequentially (no free list yet — see DESIGN.md).  Every
    write, read, and fsync is a {!Fault} injection point: crashes leave
    torn prefixes (and a crashed fsync tears the tail of unsynced
    writes), probabilistic torn writes/bit flips corrupt pages silently
    until CRC catches them, and transient EIO faults are retried with a
    bounded budget before escaping as {!Fault.Io_error}. *)

exception Corrupt of string
(** Bad magic, version mismatch, short read, CRC mismatch, or an
    out-of-range page id. *)

type t

val create : ?fault:Fault.t -> ?metrics:Obs.Registry.t -> string -> t
(** Create (truncating any existing file) with an empty header.
    [metrics] receives the [pager.*] counters (reads, writes,
    crc_failures, io_retries, syncs); defaults to {!Obs.Registry.noop}. *)

val open_file : ?fault:Fault.t -> ?metrics:Obs.Registry.t -> string -> t
(** Open and validate an existing database file; raises {!Corrupt}.
    [metrics] as for {!create}. *)

val close : t -> unit
(** Writes the header back and closes the descriptor. *)

val abandon : t -> unit
(** Close the descriptor without writing anything — the file is left
    exactly as the simulated crash left it. *)

val page_count : t -> int
(** Including the header page. *)

val allocate : t -> kind:int -> int
(** Append a fresh formatted page; returns its id.  The page is written
    before the header records the new count, so a crash between the two
    leaves a consistent file. *)

val read_page : t -> int -> Page.t
(** Raises {!Corrupt} on CRC mismatch (the page id is also recorded in
    {!corrupt_pages} so the engine can quarantine it); transient read
    faults are retried, raising {!Fault.Io_error} only when every retry
    fails. *)

val write_page : t -> int -> Page.t -> unit
(** Seals (checksums) and writes the page. *)

val sync : t -> unit
(** fsync the file — a fault-injection point like every write.  An
    injected crash here tears the tail half of a random subset of the
    writes since the last successful sync (their durability is exactly
    what the lost fsync would have bought). *)

val catalog_root : t -> int
(** First page of the catalog chain, from the header (0 = absent). *)

val set_catalog_root : t -> int -> unit
(** Record the catalog root and write the header through. *)

val items_root : t -> int
(** First page of the item-store chain, from the header (0 = absent). *)

val set_items_root : t -> int -> unit
(** Record the item-store root and write the header through. *)

val flushed_lsn : t -> int
val set_flushed_lsn : t -> int -> unit
(** WAL position recorded at the last checkpoint (informational; the
    in-memory value is persisted by the next header write). *)

val fault : t -> Fault.t
(** The injector consulted on every read/write/fsync. *)

val path : t -> string
(** The database file path this pager was opened on. *)

val io_counts : t -> int * int
(** (page reads, page writes) since open — observability for [db status]
    and the storage bench. *)

val retries : t -> int
(** Transient-EIO retries that eventually succeeded. *)

val corrupt_pages : t -> int list
(** Page ids that failed their CRC since open (or since
    {!forget_corrupt}), sorted, deduplicated — the engine's quarantine
    list. *)

val forget_corrupt : t -> unit
(** Clear {!corrupt_pages} after a repair has rebuilt past them. *)
