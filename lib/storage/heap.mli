(** Heap storage over the pager: page chains of variable-length records,
    accessed through the buffer pool.

    Hosts the three on-disk structures above the raw pages: the
    transactional item store (the KV plane the WAL protects), per-table
    tuple chains, and the table catalog. *)

val kind_items : int
(** Page kind tag of item-store pages, visible in [db status]. *)

val kind_table : int
(** Page kind tag of table tuple-chain pages. *)

val kind_catalog : int
(** Page kind tag of catalog pages. *)

val iter_chain :
  Buffer_pool.t -> first:int -> (int -> int -> string -> unit) -> unit
(** [iter_chain pool ~first f] calls [f page slot record] for every live
    record of the chain. *)

val page_records : Buffer_pool.t -> int -> string list * int
(** [page_records pool id] returns one chain page's live records in slot
    order together with the next page id (0 at the end of the chain) —
    the unit a pull-based scan cursor consumes, holding at most one page
    of the chain in working memory at a time. *)

val chain_pages : Buffer_pool.t -> first:int -> int
(** Number of pages in the chain rooted at [first] (0 when [first] is 0)
    — the I/O footprint a sequential scan pays, feeding the planner's
    cost model. *)

(** The item store: a string-keyed map to int values (absent reads 0),
    with an in-memory directory built at open and in-place updates whose
    page-LSN discipline implements the ARIES redo test. *)
module Items : sig
  type t

  val load : Buffer_pool.t -> t
  (** Scan the item chain (root in the pager header) and build the
      directory. *)

  val get : t -> string -> int

  val set : t -> lsn:int -> string -> int -> bool
  (** Apply a logged write: [false] when the item's page LSN already
      covers [lsn] (redo skip), [true] after applying and raising the
      page LSN. *)

  val all : t -> (string * int) list
  (** Sorted; items whose current value is 0 are omitted (reading an
      absent item yields 0, matching {!Transactions.Recovery.read}). *)

  val count : t -> int

  val page_lsns : t -> (int * int) list
  (** (page id, page LSN) down the item chain, in chain order — the
      engine compares these against the surviving log's end to spot
      stolen pages whose log records were lost. *)
end

val save_relation : Buffer_pool.t -> Relational.Relation.t -> int
(** Write the relation's tuples into a fresh chain; returns its first
    page id. *)

val load_relation :
  Buffer_pool.t -> schema:Relational.Schema.t -> first:int -> Relational.Relation.t

type table = { name : string; schema : Relational.Schema.t; first : int }
(** One catalog entry: table name, schema, and its chain's first page. *)

val catalog : Buffer_pool.t -> table list
(** All catalog entries, in catalog-chain order. *)

val add_table : Buffer_pool.t -> table -> unit
(** Append an entry to the catalog chain (no uniqueness check — see
    {!replace_table}). *)

val replace_table : Buffer_pool.t -> table -> unit
(** [replace_table] rewrites the catalog chain; the replaced table's data
    pages are leaked (no free list yet — see DESIGN.md). *)
