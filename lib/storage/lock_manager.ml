(* Shared/exclusive locks with FIFO wait queues and waits-for deadlock
   detection.  See the .mli for the policy discussion; the executor's
   single-threadedness keeps everything here a plain data structure. *)

type mode = Shared | Exclusive

type outcome =
  | Granted
  | Blocked
  | Deadlock of { victim : int; cycle : int list }

type request = { txn : int; mode : mode; since : int }

type item_state = {
  mutable holders : (int * mode) list;  (* one X, or any number of S *)
  mutable waiting : request list;  (* FIFO: head is next in line *)
}

type metrics = {
  m_requests : Obs.Registry.Counter.t;
  m_grants : Obs.Registry.Counter.t;
  m_blocks : Obs.Registry.Counter.t;
  m_deadlocks : Obs.Registry.Counter.t;
  m_timeouts : Obs.Registry.Counter.t;
  m_wait_rounds : Obs.Histogram.t;
  m_queue_depth : Obs.Histogram.t;
  m_waiting : Obs.Registry.Gauge.t;
}

let make_metrics registry =
  let counter = Obs.Registry.counter registry in
  let histogram = Obs.Registry.histogram registry in
  {
    m_requests =
      counter ~unit:"requests" ~help:"acquire calls (including re-issues)"
        "lock.requests";
    m_grants = counter ~unit:"requests" ~help:"requests granted" "lock.grants";
    m_blocks =
      counter ~unit:"requests" ~help:"requests left waiting" "lock.blocks";
    m_deadlocks =
      counter ~unit:"cycles" ~help:"waits-for cycles detected" "lock.deadlocks";
    m_timeouts =
      counter ~unit:"requests" ~help:"lock waits expired by timeout"
        "lock.timeouts";
    m_wait_rounds =
      histogram ~unit:"ticks" ~help:"scheduler ticks a request waited before grant"
        "lock.wait_rounds";
    m_queue_depth =
      histogram ~unit:"requests" ~help:"item queue depth seen at enqueue"
        "lock.queue_depth";
    m_waiting =
      Obs.Registry.gauge registry ~unit:"requests"
        ~help:"requests currently queued" "lock.waiting";
  }

type t = {
  table : (string, item_state) Hashtbl.t;
  timeout : int option;
  victim_pref : int -> int -> int;
  metrics : metrics;
  mutable clock : int;
}

let create ?timeout ?(victim_pref = fun a b -> if a > b then a else b)
    ?(metrics = Obs.Registry.noop) () =
  {
    table = Hashtbl.create 64;
    timeout;
    victim_pref;
    metrics = make_metrics metrics;
    clock = 0;
  }

let state t item =
  match Hashtbl.find_opt t.table item with
  | Some st -> st
  | None ->
      let st = { holders = []; waiting = [] } in
      Hashtbl.add t.table item st;
      st

let conflicts a b = a = Exclusive || b = Exclusive

(* Does [txn]'s current hold on [st] already cover [mode]? *)
let covered st ~txn mode =
  match List.assoc_opt txn st.holders with
  | Some Exclusive -> true
  | Some Shared -> mode = Shared
  | None -> false

(* Can [r] be granted right now, given the holders?  (Queue position is
   the caller's concern.)  The upgrade case — requester already holds
   shared — demands sole ownership. *)
let grantable st r =
  List.for_all
    (fun (h, hm) -> h = r.txn || not (conflicts r.mode hm))
    st.holders

let install st r =
  st.holders <- (r.txn, r.mode) :: List.remove_assoc r.txn st.holders

(* Grant from the head of the queue while the head is grantable — FIFO,
   so one blocked exclusive waiter blocks everything behind it. *)
let rec drain t st =
  match st.waiting with
  | r :: rest when grantable st r ->
      st.waiting <- rest;
      install st r;
      Obs.Histogram.observe t.metrics.m_wait_rounds (t.clock - r.since);
      Obs.Registry.Gauge.add t.metrics.m_waiting (-1);
      drain t st
  | _ -> ()

(* --- the waits-for graph ------------------------------------------------- *)

(* A waiter waits for the conflicting holders of its item and for the
   conflicting requests queued ahead of it (they will hold it first). *)
let edges_of_item st =
  let rec walk ahead = function
    | [] -> []
    | r :: rest ->
        let holder_edges =
          List.filter_map
            (fun (h, hm) ->
              if h <> r.txn && conflicts r.mode hm then Some (r.txn, h)
              else None)
            st.holders
        in
        let queue_edges =
          List.filter_map
            (fun w ->
              if w.txn <> r.txn && conflicts r.mode w.mode then
                Some (r.txn, w.txn)
              else None)
            ahead
        in
        holder_edges @ queue_edges @ walk (ahead @ [ r ]) rest
  in
  walk [] st.waiting

let waits_for t =
  Hashtbl.fold (fun _ st acc -> edges_of_item st @ acc) t.table []
  |> List.sort_uniq compare

let find_cycle edges =
  let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let nodes = List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let done_ = Hashtbl.create 16 in
  (* DFS with an explicit path; a back edge onto the path closes a cycle *)
  let rec dfs path n =
    if Hashtbl.mem done_ n then None
    else
      match List.mapi (fun i m -> (i, m)) path |> List.find_opt (fun (_, m) -> m = n) with
      | Some (i, _) ->
          (* path is newest-first: the cycle is n's suffix up to position i *)
          let rec take k = function
            | [] -> []
            | x :: xs -> if k < 0 then [] else x :: take (k - 1) xs
          in
          Some (List.rev (take i path))
      | None -> (
          match List.find_map (fun m -> dfs (n :: path) m) (succs n) with
          | Some c -> Some c
          | None ->
              Hashtbl.replace done_ n ();
              None)
  in
  List.find_map (fun n -> dfs [] n) nodes

let choose_victim t cycle =
  match cycle with
  | [] -> invalid_arg "Lock_manager.choose_victim: empty cycle"
  | first :: rest -> List.fold_left t.victim_pref first rest

(* --- the public operations ------------------------------------------------ *)

let acquire t ~txn ~item mode =
  Obs.Registry.Counter.incr t.metrics.m_requests;
  let granted () =
    Obs.Registry.Counter.incr t.metrics.m_grants;
    Granted
  in
  let st = state t item in
  if covered st ~txn mode then granted ()
  else begin
    let r =
      match List.find_opt (fun r -> r.txn = txn) st.waiting with
      | Some r -> r  (* re-issued: keep the original queue position *)
      | None ->
          let r = { txn; mode; since = t.clock } in
          st.waiting <- st.waiting @ [ r ];
          Obs.Registry.Gauge.add t.metrics.m_waiting 1;
          Obs.Histogram.observe t.metrics.m_queue_depth
            (List.length st.waiting);
          r
    in
    (* the upgrade exception: a sole holder upgrading S->X jumps the
       queue (holding S already, it can never conflict with itself) *)
    let sole_upgrade =
      mode = Exclusive
      && List.assoc_opt txn st.holders = Some Shared
      && List.for_all (fun (h, _) -> h = txn) st.holders
    in
    if sole_upgrade then begin
      if List.exists (fun w -> w.txn = txn) st.waiting then begin
        st.waiting <- List.filter (fun w -> w.txn <> txn) st.waiting;
        Obs.Registry.Gauge.add t.metrics.m_waiting (-1)
      end;
      install st { r with mode = Exclusive };
      drain t st;
      granted ()
    end
    else begin
      drain t st;
      if covered st ~txn mode then granted ()
      else
        match find_cycle (waits_for t) with
        | Some cycle ->
            Obs.Registry.Counter.incr t.metrics.m_deadlocks;
            Deadlock { victim = choose_victim t cycle; cycle }
        | None ->
            Obs.Registry.Counter.incr t.metrics.m_blocks;
            Blocked
    end
  end

let release_all t ~txn =
  Hashtbl.iter
    (fun _ st ->
      st.holders <- List.remove_assoc txn st.holders;
      let before = List.length st.waiting in
      st.waiting <- List.filter (fun r -> r.txn <> txn) st.waiting;
      let removed = before - List.length st.waiting in
      if removed > 0 then
        Obs.Registry.Gauge.add t.metrics.m_waiting (-removed);
      drain t st)
    t.table

let tick t =
  t.clock <- t.clock + 1;
  match t.timeout with
  | None -> []
  | Some limit ->
      let expired =
        Hashtbl.fold
          (fun _ st acc ->
            List.fold_left
              (fun acc r ->
                if t.clock - r.since > limit then r.txn :: acc else acc)
              acc st.waiting)
          t.table []
        |> List.sort_uniq Int.compare
      in
      Obs.Registry.Counter.add t.metrics.m_timeouts (List.length expired);
      expired

let holders t ~item =
  match Hashtbl.find_opt t.table item with Some st -> st.holders | None -> []

let waiters t ~item =
  match Hashtbl.find_opt t.table item with
  | Some st -> List.map (fun r -> (r.txn, r.mode)) st.waiting
  | None -> []

let holds t ~txn ~item =
  match Hashtbl.find_opt t.table item with
  | Some st -> List.assoc_opt txn st.holders
  | None -> None

let no_conflicts t =
  Hashtbl.fold
    (fun _ st ok ->
      ok
      && List.length (List.sort_uniq compare (List.map fst st.holders))
         = List.length st.holders
      && (match st.holders with
         | [] | [ _ ] -> true
         | many -> List.for_all (fun (_, m) -> m = Shared) many))
    t.table true
