(* The binary write-ahead log.  Append-only file of CRC-framed records;
   a record's LSN is its byte offset.  Appends are buffered in memory and
   made durable by [flush] (group commit); an injected crash during flush
   writes a torn prefix of the pending bytes, which the scanner must — and
   does — tolerate, mirroring a real torn tail after a power cut.

   record frame (little-endian):
     u32 crc32 of the payload
     u32 payload length
     payload:
       u8 kind (1 begin, 2 write, 3 commit, 4 abort, 5 checkpoint,
                6 compensation write, 7 prepare)
       begin/commit/abort/prepare: u32 txn
       write/compensation: u32 txn, u16 item length, item bytes,
                           i64 before-image, i64 after-image
       checkpoint: empty

   The record constructors deliberately mirror the in-memory recovery
   model [Transactions.Recovery.record]; [to_model]/[of_model] are the
   bridge, round-trip tested in test_storage.ml. *)

type record =
  | Begin of int
  | Write of { txn : int; item : string; before : int; after : int; compensation : bool }
  | Commit of int
  | Abort of int
  | Checkpoint
  | Prepare of int

type entry = { lsn : int; record : record }

exception Corrupt of string

(* --- codec -------------------------------------------------------------- *)

let payload_of_record r =
  let buf = Buffer.create 32 in
  (match r with
  | Begin t ->
      Buffer.add_uint8 buf 1;
      Buffer.add_int32_le buf (Int32.of_int t)
  | Write { txn; item; before; after; compensation } ->
      Buffer.add_uint8 buf (if compensation then 6 else 2);
      Buffer.add_int32_le buf (Int32.of_int txn);
      if String.length item > 0xffff then invalid_arg "Wal: item name too long";
      Buffer.add_uint16_le buf (String.length item);
      Buffer.add_string buf item;
      Buffer.add_int64_le buf (Int64.of_int before);
      Buffer.add_int64_le buf (Int64.of_int after)
  | Commit t ->
      Buffer.add_uint8 buf 3;
      Buffer.add_int32_le buf (Int32.of_int t)
  | Abort t ->
      Buffer.add_uint8 buf 4;
      Buffer.add_int32_le buf (Int32.of_int t)
  | Checkpoint -> Buffer.add_uint8 buf 5
  | Prepare t ->
      Buffer.add_uint8 buf 7;
      Buffer.add_int32_le buf (Int32.of_int t));
  Buffer.contents buf

(* The framing layer is payload-agnostic: the coordinator log of
   lib/distributed reuses [frame]/[scan_frames] with its own payloads. *)
let frame payload =
  let buf = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le buf (Int32.of_int (Support.Crc32.string payload));
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

let frame_of_record r = frame (payload_of_record r)

(* Tolerant payload-level scan: stop (not fail) at the first incomplete
   or CRC-invalid frame.  Returns (offset, payload) pairs and the clean
   byte length. *)
let scan_frames image =
  let n = String.length image in
  let frames = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > n then stop := true
    else begin
      let crc = Int32.to_int (String.get_int32_le image !pos) land 0xFFFFFFFF in
      let len =
        Int32.to_int (String.get_int32_le image (!pos + 4)) land 0xFFFFFFFF
      in
      if len > n - !pos - 8 then stop := true
      else begin
        let payload = String.sub image (!pos + 8) len in
        if Support.Crc32.string payload <> crc then stop := true
        else begin
          frames := (!pos, payload) :: !frames;
          pos := !pos + 8 + len
        end
      end
    end
  done;
  (List.rev !frames, !pos)

let frames_of_file path =
  if Sys.file_exists path then scan_frames (Support.Io.read_file path)
  else ([], 0)

let record_of_payload s =
  let pos = ref 0 in
  let u8 () =
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 () =
    let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let i64 () =
    let v = Int64.to_int (String.get_int64_le s !pos) in
    pos := !pos + 8;
    v
  in
  let str () =
    let len = String.get_uint16_le s !pos in
    pos := !pos + 2;
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  try
    match u8 () with
    | 1 -> Begin (u32 ())
    | (2 | 6) as k ->
        let txn = u32 () in
        let item = str () in
        let before = i64 () in
        let after = i64 () in
        Write { txn; item; before; after; compensation = k = 6 }
    | 3 -> Commit (u32 ())
    | 4 -> Abort (u32 ())
    | 5 -> Checkpoint
    | 7 -> Prepare (u32 ())
    | k -> raise (Corrupt (Printf.sprintf "unknown record kind %d" k))
  with Invalid_argument _ ->
    raise (Corrupt "truncated record payload")

(* Scan a log image, stopping (not failing) at the first frame that is
   incomplete or fails its CRC — the torn tail.  Returns the entries and
   the clean length. *)
let scan image =
  let n = String.length image in
  let entries = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + 8 > n then stop := true
    else begin
      let crc = Int32.to_int (String.get_int32_le image !pos) land 0xFFFFFFFF in
      let len = Int32.to_int (String.get_int32_le image (!pos + 4)) land 0xFFFFFFFF in
      if len > n - !pos - 8 then stop := true
      else begin
        let payload = String.sub image (!pos + 8) len in
        if Support.Crc32.string payload <> crc then stop := true
        else
          match record_of_payload payload with
          | record ->
              entries := { lsn = !pos; record } :: !entries;
              pos := !pos + 8 + len
          | exception Corrupt _ -> stop := true
      end
    end
  done;
  (List.rev !entries, !pos)

(* --- read-only scanning: the offline verifier's view --------------------- *)

type resync = { resync_at : int; resync_records : entry list }

type report = {
  records : entry list;
  clean_bytes : int;
  total_bytes : int;
  resync : resync option;
}

(* Is there a whole, CRC-valid, decodable frame at [pos]? *)
let valid_frame_at image pos =
  let n = String.length image in
  if pos + 8 > n then false
  else begin
    let crc = Int32.to_int (String.get_int32_le image pos) land 0xFFFFFFFF in
    let len = Int32.to_int (String.get_int32_le image (pos + 4)) land 0xFFFFFFFF in
    if len > n - pos - 8 then false
    else begin
      let payload = String.sub image (pos + 8) len in
      Support.Crc32.string payload = crc
      && match record_of_payload payload with
         | (_ : record) -> true
         | exception Corrupt _ -> false
    end
  end

(* After the scan stops at damage, slide forward byte by byte looking for
   a point where valid frames resume.  A torn tail (partial frame, zeros,
   nothing after) never resyncs; a frame corrupted mid-log — with intact
   appends after it — does, and that distinction is exactly what
   separates tolerated crash damage from silent data loss. *)
let find_resync image clean =
  let n = String.length image in
  let rec search pos =
    if pos + 8 > n then None
    else if valid_frame_at image pos then begin
      let entries, _ = scan (String.sub image pos (n - pos)) in
      let entries =
        List.map (fun e -> { e with lsn = e.lsn + pos }) entries
      in
      Some { resync_at = pos; resync_records = entries }
    end
    else search (pos + 1)
  in
  search (clean + 1)

let scan_report image =
  let records, clean_bytes = scan image in
  let total_bytes = String.length image in
  let resync =
    if clean_bytes < total_bytes then find_resync image clean_bytes else None
  in
  { records; clean_bytes; total_bytes; resync }

let report_file path =
  if Sys.file_exists path then scan_report (Support.Io.read_file path)
  else { records = []; clean_bytes = 0; total_bytes = 0; resync = None }

let fold_file path ~init ~f =
  List.fold_left f init (report_file path).records

(* --- the log file ------------------------------------------------------- *)

type metrics = {
  m_appends : Obs.Registry.Counter.t;
  m_append_bytes : Obs.Registry.Counter.t;
  m_flushes : Obs.Registry.Counter.t;
  m_flush_bytes : Obs.Registry.Counter.t;
  m_retries : Obs.Registry.Counter.t;
  m_fsync_ns : Obs.Histogram.t;
  m_flush_ns : Obs.Histogram.t;
}

let make_metrics registry =
  let counter = Obs.Registry.counter registry in
  {
    m_appends = counter ~unit:"records" ~help:"records appended" "wal.appends";
    m_append_bytes =
      counter ~unit:"bytes" ~help:"framed bytes appended" "wal.append_bytes";
    m_flushes =
      counter ~unit:"flushes" ~help:"group-commit flushes made durable"
        "wal.flushes";
    m_flush_bytes =
      counter ~unit:"bytes" ~help:"bytes made durable by flushes"
        "wal.flush_bytes";
    m_retries =
      counter ~help:"transient-EIO retries that eventually succeeded"
        "wal.io_retries";
    m_fsync_ns =
      Obs.Registry.histogram registry ~help:"fsync latency per flush"
        "wal.fsync_ns";
    m_flush_ns =
      Obs.Registry.histogram registry
        ~help:"whole-flush latency (write + fsync)" "wal.flush_ns";
  }

type t = {
  path : string;
  fd : Unix.file_descr;
  fault : Fault.t;
  metrics : metrics;
  trace : Obs.Trace.t;
  pending : Buffer.t;  (* appended but not yet durable *)
  mutable durable : int;  (* bytes on disk *)
  mutable appends : int;
  mutable flushes : int;
  mutable retried : int;  (* transient-EIO retries that eventually won *)
  truncated : int;  (* torn-tail bytes dropped by the opening scan *)
}

let max_retries = 8

let really_write fd s pos len =
  let written = ref 0 in
  while !written < len do
    written :=
      !written
      + Unix.write_substring fd s (pos + !written) (len - !written)
  done

let open_log ?(fault = Fault.create ()) ?(metrics = Obs.Registry.noop)
    ?(trace = Obs.Trace.noop) path =
  let metrics = make_metrics metrics in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let image = Support.Io.read_file path in
  let entries, clean = scan image in
  (* drop the torn tail so new appends start on a clean frame boundary *)
  if clean < String.length image then Unix.ftruncate fd clean;
  ignore (Unix.lseek fd clean Unix.SEEK_SET);
  ( {
      path;
      fd;
      fault;
      metrics;
      trace;
      pending = Buffer.create 1024;
      durable = clean;
      appends = 0;
      flushes = 0;
      retried = 0;
      truncated = String.length image - clean;
    },
    entries )

let append t record =
  let lsn = t.durable + Buffer.length t.pending in
  let frame = frame_of_record record in
  Buffer.add_string t.pending frame;
  t.appends <- t.appends + 1;
  Obs.Registry.Counter.incr t.metrics.m_appends;
  Obs.Registry.Counter.add t.metrics.m_append_bytes (String.length frame);
  lsn

let next_lsn t = t.durable + Buffer.length t.pending
let durable_lsn t = t.durable

(* Each retry draws afresh, so a sub-certain failure probability always
   yields eventual success; a fault surviving every retry escapes as
   [Fault.Io_error] — the engine then degrades to read-only. *)
let with_transient_retries t ~at f =
  let rec attempt n =
    if Fault.transient t.fault ~at then
      if n >= max_retries then raise (Fault.Io_error at)
      else begin
        t.retried <- t.retried + 1;
        Obs.Registry.Counter.incr t.metrics.m_retries;
        attempt (n + 1)
      end
    else f ()
  in
  attempt 0

let flush_body t =
  begin
    let data = Buffer.contents t.pending
    and len = Buffer.length t.pending in
    Fault.io t.fault ~at:"wal flush" ~on_crash:(fun () ->
        (* the torn tail: half the pending bytes reach the platter *)
        really_write t.fd data 0 (len / 2));
    let data =
      match Fault.bit_flip t.fault ~at:"wal flush" ~len with
      | None -> data
      | Some bit ->
          (* one bit of the flushed image corrupted in flight: the frame
             fails its CRC at the next open, truncating the log there —
             stolen pages carrying lost-suffix LSNs are then quarantined
             and rebuilt by the engine *)
          let dirty = Bytes.of_string data in
          let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
          Bytes.set_uint8 dirty byte (Bytes.get_uint8 dirty byte lxor mask);
          Bytes.unsafe_to_string dirty
    in
    if Fault.torn_write t.fault ~at:"wal flush" then begin
      (* a silent torn write: the tail half never reaches the platter.
         The hole reads back as zeros, so the next open stops its scan
         there and the log's suffix is lost. *)
      really_write t.fd data 0 (len / 2);
      ignore (Unix.lseek t.fd (t.durable + len) Unix.SEEK_SET)
    end
    else really_write t.fd data 0 len;
    (match
       Obs.Histogram.time t.metrics.m_fsync_ns (fun () ->
           with_transient_retries t ~at:"wal fsync" (fun () -> Unix.fsync t.fd))
     with
    | () -> ()
    | exception (Fault.Io_error _ as e) ->
        (* after a failed fsync the written bytes must be treated as
           lost, not merely unconfirmed (the fsyncgate lesson): truncate
           back to the durable prefix so the records we are about to
           report as non-durable cannot silently resurface as winners at
           the next open, and rewind so a later retry of the whole flush
           rewrites in place instead of appending a duplicate image *)
        Unix.ftruncate t.fd t.durable;
        ignore (Unix.lseek t.fd t.durable Unix.SEEK_SET);
        raise e);
    t.durable <- t.durable + len;
    Buffer.clear t.pending;
    t.flushes <- t.flushes + 1;
    Obs.Registry.Counter.incr t.metrics.m_flushes;
    Obs.Registry.Counter.add t.metrics.m_flush_bytes len
  end

let flush t =
  if Buffer.length t.pending > 0 then
    let bytes = string_of_int (Buffer.length t.pending) in
    Obs.Trace.with_span t.trace ~args:[ ("bytes", bytes) ] "wal.flush"
      (fun () -> Obs.Histogram.time t.metrics.m_flush_ns (fun () -> flush_body t))

let flush_to t lsn = if lsn >= t.durable then flush t

let close t =
  flush t;
  Unix.close t.fd

let abandon t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let stats t = (t.appends, t.flushes, t.durable)
let retries t = t.retried
let truncated_at_open t = t.truncated
let path t = t.path

let read_entries path =
  if Sys.file_exists path then fst (scan (Support.Io.read_file path)) else []

(* --- bridge to the in-memory recovery model ----------------------------- *)

let to_model records =
  List.filter_map
    (function
      | Begin t -> Some (Transactions.Recovery.Begin t)
      | Write { txn; item; before; after; _ } ->
          Some (Transactions.Recovery.Write (txn, item, before, after))
      | Commit t -> Some (Transactions.Recovery.Commit t)
      | Abort t -> Some (Transactions.Recovery.Abort t)
      (* A prepared-but-undecided txn is still a loser in the model:
         presumed abort.  The distributed model check adds synthetic
         commits for txns whose coordinator DECIDE survived. *)
      | Prepare _ -> None
      | Checkpoint -> None)
    records

let of_model = function
  | Transactions.Recovery.Begin t -> Begin t
  | Transactions.Recovery.Write (txn, item, before, after) ->
      Write { txn; item; before; after; compensation = false }
  | Transactions.Recovery.Commit t -> Commit t
  | Transactions.Recovery.Abort t -> Abort t

let record_to_string = function
  | Begin t -> Printf.sprintf "begin(%d)" t
  | Write { txn; item; before; after; compensation } ->
      Printf.sprintf "%s(%d, %s, %d -> %d)"
        (if compensation then "clr" else "write")
        txn item before after
  | Commit t -> Printf.sprintf "commit(%d)" t
  | Abort t -> Printf.sprintf "abort(%d)" t
  | Checkpoint -> "checkpoint"
  | Prepare t -> Printf.sprintf "prepare(%d)" t
