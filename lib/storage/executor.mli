(** The fault-tolerant concurrent transaction executor: runs interleaved
    {!Transactions.Workload} programs against a persistent {!Engine}
    under SS2PL — shared locks for reads, exclusive for writes, all held
    to commit/abort via {!Lock_manager}.

    The driver is the same single-threaded round-robin scheduler as
    {!Transactions.Simulation}: each live transaction attempts one step
    per round, blocked transactions re-issue their lock request, and
    deadlock/timeout victims are aborted and restarted under a fresh
    engine transaction id with bounded exponential backoff plus
    deterministic (seeded) jitter.  The victim policy mirrors
    [Simulation.break_deadlock]: prefer to keep the transaction with the
    most restarts behind it (highest incarnation, ties to the lowest
    program index) and abort the rest — {!victim_pref} is the pure
    pairwise form, cross-checked against the simulation in the tests.

    Faults: an injected crash ({!Fault.Crash}) abandons the engine and
    is reported in the stats; an unflushable WAL degrades the engine to
    read-only, the executor stops, and unresolved transactions are left
    in doubt (restart recovery aborts them); CRC-corrupt pages are
    repaired inside the engine without the executor noticing (beyond the
    repair counter). *)

(** Scheduler knobs; see {!default_config}. *)
type config = {
  max_steps : int;  (** livelock bound on total operation attempts *)
  max_backoff : int;  (** cap on the backoff window, in rounds *)
  lock_timeout : int option;  (** lock-wait timeout in rounds, if any *)
  seed : int;  (** jitter RNG seed *)
}

val default_config : config
(** max_steps 200_000, max_backoff 64, lock_timeout None, seed 0. *)

type stats = {
  committed : int;
  restarts : int;  (** victim aborts (deadlock + timeout) *)
  deadlocks : int;  (** restarts caused by waits-for cycles *)
  timeouts : int;  (** restarts caused by lock-wait timeout *)
  steps : int;  (** operation attempts, a proxy for time *)
  wasted_ops : int;  (** operations re-executed after restarts *)
  repairs : int;  (** engine quarantine-and-repair events *)
  io_retries : int;  (** transient-EIO retries that succeeded *)
  degraded : bool;  (** the engine went read-only under the run *)
  crashed : Fault.crash_info option;  (** an injected crash fired *)
}

val run : ?config:config -> Engine.t -> Transactions.Simulation.spec array -> stats
(** Execute the programs to completion (or crash/degradation/step
    bound).  Written values are drawn from a per-run counter so every
    write is distinguishable in the log — which is what makes the
    {!model_divergence} check sharp.  On {!Fault.Crash} the engine is
    abandoned ({!Engine.crash}) before returning.

    Observability rides on the engine's registry and recorder
    ({!Engine.metrics}/{!Engine.trace}): the run registers the [exec.*]
    instruments (steps, restarts by cause, wasted ops, the
    [exec.backoff_rounds] histogram), passes the registry to its
    {!Lock_manager} (the [lock.*] instruments), and emits one [exec.txn]
    trace event per transaction incarnation — lane [1 + slot index],
    annotated with the engine txn id, incarnation, and outcome. *)

val throughput : stats -> float
(** committed / steps. *)

val victim_pref :
  age:(int -> int * int) -> int -> int -> int
(** [victim_pref ~age a b] is the transaction to abort, where [age txn]
    gives (incarnation, program index).  Mirrors
    [Simulation.break_deadlock]'s survivor choice: the higher
    incarnation survives, ties broken towards the lower index. *)

val model_divergence : path:string -> ((string * int) list * (string * int) list) option
(** Reopen the database at [path] (running recovery/repair) and compare
    its committed items against {!Transactions.Recovery.committed_state}
    of the surviving log's model image: [None] when they agree,
    [Some (expected, actual)] otherwise.  The engine must be closed. *)
