(* Round-robin SS2PL executor over the engine; see the .mli for the
   policy discussion.  The structure deliberately parallels
   Transactions.Simulation.run so the two drivers can be compared. *)

module Schedule = Transactions.Schedule

type config = {
  max_steps : int;
  max_backoff : int;
  lock_timeout : int option;
  seed : int;
}

let default_config =
  { max_steps = 200_000; max_backoff = 64; lock_timeout = None; seed = 0 }

type stats = {
  committed : int;
  restarts : int;
  deadlocks : int;
  timeouts : int;
  steps : int;
  wasted_ops : int;
  repairs : int;
  io_retries : int;
  degraded : bool;
  crashed : Fault.crash_info option;
}

let throughput stats =
  if stats.steps = 0 then 0.
  else float_of_int stats.committed /. float_of_int stats.steps

(* Simulation.break_deadlock keeps the highest incarnation (ties to the
   lowest base); the victim of a pair is whichever would not survive.
   (incarnation desc, base asc) is a total order, so folding this
   pairwise choice over a cycle picks the same victim Simulation's
   survivor scan implies. *)
let victim_pref ~age a b =
  let ia, ba = age a and ib, bb = age b in
  if ia > ib || (ia = ib && ba < bb) then b else a

type slot = {
  base : int;
  program : Schedule.action array;
  mutable txn : int option;  (* engine transaction id, fresh per incarnation *)
  mutable incarnation : int;
  mutable pc : int;
  mutable finished : bool;
  mutable delay : int;  (* rounds to sit out after a restart (backoff) *)
  mutable started_ns : int;  (* incarnation start, for the txn trace event *)
}

let run ?(config = default_config) eng specs =
  let rng = Support.Rng.create config.seed in
  let metrics = Engine.metrics eng in
  let trace = Engine.trace eng in
  let counter = Obs.Registry.counter metrics in
  let m_steps =
    counter ~unit:"attempts" ~help:"operation attempts (scheduler steps)"
      "exec.steps"
  in
  let m_restarts =
    counter ~unit:"restarts" ~help:"victim aborts (deadlock + timeout)"
      "exec.restarts"
  in
  let m_deadlocks =
    counter ~unit:"restarts" ~help:"restarts caused by waits-for cycles"
      "exec.deadlocks"
  in
  let m_timeouts =
    counter ~unit:"restarts" ~help:"restarts caused by lock-wait timeout"
      "exec.timeouts"
  in
  let m_wasted =
    counter ~unit:"ops" ~help:"operations re-executed after restarts"
      "exec.wasted_ops"
  in
  let m_backoff =
    Obs.Registry.histogram metrics ~unit:"rounds"
      ~help:"backoff drawn per restart" "exec.backoff_rounds"
  in
  let emit_txn slot id ~outcome =
    let now = Obs.Trace.now trace in
    Obs.Trace.emit trace ~tid:(slot.base + 1)
      ~args:
        [
          ("txn", string_of_int id);
          ("incarnation", string_of_int slot.incarnation);
          ("outcome", outcome);
        ]
      ~name:"exec.txn" ~start_ns:slot.started_ns
      ~dur_ns:(now - slot.started_ns) ()
  in
  let slots =
    Array.mapi
      (fun i spec ->
        {
          base = i;
          program = Array.of_list spec;
          txn = None;
          incarnation = 0;
          pc = 0;
          finished = false;
          delay = 0;
          started_ns = 0;
        })
      specs
  in
  let by_txn = Hashtbl.create 16 in
  let age txn =
    match Hashtbl.find_opt by_txn txn with
    | Some s -> (s.incarnation, s.base)
    | None -> (0, txn)
  in
  let lm =
    Lock_manager.create ?timeout:config.lock_timeout
      ~victim_pref:(victim_pref ~age) ~metrics ()
  in
  let steps = ref 0 in
  let restarts = ref 0 in
  let deadlocks = ref 0 in
  let timeouts = ref 0 in
  let wasted = ref 0 in
  let committed = ref 0 in
  let stopped = ref false in
  (* unique written values make the log's committed projection sharp *)
  let next_value = ref 0 in
  let ensure_started slot =
    match slot.txn with
    | Some id -> id
    | None ->
        let id = Engine.begin_txn eng in
        slot.txn <- Some id;
        slot.started_ns <- Obs.Trace.now trace;
        Hashtbl.replace by_txn id slot;
        id
  in
  let retire slot id =
    Lock_manager.release_all lm ~txn:id;
    Hashtbl.remove by_txn id;
    slot.txn <- None
  in
  let restart slot why =
    (match slot.txn with
    | Some id ->
        emit_txn slot id
          ~outcome:(match why with `Deadlock -> "deadlock" | `Timeout -> "timeout");
        Engine.abort eng ~txn:id;
        retire slot id
    | None -> ());
    incr restarts;
    Obs.Registry.Counter.incr m_restarts;
    (match why with
    | `Deadlock ->
        incr deadlocks;
        Obs.Registry.Counter.incr m_deadlocks
    | `Timeout ->
        incr timeouts;
        Obs.Registry.Counter.incr m_timeouts);
    wasted := !wasted + slot.pc;
    Obs.Registry.Counter.add m_wasted slot.pc;
    slot.pc <- 0;
    slot.incarnation <- slot.incarnation + 1;
    (* bounded exponential backoff + seeded jitter, as Simulation does *)
    let window = min config.max_backoff (1 lsl min 6 slot.incarnation) in
    slot.delay <- 1 + Support.Rng.int rng window;
    Obs.Histogram.observe m_backoff slot.delay
  in
  let restart_txn victim why =
    match Hashtbl.find_opt by_txn victim with
    | Some slot -> restart slot why
    | None -> ()  (* already gone (raced with its own restart) *)
  in
  let commit_slot slot id =
    match Engine.commit eng ~txn:id with
    | () ->
        emit_txn slot id ~outcome:"commit";
        retire slot id;
        slot.finished <- true;
        incr committed
    | exception Engine.Read_only _ ->
        (* in doubt: leave the transaction active; restart recovery will
           abort it.  Nothing more can commit — stop the run. *)
        stopped := true
  in
  let attempt slot =
    incr steps;
    Obs.Registry.Counter.incr m_steps;
    let id = ensure_started slot in
    if slot.pc >= Array.length slot.program then commit_slot slot id
    else
      match slot.program.(slot.pc) with
      | Schedule.Commit -> commit_slot slot id
      | Schedule.Abort ->
          emit_txn slot id ~outcome:"abort";
          Engine.abort eng ~txn:id;
          retire slot id;
          slot.finished <- true
      | (Schedule.Read item | Schedule.Write item) as op -> (
          let mode =
            match op with
            | Schedule.Read _ -> Lock_manager.Shared
            | _ -> Lock_manager.Exclusive
          in
          match Lock_manager.acquire lm ~txn:id ~item mode with
          | Lock_manager.Granted -> (
              (match op with
              | Schedule.Read _ -> ignore (Engine.read eng item : int)
              | _ ->
                  incr next_value;
                  Engine.write eng ~txn:id item !next_value);
              slot.pc <- slot.pc + 1)
          | Lock_manager.Blocked -> ()
          | Lock_manager.Deadlock { victim; _ } -> restart_txn victim `Deadlock)
  in
  let all_done () = Array.for_all (fun s -> s.finished) slots in
  (try
     while (not (all_done ())) && (not !stopped) && !steps < config.max_steps do
       Array.iter
         (fun slot ->
           if (not slot.finished) && not !stopped then
             if slot.delay > 0 then slot.delay <- slot.delay - 1
             else
               try attempt slot
               with Engine.Read_only _ -> stopped := true)
         slots;
       if not !stopped then
         List.iter (fun t -> restart_txn t `Timeout) (Lock_manager.tick lm)
     done
   with Fault.Crash _ -> Engine.crash eng);
  {
    committed = !committed;
    restarts = !restarts;
    deadlocks = !deadlocks;
    timeouts = !timeouts;
    steps = !steps;
    wasted_ops = !wasted;
    repairs = Engine.repairs eng;
    io_retries = Engine.io_retries eng;
    degraded = Engine.read_only eng;
    crashed = Fault.crashed_at (Engine.fault eng);
  }

let model_divergence ~path =
  let entries = Wal.read_entries (Engine.wal_path path) in
  let model_log =
    Wal.to_model (List.map (fun e -> e.Wal.record) entries)
  in
  let expected =
    Transactions.Recovery.committed_state model_log
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.sort compare
  in
  let eng = Engine.open_db path in
  let actual = Engine.items eng in
  Engine.close eng;
  if expected = actual then None else Some (expected, actual)
