(* The pager: a fixed-size-page file with a header page (magic, version,
   page count, chain roots) and CRC-checked data pages.  All I/O goes
   through Unix file descriptors with explicit offsets; every write,
   read, and fsync is a fault-injection point.

   Fault discipline (see Fault):
     - an injected crash during a data-page write leaves a torn prefix
       (first half) of the page, like the WAL's torn-tail writer; the
       header page is assumed sector-atomic (a real engine dual-buffers
       it), so a crashed header write leaves the old header;
     - an injected crash at "pager fsync" tears the tail half of a
       random subset of the writes issued since the last successful
       fsync — the writes the missing fsync failed to make durable;
     - probabilistic torn writes and bit flips corrupt data pages
       silently; they are detected by CRC on the next read, recorded in
       [corrupt_pages], and repaired by the engine (quarantine + redo
       from WAL);
     - transient read/fsync EIO errors are retried with bounded
       backoff; only an error that survives every retry escapes as
       [Fault.Io_error].

   header page (page 0):
     0  u32  crc32 of bytes 4..size-1
     4  8b   magic "DBMETA1\n"
     12 u16  format version (1)
     14 u32  page count (including the header page)
     18 u32  catalog root page id (0 = none)
     22 u32  items root page id (0 = none)
     26 i64  wal lsn at the last clean close/checkpoint (informational) *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let magic = "DBMETA1\n"
let version = 1
let max_retries = 8

type metrics = {
  m_reads : Obs.Registry.Counter.t;
  m_writes : Obs.Registry.Counter.t;
  m_crc_failures : Obs.Registry.Counter.t;
  m_retries : Obs.Registry.Counter.t;
  m_syncs : Obs.Registry.Counter.t;
}

let make_metrics registry =
  let counter = Obs.Registry.counter registry in
  {
    m_reads = counter ~help:"data pages read (CRC-verified)" "pager.reads";
    m_writes = counter ~help:"pages written (header + data)" "pager.writes";
    m_crc_failures =
      counter ~unit:"pages" ~help:"page reads that failed their CRC"
        "pager.crc_failures";
    m_retries =
      counter ~help:"transient-EIO retries that eventually succeeded"
        "pager.io_retries";
    m_syncs = counter ~help:"successful pager fsyncs" "pager.syncs";
  }

type t = {
  path : string;
  fd : Unix.file_descr;
  fault : Fault.t;
  header : Bytes.t;
  metrics : metrics;
  mutable writes : int;
  mutable reads : int;
  mutable retried : int;  (* transient-EIO retries that eventually won *)
  mutable unsynced : (int * int) list;  (* (offset, length) since last fsync *)
  mutable corrupt_pages : int list;  (* CRC failures seen, newest first *)
}

(* --- low-level exact-offset I/O --------------------------------------- *)

let really_pwrite fd ~off buf len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd buf !written (len - !written)
  done

let really_pread fd ~off buf len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

(* --- header accessors -------------------------------------------------- *)

let page_count t = Int32.to_int (Bytes.get_int32_le t.header 14)
let set_page_count t n = Bytes.set_int32_le t.header 14 (Int32.of_int n)
let catalog_root t = Int32.to_int (Bytes.get_int32_le t.header 18)
let items_root t = Int32.to_int (Bytes.get_int32_le t.header 22)
let flushed_lsn t = Int64.to_int (Bytes.get_int64_le t.header 26)

let write_header t =
  (* the header write is modelled as atomic (old header on a crash):
     tearing it would lose the chain roots, which no log protects *)
  Fault.io t.fault ~at:"header write" ~on_crash:(fun () -> ());
  Page.seal t.header;
  really_pwrite t.fd ~off:0 t.header Page.size;
  t.writes <- t.writes + 1;
  Obs.Registry.Counter.incr t.metrics.m_writes

let set_catalog_root t n =
  Bytes.set_int32_le t.header 18 (Int32.of_int n);
  write_header t

let set_items_root t n =
  Bytes.set_int32_le t.header 22 (Int32.of_int n);
  write_header t

let set_flushed_lsn t l = Bytes.set_int64_le t.header 26 (Int64.of_int l)

(* --- open / create ----------------------------------------------------- *)

let make path fd fault metrics header =
  {
    path;
    fd;
    fault;
    header;
    metrics;
    writes = 0;
    reads = 0;
    retried = 0;
    unsynced = [];
    corrupt_pages = [];
  }

let create ?(fault = Fault.create ()) ?(metrics = Obs.Registry.noop) path =
  let metrics = make_metrics metrics in
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let header = Bytes.make Page.size '\000' in
  Bytes.blit_string magic 0 header 4 (String.length magic);
  Bytes.set_uint16_le header 12 version;
  let t = make path fd fault metrics header in
  (try
     set_page_count t 1;
     write_header t
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  t

let open_file ?(fault = Fault.create ()) ?(metrics = Obs.Registry.noop) path =
  let metrics = make_metrics metrics in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  try
    let header = Bytes.make Page.size '\000' in
    let got = really_pread fd ~off:0 header Page.size in
    if got <> Page.size then corrupt "%s: truncated header page" path;
    if not (Page.check header) then corrupt "%s: header page CRC mismatch" path;
    if Bytes.sub_string header 4 (String.length magic) <> magic then
      corrupt "%s: bad magic (not a dbmeta database)" path;
    let v = Bytes.get_uint16_le header 12 in
    if v <> version then
      corrupt "%s: format version %d, expected %d" path v version;
    make path fd fault metrics header
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close t =
  write_header t;
  Unix.close t.fd

let abandon t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- pages -------------------------------------------------------------- *)

let check_id t id =
  if id <= 0 || id >= page_count t then corrupt "%s: page id %d out of range" t.path id

(* One transient-retry loop shared by reads and fsyncs: each attempt
   draws afresh, so a sub-certain failure probability always yields
   eventual success; a fault that survives every retry escapes. *)
let with_transient_retries t ~at f =
  let rec attempt n =
    if Fault.transient t.fault ~at then
      if n >= max_retries then raise (Fault.Io_error at)
      else begin
        t.retried <- t.retried + 1;
        Obs.Registry.Counter.incr t.metrics.m_retries;
        attempt (n + 1)
      end
    else f ()
  in
  attempt 0

let read_page t id =
  check_id t id;
  let at = Printf.sprintf "page %d read" id in
  let buf = Bytes.make Page.size '\000' in
  let got =
    with_transient_retries t ~at (fun () ->
        really_pread t.fd ~off:(id * Page.size) buf Page.size)
  in
  if got <> Page.size then corrupt "%s: page %d truncated" t.path id;
  if not (Page.check buf) then begin
    t.corrupt_pages <- id :: t.corrupt_pages;
    Obs.Registry.Counter.incr t.metrics.m_crc_failures;
    corrupt "%s: page %d CRC mismatch" t.path id
  end;
  t.reads <- t.reads + 1;
  Obs.Registry.Counter.incr t.metrics.m_reads;
  buf

(* Write a sealed page image, injecting the probabilistic disk faults:
   a torn write loses the tail half silently; a bit flip corrupts one
   bit of the on-disk image (the in-memory page stays intact).  Both
   are detected by CRC on the next read of the page. *)
let write_image t ~at ~off page =
  let image =
    match Fault.bit_flip t.fault ~at ~len:Page.size with
    | None -> page
    | Some bit ->
        let dirty = Bytes.copy page in
        let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
        Bytes.set_uint8 dirty byte (Bytes.get_uint8 dirty byte lxor mask);
        dirty
  in
  if Fault.torn_write t.fault ~at then
    really_pwrite t.fd ~off image (Page.size / 2)
  else really_pwrite t.fd ~off image Page.size;
  t.unsynced <- (off, Page.size) :: t.unsynced;
  t.writes <- t.writes + 1;
  Obs.Registry.Counter.incr t.metrics.m_writes

let write_page t id page =
  check_id t id;
  let at = Printf.sprintf "page %d write" id in
  Page.seal page;
  (* a crash mid-write leaves a torn prefix of the new image *)
  Fault.io t.fault ~at ~on_crash:(fun () ->
      really_pwrite t.fd ~off:(id * Page.size) page (Page.size / 2));
  write_image t ~at ~off:(id * Page.size) page

let allocate t ~kind =
  let id = page_count t in
  set_page_count t (id + 1);
  let page = Page.init ~kind in
  let at = Printf.sprintf "page %d allocate" id in
  (* order matters: the page must exist before the header admits it *)
  Page.seal page;
  Fault.io t.fault ~at ~on_crash:(fun () ->
      really_pwrite t.fd ~off:(id * Page.size) page (Page.size / 2));
  write_image t ~at ~off:(id * Page.size) page;
  write_header t;
  id

let sync t =
  (* a crash at the fsync loses the durability of the writes since the
     last sync: each such write keeps its head but may lose its tail
     half — the classic partially-persisted page-cache state *)
  Fault.io t.fault ~at:"pager fsync" ~on_crash:(fun () ->
      List.iter
        (fun (off, len) ->
          if off > 0 && Fault.torn_write t.fault ~at:"pager fsync" then begin
            let half = len / 2 in
            really_pwrite t.fd ~off:(off + half) (Bytes.make half '\000') half
          end)
        t.unsynced);
  with_transient_retries t ~at:"pager fsync" (fun () -> Unix.fsync t.fd);
  Obs.Registry.Counter.incr t.metrics.m_syncs;
  t.unsynced <- []

let fault t = t.fault
let path t = t.path
let io_counts t = (t.reads, t.writes)
let retries t = t.retried
let corrupt_pages t = List.sort_uniq Int.compare t.corrupt_pages
let forget_corrupt t = t.corrupt_pages <- []
