(* The pager: a fixed-size-page file with a header page (magic, version,
   page count, chain roots) and CRC-checked data pages.  All I/O goes
   through Unix file descriptors with explicit offsets; every write is a
   fault-injection point.

   header page (page 0):
     0  u32  crc32 of bytes 4..size-1
     4  8b   magic "DBMETA1\n"
     12 u16  format version (1)
     14 u32  page count (including the header page)
     18 u32  catalog root page id (0 = none)
     22 u32  items root page id (0 = none)
     26 i64  wal lsn at the last clean close/checkpoint (informational) *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt
let magic = "DBMETA1\n"
let version = 1

type t = {
  path : string;
  fd : Unix.file_descr;
  fault : Fault.t;
  header : Bytes.t;
  mutable writes : int;
  mutable reads : int;
}

(* --- low-level exact-offset I/O --------------------------------------- *)

let really_pwrite fd ~off buf len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd buf !written (len - !written)
  done

let really_pread fd ~off buf len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

(* --- header accessors -------------------------------------------------- *)

let page_count t = Int32.to_int (Bytes.get_int32_le t.header 14)
let set_page_count t n = Bytes.set_int32_le t.header 14 (Int32.of_int n)
let catalog_root t = Int32.to_int (Bytes.get_int32_le t.header 18)
let items_root t = Int32.to_int (Bytes.get_int32_le t.header 22)
let flushed_lsn t = Int64.to_int (Bytes.get_int64_le t.header 26)

let write_header t =
  Fault.io t.fault ~at:"header write" ~on_crash:(fun () -> ());
  Page.seal t.header;
  really_pwrite t.fd ~off:0 t.header Page.size;
  t.writes <- t.writes + 1

let set_catalog_root t n =
  Bytes.set_int32_le t.header 18 (Int32.of_int n);
  write_header t

let set_items_root t n =
  Bytes.set_int32_le t.header 22 (Int32.of_int n);
  write_header t

let set_flushed_lsn t l = Bytes.set_int64_le t.header 26 (Int64.of_int l)

(* --- open / create ----------------------------------------------------- *)

let create ?(fault = Fault.create ()) path =
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let header = Bytes.make Page.size '\000' in
  Bytes.blit_string magic 0 header 4 (String.length magic);
  Bytes.set_uint16_le header 12 version;
  let t = { path; fd; fault; header; writes = 0; reads = 0 } in
  (try
     set_page_count t 1;
     write_header t
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  t

let open_file ?(fault = Fault.create ()) path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  try
    let header = Bytes.make Page.size '\000' in
    let got = really_pread fd ~off:0 header Page.size in
    if got <> Page.size then corrupt "%s: truncated header page" path;
    if not (Page.check header) then corrupt "%s: header page CRC mismatch" path;
    if Bytes.sub_string header 4 (String.length magic) <> magic then
      corrupt "%s: bad magic (not a dbmeta database)" path;
    let v = Bytes.get_uint16_le header 12 in
    if v <> version then
      corrupt "%s: format version %d, expected %d" path v version;
    { path; fd; fault; header; writes = 0; reads = 0 }
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close t =
  write_header t;
  Unix.close t.fd

let abandon t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- pages -------------------------------------------------------------- *)

let check_id t id =
  if id <= 0 || id >= page_count t then corrupt "%s: page id %d out of range" t.path id

let read_page t id =
  check_id t id;
  let buf = Bytes.make Page.size '\000' in
  let got = really_pread t.fd ~off:(id * Page.size) buf Page.size in
  if got <> Page.size then corrupt "%s: page %d truncated" t.path id;
  if not (Page.check buf) then corrupt "%s: page %d CRC mismatch" t.path id;
  t.reads <- t.reads + 1;
  buf

let write_page t id page =
  check_id t id;
  Fault.io t.fault
    ~at:(Printf.sprintf "page %d write" id)
    ~on_crash:(fun () -> ());
  Page.seal page;
  really_pwrite t.fd ~off:(id * Page.size) page Page.size;
  t.writes <- t.writes + 1

let allocate t ~kind =
  let id = page_count t in
  set_page_count t (id + 1);
  let page = Page.init ~kind in
  (* order matters: the page must exist before the header admits it *)
  Fault.io t.fault
    ~at:(Printf.sprintf "page %d allocate" id)
    ~on_crash:(fun () -> ());
  Page.seal page;
  really_pwrite t.fd ~off:(id * Page.size) page Page.size;
  t.writes <- t.writes + 1;
  write_header t;
  id

let sync t =
  Fault.io t.fault ~at:"pager fsync" ~on_crash:(fun () -> ());
  Unix.fsync t.fd

let fault t = t.fault
let path t = t.path
let io_counts t = (t.reads, t.writes)
