(** Binary serialization of values, tuples, and schemas — the wire format
    the storage engine writes into slotted pages.

    Little-endian and length-prefixed; every value carries a one-byte type
    tag, so records decode without consulting the catalog.  Strings are
    limited to 65535 bytes (they must fit inside a page record). *)

exception Corrupt of string
(** Raised by every reader on malformed input. *)

val add_value : Buffer.t -> Value.t -> unit
val read_value : string -> int ref -> Value.t

val add_tuple : Buffer.t -> Tuple.t -> unit
val read_tuple : string -> int ref -> Tuple.t
val tuple_to_string : Tuple.t -> string
val tuple_of_string : string -> Tuple.t
(** Raises {!Corrupt} on trailing bytes. *)

val add_schema : Buffer.t -> Schema.t -> unit
val read_schema : string -> int ref -> Schema.t
val schema_to_string : Schema.t -> string
val schema_of_string : string -> Schema.t
