(* Binary serialization of values, tuples, and schemas — the wire format
   the storage engine writes into slotted pages.  Little-endian, length-
   prefixed, self-describing (each value carries a type tag), so a page
   record can be decoded without consulting the catalog. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- primitive writers ----------------------------------------------- *)

let add_u8 buf n = Buffer.add_uint8 buf (n land 0xff)
let add_u16 buf n = Buffer.add_uint16_le buf (n land 0xffff)
let add_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_bytes buf s =
  if String.length s > 0xffff then
    invalid_arg "Codec: string longer than 65535 bytes";
  add_u16 buf (String.length s);
  Buffer.add_string buf s

(* --- primitive readers (from a string, advancing a cursor) ------------ *)

let need s pos n what =
  if !pos + n > String.length s then
    corrupt "truncated %s at offset %d" what !pos

let read_u8 s pos =
  need s pos 1 "u8";
  let v = Char.code s.[!pos] in
  incr pos;
  v

let read_u16 s pos =
  need s pos 2 "u16";
  let v = String.get_uint16_le s !pos in
  pos := !pos + 2;
  v

let read_i64 s pos =
  need s pos 8 "i64";
  let v = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  v

let read_bytes s pos =
  let len = read_u16 s pos in
  need s pos len "string body";
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

(* --- values ----------------------------------------------------------- *)

let tag_of_ty = function
  | Value.TInt -> 0
  | Value.TString -> 1
  | Value.TFloat -> 2
  | Value.TBool -> 3

let ty_of_tag = function
  | 0 -> Value.TInt
  | 1 -> Value.TString
  | 2 -> Value.TFloat
  | 3 -> Value.TBool
  | n -> corrupt "unknown type tag %d" n

let add_value buf v =
  add_u8 buf (tag_of_ty (Value.type_of v));
  match v with
  | Value.Int n -> add_i64 buf n
  | Value.String s -> add_bytes buf s
  | Value.Float f -> Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Value.Bool b -> add_u8 buf (if b then 1 else 0)

let read_value s pos =
  match read_u8 s pos with
  | 0 -> Value.Int (read_i64 s pos)
  | 1 -> Value.String (read_bytes s pos)
  | 2 ->
      need s pos 8 "float";
      let f = Int64.float_of_bits (String.get_int64_le s !pos) in
      pos := !pos + 8;
      Value.Float f
  | 3 -> Value.Bool (read_u8 s pos <> 0)
  | n -> corrupt "unknown value tag %d" n

(* --- tuples ------------------------------------------------------------ *)

let add_tuple buf t =
  add_u16 buf (Array.length t);
  Array.iter (add_value buf) t

let read_tuple s pos =
  let arity = read_u16 s pos in
  Array.init arity (fun _ -> read_value s pos)

let tuple_to_string t =
  let buf = Buffer.create 64 in
  add_tuple buf t;
  Buffer.contents buf

let tuple_of_string s =
  let pos = ref 0 in
  let t = read_tuple s pos in
  if !pos <> String.length s then corrupt "trailing bytes after tuple";
  t

(* --- schemas ----------------------------------------------------------- *)

let add_schema buf schema =
  let pairs = Schema.pairs schema in
  add_u16 buf (List.length pairs);
  List.iter
    (fun (attr, ty) ->
      add_bytes buf attr;
      add_u8 buf (tag_of_ty ty))
    pairs

let read_schema s pos =
  let n = read_u16 s pos in
  let pairs =
    List.init n (fun _ ->
        let attr = read_bytes s pos in
        let ty = ty_of_tag (read_u8 s pos) in
        (attr, ty))
  in
  Schema.make pairs

let schema_to_string schema =
  let buf = Buffer.create 64 in
  add_schema buf schema;
  Buffer.contents buf

let schema_of_string s =
  let pos = ref 0 in
  let sc = read_schema s pos in
  if !pos <> String.length s then corrupt "trailing bytes after schema";
  sc
