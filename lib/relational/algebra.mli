(** Relational algebra: abstract syntax, schema inference (static typing),
    and pretty-printing.

    This is the classical named algebra of Codd — selection, projection,
    renaming, product, union, difference — plus the derived operators
    (natural join, intersection, division) that the PODS-era literature
    treats as primitive.  Codd's theorem (implemented in the [calculus]
    library) translates safe relational calculus into exactly this
    algebra. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type operand = Attr of Schema.attribute | Const of Value.t

type predicate =
  | True
  | False
  | Cmp of comparison * operand * operand
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type t =
  | Rel of string  (** base relation, looked up in the catalog *)
  | Singleton of (Schema.attribute * Value.t) list
      (** constant one-tuple relation ⟨c1, …, ck⟩, a primitive of the
          Alice-book algebras; [Singleton \[\]] is the zero-ary relation
          containing the empty tuple (i.e. "true") *)
  | Select of predicate * t
  | Project of Schema.attribute list * t
  | Rename of (Schema.attribute * Schema.attribute) list * t
  | Product of t * t
  | Join of t * t  (** natural join *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Divide of t * t

exception Type_error of string

type catalog = string -> Schema.t
(** Schema environment; raise {!Type_error} (or any exception) on unknown
    names. *)

val schema_of : catalog -> t -> Schema.t
(** Static schema inference; raises {!Type_error} when an operator is
    applied to incompatible operands (e.g. union of different schemas,
    predicate mentioning an absent attribute, comparison across types). *)

val well_typed : catalog -> t -> bool

val attributes_of_predicate : predicate -> Schema.attribute list
(** Attributes mentioned by a predicate, without duplicates. *)

val eval_predicate : Schema.t -> predicate -> Tuple.t -> bool
(** Evaluates a predicate against a tuple laid out by the given schema.
    Assumes the predicate type-checked against that schema. *)

val conjuncts : predicate -> predicate list
(** Flattens nested [And]s. *)

val conjoin : predicate list -> predicate
(** Right fold of [And]; [True] on the empty list. *)

val size : t -> int
(** Number of operator nodes (for generators and optimizer statistics). *)

val comparison_to_string : comparison -> string
val operand_to_string : operand -> string
val predicate_to_string : predicate -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val catalog_of_database : Database.t -> catalog
