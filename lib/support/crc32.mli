(** CRC-32 (IEEE 802.3), as used by zip and png.  Detects torn pages and
    corrupted WAL records in the storage engine. *)

val bytes : ?pos:int -> ?len:int -> Bytes.t -> int
(** Checksum of a byte range (whole buffer by default).  The result fits
    in 32 bits. *)

val string : ?pos:int -> ?len:int -> string -> int

val update : int -> Bytes.t -> pos:int -> len:int -> int
(** Incremental form: extend a previous checksum with more bytes. *)
