(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) —
   the checksum used by zip/png and by our page and WAL formats. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b ~pos ~len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  update 0 b ~pos ~len

let string ?pos ?len s = bytes ?pos ?len (Bytes.unsafe_of_string s)
