let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)
