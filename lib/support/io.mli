(** Binary-safe whole-file IO.

    Always opens in binary mode: page files and WALs are byte-exact, and
    even text inputs (Datalog programs, CSVs, DIMACS) must not have their
    line endings rewritten on non-Unix hosts. *)

val read_file : string -> string
(** Raises [Sys_error] when the file cannot be read. *)

val write_file : string -> string -> unit
(** Creates or truncates; raises [Sys_error] on failure. *)
