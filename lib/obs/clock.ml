(* Wall-clock nanoseconds.  Unix.gettimeofday has microsecond resolution,
   which is plenty for the latencies we histogram (fsync, flush, commit);
   a monotonic source can be injected wherever a clock is taken as a
   parameter (Trace.create, Histogram timers via Registry). *)

let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))
