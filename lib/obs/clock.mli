(** The default time source for histogram timers and span tracing. *)

val now_ns : unit -> int
(** Wall-clock time in integer nanoseconds (microsecond resolution —
    [Unix.gettimeofday] scaled).  Not monotonic across clock steps; the
    recorders accept an injected clock where determinism matters. *)
