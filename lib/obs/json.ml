(* Minimal JSON support for the observability layer: an escaper for the
   renderers and a small strict parser used by tests and the CLI to
   validate emitted documents.  Zero dependencies by design. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* A strict recursive-descent parser over the full document; it exists
   to prove our emitters well-formed, not to be a general JSON library. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> parse_fail "at %d: expected %c, got %c" !pos c d
    | None -> parse_fail "at %d: expected %c, got end of input" !pos c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else parse_fail "at %d: unrecognized literal" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> parse_fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then parse_fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> parse_fail "bad \\u escape %S" hex
              | Some code ->
                  (* enough for our own output: low code points verbatim,
                     anything else as '?' (we never emit non-ASCII) *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?');
              pos := !pos + 4;
              loop ()
          | _ -> parse_fail "at %d: bad escape" !pos)
      | Some c when Char.code c < 0x20 ->
          parse_fail "at %d: unescaped control character" !pos
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> parse_fail "at %d: bad number %S" start text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> parse_fail "at %d: expected ',' or '}'" !pos
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> parse_fail "at %d: expected ',' or ']'" !pos
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_fail "at %d: unexpected character %C" !pos c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_fail "at %d: trailing garbage" !pos;
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let validate s =
  match parse s with v -> Ok v | exception Parse_error msg -> Error msg
