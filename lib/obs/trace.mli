(** Nestable span tracing with a bounded ring-buffer recorder and a
    Chrome [trace_event] dump.

    Spans are recorded as {e complete} events (name, start, duration,
    lane, nesting depth) when they close, so evicting the oldest entry
    of a full ring can never orphan a begin/end pair — the recorder is
    well-formed by construction, and {!end_span} on an empty stack is a
    programming error ([Invalid_argument]).

    Span names are dotted like metric names ([wal.flush], [engine.commit],
    [exec.txn]; see docs/OBSERVABILITY.md for the convention).  [tid]
    selects the rendering lane: lane 0 is the storage engine, lane
    [1 + slot] is executor slot [slot]. *)

(** One completed span, as stored in the ring. *)
type event = {
  name : string;
  tid : int;  (** rendering lane (Chrome "thread") *)
  start_ns : int;
  dur_ns : int;
  depth : int;  (** nesting depth at close, 0 = top level *)
  args : (string * string) list;  (** free-form annotations *)
}

type t
(** A recorder: a stack of open spans plus a bounded ring of completed
    ones. *)

val create : ?capacity:int -> ?clock:(unit -> int) -> unit -> t
(** An enabled recorder keeping the last [capacity] (default 4096)
    completed spans.  [clock] defaults to {!Clock.now_ns}; tests inject
    a deterministic one. *)

val noop : t
(** The shared disabled recorder — the default everywhere.  Every
    operation on it is a no-op (including {!end_span}, which never
    raises here), and {!with_span} runs its thunk without clock reads. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. *)

val now : t -> int
(** The recorder's clock ([0] when disabled) — for callers emitting
    pre-timed events via {!emit}. *)

val begin_span : t -> ?tid:int -> ?args:(string * string) list -> string -> unit
(** Open a span; it records when the matching {!end_span} closes it. *)

val end_span : t -> unit
(** Close the innermost open span.  Raises [Invalid_argument] on an
    enabled recorder with no open span. *)

val with_span : t -> ?tid:int -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around the thunk, exception-safe. *)

val emit :
  t -> ?tid:int -> ?args:(string * string) list ->
  name:string -> start_ns:int -> dur_ns:int -> unit -> unit
(** Record an already-timed complete span (the executor times a
    transaction incarnation itself and emits it on commit/abort). *)

val depth : t -> int
(** Currently open (unclosed) spans. *)

val events : t -> event list
(** The surviving completed spans, oldest first. *)

val recorded : t -> int
(** Total spans ever completed (including evicted ones). *)

val dropped : t -> int
(** Spans evicted by the ring: [max 0 (recorded - capacity)]. *)

val well_formed : t -> bool
(** No span left open — what a finished trace must satisfy. *)

val to_chrome : t -> string
(** The Chrome [trace_event] JSON-object flavour: [{"traceEvents": [...
    phase-"X" records ...]}] with microsecond timestamps normalized to
    start at 0.  Opens in [about:tracing] and Perfetto. *)
