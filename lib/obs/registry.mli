(** The metric registry: monotonic counters, gauges, and log-scale
    {!Histogram}s behind stable dotted names ([pool.hits],
    [wal.fsync_ns], ...; the catalogue lives in docs/OBSERVABILITY.md
    and [dbmeta lint metrics] keeps it honest).

    Design for a ~zero disabled cost: an instrument is registered once,
    at component-construction time (one hashtable lookup), and handed
    back as a bare mutable record — the hot path is a field increment.
    The shared {!noop} registry is disabled: histograms created on it
    never read the clock ({!Histogram.time} just runs its thunk), so
    code instrumented against the default registry pays only integer
    increments.

    Registering the same name twice returns the same instrument;
    re-registering a name as a different kind raises
    [Invalid_argument]. *)

(** Monotonic counters.  [incr]/[add] are single field updates. *)
module Counter : sig
  type t

  val make : unit -> t
  (** A free-standing counter (not in any registry) — for tests. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  val reset : t -> unit
  (** Tests only; production counters are monotonic. *)
end

(** Point-in-time gauges (resident pages, queue depth, 0/1 flags). *)
module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

type t
(** A registry: a name → instrument table plus the enabled flag its
    histograms inherit. *)

val create : unit -> t
(** A fresh, enabled registry. *)

val noop : t
(** The shared disabled registry — the default everywhere.  Instruments
    registered on it work but are never rendered, and its histograms
    skip clock reads. *)

val enabled : t -> bool

val counter : t -> ?unit:string -> ?help:string -> string -> Counter.t
(** Register (or fetch) the named counter.  [unit] defaults to ["ops"]. *)

val gauge : t -> ?unit:string -> ?help:string -> string -> Gauge.t

val histogram : t -> ?unit:string -> ?help:string -> string -> Histogram.t
(** Register (or fetch) the named histogram; [unit] defaults to ["ns"].
    The histogram is active iff the registry is enabled. *)

val names : t -> string list
(** Every registered metric name, sorted — what [dbmeta lint metrics]
    checks against the catalogue. *)

val counter_value : t -> string -> int option
(** Look a counter up by name ([None] if absent or not a counter) —
    for tests and the CLI. *)

val to_text : t -> string
(** One line per instrument, sorted by name: kind, name, value (or
    count/percentiles/max/sum for histograms), unit, and help. *)

val to_json : t -> string
(** A JSON object [{"counters": [...], "gauges": [...], "histograms":
    [...]}] with each array sorted by name and a fixed key order, so two
    dumps of the same run diff cleanly.  Histogram percentiles are the
    bucket upper bounds (see {!Histogram.percentile}). *)
