(** Log-scale histograms over non-negative integer samples (latencies in
    nanoseconds, delta sizes, queue depths): power-of-two buckets, so 63
    buckets cover the whole positive [int] range with bounded relative
    error.  Bucket [0] holds [{0, 1}]; bucket [i >= 1] holds
    [(2^(i-1), 2^i]].

    Reported percentiles are bucket upper bounds: {!percentile} always
    bounds the true sample quantile from above, and by the bucket
    geometry is at most twice it — QCheck-tested in [test_obs.ml]. *)

type t
(** A mutable histogram: 63 power-of-two buckets plus running
    count/sum/max.  Not thread-safe (nothing here is; the repo is
    single-threaded). *)

val make : ?active:bool -> ?clock:(unit -> int) -> unit -> t
(** [active] (default true) gates the clock reads of {!time}: an
    inactive histogram's timer runs its thunk without ever taking a
    timestamp, which is what makes disabled registries ~free.  [clock]
    defaults to {!Clock.now_ns}. *)

val observe : t -> int -> unit
(** Record one sample; negative samples clamp to 0. *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk and observe its duration in clock units (ns under the
    default clock), including when it raises.  When the histogram is
    inactive this is just [f ()]. *)

val count : t -> int
(** Samples observed so far. *)

val sum : t -> int
(** Sum of all samples (exact, unlike the bucketed percentiles). *)

val max_value : t -> int
(** Largest sample observed (exact); [0] when empty. *)

val mean : t -> float
(** [sum / count] as a float; [0.] when empty. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [[0, 1]] (clamped): the upper bound of
    the bucket containing the [ceil (q * count)]-th smallest sample,
    clipped to {!max_value}; [0] on an empty histogram. *)

val bucket_index : int -> int
(** The bucket a sample lands in — exposed for the unit tests. *)

val bucket_upper : int -> int
(** Inclusive upper bound of a bucket — exposed for the unit tests. *)
