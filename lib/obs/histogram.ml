(* Log-scale histograms: power-of-two buckets over non-negative integer
   samples (nanoseconds, counts, queue depths).  Bucket [0] holds {0, 1};
   bucket [i >= 1] holds (2^(i-1), 2^i].  A reported percentile is the
   upper bound of the bucket holding the rank, so it always bounds the
   true sample quantile from above and is at most 2x it — the property
   test_obs.ml checks. *)

let buckets = 63

type t = {
  active : bool;  (* skip clock reads in [time] when false *)
  clock : unit -> int;
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable max_value : int;
}

let make ?(active = true) ?(clock = Clock.now_ns) () =
  { active; clock; counts = Array.make buckets 0; count = 0; sum = 0; max_value = 0 }

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* least i with v <= 2^i: the bit length of v - 1 *)
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (buckets - 1) (bits (v - 1) 0)
  end

let bucket_upper i = if i <= 0 then 1 else 1 lsl i

let observe t v =
  let v = max 0 v in
  t.counts.(bucket_index v) <- t.counts.(bucket_index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max_value then t.max_value <- v

let time t f =
  if not t.active then f ()
  else begin
    let t0 = t.clock () in
    match f () with
    | result ->
        observe t (t.clock () - t0);
        result
    | exception e ->
        observe t (t.clock () - t0);
        raise e
  end

let count t = t.count
let sum t = t.sum
let max_value t = t.max_value
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let percentile t q =
  if t.count = 0 then 0
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.count))) in
    let rec walk i acc =
      if i >= buckets then t.max_value
      else begin
        let acc = acc + t.counts.(i) in
        if acc >= rank then min (bucket_upper i) t.max_value else walk (i + 1) acc
      end
    in
    walk 0 0
  end
