(** Minimal JSON support for the observability layer: string escaping
    for the renderers and a strict parser used to {e validate} the JSON
    this repository emits (metrics dumps, traces, bench results).  It is
    deliberately not a general JSON library — no streaming, no full
    unicode decoding — just enough to prove our own output well-formed
    and machine-readable. *)

val escape : string -> string
(** Escape a string for embedding inside a JSON string literal: quotes,
    backslashes, and control characters (the common ones as [\n]-style
    shorthands, the rest as [\u00XX]).  Does not add the surrounding
    quotes — see {!quote}. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes: a complete JSON
    string literal. *)

(** A parsed JSON document. *)
type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} with a position-annotated message. *)

val parse : string -> t
(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage.  [\u] escapes above ASCII decode to ['?']
    (our emitters never produce them). *)

val member : string -> t -> t option
(** [member key json] looks up [key] when [json] is an object; [None]
    otherwise. *)

val validate : string -> (t, string) result
(** Exception-free {!parse}. *)
