(* Span tracing: a stack of open spans plus a bounded ring buffer of
   completed spans.  Events are stored as *complete* spans (name, start,
   duration, thread lane, depth), which makes ring-buffer eviction safe:
   dropping the oldest complete span can never orphan an end marker.
   The Chrome dump renders them as "X" (complete) trace_event records,
   which about:tracing and Perfetto nest by containment per lane. *)

type event = {
  name : string;
  tid : int;
  start_ns : int;
  dur_ns : int;
  depth : int;
  args : (string * string) list;
}

type open_span = {
  o_name : string;
  o_tid : int;
  o_start : int;
  o_args : (string * string) list;
}

type t = {
  enabled : bool;
  clock : unit -> int;
  capacity : int;
  ring : event option array;
  mutable next : int;  (* next write slot *)
  mutable recorded : int;  (* total events ever emitted *)
  mutable stack : open_span list;
}

let create ?(capacity = 4096) ?(clock = Clock.now_ns) () =
  if capacity < 1 then invalid_arg "Obs.Trace.create: capacity < 1";
  {
    enabled = true;
    clock;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    recorded = 0;
    stack = [];
  }

let noop =
  {
    enabled = false;
    clock = (fun () -> 0);
    capacity = 1;
    ring = Array.make 1 None;
    next = 0;
    recorded = 0;
    stack = [];
  }

let enabled t = t.enabled
let now t = if t.enabled then t.clock () else 0
let depth t = List.length t.stack

let emit t ?(tid = 0) ?(args = []) ~name ~start_ns ~dur_ns () =
  if t.enabled then begin
    let event = { name; tid; start_ns; dur_ns; depth = depth t; args } in
    t.ring.(t.next) <- Some event;
    t.next <- (t.next + 1) mod t.capacity;
    t.recorded <- t.recorded + 1
  end

let begin_span t ?(tid = 0) ?(args = []) name =
  if t.enabled then
    t.stack <-
      { o_name = name; o_tid = tid; o_start = t.clock (); o_args = args } :: t.stack

let end_span t =
  if t.enabled then
    match t.stack with
    | [] -> invalid_arg "Obs.Trace.end_span: no open span"
    | span :: rest ->
        t.stack <- rest;
        emit t ~tid:span.o_tid ~args:span.o_args ~name:span.o_name
          ~start_ns:span.o_start
          ~dur_ns:(t.clock () - span.o_start)
          ()

let with_span t ?tid ?args name f =
  if not t.enabled then f ()
  else begin
    begin_span t ?tid ?args name;
    Fun.protect ~finally:(fun () -> end_span t) f
  end

let events t =
  (* oldest surviving first: the ring slot at [next] is the oldest *)
  List.filter_map
    (fun k -> t.ring.((t.next + k) mod t.capacity))
    (List.init t.capacity Fun.id)

let recorded t = t.recorded
let dropped t = max 0 (t.recorded - t.capacity)

let well_formed t =
  (* every recorded event was closed (complete) and no span is open *)
  t.stack = []

(* --- Chrome trace_event dump --------------------------------------------- *)

(* The JSON-object flavour of the trace_event format: a "traceEvents"
   array of phase-"X" (complete) events with microsecond timestamps,
   normalized so the trace starts at ts 0.  Opens directly in
   about:tracing and ui.perfetto.dev. *)
let to_chrome t =
  let events =
    List.sort (fun a b -> compare (a.start_ns, a.depth) (b.start_ns, b.depth))
      (events t)
  in
  let t0 = match events with [] -> 0 | e :: _ -> e.start_ns in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"traceEvents\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Printf.bprintf buf
        "{\"name\": %s, \"cat\": \"dbmeta\", \"ph\": \"X\", \"pid\": 1, \
         \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f"
        (Json.quote e.name) e.tid
        (float_of_int (e.start_ns - t0) /. 1e3)
        (float_of_int e.dur_ns /. 1e3);
      if e.args <> [] then begin
        Buffer.add_string buf ", \"args\": {";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ", ";
            Printf.bprintf buf "%s: %s" (Json.quote k) (Json.quote v))
          e.args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    events;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf
