(* The metric registry: named counters, gauges, and histograms with text
   and JSON renderers.  Instruments are plain mutable records handed out
   once at component-construction time, so the hot path is a field
   increment with no lookup; the shared [noop] registry makes an
   uninstrumented run pay only those increments (and no clock reads —
   histograms created on a disabled registry are inactive). *)

module Counter = struct
  type t = { mutable n : int }

  let make () = { n = 0 }
  let incr c = c.n <- c.n + 1
  let add c k = c.n <- c.n + k
  let value c = c.n
  let reset c = c.n <- 0
end

module Gauge = struct
  type t = { mutable v : int }

  let make () = { v = 0 }
  let set g v = g.v <- v
  let add g k = g.v <- g.v + k
  let value g = g.v
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type entry = { name : string; unit_ : string; help : string; inst : instrument }

type t = {
  enabled : bool;
  by_name : (string, entry) Hashtbl.t;
}

let create () = { enabled = true; by_name = Hashtbl.create 64 }
let noop = { enabled = false; by_name = Hashtbl.create 64 }
let enabled t = t.enabled

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t ~name ~unit_ ~help fresh reuse =
  match Hashtbl.find_opt t.by_name name with
  | Some entry -> (
      match reuse entry.inst with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "Obs.Registry: %s already registered as a %s" name
               (kind_name entry.inst)))
  | None ->
      let inst, v = fresh () in
      Hashtbl.replace t.by_name name { name; unit_; help; inst };
      v

let counter t ?(unit = "ops") ?(help = "") name =
  register t ~name ~unit_:unit ~help
    (fun () ->
      let c = Counter.make () in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge t ?(unit = "") ?(help = "") name =
  register t ~name ~unit_:unit ~help
    (fun () ->
      let g = Gauge.make () in
      (G g, g))
    (function G g -> Some g | _ -> None)

let histogram t ?(unit = "ns") ?(help = "") name =
  register t ~name ~unit_:unit ~help
    (fun () ->
      let h = Histogram.make ~active:t.enabled () in
      (H h, h))
    (function H h -> Some h | _ -> None)

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.by_name []
  |> List.sort (fun a b -> String.compare a.name b.name)

let names t = List.map (fun e -> e.name) (entries t)

let find t name =
  Option.map (fun e -> e.inst) (Hashtbl.find_opt t.by_name name)

let counter_value t name =
  match find t name with Some (C c) -> Some (Counter.value c) | _ -> None

(* --- renderers ----------------------------------------------------------- *)

let percentiles = [ (0.5, "p50"); (0.95, "p95"); (0.99, "p99") ]

let to_text t =
  let buf = Buffer.create 512 in
  List.iter
    (fun { name; unit_; help; inst } ->
      (match inst with
      | C c ->
          Printf.bprintf buf "counter   %-32s %12d %s" name (Counter.value c) unit_
      | G g ->
          Printf.bprintf buf "gauge     %-32s %12d %s" name (Gauge.value g) unit_
      | H h ->
          Printf.bprintf buf "histogram %-32s count %d" name (Histogram.count h);
          if Histogram.count h > 0 then begin
            List.iter
              (fun (q, label) ->
                Printf.bprintf buf " %s %d" label (Histogram.percentile h q))
              percentiles;
            Printf.bprintf buf " max %d sum %d %s" (Histogram.max_value h)
              (Histogram.sum h) unit_
          end);
      if help <> "" then Printf.bprintf buf "  (%s)" help;
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

(* Stable by construction: entries sorted by name, keys in a fixed
   order, no floats except histogram means — diffs stay clean. *)
let to_json t =
  let buf = Buffer.create 512 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n    "
  in
  let section kind filter render =
    first := true;
    Printf.bprintf buf "  %s: [" (Json.quote kind);
    let hit = ref false in
    List.iter
      (fun e ->
        match filter e.inst with
        | None -> ()
        | Some x ->
            hit := true;
            sep ();
            render e x)
      (entries t);
    if !hit then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "]"
  in
  Buffer.add_string buf "{\n";
  section "counters"
    (function C c -> Some c | _ -> None)
    (fun e c ->
      Printf.bprintf buf "{\"name\": %s, \"value\": %d, \"unit\": %s}"
        (Json.quote e.name) (Counter.value c) (Json.quote e.unit_));
  Buffer.add_string buf ",\n";
  section "gauges"
    (function G g -> Some g | _ -> None)
    (fun e g ->
      Printf.bprintf buf "{\"name\": %s, \"value\": %d, \"unit\": %s}"
        (Json.quote e.name) (Gauge.value g) (Json.quote e.unit_));
  Buffer.add_string buf ",\n";
  section "histograms"
    (function H h -> Some h | _ -> None)
    (fun e h ->
      Printf.bprintf buf
        "{\"name\": %s, \"count\": %d, \"sum\": %d, \"max\": %d, \"p50\": %d, \
         \"p95\": %d, \"p99\": %d, \"unit\": %s}"
        (Json.quote e.name) (Histogram.count h) (Histogram.sum h)
        (Histogram.max_value h)
        (Histogram.percentile h 0.5)
        (Histogram.percentile h 0.95)
        (Histogram.percentile h 0.99)
        (Json.quote e.unit_));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
