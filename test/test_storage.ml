(* Tests for the persistent storage engine: CRC and codec round trips,
   slotted pages, the pager, the buffer pool, the binary WAL (including
   torn tails), ARIES-lite recovery, heap tables — and the acceptance
   centerpiece: a crash-injection matrix that kills the engine at every
   durable I/O of an interleaved workload (and during recovery itself)
   and asserts the committed-state invariant of Transactions.Recovery
   against the reopened database. *)

module V = Relational.Value
module R = Transactions.Recovery

let tmp_counter = ref 0

(* a fresh database path in a temp dir; the WAL lives beside it *)
let fresh_path () =
  incr tmp_counter;
  let dir = Filename.get_temp_dir_name () in
  let path =
    Filename.concat dir
      (Printf.sprintf "dbmeta_test_%d_%d.db" (Unix.getpid ()) !tmp_counter)
  in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Storage.Engine.wal_path path ];
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Storage.Engine.wal_path path ]

(* --- crc32 ------------------------------------------------------------- *)

let test_crc32_vectors () =
  (* the standard check value for CRC-32/ISO-HDLC *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Support.Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Support.Crc32.string "");
  Alcotest.(check bool) "differs" true
    (Support.Crc32.string "hello" <> Support.Crc32.string "hellp")

let test_crc32_incremental () =
  let whole = Support.Crc32.string "database metatheory" in
  let b = Bytes.of_string "database metatheory" in
  let partial = Support.Crc32.update 0 b ~pos:0 ~len:8 in
  Alcotest.(check bool) "prefix differs" true (partial <> whole);
  Alcotest.(check int) "resumed"
    whole
    (Support.Crc32.update
       (Support.Crc32.update 0 b ~pos:0 ~len:8)
       b ~pos:8 ~len:(Bytes.length b - 8))

(* --- codec ------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let values =
    [
      V.Int 0; V.Int (-42); V.Int max_int; V.String ""; V.String "héllo,\"x\"\n";
      V.Float 3.25; V.Float (-0.0); V.Bool true; V.Bool false;
    ]
  in
  List.iter
    (fun v ->
      let buf = Buffer.create 16 in
      Relational.Codec.add_value buf v;
      let got = Relational.Codec.read_value (Buffer.contents buf) (ref 0) in
      Alcotest.(check bool) (V.to_literal v) true (V.equal v got))
    values;
  let tuple = [| V.Int 7; V.String "pods"; V.Float 1.5; V.Bool false |] in
  let got =
    Relational.Codec.tuple_of_string (Relational.Codec.tuple_to_string tuple)
  in
  Alcotest.(check bool) "tuple" true (Relational.Tuple.equal tuple got);
  let schema =
    Relational.Schema.make [ ("a", V.TInt); ("name", V.TString); ("ok", V.TBool) ]
  in
  let got =
    Relational.Codec.schema_of_string (Relational.Codec.schema_to_string schema)
  in
  Alcotest.(check bool) "schema" true (Relational.Schema.equal schema got)

let test_codec_corrupt () =
  let corrupt s =
    match Relational.Codec.tuple_of_string s with
    | _ -> false
    | exception Relational.Codec.Corrupt _ -> true
  in
  Alcotest.(check bool) "truncated" true (corrupt "\x02\x00\x00");
  Alcotest.(check bool) "bad tag" true (corrupt "\x01\x00\x09zzzzzzzz");
  let good = Relational.Codec.tuple_to_string [| V.Int 1 |] in
  Alcotest.(check bool) "trailing" true (corrupt (good ^ "x"))

(* --- slotted pages ------------------------------------------------------ *)

let test_page_slots () =
  let p = Storage.Page.init ~kind:3 in
  let a = Storage.Page.insert p "alpha" in
  let b = Storage.Page.insert p "beta" in
  Alcotest.(check int) "slot ids" 1 (b - a);
  Alcotest.(check (option string)) "read a" (Some "alpha") (Storage.Page.read_slot p a);
  Storage.Page.delete_slot p a;
  Alcotest.(check (option string)) "deleted" None (Storage.Page.read_slot p a);
  Alcotest.(check (option string)) "b intact" (Some "beta") (Storage.Page.read_slot p b);
  Alcotest.(check bool) "overwrite same len" true (Storage.Page.overwrite p b "BETA");
  Alcotest.(check bool) "overwrite other len" false (Storage.Page.overwrite p b "longer");
  Alcotest.(check (list (pair int string))) "records" [ (b, "BETA") ]
    (Storage.Page.records p)

let test_page_full () =
  let p = Storage.Page.init ~kind:3 in
  let big = String.make 1000 'x' in
  let rec fill n = match Storage.Page.insert p big with
    | _ -> fill (n + 1)
    | exception Storage.Page.Page_full -> n
  in
  let n = fill 0 in
  Alcotest.(check int) "four 1000-byte records fit a 4k page" 4 n;
  Alcotest.(check bool) "small still fits" true
    (match Storage.Page.insert p "tiny" with _ -> true)

let test_page_lsn_monotone () =
  let p = Storage.Page.init ~kind:2 in
  Storage.Page.set_lsn p 100;
  Storage.Page.set_lsn p 40;
  Alcotest.(check int) "keeps max" 100 (Storage.Page.lsn p)

let test_page_crc () =
  let p = Storage.Page.init ~kind:3 in
  ignore (Storage.Page.insert p "payload" : int);
  Storage.Page.seal p;
  Alcotest.(check bool) "sealed verifies" true (Storage.Page.check p);
  Bytes.set p 100 'Z';
  Alcotest.(check bool) "corruption detected" false (Storage.Page.check p)

(* --- pager --------------------------------------------------------------- *)

let test_pager_roundtrip () =
  let path = fresh_path () in
  let pager = Storage.Pager.create path in
  let id = Storage.Pager.allocate pager ~kind:3 in
  let page = Storage.Pager.read_page pager id in
  ignore (Storage.Page.insert page "persistent" : int);
  Storage.Pager.write_page pager id page;
  Storage.Pager.set_catalog_root pager id;
  Storage.Pager.close pager;
  let pager = Storage.Pager.open_file path in
  Alcotest.(check int) "page count" 2 (Storage.Pager.page_count pager);
  Alcotest.(check int) "root" id (Storage.Pager.catalog_root pager);
  let page = Storage.Pager.read_page pager id in
  Alcotest.(check (option string)) "record" (Some "persistent")
    (Storage.Page.read_slot page 0);
  Storage.Pager.close pager;
  cleanup path

let test_pager_detects_corruption () =
  let path = fresh_path () in
  let pager = Storage.Pager.create path in
  let id = Storage.Pager.allocate pager ~kind:3 in
  Storage.Pager.close pager;
  (* flip a byte in the middle of the data page *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd ((id * Storage.Page.size) + 2000) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  let pager = Storage.Pager.open_file path in
  Alcotest.(check bool) "crc mismatch raised" true
    (match Storage.Pager.read_page pager id with
    | _ -> false
    | exception Storage.Pager.Corrupt _ -> true);
  Storage.Pager.close pager;
  cleanup path

let test_pager_rejects_garbage () =
  let path = fresh_path () in
  Support.Io.write_file path (String.make 8192 'j');
  Alcotest.(check bool) "bad magic" true
    (match Storage.Pager.open_file path with
    | _ -> false
    | exception Storage.Pager.Corrupt _ -> true);
  cleanup path

(* --- buffer pool ---------------------------------------------------------- *)

let test_pool_counters_and_lru () =
  let path = fresh_path () in
  let pager = Storage.Pager.create path in
  let ids = List.init 6 (fun _ -> Storage.Pager.allocate pager ~kind:3) in
  let pool = Storage.Buffer_pool.create ~capacity:4 pager in
  (* touch 4 pages: all misses *)
  List.iteri
    (fun i id -> if i < 4 then Storage.Buffer_pool.with_page pool id ignore)
    ids;
  let s = Storage.Buffer_pool.stats pool in
  Alcotest.(check int) "misses" 4 s.Storage.Buffer_pool.misses;
  Alcotest.(check int) "hits" 0 s.Storage.Buffer_pool.hits;
  (* hit one of them *)
  Storage.Buffer_pool.with_page pool (List.nth ids 3) ignore;
  Alcotest.(check int) "one hit" 1 s.Storage.Buffer_pool.hits;
  (* a 5th page evicts the LRU (the first touched) *)
  Storage.Buffer_pool.with_page pool (List.nth ids 4) ignore;
  Alcotest.(check int) "eviction" 1 s.Storage.Buffer_pool.evictions;
  Storage.Buffer_pool.with_page pool (List.nth ids 0) ignore;
  Alcotest.(check int) "reload miss" 6 s.Storage.Buffer_pool.misses;
  Storage.Pager.close pager;
  cleanup path

let test_pool_dirty_flush_and_barrier () =
  let path = fresh_path () in
  let pager = Storage.Pager.create path in
  let a = Storage.Pager.allocate pager ~kind:3 in
  let b = Storage.Pager.allocate pager ~kind:3 in
  let pool = Storage.Buffer_pool.create ~capacity:1 pager in
  let barrier_calls = ref [] in
  Storage.Buffer_pool.set_wal_barrier pool (fun lsn -> barrier_calls := lsn :: !barrier_calls);
  Storage.Buffer_pool.with_page pool a (fun page ->
      ignore (Storage.Page.insert page "dirty" : int);
      Storage.Page.set_lsn page 77;
      Storage.Buffer_pool.mark_dirty pool a);
  (* fetching b evicts a, which must flush through the barrier *)
  Storage.Buffer_pool.with_page pool b ignore;
  Alcotest.(check (list int)) "barrier saw page lsn" [ 77 ] !barrier_calls;
  let s = Storage.Buffer_pool.stats pool in
  Alcotest.(check int) "flushes" 1 s.Storage.Buffer_pool.flushes;
  (* the flushed page is durable *)
  let page = Storage.Pager.read_page pager a in
  Alcotest.(check (option string)) "stolen write on disk" (Some "dirty")
    (Storage.Page.read_slot page 0);
  Storage.Pager.close pager;
  cleanup path

let test_pool_exhausted () =
  let path = fresh_path () in
  let pager = Storage.Pager.create path in
  let a = Storage.Pager.allocate pager ~kind:3 in
  let b = Storage.Pager.allocate pager ~kind:3 in
  let pool = Storage.Buffer_pool.create ~capacity:1 pager in
  let page = Storage.Buffer_pool.fetch pool a in
  ignore (page : Storage.Page.t);
  Alcotest.(check bool) "all pinned" true
    (match Storage.Buffer_pool.fetch pool b with
    | _ -> false
    | exception Storage.Buffer_pool.Pool_exhausted -> true);
  Storage.Buffer_pool.unpin pool a;
  Storage.Pager.close pager;
  cleanup path

(* --- WAL ------------------------------------------------------------------- *)

let wal_records l = List.map (fun e -> e.Storage.Wal.record) l

let test_wal_roundtrip () =
  let path = fresh_path () in
  let wal_file = Storage.Engine.wal_path path in
  let wal, entries = Storage.Wal.open_log wal_file in
  Alcotest.(check int) "fresh log empty" 0 (List.length entries);
  let records =
    [
      Storage.Wal.Begin 1;
      Storage.Wal.Write { txn = 1; item = "x"; before = 0; after = 5; compensation = false };
      Storage.Wal.Commit 1;
      Storage.Wal.Begin 2;
      Storage.Wal.Write { txn = 2; item = "naïve/ключ"; before = 5; after = -7; compensation = true };
      Storage.Wal.Abort 2;
      Storage.Wal.Checkpoint;
    ]
  in
  List.iter (fun r -> ignore (Storage.Wal.append wal r : int)) records;
  Storage.Wal.flush wal;
  Storage.Wal.close wal;
  let _, entries = Storage.Wal.open_log wal_file in
  Alcotest.(check int) "all back" (List.length records) (List.length entries);
  Alcotest.(check bool) "equal" true (wal_records entries = records);
  (* LSNs are strictly increasing byte offsets *)
  let lsns = List.map (fun e -> e.Storage.Wal.lsn) entries in
  Alcotest.(check bool) "lsns increase" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length lsns - 1) lsns)
       (List.tl lsns));
  cleanup path

let test_wal_torn_tail () =
  let path = fresh_path () in
  let wal_file = Storage.Engine.wal_path path in
  let wal, _ = Storage.Wal.open_log wal_file in
  ignore (Storage.Wal.append wal (Storage.Wal.Begin 9) : int);
  ignore (Storage.Wal.append wal (Storage.Wal.Commit 9) : int);
  Storage.Wal.flush wal;
  Storage.Wal.close wal;
  (* append garbage, then half a valid frame: both must be tolerated *)
  let image = Support.Io.read_file wal_file in
  let frame = Storage.Wal.frame_of_record (Storage.Wal.Begin 10) in
  let torn = String.sub frame 0 (String.length frame / 2) in
  Support.Io.write_file wal_file (image ^ torn);
  let wal, entries = Storage.Wal.open_log wal_file in
  Alcotest.(check int) "clean prefix survives" 2 (List.length entries);
  (* the torn tail was physically truncated; appending works again *)
  ignore (Storage.Wal.append wal (Storage.Wal.Begin 11) : int);
  Storage.Wal.flush wal;
  Storage.Wal.close wal;
  let _, entries = Storage.Wal.open_log wal_file in
  Alcotest.(check bool) "resumed cleanly" true
    (wal_records entries
    = [ Storage.Wal.Begin 9; Storage.Wal.Commit 9; Storage.Wal.Begin 11 ]);
  (* bit-flip in the middle: the scan stops at the flip, keeping the prefix *)
  let image = Support.Io.read_file wal_file in
  let flipped = Bytes.of_string image in
  Bytes.set flipped (String.length image - 3) '\xff';
  Support.Io.write_file wal_file (Bytes.to_string flipped);
  let _, entries = Storage.Wal.open_log wal_file in
  Alcotest.(check int) "flip truncates to prefix" 2 (List.length entries);
  cleanup path

(* the model bridge: random model logs survive the binary round trip *)
let prop_wal_model_roundtrip =
  let open QCheck2 in
  let record_gen =
    Gen.(
      oneof
        [
          map (fun t -> R.Begin t) (int_range 1 9);
          map (fun t -> R.Commit t) (int_range 1 9);
          map (fun t -> R.Abort t) (int_range 1 9);
          map3
            (fun t i (b, a) -> R.Write (t, Printf.sprintf "it%d" i, b, a))
            (int_range 1 9) (int_range 0 5)
            (pair (int_range (-100) 100) (int_range (-100) 100));
        ])
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"wal/model round trip"
       (Gen.list_size (Gen.int_range 0 40) record_gen)
       (fun model_log ->
         let image =
           String.concat ""
             (List.map
                (fun r -> Storage.Wal.frame_of_record (Storage.Wal.of_model r))
                model_log)
         in
         let entries, clean = Storage.Wal.scan image in
         clean = String.length image
         && Storage.Wal.to_model (wal_records entries) = model_log))

(* --- heap tables ------------------------------------------------------------ *)

let students () =
  Relational.Relation.of_list
    (Relational.Schema.make
       [ ("sid", V.TInt); ("sname", V.TString); ("gpa", V.TFloat); ("grad", V.TBool) ])
    [
      [ V.Int 1; V.String "codd"; V.Float 4.0; V.Bool true ];
      [ V.Int 2; V.String "ullman, j."; V.Float 3.5; V.Bool false ];
      [ V.Int 3; V.String "papadimitriou"; V.Float 3.9; V.Bool true ];
    ]

let test_heap_relation_roundtrip () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db path in
  let rel = students () in
  Storage.Engine.save_table eng "students" rel;
  Storage.Engine.close eng;
  let eng = Storage.Engine.open_db path in
  let back = Storage.Engine.load_table eng "students" in
  Alcotest.(check bool) "equal relation" true (Relational.Relation.equal rel back);
  Alcotest.(check (list string)) "names" [ "students" ] (Storage.Engine.table_names eng);
  Alcotest.(check bool) "unknown raises" true
    (match Storage.Engine.load_table eng "nope" with
    | _ -> false
    | exception Storage.Engine.Unknown_table _ -> true);
  Storage.Engine.close eng;
  cleanup path

let test_heap_many_pages () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db ~pool_size:4 path in
  let big =
    Relational.Relation.of_list
      (Relational.Schema.make [ ("k", V.TInt); ("pad", V.TString) ])
      (List.init 500 (fun i -> [ V.Int i; V.String (String.make 40 'p') ]))
  in
  Storage.Engine.save_table eng "big" big;
  Storage.Engine.close eng;
  let eng = Storage.Engine.open_db ~pool_size:4 path in
  let back = Storage.Engine.load_table eng "big" in
  Alcotest.(check int) "500 tuples" 500 (Relational.Relation.cardinality back);
  Alcotest.(check bool) "multi-page chain" true
    (Storage.Pager.page_count (Storage.Engine.pager eng) > 5);
  Alcotest.(check bool) "pool stayed bounded" true
    (Storage.Buffer_pool.resident (Storage.Engine.pool eng) <= 4);
  Storage.Engine.close eng;
  cleanup path

let test_heap_replace_table () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db path in
  Storage.Engine.save_table eng "t" (students ());
  let small =
    Relational.Relation.of_list
      (Relational.Schema.make [ ("only", V.TInt) ])
      [ [ V.Int 99 ] ]
  in
  Storage.Engine.save_table eng "t" small;
  Storage.Engine.save_table eng "u" (students ());
  Storage.Engine.close eng;
  let eng = Storage.Engine.open_db path in
  Alcotest.(check (list string)) "both tables" [ "t"; "u" ]
    (List.sort String.compare (Storage.Engine.table_names eng));
  Alcotest.(check bool) "t replaced" true
    (Relational.Relation.equal small (Storage.Engine.load_table eng "t"));
  Storage.Engine.close eng;
  cleanup path

(* --- engine transactions ------------------------------------------------------ *)

let test_engine_commit_persists () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db path in
  let t1 = Storage.Engine.begin_txn eng in
  Storage.Engine.write eng ~txn:t1 "x" 5;
  Storage.Engine.write eng ~txn:t1 "y" 7;
  Storage.Engine.commit eng ~txn:t1;
  Storage.Engine.close eng;
  let eng = Storage.Engine.open_db path in
  Alcotest.(check (list (pair string int))) "persisted" [ ("x", 5); ("y", 7) ]
    (Storage.Engine.items eng);
  Storage.Engine.close eng;
  cleanup path

let test_engine_abort_restores () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db path in
  let t1 = Storage.Engine.begin_txn eng in
  Storage.Engine.write eng ~txn:t1 "x" 5;
  Storage.Engine.commit eng ~txn:t1;
  let t2 = Storage.Engine.begin_txn eng in
  Storage.Engine.write eng ~txn:t2 "x" 50;
  Storage.Engine.write eng ~txn:t2 "z" 1;
  Alcotest.(check int) "dirty read visible pre-abort" 50 (Storage.Engine.read eng "x");
  Storage.Engine.abort eng ~txn:t2;
  Alcotest.(check int) "x restored" 5 (Storage.Engine.read eng "x");
  Alcotest.(check int) "z gone" 0 (Storage.Engine.read eng "z");
  Storage.Engine.close eng;
  let eng = Storage.Engine.open_db path in
  Alcotest.(check (list (pair string int))) "only committed" [ ("x", 5) ]
    (Storage.Engine.items eng);
  Storage.Engine.close eng;
  cleanup path

let test_engine_strict_locks () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db path in
  let t1 = Storage.Engine.begin_txn eng in
  let t2 = Storage.Engine.begin_txn eng in
  Storage.Engine.write eng ~txn:t1 "x" 1;
  Alcotest.(check bool) "t2 blocked on x" true
    (match Storage.Engine.write eng ~txn:t2 "x" 2 with
    | () -> false
    | exception Storage.Engine.Locked ("x", h) -> h = t1);
  Storage.Engine.commit eng ~txn:t1;
  Storage.Engine.write eng ~txn:t2 "x" 2;
  Storage.Engine.commit eng ~txn:t2;
  Alcotest.(check int) "last committer wins" 2 (Storage.Engine.read eng "x");
  Storage.Engine.close eng;
  cleanup path

let test_engine_crash_loses_uncommitted () =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db ~pool_size:2 path in
  let t1 = Storage.Engine.begin_txn eng in
  Storage.Engine.write eng ~txn:t1 "a" 1;
  Storage.Engine.commit eng ~txn:t1;
  let t2 = Storage.Engine.begin_txn eng in
  (* long item names so the chain spans several pages and dirty
     uncommitted pages get stolen (evicted) out of the 2-frame pool *)
  for i = 0 to 59 do
    Storage.Engine.write eng ~txn:t2
      (Printf.sprintf "b%03d_%s" i (String.make 150 'x'))
      (i * 10)
  done;
  let s = Storage.Buffer_pool.stats (Storage.Engine.pool eng) in
  Alcotest.(check bool) "dirty pages were stolen" true
    (s.Storage.Buffer_pool.evictions > 0);
  (* uncommitted data must be undone even though some of it was stolen *)
  Storage.Engine.crash eng;
  let eng = Storage.Engine.open_db path in
  Alcotest.(check (list (pair string int))) "losers rolled back" [ ("a", 1) ]
    (Storage.Engine.items eng);
  (match Storage.Engine.last_recovery eng with
  | Some o ->
      Alcotest.(check (list int)) "t2 is the loser" [ t2 ] o.Storage.Recovery.losers
  | None -> Alcotest.fail "expected a recovery outcome");
  Storage.Engine.close eng;
  cleanup path

(* --- the crash matrix ----------------------------------------------------------

   The workload: four transactions over overlapping items, one of which
   aborts voluntarily.  We run it under a seeded random interleaving
   (per-item write locks, acquired in sorted order — the strict regime of
   Transactions.Recovery.run_and_crash), with the fault budget set to k:
   the k-th durable I/O crashes the engine, possibly mid-WAL-flush
   (leaving a torn tail).  Reopening must then yield EXACTLY the
   committed transactions' writes of the surviving log, in log order —
   computed independently via Transactions.Recovery.committed_state over
   the model image of that log. *)

type fin = Fcommit | Fabort

let matrix_specs =
  [
    (1, [ ("x", 11); ("y", 12); ("pad1", 100) ], Fcommit);
    (2, [ ("y", 22); ("z", 23) ], Fcommit);
    (3, [ ("x", 31); ("w", 32); ("pad2", 300) ], Fabort);
    (4, [ ("z", 41); ("w", 42) ], Fcommit);
  ]

(* drive the workload against the engine; returns `Completed or `Crashed *)
let run_workload ?crash_after ~seed ~pool_size path =
  let rng = Support.Rng.create seed in
  match Storage.Engine.open_db ~pool_size ?crash_after path with
  | exception Storage.Fault.Crash _ -> `Crashed
  | eng ->
  let states = Hashtbl.create 8 in
  List.iter
    (fun (t, writes, fin) ->
      let writes = List.sort (fun (a, _) (b, _) -> String.compare a b) writes in
      Hashtbl.replace states t (`Not_started, writes, fin))
    matrix_specs;
  let txns = List.map (fun (t, _, _) -> t) matrix_specs in
  let can_progress t =
    match Hashtbl.find states t with
    | `Done, _, _ -> false
    | `Not_started, _, _ -> true
    | `Running, [], _ -> true
    | `Running, (item, _) :: _, _ -> (
        match Storage.Engine.lock_holder eng item with
        | Some holder -> holder = t
        | None -> true)
  in
  let step t =
    match Hashtbl.find states t with
    | `Not_started, writes, fin ->
        ignore (Storage.Engine.begin_txn ~id:t eng : int);
        Hashtbl.replace states t (`Running, writes, fin)
    | `Running, [], fin ->
        (match fin with
        | Fcommit -> Storage.Engine.commit eng ~txn:t
        | Fabort -> Storage.Engine.abort eng ~txn:t);
        Hashtbl.replace states t (`Done, [], fin)
    | `Running, (item, v) :: rest, fin ->
        Storage.Engine.write eng ~txn:t item v;
        Hashtbl.replace states t (`Running, rest, fin)
    | `Done, _, _ -> ()
  in
  try
    let rec loop () =
      let runnable = List.filter can_progress txns in
      match runnable with
      | [] -> ()
      | _ ->
          step (List.nth runnable (Support.Rng.int rng (List.length runnable)));
          loop ()
    in
    loop ();
    Storage.Engine.close eng;
    `Completed
  with Storage.Fault.Crash _ ->
    Storage.Engine.crash eng;
    `Crashed

(* The invariant: the reopened database holds exactly the committed state
   of the surviving log, as computed by the in-memory model. *)
let check_committed_state ~what path =
  let entries = Storage.Wal.read_entries (Storage.Engine.wal_path path) in
  let model_log = Storage.Wal.to_model (wal_records entries) in
  let expected =
    R.committed_state model_log
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.sort compare
  in
  let eng = Storage.Engine.open_db path in
  let actual = Storage.Engine.items eng in
  (match Storage.Engine.last_recovery eng with
  | Some o ->
      Alcotest.(check (list int))
        (what ^ ": winners agree with model")
        (R.winners model_log) o.Storage.Recovery.winners
  | None -> ());
  Storage.Engine.close eng;
  Alcotest.(check (list (pair string int))) (what ^ ": committed state") expected actual

let test_crash_matrix () =
  let seed = 1995 in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    let path = fresh_path () in
    (match run_workload ~crash_after:!k ~seed ~pool_size:2 path with
    | `Completed ->
        (* budget never exhausted: the whole workload fits in k I/Os *)
        continue := false
    | `Crashed -> ());
    check_committed_state ~what:(Printf.sprintf "crash at io %d" !k) path;
    cleanup path;
    incr k;
    if !k > 500 then Alcotest.fail "crash matrix did not terminate"
  done;
  (* sanity: the matrix exercised a meaningful number of crash points *)
  Alcotest.(check bool) "several crash points" true (!k > 10)

let test_crash_during_recovery () =
  let seed = 77 in
  (* crash mid-workload at a point that leaves in-flight transactions *)
  let first_crash = 9 in
  let path = fresh_path () in
  (match run_workload ~crash_after:first_crash ~seed ~pool_size:2 path with
  | `Crashed -> ()
  | `Completed -> Alcotest.fail "expected the workload to crash");
  (* now crash recovery itself at every I/O until it survives *)
  let k = ref 0 in
  let recovered = ref false in
  while not !recovered do
    (match Storage.Engine.open_db ~crash_after:!k path with
    | eng ->
        (* the open (and its recovery) survived; close may still hit the
           remaining fault budget — that is just one more crash *)
        (try Storage.Engine.close eng
         with Storage.Fault.Crash _ -> Storage.Engine.crash eng);
        recovered := true
    | exception Storage.Fault.Crash _ -> ());
    incr k;
    if !k > 200 then Alcotest.fail "recovery never survived"
  done;
  check_committed_state ~what:"after crashed recoveries" path;
  Alcotest.(check bool) "recovery was crashed at least once" true (!k > 1);
  cleanup path

(* every interleaving seed, no crash: engine state = model committed state *)
let prop_engine_matches_model_no_crash =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"engine = model on crash-free runs"
       (QCheck2.Gen.int_range 0 100_000) (fun seed ->
         let path = fresh_path () in
         let r = run_workload ~seed ~pool_size:3 path in
         let entries = Storage.Wal.read_entries (Storage.Engine.wal_path path) in
         let model_log = Storage.Wal.to_model (wal_records entries) in
         let expected =
           R.committed_state model_log
           |> List.filter (fun (_, v) -> v <> 0)
           |> List.sort compare
         in
         let eng = Storage.Engine.open_db path in
         let actual = Storage.Engine.items eng in
         Storage.Engine.close eng;
         cleanup path;
         r = `Completed && actual = expected))

(* --- offline WAL verifier: the engine-correctness contract -------------------

   Wal_lint's claim is that its errors are protocol violations the engine
   can never commit: any log the engine produces — including survivor
   logs left by injected crashes — lints with zero errors, while a single
   mutated byte in the durable prefix always draws at least one
   diagnostic. *)

let wal_lint_errors path =
  List.filter Analysis.Diagnostic.(fun d -> d.severity = Error)
    (Analysis.Wal_lint.lint_file (Storage.Engine.wal_path path))

let show_diags diags =
  String.concat "; "
    (List.map (fun d -> d.Analysis.Diagnostic.code) diags)

(* crash-anywhere: the raw survivor log, as the crash left it, is
   error-free (torn tails and live losers are warnings/infos) *)
let prop_survivor_log_lints_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"survivor wal lints with zero errors"
       QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 40))
       (fun (seed, crash_after) ->
         let path = fresh_path () in
         ignore (run_workload ~crash_after ~seed ~pool_size:3 path
                 : [ `Completed | `Crashed ]);
         let errors = wal_lint_errors path in
         cleanup path;
         if errors <> [] then
           QCheck2.Test.fail_reportf "survivor log has errors: %s"
             (show_diags errors)
         else true))

(* silent-fault sweep: torn writes and bit flips can leave genuine
   mid-log corruption (a WL008 *true* positive), so the contract is
   stated after recovery has repaired the log: reopen, then lint *)
let prop_recovered_log_lints_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"recovered wal lints with zero errors"
       (QCheck2.Gen.int_range 0 100_000) (fun seed ->
         let specs =
           [| ""; "torn=0.05"; "flip=0.05"; "crash=9,torn=0.04";
              "torn=0.03,flip=0.03,eio=0.08" |]
         in
         let spec0 = specs.(seed mod Array.length specs) in
         let spec =
           if spec0 = "" then "" else Printf.sprintf "%s,seed=%d" spec0 seed
         in
         let path = fresh_path () in
         let faults = Storage.Fault.spec_of_string spec in
         let programs =
           Transactions.Workload.generate (Support.Rng.create seed)
             {
               Transactions.Workload.txns = 4;
               ops_per_txn = 5;
               items = 6;
               skew = 0.5;
               write_ratio = 0.6;
             }
         in
         (match Storage.Engine.open_db ~pool_size:4 ~faults path with
         | eng ->
             let config = { Storage.Executor.default_config with seed } in
             let stats = Storage.Executor.run ~config eng programs in
             if stats.Storage.Executor.crashed = None then (
               try Storage.Engine.close eng
               with Storage.Fault.Crash _ -> Storage.Engine.crash eng)
         | exception Storage.Fault.Crash _ -> ());
         (* restart recovery truncates damage and resolves the losers *)
         (match Storage.Engine.open_db path with
         | eng -> Storage.Engine.close eng
         | exception Storage.Fault.Crash _ -> assert false);
         let errors = wal_lint_errors path in
         cleanup path;
         if errors <> [] then
           QCheck2.Test.fail_reportf "recovered log has errors: %s"
             (show_diags errors)
         else true))

(* tamper detection: CRC framing means no single-byte mutation of the
   durable prefix escapes the verifier *)
let prop_mutated_byte_is_detected =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"one mutated wal byte draws a diagnostic"
       QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 1_000_000))
       (fun (seed, pos_seed) ->
         let path = fresh_path () in
         (match run_workload ~seed ~pool_size:3 path with
         | `Completed -> ()
         | `Crashed -> assert false);
         let wal = Storage.Engine.wal_path path in
         let clean = Analysis.Wal_lint.lint_file wal in
         let image =
           let ic = open_in_bin wal in
           let n = in_channel_length ic in
           let s = really_input_string ic n in
           close_in ic;
           s
         in
         let pos = pos_seed mod String.length image in
         let mutated = Bytes.of_string image in
         Bytes.set mutated pos
           (Char.chr (Char.code image.[pos] lxor 0x40));
         let diags = Analysis.Wal_lint.lint (Storage.Wal.scan_report (Bytes.to_string mutated)) in
         cleanup path;
         if clean <> [] then
           QCheck2.Test.fail_reportf "log not clean before mutation: %s"
             (show_diags clean)
         else if diags = [] then
           QCheck2.Test.fail_reportf "mutation at byte %d went undetected" pos
         else true))

let test_wal_truncated_at_open () =
  let path = fresh_path () in
  let wal = Storage.Engine.wal_path path in
  let eng = Storage.Engine.open_db path in
  let txn = Storage.Engine.begin_txn eng in
  Storage.Engine.write eng ~txn "x" 7;
  Storage.Engine.commit eng ~txn;
  Storage.Engine.close eng;
  (* simulate a torn append *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 wal in
  output_string oc "\x01\x02\x03\x04\x05";
  close_out oc;
  let before = Storage.Wal.report_file wal in
  Alcotest.(check int) "scan sees the torn bytes" 5
    (before.Storage.Wal.total_bytes - before.Storage.Wal.clean_bytes);
  Alcotest.(check bool) "a torn tail never resyncs" true
    (before.Storage.Wal.resync = None);
  let log, _ = Storage.Wal.open_log wal in
  Alcotest.(check int) "open reports the truncated tail" 5
    (Storage.Wal.truncated_at_open log);
  Storage.Wal.close log;
  let after = Storage.Wal.report_file wal in
  Alcotest.(check int) "open physically truncated the tail" 0
    (after.Storage.Wal.total_bytes - after.Storage.Wal.clean_bytes);
  let log2, _ = Storage.Wal.open_log wal in
  Alcotest.(check int) "clean log truncates nothing" 0
    (Storage.Wal.truncated_at_open log2);
  Storage.Wal.close log2;
  cleanup path

let test_scan_report_resync_classification () =
  let frame r = Storage.Wal.frame_of_record r in
  let f1 = frame (Storage.Wal.Begin 1) in
  let f2 = frame (Storage.Wal.Commit 1) in
  (* mid-log corruption: smash the first frame, the second survives *)
  let img = Bytes.of_string (f1 ^ f2) in
  Bytes.set img 9 '\xff';
  let r = Storage.Wal.scan_report (Bytes.to_string img) in
  Alcotest.(check int) "valid prefix ends at the damage" 0
    r.Storage.Wal.clean_bytes;
  (match r.Storage.Wal.resync with
  | Some { Storage.Wal.resync_at; resync_records } ->
      Alcotest.(check int) "resync at the second frame" (String.length f1)
        resync_at;
      Alcotest.(check int) "one record decodes after resync" 1
        (List.length resync_records)
  | None -> Alcotest.fail "expected a resync after mid-log damage");
  (* torn tail: trailing garbage after intact frames never resyncs *)
  let torn = Storage.Wal.scan_report (f1 ^ f2 ^ "\x00\x00\x00") in
  Alcotest.(check int) "intact prefix survives"
    (String.length f1 + String.length f2)
    torn.Storage.Wal.clean_bytes;
  Alcotest.(check bool) "no resync in a torn tail" true
    (torn.Storage.Wal.resync = None)

(* --- recovery unit tests (algorithm against a plain hash table) -------------- *)

let test_recovery_analysis () =
  let entries, _ =
    Storage.Wal.scan
      (String.concat ""
         (List.map Storage.Wal.frame_of_record
            [
              Storage.Wal.Begin 1;
              Storage.Wal.Commit 1;
              Storage.Wal.Checkpoint;
              Storage.Wal.Begin 2;
              Storage.Wal.Begin 3;
              Storage.Wal.Abort 3;
              Storage.Wal.Begin 4;
              Storage.Wal.Commit 4;
            ]))
  in
  let ckpt, winners, losers = Storage.Recovery.analyze entries in
  Alcotest.(check bool) "found checkpoint" true (ckpt <> None);
  Alcotest.(check (list int)) "winners" [ 1; 4 ] winners;
  Alcotest.(check (list int)) "losers: begun, not ended" [ 2 ] losers

let test_recovery_redo_undo_counts () =
  let w txn item before after =
    Storage.Wal.Write { txn; item; before; after; compensation = false }
  in
  let entries, _ =
    Storage.Wal.scan
      (String.concat ""
         (List.map Storage.Wal.frame_of_record
            [
              Storage.Wal.Begin 1; w 1 "x" 0 5; Storage.Wal.Commit 1;
              Storage.Wal.Begin 2; w 2 "x" 5 9; w 2 "y" 0 3;
            ]))
  in
  let store : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  (* (value, page-lsn) per item; everything starts cold, lsn -1 *)
  let appended = ref [] in
  let next = ref 10_000 in
  let outcome =
    Storage.Recovery.run ~entries
      ~read:(fun item ->
        match Hashtbl.find_opt store item with Some (v, _) -> v | None -> 0)
      ~write:(fun ~lsn item v ->
        match Hashtbl.find_opt store item with
        | Some (_, l) when l >= lsn -> false
        | _ ->
            Hashtbl.replace store item (v, lsn);
            true)
      ~log:(fun r ->
        appended := r :: !appended;
        incr next;
        !next)
  in
  Alcotest.(check (list int)) "winners" [ 1 ] outcome.Storage.Recovery.winners;
  Alcotest.(check (list int)) "losers" [ 2 ] outcome.Storage.Recovery.losers;
  Alcotest.(check int) "redo all three writes" 3 outcome.Storage.Recovery.redo_applied;
  Alcotest.(check int) "undo both loser writes" 2 outcome.Storage.Recovery.undone;
  Alcotest.(check int) "x back to committed" 5
    (fst (Hashtbl.find store "x"));
  Alcotest.(check int) "y back to absent" 0
    (fst (Hashtbl.find store "y"));
  (* two compensations + one abort were logged *)
  let comps, aborts =
    List.partition
      (function Storage.Wal.Write { compensation = true; _ } -> true | _ -> false)
      !appended
  in
  Alcotest.(check int) "compensations" 2 (List.length comps);
  Alcotest.(check bool) "abort logged" true
    (List.exists (function Storage.Wal.Abort 2 -> true | _ -> false) aborts)

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec corrupt" `Quick test_codec_corrupt;
    Alcotest.test_case "page slots" `Quick test_page_slots;
    Alcotest.test_case "page full" `Quick test_page_full;
    Alcotest.test_case "page lsn monotone" `Quick test_page_lsn_monotone;
    Alcotest.test_case "page crc" `Quick test_page_crc;
    Alcotest.test_case "pager roundtrip" `Quick test_pager_roundtrip;
    Alcotest.test_case "pager detects corruption" `Quick test_pager_detects_corruption;
    Alcotest.test_case "pager rejects garbage" `Quick test_pager_rejects_garbage;
    Alcotest.test_case "pool counters and lru" `Quick test_pool_counters_and_lru;
    Alcotest.test_case "pool dirty flush and wal barrier" `Quick
      test_pool_dirty_flush_and_barrier;
    Alcotest.test_case "pool exhausted" `Quick test_pool_exhausted;
    Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
    prop_wal_model_roundtrip;
    Alcotest.test_case "heap relation roundtrip" `Quick test_heap_relation_roundtrip;
    Alcotest.test_case "heap many pages" `Quick test_heap_many_pages;
    Alcotest.test_case "heap replace table" `Quick test_heap_replace_table;
    Alcotest.test_case "engine commit persists" `Quick test_engine_commit_persists;
    Alcotest.test_case "engine abort restores" `Quick test_engine_abort_restores;
    Alcotest.test_case "engine strict locks" `Quick test_engine_strict_locks;
    Alcotest.test_case "engine crash loses uncommitted" `Quick
      test_engine_crash_loses_uncommitted;
    Alcotest.test_case "recovery analysis" `Quick test_recovery_analysis;
    Alcotest.test_case "recovery redo/undo counts" `Quick test_recovery_redo_undo_counts;
    Alcotest.test_case "crash matrix" `Slow test_crash_matrix;
    Alcotest.test_case "crash during recovery" `Quick test_crash_during_recovery;
    prop_engine_matches_model_no_crash;
    Alcotest.test_case "wal truncated_at_open" `Quick test_wal_truncated_at_open;
    Alcotest.test_case "wal resync classification" `Quick
      test_scan_report_resync_classification;
    prop_survivor_log_lints_clean;
    prop_recovered_log_lints_clean;
    prop_mutated_byte_is_detected;
  ]
