(* Tests for the Datalog engine: parser, safety, stratification, the three
   evaluation strategies and their agreement, magic sets, and CQ
   containment/minimization. *)

module D = Datalog
module Ts = D.Facts.Tuple_set
open Relational.Value

let parse = D.Parser.parse_program
let pquery = D.Parser.parse_query

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    if i + nn > nh then false
    else if String.equal (String.sub haystack i nn) needle then true
    else loop (i + 1)
  in
  loop 0

let tuples_of_pairs pairs =
  List.fold_left
    (fun acc (a, b) -> Ts.add [| Int a; Int b |] acc)
    Ts.empty pairs

let check_tuples msg expected actual =
  Alcotest.(check bool)
    (msg ^ " (got " ^ string_of_int (Ts.cardinal actual) ^ ")")
    true
    (Ts.equal expected actual)

(* --- parser ---------------------------------------------------------------- *)

let test_parse_basic () =
  let prog = parse "path(X, Y) :- edge(X, Y).\npath(X,Y) :- edge(X,Z), path(Z,Y)." in
  Alcotest.(check int) "two rules" 2 (List.length prog);
  Alcotest.(check string) "roundtrip"
    "path(X, Y) :- edge(X, Y)."
    (D.Ast.rule_to_string (List.hd prog))

let test_parse_constants () =
  let r = D.Parser.parse_rule {|p(X) :- q(X, 42, -7, 3.5, "hello world", abc, true).|} in
  match r.D.Ast.body with
  | [ D.Ast.Pos a ] ->
      Alcotest.(check int) "seven args" 7 (List.length a.D.Ast.args);
      Alcotest.(check bool) "int" true (List.nth a.D.Ast.args 1 = D.Ast.Const (Int 42));
      Alcotest.(check bool) "negative int" true
        (List.nth a.D.Ast.args 2 = D.Ast.Const (Int (-7)));
      Alcotest.(check bool) "float" true (List.nth a.D.Ast.args 3 = D.Ast.Const (Float 3.5));
      Alcotest.(check bool) "string" true
        (List.nth a.D.Ast.args 4 = D.Ast.Const (String "hello world"));
      Alcotest.(check bool) "bare ident is string const" true
        (List.nth a.D.Ast.args 5 = D.Ast.Const (String "abc"));
      Alcotest.(check bool) "bool" true (List.nth a.D.Ast.args 6 = D.Ast.Const (Bool true))
  | _ -> Alcotest.fail "expected one positive literal"

let test_parse_negation () =
  let r = D.Parser.parse_rule "p(X) :- q(X), not r(X)." in
  Alcotest.(check int) "two literals" 2 (List.length r.D.Ast.body);
  Alcotest.(check bool) "second is negative" true
    (match List.nth r.D.Ast.body 1 with
    | D.Ast.Neg _ -> true
    | D.Ast.Pos _ | D.Ast.Cmp _ -> false)

let test_parse_comments () =
  let prog = parse "% a comment\np(X) :- q(X). # another\n" in
  Alcotest.(check int) "one rule" 1 (List.length prog)

let test_parse_facts () =
  let prog = parse "edge(1, 2). edge(2, 3)." in
  let facts = D.Facts.of_program_facts prog in
  Alcotest.(check int) "two facts" 2 (D.Facts.cardinality facts "edge")

let test_parse_query () =
  let q = pquery "?- path(1, X)." in
  Alcotest.(check string) "query" "path(1, X)" (D.Ast.atom_to_string q);
  let q2 = pquery "path(1, X)" in
  Alcotest.(check string) "bare query" "path(1, X)" (D.Ast.atom_to_string q2)

let test_parse_errors () =
  let bad input =
    match parse input with
    | _ -> false
    | exception D.Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "missing dot" true (bad "p(X) :- q(X)");
  Alcotest.(check bool) "unterminated string" true (bad {|p("x|});
  Alcotest.(check bool) "bad token" true (bad "p(X) & q(X).");
  Alcotest.(check bool) "missing paren" true (bad "p(X :- q(X).")

let test_parse_error_position () =
  match parse "p(X) :- q(X).\np(Y) :- ." with
  | _ -> Alcotest.fail "expected parse error"
  | exception D.Parser.Parse_error msg ->
      Alcotest.(check bool) "mentions line 2" true (contains msg "line 2")

(* --- safety and stratification ------------------------------------------------ *)

let test_safety_ok () =
  D.Checks.check_safety D.Workloads.transitive_closure;
  Alcotest.(check bool) "safe" true (D.Checks.is_safe D.Workloads.transitive_closure)

let test_safety_head_var () =
  let prog = parse "p(X, Y) :- q(X)." in
  Alcotest.(check bool) "unsafe head" false (D.Checks.is_safe prog)

let test_safety_negated_var () =
  let prog = parse "p(X) :- q(X), not r(X, Y)." in
  Alcotest.(check bool) "unsafe negation" false (D.Checks.is_safe prog)

let test_safety_arity () =
  let prog = parse "p(X) :- q(X). p(X, Y) :- q(X), q(Y)." in
  Alcotest.(check bool) "inconsistent arity" false (D.Checks.is_safe prog)

let test_stratify_positive_single () =
  let strata = D.Checks.stratify D.Workloads.transitive_closure in
  Alcotest.(check int) "one stratum" 1 (List.length strata)

let test_stratify_negation () =
  let strata = D.Checks.stratify D.Workloads.reachable_negation in
  Alcotest.(check int) "two strata" 2 (List.length strata);
  (* unreach must be in the later stratum *)
  let last = List.nth strata (List.length strata - 1) in
  Alcotest.(check (list string)) "unreach last" [ "unreach" ]
    (List.sort_uniq String.compare (List.map D.Ast.head_pred last))

let test_not_stratifiable () =
  let prog = parse "p(X) :- q(X), not p(X)." in
  Alcotest.(check bool) "p through not p" true
    (match D.Checks.stratify prog with
    | _ -> false
    | exception D.Checks.Not_stratifiable _ -> true)

let test_win_move_not_stratifiable () =
  Alcotest.(check bool) "win/move negation in recursion" true
    (match D.Checks.stratify D.Workloads.win_move with
    | _ -> false
    | exception D.Checks.Not_stratifiable _ -> true)

let test_sccs_order () =
  let prog = parse "a(X) :- b(X). b(X) :- c(X). c(X) :- base(X)." in
  let sccs = D.Checks.sccs prog in
  let pos p =
    let rec find i = function
      | [] -> -1
      | comp :: rest -> if List.mem p comp then i else find (i + 1) rest
    in
    find 0 sccs
  in
  Alcotest.(check bool) "callees before callers" true
    (pos "base" < pos "c" && pos "c" < pos "b" && pos "b" < pos "a")

let test_is_recursive () =
  Alcotest.(check bool) "tc recursive" true
    (D.Checks.is_recursive D.Workloads.transitive_closure);
  Alcotest.(check bool) "nonrecursive" false
    (D.Checks.is_recursive (parse "p(X) :- q(X)."))

(* --- evaluation ------------------------------------------------------------------ *)

let tc_expected_chain n =
  (* path(i,j) for all i < j in a 0..n chain *)
  let pairs = ref [] in
  for i = 0 to n do
    for j = i + 1 to n do
      pairs := (i, j) :: !pairs
    done
  done;
  tuples_of_pairs !pairs

let test_naive_tc_chain () =
  let edb = D.Workloads.chain ~n:6 in
  let result = D.Naive.eval D.Workloads.transitive_closure edb in
  check_tuples "naive tc" (tc_expected_chain 6) (D.Facts.get result "path")

let test_seminaive_tc_chain () =
  let edb = D.Workloads.chain ~n:6 in
  let result = D.Seminaive.eval D.Workloads.transitive_closure edb in
  check_tuples "seminaive tc" (tc_expected_chain 6) (D.Facts.get result "path")

let test_tc_cycle () =
  let edb = D.Workloads.cycle ~n:5 in
  let result = D.Seminaive.eval D.Workloads.transitive_closure edb in
  (* every pair reachable: 5 * 5 *)
  Alcotest.(check int) "all pairs on a cycle" 25
    (D.Facts.cardinality result "path")

let test_seminaive_fewer_derivations () =
  let edb = D.Workloads.chain ~n:20 in
  let _, naive = D.Naive.eval_with_stats D.Workloads.transitive_closure edb in
  let _, semi = D.Seminaive.eval_with_stats D.Workloads.transitive_closure edb in
  Alcotest.(check bool)
    (Printf.sprintf "seminaive derives less (naive %d vs semi %d)"
       naive.D.Naive.derivations semi.D.Naive.derivations)
    true
    (semi.D.Naive.derivations < naive.D.Naive.derivations)

let test_same_generation () =
  let edb = D.Workloads.binary_tree ~depth:3 in
  let result = D.Seminaive.eval D.Workloads.same_generation edb in
  let sg = D.Facts.get result "sg" in
  (* siblings are same-generation *)
  Alcotest.(check bool) "siblings" true (Ts.mem [| Int 8; Int 9 |] sg);
  (* nodes at different depths are not *)
  Alcotest.(check bool) "different depth" false (Ts.mem [| Int 2; Int 8 |] sg)

let test_stratified_negation_eval () =
  let edb = D.Workloads.chain ~n:3 in
  let result = D.Seminaive.eval D.Workloads.reachable_negation edb in
  let unreach = D.Facts.get result "unreach" in
  (* 0 cannot be reached from 3 *)
  Alcotest.(check bool) "3 cannot reach 0" true (Ts.mem [| Int 3; Int 0 |] unreach);
  Alcotest.(check bool) "0 reaches 3" false (Ts.mem [| Int 0; Int 3 |] unreach);
  (* no vertex reaches itself on a chain *)
  Alcotest.(check bool) "self unreachable" true (Ts.mem [| Int 1; Int 1 |] unreach)

let test_facts_in_program () =
  let prog = parse {|
    edge(1, 2). edge(2, 3).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  |} in
  let result = D.Seminaive.eval prog D.Facts.empty in
  Alcotest.(check int) "three paths" 3 (D.Facts.cardinality result "path")

let test_nonground_fact_rejected () =
  (* the safety check already rejects a rule whose head variable has no
     positive body occurrence, which covers non-ground facts *)
  Alcotest.(check bool) "variable in fact" true
    (match D.Naive.eval (parse "p(X).") D.Facts.empty with
    | _ -> false
    | exception (Invalid_argument _ | D.Checks.Unsafe_rule _) -> true)

let test_query_filtering () =
  let edb = D.Workloads.chain ~n:5 in
  let answers =
    D.Seminaive.query D.Workloads.transitive_closure edb (pquery "path(0, X)")
  in
  Alcotest.(check int) "five targets" 5 (Ts.cardinal answers)

(* --- comparison built-ins ----------------------------------------------------- *)

let test_comparison_parse_roundtrip () =
  let r = D.Parser.parse_rule "up(X, Y) :- edge(X, Y), X < Y, Y != 5." in
  Alcotest.(check string) "roundtrip"
    "up(X, Y) :- edge(X, Y), X < Y, Y <> 5."
    (D.Ast.rule_to_string r);
  Alcotest.(check int) "three literals" 3 (List.length r.D.Ast.body)

let test_comparison_eval () =
  let prog = parse "edge(1,2). edge(2,1). edge(3,3).\nup(X, Y) :- edge(X, Y), X < Y." in
  let result = D.Seminaive.eval prog D.Facts.empty in
  check_tuples "only ascending edge" (tuples_of_pairs [ (1, 2) ])
    (D.Facts.get result "up")

let test_comparison_with_constant () =
  let prog = parse "n(1). n(2). n(3).\nbig(X) :- n(X), X >= 2." in
  let result = D.Naive.eval prog D.Facts.empty in
  Alcotest.(check int) "two bigs" 2 (D.Facts.cardinality result "big")

let test_comparison_safety () =
  (* a comparison variable must be bound by a positive atom *)
  let prog = parse "p(X) :- q(X), X < Y." in
  Alcotest.(check bool) "unbound comparison var" false (D.Checks.is_safe prog)

let test_comparison_in_recursion () =
  (* bounded transitive closure: only walk ascending edges *)
  let prog = parse {|
    edge(1,2). edge(2,3). edge(3,2). edge(3,4).
    up(X, Y) :- edge(X, Y), X < Y.
    upchain(X, Y) :- up(X, Y).
    upchain(X, Y) :- up(X, Z), upchain(Z, Y).
  |} in
  let naive = D.Naive.eval prog D.Facts.empty in
  let semi = D.Seminaive.eval prog D.Facts.empty in
  Alcotest.(check bool) "naive = seminaive with comparisons" true
    (D.Facts.equal naive semi);
  check_tuples "ascending closure"
    (tuples_of_pairs [ (1, 2); (2, 3); (3, 4); (1, 3); (1, 4); (2, 4) ])
    (D.Facts.get semi "upchain")

let test_comparison_in_magic () =
  let prog = parse {|
    edge(1,2). edge(2,3). edge(3,2). edge(3,4).
    upchain(X, Y) :- edge(X, Y), X < Y.
    upchain(X, Y) :- edge(X, Z), X < Z, upchain(Z, Y).
  |} in
  let q = pquery "upchain(1, X)" in
  let semi = D.Seminaive.query prog D.Facts.empty q in
  let magic = D.Magic.query prog D.Facts.empty q in
  Alcotest.(check bool) "magic handles comparisons" true
    (Ts.equal semi magic)

let test_comparison_provenance () =
  let prog = parse "n(1). n(5).\nbig(X) :- n(X), X > 3." in
  let result, store = D.Provenance.eval prog D.Facts.empty in
  Alcotest.(check int) "one big" 1 (D.Facts.cardinality result "big");
  Alcotest.(check bool) "proof exists" true
    (D.Provenance.proof_of store "big" [| Int 5 |] <> None)

(* --- magic sets ------------------------------------------------------------------- *)

let test_magic_rewrite_shape () =
  let magic_prog, magic_query =
    D.Magic.rewrite D.Workloads.transitive_closure (pquery "path(0, X)")
  in
  Alcotest.(check string) "query renamed" "path#bf(0, X)"
    (D.Ast.atom_to_string magic_query);
  (* the rewritten program must contain a magic seed fact *)
  Alcotest.(check bool) "has seed" true
    (List.exists
       (fun r -> r.D.Ast.body = [] && D.Ast.head_pred r = "m#path#bf")
       magic_prog)

let test_magic_tc_point_query () =
  let edb = D.Workloads.chain ~n:10 in
  let q = pquery "path(0, X)" in
  let expected = D.Seminaive.query D.Workloads.transitive_closure edb q in
  let got = D.Magic.query D.Workloads.transitive_closure edb q in
  check_tuples "magic agrees with seminaive" expected got

let test_magic_restricts_work () =
  (* on two disconnected chains, magic only explores the queried one *)
  let edb1 = D.Workloads.chain ~n:30 in
  let shifted =
    D.Facts.add_list edb1 "edge"
      (List.init 30 (fun i -> [ Int (100 + i); Int (101 + i) ]))
  in
  let q = pquery "path(0, 5)" in
  let _, semi =
    D.Seminaive.eval_with_stats D.Workloads.transitive_closure_left shifted
  in
  let _, magic =
    D.Magic.query_with_stats D.Workloads.transitive_closure_left shifted q
  in
  Alcotest.(check bool)
    (Printf.sprintf "magic derives less (semi %d vs magic %d)"
       semi.D.Naive.derivations magic.D.Naive.derivations)
    true
    (magic.D.Naive.derivations < semi.D.Naive.derivations)

let test_magic_same_generation () =
  let edb = D.Workloads.binary_tree ~depth:3 in
  let q = pquery "sg(8, X)" in
  let expected = D.Seminaive.query D.Workloads.same_generation edb q in
  let got = D.Magic.query D.Workloads.same_generation edb q in
  check_tuples "magic sg" expected got

let test_magic_all_free_query () =
  let edb = D.Workloads.chain ~n:5 in
  let q = pquery "path(X, Y)" in
  let expected = D.Seminaive.query D.Workloads.transitive_closure edb q in
  let got = D.Magic.query D.Workloads.transitive_closure edb q in
  check_tuples "all-free magic" expected got

let test_magic_rejects_negation () =
  Alcotest.(check bool) "negation unsupported" true
    (match D.Magic.rewrite D.Workloads.reachable_negation (pquery "unreach(0, X)") with
    | _ -> false
    | exception D.Magic.Unsupported _ -> true)

let test_magic_edb_query () =
  let edb = D.Workloads.chain ~n:5 in
  let got = D.Magic.query D.Workloads.transitive_closure edb (pquery "edge(0, X)") in
  Alcotest.(check int) "edb point query" 1 (Ts.cardinal got)

(* --- containment -------------------------------------------------------------------- *)

let cq_of s = D.Containment.of_rule (D.Parser.parse_rule s)

let test_containment_basic () =
  (* q1: paths of length 2; q2: edges-with-any-pair — q1 ⊆ q2? *)
  let q1 = cq_of "q(X, Y) :- e(X, Z), e(Z, Y)." in
  let q2 = cq_of "q(X, Y) :- e(X, Z2), e(Z3, Y)." in
  Alcotest.(check bool) "q1 in q2" true (D.Containment.contained q1 q2);
  Alcotest.(check bool) "q2 not in q1" false (D.Containment.contained q2 q1)

let test_containment_reflexive () =
  let q = cq_of "q(X, Y) :- e(X, Z), e(Z, Y)." in
  Alcotest.(check bool) "q in q" true (D.Containment.contained q q)

let test_containment_constants () =
  let q1 = cq_of "q(X) :- e(X, 5)." in
  let q2 = cq_of "q(X) :- e(X, Y)." in
  Alcotest.(check bool) "specific in general" true (D.Containment.contained q1 q2);
  Alcotest.(check bool) "general not in specific" false (D.Containment.contained q2 q1)

let test_minimize_redundant_atom () =
  (* e(X,Y), e(X,Z) minimizes to e(X,Y) modulo head use *)
  let q = cq_of "q(X) :- e(X, Y), e(X, Z)." in
  let m = D.Containment.minimize q in
  Alcotest.(check int) "one atom" 1 (List.length m.D.Containment.body);
  Alcotest.(check bool) "still equivalent" true (D.Containment.equivalent q m)

let test_minimize_core_stays () =
  let q = cq_of "q(X, Y) :- e(X, Z), e(Z, Y)." in
  let m = D.Containment.minimize q in
  Alcotest.(check int) "nothing to drop" 2 (List.length m.D.Containment.body)

let test_of_rule_rejects_negation () =
  Alcotest.(check bool) "negation rejected" true
    (match cq_of "q(X) :- e(X, Y), not f(Y)." with
    | _ -> false
    | exception D.Containment.Not_conjunctive _ -> true)

(* --- interop ---------------------------------------------------------------------- *)

let test_facts_of_database () =
  let facts = D.Interop.facts_of_database Fixtures.university in
  Alcotest.(check int) "students" 5 (D.Facts.cardinality facts "students");
  Alcotest.(check int) "enrolled" 9 (D.Facts.cardinality facts "enrolled")

let test_datalog_over_relational () =
  (* run TC over the relational graph fixture *)
  let facts = D.Interop.facts_of_database Fixtures.graph_db in
  let result = D.Seminaive.eval D.Workloads.transitive_closure facts in
  Alcotest.(check bool) "1 reaches 4" true
    (Ts.mem [| Int 1; Int 4 |] (D.Facts.get result "path"))

let test_relation_of_tuples () =
  let tuples = tuples_of_pairs [ (1, 2); (3, 4) ] in
  let rel = D.Interop.relation_of_tuples tuples ~columns:[ "a"; "b" ] in
  Alcotest.(check int) "two rows" 2 (Relational.Relation.cardinality rel)

let test_cq_of_algebra () =
  let module A = Relational.Algebra in
  let catalog = A.catalog_of_database Fixtures.university in
  let e =
    A.Project ([ "sname" ], A.Join (A.Rel "students", A.Rel "enrolled"))
  in
  match D.Interop.cq_of_algebra catalog e with
  | Some cq ->
      Alcotest.(check int) "two atoms" 2 (List.length cq.D.Containment.body);
      Alcotest.(check int) "one head term" 1 (List.length cq.D.Containment.head)
  | None -> Alcotest.fail "SPJ expression should convert"

let test_cq_of_algebra_rejects_union () =
  let module A = Relational.Algebra in
  let catalog = A.catalog_of_database Fixtures.university in
  let e = A.Union (A.Rel "students", A.Rel "students") in
  Alcotest.(check bool) "union not conjunctive" true
    (D.Interop.cq_of_algebra catalog e = None)

(* --- property tests ------------------------------------------------------------------ *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let prop_naive_equals_seminaive_tc =
  property 40 "naive = seminaive on random graphs (tc)" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let edb = D.Workloads.random_graph rng ~nodes:8 ~edges:14 in
      let a = D.Naive.eval D.Workloads.transitive_closure edb in
      let b = D.Seminaive.eval D.Workloads.transitive_closure edb in
      D.Facts.equal a b)

let prop_naive_equals_seminaive_negation =
  property 30 "naive = seminaive with stratified negation" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let edb = D.Workloads.random_graph rng ~nodes:6 ~edges:9 in
      let a = D.Naive.eval D.Workloads.reachable_negation edb in
      let b = D.Seminaive.eval D.Workloads.reachable_negation edb in
      D.Facts.equal a b)

let prop_magic_equals_seminaive =
  property 40 "magic = seminaive on point queries" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let edb = D.Workloads.random_graph rng ~nodes:8 ~edges:14 in
      let src = Support.Rng.int rng 8 in
      let q = pquery (Printf.sprintf "path(%d, X)" src) in
      let a = D.Seminaive.query D.Workloads.transitive_closure edb q in
      let b = D.Magic.query D.Workloads.transitive_closure edb q in
      Ts.equal a b)

let prop_tc_variants_agree =
  property 30 "right- and left-linear tc agree" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let edb = D.Workloads.random_graph rng ~nodes:8 ~edges:14 in
      let a = D.Seminaive.eval D.Workloads.transitive_closure edb in
      let b = D.Seminaive.eval D.Workloads.transitive_closure_left edb in
      Ts.equal (D.Facts.get a "path") (D.Facts.get b "path"))

let prop_parser_roundtrip =
  property 30 "print/parse roundtrip on workload programs" seed_gen
    (fun seed ->
      let progs =
        [
          D.Workloads.transitive_closure;
          D.Workloads.same_generation;
          D.Workloads.reachable_negation;
        ]
      in
      let prog = List.nth progs (seed mod List.length progs) in
      let printed = D.Ast.program_to_string prog in
      D.Parser.parse_program printed = prog)

let ( ==> ) a b = (not a) || b

let prop_containment_minimize_sound =
  property 30 "minimization preserves equivalence" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      (* random CQ over binary predicate e with up to 4 atoms *)
      let vars = [| "X"; "Y"; "Z"; "W" |] in
      let n_atoms = 1 + Support.Rng.int rng 4 in
      let body =
        List.init n_atoms (fun _ ->
            D.Ast.atom "e"
              [
                D.Ast.Var (Support.Rng.pick rng vars);
                D.Ast.Var (Support.Rng.pick rng vars);
              ])
      in
      let head = [ D.Ast.Var "X" ] in
      let q = { D.Containment.head; body } in
      (* only test queries whose head variable occurs in the body *)
      List.exists (fun a -> List.mem (D.Ast.Var "X") a.D.Ast.args) body
      ==> (let m = D.Containment.minimize q in
           D.Containment.equivalent q m
           && List.length m.D.Containment.body <= List.length body))

(* a random CQ over the binary [edge] predicate whose head variable is
   guaranteed bound: the first atom always mentions X *)
let random_edge_cq rng =
  let vars = [| "X"; "Y"; "Z"; "W" |] in
  let n_atoms = 1 + Support.Rng.int rng 3 in
  let first =
    D.Ast.atom "edge" [ D.Ast.Var "X"; D.Ast.Var (Support.Rng.pick rng vars) ]
  in
  let rest =
    List.init n_atoms (fun _ ->
        D.Ast.atom "edge"
          [
            D.Ast.Var (Support.Rng.pick rng vars);
            D.Ast.Var (Support.Rng.pick rng vars);
          ])
  in
  { D.Containment.head = [ D.Ast.Var "X" ]; body = first :: rest }

let answers cq edb =
  let rule = D.Containment.to_rule "prop_ans" cq in
  D.Facts.get (D.Seminaive.eval [ rule ] edb) "prop_ans"

(* Not just equivalent as syntax: the minimized query computes the same
   relation on concrete data. *)
let prop_minimize_preserves_answers =
  property 40 "minimize preserves answers on random facts" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let q = random_edge_cq rng in
      let edb = D.Workloads.random_graph rng ~nodes:5 ~edges:8 in
      Ts.equal (answers q edb) (answers (D.Containment.minimize q) edb))

(* Chase-aware minimization may drop more atoms than plain Chandra-Merlin;
   that is only sound on instances satisfying the dependency, so feed it
   functional graphs: edge(i, f(i)) satisfies edge: #0 -> #1. *)
let prop_minimize_under_preserves_answers =
  property 40 "minimize_under preserves answers on FD-satisfying facts"
    seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let q = random_edge_cq rng in
      let fd =
        {
          D.Containment.fd_pred = "edge";
          fd_lhs = [ 0 ];
          fd_rhs = [ 1 ];
        }
      in
      let edb =
        D.Facts.add_list D.Facts.empty "edge"
          (List.init 5 (fun i -> [ Int i; Int (Support.Rng.int rng 5) ]))
      in
      let m = D.Containment.minimize_under [ fd ] q in
      List.length m.D.Containment.body <= List.length q.D.Containment.body
      && Ts.equal (answers q edb) (answers m edb))

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse constants" `Quick test_parse_constants;
    Alcotest.test_case "parse negation" `Quick test_parse_negation;
    Alcotest.test_case "parse comments" `Quick test_parse_comments;
    Alcotest.test_case "parse facts" `Quick test_parse_facts;
    Alcotest.test_case "parse query" `Quick test_parse_query;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "safety ok" `Quick test_safety_ok;
    Alcotest.test_case "unsafe head var" `Quick test_safety_head_var;
    Alcotest.test_case "unsafe negated var" `Quick test_safety_negated_var;
    Alcotest.test_case "inconsistent arity" `Quick test_safety_arity;
    Alcotest.test_case "stratify positive" `Quick test_stratify_positive_single;
    Alcotest.test_case "stratify negation" `Quick test_stratify_negation;
    Alcotest.test_case "not stratifiable" `Quick test_not_stratifiable;
    Alcotest.test_case "win/move not stratifiable" `Quick test_win_move_not_stratifiable;
    Alcotest.test_case "scc order" `Quick test_sccs_order;
    Alcotest.test_case "is_recursive" `Quick test_is_recursive;
    Alcotest.test_case "naive tc chain" `Quick test_naive_tc_chain;
    Alcotest.test_case "seminaive tc chain" `Quick test_seminaive_tc_chain;
    Alcotest.test_case "tc on cycle" `Quick test_tc_cycle;
    Alcotest.test_case "seminaive fewer derivations" `Quick
      test_seminaive_fewer_derivations;
    Alcotest.test_case "same generation" `Quick test_same_generation;
    Alcotest.test_case "stratified negation eval" `Quick test_stratified_negation_eval;
    Alcotest.test_case "facts in program" `Quick test_facts_in_program;
    Alcotest.test_case "non-ground fact rejected" `Quick test_nonground_fact_rejected;
    Alcotest.test_case "query filtering" `Quick test_query_filtering;
    Alcotest.test_case "comparison parse roundtrip" `Quick test_comparison_parse_roundtrip;
    Alcotest.test_case "comparison eval" `Quick test_comparison_eval;
    Alcotest.test_case "comparison with constant" `Quick test_comparison_with_constant;
    Alcotest.test_case "comparison safety" `Quick test_comparison_safety;
    Alcotest.test_case "comparison in recursion" `Quick test_comparison_in_recursion;
    Alcotest.test_case "comparison in magic" `Quick test_comparison_in_magic;
    Alcotest.test_case "comparison provenance" `Quick test_comparison_provenance;
    Alcotest.test_case "magic rewrite shape" `Quick test_magic_rewrite_shape;
    Alcotest.test_case "magic tc point query" `Quick test_magic_tc_point_query;
    Alcotest.test_case "magic restricts work" `Quick test_magic_restricts_work;
    Alcotest.test_case "magic same generation" `Quick test_magic_same_generation;
    Alcotest.test_case "magic all-free query" `Quick test_magic_all_free_query;
    Alcotest.test_case "magic rejects negation" `Quick test_magic_rejects_negation;
    Alcotest.test_case "magic edb query" `Quick test_magic_edb_query;
    Alcotest.test_case "containment basic" `Quick test_containment_basic;
    Alcotest.test_case "containment reflexive" `Quick test_containment_reflexive;
    Alcotest.test_case "containment constants" `Quick test_containment_constants;
    Alcotest.test_case "minimize redundant atom" `Quick test_minimize_redundant_atom;
    Alcotest.test_case "minimize core stays" `Quick test_minimize_core_stays;
    Alcotest.test_case "of_rule rejects negation" `Quick test_of_rule_rejects_negation;
    Alcotest.test_case "facts of database" `Quick test_facts_of_database;
    Alcotest.test_case "datalog over relational" `Quick test_datalog_over_relational;
    Alcotest.test_case "relation of tuples" `Quick test_relation_of_tuples;
    Alcotest.test_case "cq of algebra" `Quick test_cq_of_algebra;
    Alcotest.test_case "cq of algebra rejects union" `Quick
      test_cq_of_algebra_rejects_union;
    prop_naive_equals_seminaive_tc;
    prop_naive_equals_seminaive_negation;
    prop_magic_equals_seminaive;
    prop_tc_variants_agree;
    prop_parser_roundtrip;
    prop_containment_minimize_sound;
    prop_minimize_preserves_answers;
    prop_minimize_under_preserves_answers;
  ]
