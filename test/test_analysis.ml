(* Tests for the static-analysis framework: each diagnostic code has a
   positive case (the defect is reported) and a clean negative case, plus
   stratification edge cases and JSON round-tripping. *)

module A = Analysis
module D = Analysis.Diagnostic

let parse = Datalog.Parser.parse_program
let pquery = Datalog.Parser.parse_query

let codes diags = List.map (fun d -> d.D.code) diags

let has_code c diags = List.mem c (codes diags)

let check_code msg c diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s in [%s]" msg c (String.concat "; " (codes diags)))
    true (has_code c diags)

let check_no_code msg c diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s: no %s in [%s]" msg c
       (String.concat "; " (codes diags)))
    false (has_code c diags)

let check_clean msg diags =
  Alcotest.(check int)
    (Printf.sprintf "%s: expected clean, got [%s]" msg
       (String.concat "; " (codes diags)))
    0 (List.length diags)

(* --- datalog passes -------------------------------------------------------- *)

let dl_lint ?query src = A.Datalog_lint.lint ?query (parse src)

let test_dl001_safety () =
  let diags = dl_lint "p(X, Y) :- q(X)." in
  check_code "unbound head var" "DL001" diags;
  check_code "negated unbound var" "DL001"
    (dl_lint "p(X) :- q(X), not r(Y).");
  check_code "comparison unbound var" "DL001" (dl_lint "p(X) :- q(X), Y < 3.");
  check_no_code "safe rule" "DL001" (dl_lint "p(X) :- q(X).")

let test_dl001_collects_all () =
  (* the non-raising API reports every violation, not just the first *)
  let prog = parse "p(X, Y) :- q(Z).\nr(W) :- s(V)." in
  let v = Datalog.Checks.safety_violations prog in
  Alcotest.(check int) "three unbound variables" 3 (List.length v)

let test_dl002_stratification () =
  check_code "p() :- not p()" "DL002" (dl_lint "p() :- not p().");
  (* negation ON a recursive cycle *)
  check_code "negation on cycle" "DL002"
    (dl_lint "p(X) :- q(X), not r(X).\nr(X) :- q(X), p(X).");
  (* negation OFF the cycle: reach is recursive, but the negation reads
     it from a strictly lower stratum *)
  check_no_code "negation off cycle" "DL002"
    (dl_lint
       "reach(X) :- edge(1, X).\n\
        reach(Y) :- reach(X), edge(X, Y).\n\
        dead(X) :- node(X), not reach(X).\n\
        node(X) :- edge(X, Y).\n\
        node(Y) :- edge(X, Y).")

let test_stratification_conflict_api () =
  Alcotest.(check bool)
    "conflict reported" true
    (Datalog.Checks.stratification_conflict (parse "p() :- not p().") <> None);
  Alcotest.(check bool)
    "no conflict on stratifiable program" true
    (Datalog.Checks.stratification_conflict
       (parse "p(X) :- q(X), not r(X).\nr(X) :- q(X).")
    = None)

let test_dl003_arity () =
  check_code "head vs body arity" "DL003"
    (dl_lint "p(X) :- q(X).\np(X, Y) :- q(X), q(Y).");
  check_no_code "consistent arities" "DL003"
    (dl_lint "p(X) :- q(X).\np(Y) :- q(Y).")

let test_dl004_undefined () =
  check_code "undefined body predicate" "DL004" (dl_lint "p(X) :- q(X).");
  check_no_code "defined by a fact" "DL004" (dl_lint "q(1).\np(X) :- q(X).");
  check_code "undefined query predicate" "DL004"
    (dl_lint ~query:(pquery "ghost(X)") "q(1).\np(X) :- q(X).")

let test_dl005_unused () =
  (* with a query, a defined predicate that nothing reads is flagged *)
  let diags =
    dl_lint ~query:(pquery "p(X)")
      "q(1).\np(X) :- q(X).\nother(X) :- q(X)."
  in
  check_code "unused under query" "DL005" diags;
  check_no_code "query target is used" "DL005"
    (dl_lint ~query:(pquery "p(X)") "q(1).\np(X) :- q(X).");
  (* without a query only fact-only predicates are flagged *)
  check_code "unused fact-only predicate" "DL005"
    (dl_lint "q(1).\nstray(7).\np(X) :- q(X).");
  check_no_code "rule-defined outputs are fine without query" "DL005"
    (dl_lint "q(1).\np(X) :- q(X).")

let test_dl006_cartesian () =
  check_code "disjoint positive atoms" "DL006"
    (dl_lint "q(1).\nr(2).\np(X, Y) :- q(X), r(Y).");
  check_no_code "shared variable" "DL006"
    (dl_lint "q(1, 2).\np(X, Y) :- q(X, Z), q(Z, Y).");
  (* a comparison can be the connector *)
  check_no_code "connected through comparison" "DL006"
    (dl_lint "q(1).\nr(2).\np(X, Y) :- q(X), r(Y), X < Y.")

let test_dl007_subsumption () =
  check_code "duplicate rule" "DL007"
    (dl_lint "q(1).\np(X) :- q(X).\np(Y) :- q(Y).");
  check_code "subsumed rule" "DL007"
    (dl_lint "q(1, 2).\np(X) :- q(X, Y).\np(X) :- q(X, X).");
  check_no_code "genuinely different rules" "DL007"
    (dl_lint "q(1).\nr(1).\np(X) :- q(X).\np(X) :- r(X).")

let test_dl008_dead_rule () =
  let src = "q(1).\np(X) :- q(X).\nisland(X) :- q(X)." in
  check_code "unreachable from query" "DL008"
    (dl_lint ~query:(pquery "p(X)") src);
  check_no_code "no query, no dead-rule analysis" "DL008" (dl_lint src);
  check_no_code "everything reachable" "DL008"
    (dl_lint ~query:(pquery "p(X)") "q(1).\np(X) :- q(X).")

let test_dl_clean_program () =
  check_clean "paths program is clean"
    (dl_lint
       "edge(1, 2).\nedge(2, 3).\n\
        path(X, Y) :- edge(X, Y).\n\
        path(X, Y) :- edge(X, Z), path(Z, Y).")

(* --- relational passes ----------------------------------------------------- *)

let schema = Relational.Schema.make

let catalog =
  A.Relational_lint.catalog_of_alist
    [
      ("r", schema [ ("a", Relational.Value.TInt); ("b", Relational.Value.TInt) ]);
      ("s", schema [ ("b", Relational.Value.TInt); ("c", Relational.Value.TString) ]);
      ("t", schema [ ("d", Relational.Value.TInt) ]);
    ]

let ra_lint text =
  A.Relational_lint.lint ~catalog (Relational.Query_parser.parse text)

let test_ra001_unknown_relation () =
  check_code "unknown relation" "RA001" (ra_lint "select[a = 1](nope)");
  check_no_code "known relation" "RA001" (ra_lint "select[a = 1](r)")

let test_ra002_unknown_attribute () =
  check_code "unknown attribute in predicate" "RA002"
    (ra_lint "select[zzz = 1](r)");
  check_code "unknown attribute in projection" "RA002" (ra_lint "project[zzz](r)");
  check_no_code "known attributes" "RA002" (ra_lint "project[a](select[b = 1](r))")

let test_ra003_type_mismatch () =
  check_code "int vs string comparison" "RA003" (ra_lint "select[b = c](s)");
  check_code "incompatible set operation" "RA003" (ra_lint "r union t");
  check_no_code "compatible comparison" "RA003" (ra_lint "select[a = b](r)")

let test_ra004_cross_product () =
  check_code "explicit product" "RA004" (ra_lint "r times t");
  check_code "join degenerates to product" "RA004" (ra_lint "r join t");
  check_no_code "real join" "RA004" (ra_lint "r join s")

let test_ra005_pushdown () =
  check_code "selection above join" "RA005" (ra_lint "select[a = 1](r join s)");
  check_no_code "selection already at leaf" "RA005"
    (ra_lint "select[a = 1](r) join s");
  check_no_code "whole-result selection cannot push" "RA005"
    (ra_lint "select[a = 1](r)")

let test_ra006_projection_drops_key () =
  check_code "join key projected away" "RA006" (ra_lint "project[a](r) join s");
  check_no_code "join key kept" "RA006" (ra_lint "project[a,b](r) join s")

let test_ra_error_recovery () =
  (* one bad leaf must not hide the other side's defect *)
  let diags = ra_lint "select[zzz = 1](nope join s)" in
  check_code "unknown relation still reported" "RA001" diags

let test_ra_clean_plan () =
  check_clean "clean plan" (ra_lint "project[a](select[b = 1](r) join s)")

(* --- transaction passes ---------------------------------------------------- *)

let tx_lint = A.Transaction_lint.lint_string

let test_tx001_malformed () =
  check_code "action after commit" "TX001" (tx_lint "r1(x) c1 w1(x)");
  check_no_code "well-formed" "TX001" (tx_lint "r1(x) w1(x) c1")

let test_tx002_conflict_cycle () =
  let diags = tx_lint "r1(x) w2(x) r2(y) w1(y) c1 c2" in
  check_code "conflict cycle" "TX002" diags;
  (* the diagnostic names the offending transaction pair *)
  let d = List.find (fun d -> d.D.code = "TX002") diags in
  Alcotest.(check bool) "names both transactions" true
    (Str_contains.contains d.D.message "{1, 2}");
  check_no_code "serializable" "TX002" (tx_lint "r1(x) w1(x) c1 r2(x) c2");
  (* uncommitted transactions do not poison the committed projection *)
  check_no_code "aborted txn leaves no cycle" "TX002"
    (tx_lint "r1(x) w2(x) r2(y) w1(y) c1 a2")

let test_tx003_unrecoverable () =
  check_code "reader commits first" "TX003" (tx_lint "w1(x) r2(x) c2 c1");
  check_no_code "writer commits first" "TX003" (tx_lint "w1(x) c1 r2(x) c2")

let test_tx004_cascading () =
  check_code "dirty read" "TX004" (tx_lint "w1(x) r2(x) c1 c2");
  check_no_code "read after commit" "TX004" (tx_lint "w1(x) c1 r2(x) c2")

let test_tx005_non_strict () =
  check_code "overwrite before termination" "TX005"
    (tx_lint "w1(x) w2(x) c1 c2");
  check_no_code "strict schedule" "TX005" (tx_lint "w1(x) c1 w2(x) c2")

let test_tx006_unlocked_access () =
  check_code "write without exclusive lock" "TX006"
    (tx_lint "sl1(x) w1(x) c1");
  check_code "read without lock" "TX006" (tx_lint "xl1(y) r1(x) c1");
  check_code "unlock without hold" "TX006" (tx_lint "u1(x) c1");
  check_no_code "properly locked" "TX006" (tx_lint "xl1(x) w1(x) c1");
  (* plain schedules carry no lock information: the pass stays silent *)
  check_no_code "no lock ops, no lock lint" "TX006" (tx_lint "w1(x) c1")

let test_tx007_two_phase () =
  check_code "lock after unlock" "TX007"
    (tx_lint "xl1(x) w1(x) u1(x) xl1(y) w1(y) c1");
  check_no_code "all locks before first unlock" "TX007"
    (tx_lint "xl1(x) xl1(y) w1(x) w1(y) u1(x) u1(y) c1")

let test_tx008_conflicting_grant () =
  check_code "two exclusive holders" "TX008" (tx_lint "xl1(x) xl2(x) w1(x) c1 c2");
  check_no_code "shared with shared" "TX008" (tx_lint "sl1(x) sl2(x) r1(x) r2(x) c1 c2")

let test_tx009_lock_leak () =
  check_code "held at end of schedule" "TX009" (tx_lint "xl1(x) w1(x)");
  check_no_code "released by commit" "TX009" (tx_lint "xl1(x) w1(x) c1")

let test_tx010_potential_deadlock () =
  check_code "opposite access orders" "TX010"
    (tx_lint "w1(x) w2(y) w2(x) w1(y) c1 c2");
  check_code "opposite lock orders" "TX010"
    (tx_lint "xl1(x) xl2(y) xl2(x) xl1(y) w1(x) w2(y) c1 c2");
  check_no_code "same lock order" "TX010" (tx_lint "w1(x) w1(y) c1 w2(x) w2(y) c2")

let test_tx_clean_schedule () =
  check_clean "serial locked schedule"
    (tx_lint "xl1(x) w1(x) c1 sl2(x) r2(x) c2")

(* --- wal verifier ----------------------------------------------------------- *)

module W = Storage.Wal

let wbegin t = W.Begin t
let wcommit t = W.Commit t
let wabort t = W.Abort t

let wwrite ?(compensation = false) txn item before after =
  W.Write { txn; item; before; after; compensation }

let image records = String.concat "" (List.map W.frame_of_record records)

(* lint a log image exactly as `dbmeta lint wal` would a file *)
let wal_lint records = A.Wal_lint.lint (W.scan_report (image records))

let committed_txn ?(txn = 1) ?(item = "x") ?(before = 0) ?(after = 7) () =
  [ wbegin txn; wwrite txn item before after; wcommit txn ]

let test_wl001_non_monotone_lsn () =
  check_code "lsn goes backwards" "WL001"
    (A.Wal_lint.lint_entries
       [
         { W.lsn = 40; record = wbegin 1 };
         { W.lsn = 12; record = wcommit 1 };
       ]);
  check_no_code "scanned image is monotone" "WL001"
    (wal_lint (committed_txn ()))

let test_wl002_overlapping_frames () =
  check_code "frame starts inside its predecessor" "WL002"
    (A.Wal_lint.lint_entries
       [
         { W.lsn = 0; record = wbegin 1 };
         { W.lsn = 5; record = wcommit 1 };
       ]);
  check_no_code "scanned image is dense" "WL002" (wal_lint (committed_txn ()))

let test_wl003_op_without_begin () =
  check_code "write without begin" "WL003"
    (wal_lint [ wwrite 1 "x" 0 7; wcommit 1 ]);
  check_code "commit without begin" "WL003" (wal_lint [ wcommit 9 ]);
  check_no_code "bracketed txn" "WL003" (wal_lint (committed_txn ()))

let test_wl004_duplicate_begin () =
  check_code "begin twice" "WL004"
    (wal_lint [ wbegin 1; wbegin 1; wcommit 1 ]);
  check_code "write after commit" "WL004"
    (wal_lint (committed_txn () @ [ wwrite 1 "x" 7 9 ]));
  check_code "commit then abort" "WL004"
    (wal_lint (committed_txn () @ [ wabort 1 ]));
  check_no_code "id reuse never happens in engine logs" "WL004"
    (wal_lint (committed_txn ~txn:1 () @ committed_txn ~txn:2 ~before:7 ()))

let test_wl005_stray_compensation () =
  check_code "CLR with no forward write" "WL005"
    (wal_lint [ wbegin 1; wwrite ~compensation:true 1 "x" 7 0; wabort 1 ]);
  check_code "compensated txn commits" "WL005"
    (wal_lint
       [
         wbegin 1; wwrite 1 "x" 0 7; wwrite ~compensation:true 1 "x" 7 0;
         wcommit 1;
       ]);
  check_no_code "rollback episode" "WL005"
    (wal_lint
       [
         wbegin 1; wwrite 1 "x" 0 7; wwrite ~compensation:true 1 "x" 7 0;
         wabort 1;
       ])

let test_wl006_checkpoint_not_quiescent () =
  check_code "checkpoint with a live txn" "WL006"
    (wal_lint [ wbegin 1; W.Checkpoint; wcommit 1 ]);
  check_no_code "quiescent checkpoint" "WL006"
    (wal_lint (committed_txn () @ [ W.Checkpoint ]))

let test_wl007_torn_tail () =
  let torn = image (committed_txn ()) ^ "\x01\x02\x03" in
  let diags = A.Wal_lint.lint (W.scan_report torn) in
  check_code "trailing garbage is a torn tail" "WL007" diags;
  check_no_code "not mid-log corruption" "WL008" diags;
  Alcotest.(check int) "torn tail is only a warning" 0 (D.exit_code diags);
  check_no_code "clean log has no tail" "WL007" (wal_lint (committed_txn ()))

let test_wl008_midlog_corruption () =
  let img = image (committed_txn ~txn:1 () @ committed_txn ~txn:2 ~before:7 ()) in
  let corrupt = Bytes.of_string img in
  (* smash a payload byte of the very first frame: the scan stops at 0,
     but every later frame is intact and the resync search finds them *)
  Bytes.set corrupt 9 '\xff';
  let diags = A.Wal_lint.lint (W.scan_report (Bytes.to_string corrupt)) in
  check_code "damage followed by intact frames" "WL008" diags;
  check_no_code "not a torn tail" "WL007" diags;
  Alcotest.(check int) "mid-log corruption is an error" 1 (D.exit_code diags)

let test_wl009_live_at_end () =
  let diags = wal_lint [ wbegin 1; wwrite 1 "x" 0 7 ] in
  check_code "loser-to-be is reported" "WL009" diags;
  Alcotest.(check int) "live txn is only info" 0 (D.exit_code diags);
  check_no_code "terminated txn" "WL009" (wal_lint (committed_txn ()))

let test_wl010_before_image_chain () =
  check_code "before-image contradicts last after-image" "WL010"
    (wal_lint
       (committed_txn ~txn:1 ~after:5 ()
       @ [ wbegin 2; wwrite 2 "x" 0 9; wcommit 2 ]));
  check_no_code "chained before-images" "WL010"
    (wal_lint
       (committed_txn ~txn:1 ~after:5 ()
       @ [ wbegin 2; wwrite 2 "x" 5 9; wcommit 2 ]));
  (* the chain survives a rollback: the CLR restores the old value *)
  check_no_code "chain through an abort episode" "WL010"
    (wal_lint
       (committed_txn ~txn:1 ~after:5 ()
       @ [
           wbegin 2; wwrite 2 "x" 5 9; wwrite ~compensation:true 2 "x" 9 5;
           wabort 2; wbegin 3; wwrite 3 "x" 5 1; wcommit 3;
         ]))

let test_wal_empty_log_is_clean () =
  check_clean "empty log" (A.Wal_lint.lint (W.scan_report ""))

(* --- concurrency prediction ------------------------------------------------- *)

let cc_lint = A.Concurrency_lint.lint_string

let test_cc001_lockset_race () =
  check_code "disjoint locksets on a shared item" "CC001"
    (cc_lint "xl1(a) w1(x) u1(a) c1 xl2(b) w2(x) u2(b) c2");
  check_no_code "item's own lock held" "CC001"
    (cc_lint "xl1(x) w1(x) c1 xl2(x) w2(x) c2");
  check_no_code "single-txn access never races" "CC001"
    (cc_lint "xl1(a) w1(x) w1(x) c1");
  (* plain schedules carry no lock info: every CC pass stays silent *)
  check_clean "no lock ops, no CC lint" (cc_lint "w1(x) w2(x) c1 c2")

let test_cc002_insufficient_mode () =
  let diags = cc_lint "sl1(g) w1(x) u1(g) c1 sl2(g) w2(x) u2(g) c2" in
  check_code "guard held only shared at writes" "CC002" diags;
  check_no_code "a common lock exists, so no race" "CC001" diags;
  check_no_code "exclusive guard is enough" "CC002"
    (cc_lint "xl1(g) w1(x) u1(g) c1 xl2(g) w2(x) u2(g) c2")

let test_cc003_guard_lock () =
  check_code "protected by a different lock" "CC003"
    (cc_lint "xl1(g) w1(x) u1(g) c1 xl2(g) w2(x) u2(g) c2");
  check_no_code "protected by the item's own lock" "CC003"
    (cc_lint "xl1(x) w1(x) c1 xl2(x) w2(x) c2")

let serial_deadlock = "xl1(x) xl1(y) w1(x) w1(y) c1 xl2(y) xl2(x) w2(y) w2(x) c2"

let test_cc004_lock_order_cycle () =
  let diags = cc_lint serial_deadlock in
  check_code "opposite acquisition orders" "CC004" diags;
  Alcotest.(check int) "prediction is a warning, not an error" 0
    (D.exit_code diags);
  check_no_code "same order everywhere" "CC004"
    (cc_lint "xl1(x) xl1(y) w1(x) c1 xl2(x) xl2(y) w2(y) c2");
  check_no_code "one txn alone cannot deadlock" "CC004"
    (cc_lint "xl1(x) xl1(y) w1(x) u1(y) u1(x) xl1(y) xl1(x) w1(y) c1")

let test_cc004_subsumes_tx010 () =
  (* the observational pass needs an interleaved witness; the predictive
     pass fires even on this serial execution of the same program *)
  check_no_code "TX010 is silent on the serial schedule" "TX010"
    (tx_lint serial_deadlock);
  check_code "CC004 predicts from the serial schedule" "CC004"
    (cc_lint serial_deadlock)

let test_cc005_gate_lock () =
  let gated =
    "xl1(g) xl1(x) xl1(y) w1(x) w1(y) c1 xl2(g) xl2(y) xl2(x) w2(y) w2(x) c2"
  in
  let diags = cc_lint gated in
  check_code "gate lock demotes the cycle" "CC005" diags;
  check_no_code "no CC004 when gated" "CC004" diags;
  check_code "ungated cycle stays a warning" "CC004" (cc_lint serial_deadlock)

let test_cc006_upgrade_deadlock () =
  let diags = cc_lint "sl1(x) sl2(x) r1(x) r2(x) xl1(x) xl2(x) w1(x) w2(x) c1 c2" in
  check_code "simultaneous upgrades" "CC006" diags;
  Alcotest.(check int) "a certain deadlock is an error" 1 (D.exit_code diags);
  check_no_code "serial upgrades never overlap" "CC006"
    (cc_lint "sl1(x) r1(x) xl1(x) w1(x) c1 sl2(x) r2(x) xl2(x) w2(x) c2")

let test_cc_clean_schedule () =
  check_clean "well-locked serial schedule"
    (cc_lint "xl1(x) w1(x) c1 sl2(x) r2(x) c2");
  check_clean "full pipeline on the same schedule"
    (A.Pass.run_all A.Concurrency_lint.schedule_passes
       (Transactions.Locked_schedule.of_string
          "xl1(x) w1(x) c1 sl2(x) r2(x) c2"))

(* --- semantic passes (chase-based, SQ) ------------------------------------- *)

let sq_catalog =
  A.Relational_lint.catalog_of_alist
    [
      ( "students",
        schema
          [
            ("sid", Relational.Value.TInt);
            ("sname", Relational.Value.TString);
            ("year", Relational.Value.TInt);
          ] );
      ( "enrolled",
        schema
          [
            ("sid", Relational.Value.TInt);
            ("cid", Relational.Value.TString);
            ("grade", Relational.Value.TInt);
          ] );
    ]

let sq_fd spec =
  match A.Semantic_lint.fd_of_spec ~catalog:sq_catalog spec with
  | Ok fd -> fd
  | Error e -> failwith e

let sq_lint ?(fds = []) text =
  A.Semantic_lint.lint ~catalog:sq_catalog ~fds
    (Relational.Query_parser.parse text)

let sq_dl ?query src =
  A.Pass.run_all A.Semantic_lint.datalog_passes
    { A.Datalog_lint.program = parse src; query }

let test_sq001_unsatisfiable_selection () =
  check_code "equals two constants" "SQ001"
    (sq_lint "select[year = 1 and year = 2](students)");
  check_code "empty interval" "SQ001"
    (sq_lint "select[year > 3 and year < 2](students)");
  check_no_code "satisfiable conjunction" "SQ001"
    (sq_lint "select[year >= 1 and year <= 3](students)")

let test_sq002_provably_empty () =
  check_code "contradictory constants" "SQ002"
    (sq_lint "select[sid = 1 and sid = 2](students)");
  check_no_code "plain selection" "SQ002" (sq_lint "select[sid = 1](students)")

let test_sq003_redundant_join () =
  (* foldable by plain Chandra-Merlin minimization: the second copy's
     attributes never reach the output *)
  check_code "self-join, core needs one copy" "SQ003"
    (sq_lint "project[sid](students join students)");
  (* both copies reach the output: only the key FD folds them *)
  let q =
    "project[sid, sname, s2](students join rename[sname -> s2, year -> \
     y2](students))"
  in
  check_no_code "no FD, both copies needed" "SQ003" (sq_lint q);
  check_code "key FD makes the copy redundant" "SQ003"
    (sq_lint ~fds:[ sq_fd "students: sid -> sname year" ] q);
  check_no_code "genuine join is not redundant" "SQ003"
    (sq_lint "project[sname, grade](students join enrolled)")

let test_sq004_contained_arm () =
  check_code "union arm adds nothing" "SQ004"
    (sq_lint "select[year = 3](students) union students");
  check_code "difference provably empty" "SQ004"
    (sq_lint "select[year = 3](students) minus students");
  check_no_code "incomparable arms" "SQ004"
    (sq_lint "select[year = 1](students) union select[year = 2](students)")

let test_sq005_bridged_product () =
  let renamed = "rename[sid -> sid2, cid -> c2, grade -> g2](enrolled)" in
  check_code "equality bridges the product" "SQ005"
    (sq_lint (Printf.sprintf "select[sid = sid2](students times %s)" renamed));
  check_no_code "bare product (RA004's business)" "SQ005"
    (sq_lint (Printf.sprintf "students times %s" renamed))

let test_sq006_bounded_recursion () =
  check_code "recursive rule contained in base rule" "SQ006"
    (sq_dl "p(X) :- e(X).\np(X) :- p(X), e(X).");
  check_no_code "genuine recursion" "SQ006"
    (sq_dl "p(X) :- e(X).\np(Y) :- p(X), f(X, Y).")

let test_sq007_dead_rule () =
  let diags = sq_dl "empty(X) :- empty(X).\nq(X) :- empty(X)." in
  check_code "reads a provably-empty predicate" "SQ007" diags;
  Alcotest.(check int) "both the cycle and its reader flagged" 2
    (List.length (List.filter (fun d -> d.D.code = "SQ007") diags));
  check_code "head constants cannot unify with the query" "SQ007"
    (sq_dl ~query:(pquery "ans(1, X)") "ans(2, X) :- e(X).");
  check_no_code "facts make it nonempty" "SQ007"
    (sq_dl "e(1).\nq(X) :- e(X).");
  check_no_code "database-backed predicates may be nonempty" "SQ007"
    (sq_dl "q(X) :- e(X).")

let test_sq008_redundant_body_atom () =
  check_code "foldable second atom" "SQ008"
    (sq_dl "p(X) :- e(X, Y), e(X, Z).");
  check_no_code "single atom" "SQ008" (sq_dl "p(X) :- e(X, Y).");
  check_no_code "both atoms constrained" "SQ008"
    (sq_dl "p(X, Y, Z) :- e(X, Y), e(X, Z).")

let test_sq10x_certifier_bridge () =
  let module C = Planner.Certify in
  let report =
    [
      { C.name = "push_selections"; verdict = C.Equivalent };
      { C.name = "order_joins"; verdict = C.Refuted "cores differ" };
      { C.name = "physical_shadow"; verdict = C.Refuted "attrs differ" };
      { C.name = "join_elimination"; verdict = C.Skipped "not conjunctive" };
    ]
  in
  let diags = A.Semantic_lint.of_certify report in
  check_code "refuted logical stage" "SQ101" diags;
  check_code "refuted physical shadow" "SQ102" diags;
  check_code "skipped stage" "SQ103" diags;
  Alcotest.(check int) "refutations fail the run" 1 (D.exit_code diags);
  check_clean "all-equivalent report is silent"
    (A.Semantic_lint.of_certify
       [ { C.name = "push_selections"; verdict = C.Equivalent } ]);
  Alcotest.(check int) "skipped alone passes" 0
    (D.exit_code
       (A.Semantic_lint.of_certify
          [ { C.name = "order_joins"; verdict = C.Skipped "union" } ]))

let test_sq_fd_spec_parsing () =
  (match A.Semantic_lint.fd_of_spec ~catalog:sq_catalog "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed spec accepted");
  (match A.Semantic_lint.fd_of_spec ~catalog:sq_catalog "students: zzz -> sname" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown attribute accepted");
  (match A.Semantic_lint.fd_of_spec ~catalog:sq_catalog "nope: a -> b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown table accepted");
  match A.Semantic_lint.fd_of_spec ~catalog:sq_catalog "students: sid -> sname year" with
  | Ok fd ->
      Alcotest.(check string) "predicate" "students" fd.Datalog.Containment.fd_pred;
      Alcotest.(check (list int)) "lhs positions" [ 0 ] fd.Datalog.Containment.fd_lhs;
      Alcotest.(check (list int)) "rhs positions" [ 1; 2 ] fd.Datalog.Containment.fd_rhs
  | Error e -> Alcotest.fail e

let test_sq_clean_plan () =
  check_clean "honest query draws no SQ diagnostics"
    (sq_lint "project[sname](select[grade >= 90](students join enrolled))")

(* --- diagnostics infrastructure -------------------------------------------- *)

let test_json_roundtrip () =
  let diags =
    [
      D.error ~subject:"p(X) :- q(Y)." ~loc:0 "DL001" "unsafe \"rule\"";
      D.warning "RA004" "cross\nproduct";
      D.info ~loc:3 "TX005" "not strict\ttabbed";
    ]
  in
  let parsed = D.list_of_json (D.list_to_json diags) in
  Alcotest.(check bool) "round-trips structurally" true (parsed = diags)

let test_json_roundtrip_real () =
  let diags = tx_lint "r1(x) w2(x) r2(y) w1(y) c1 c2" in
  Alcotest.(check bool) "real diagnostics round-trip" true
    (D.list_of_json (D.list_to_json diags) = diags)

let test_json_rejects_garbage () =
  Alcotest.check_raises "garbage" (D.Json_error "expected ',' or ']' at offset 3")
    (fun () -> ignore (D.list_of_json "[1 2]"))

let test_exit_code_policy () =
  Alcotest.(check int) "errors fail" 1
    (D.exit_code [ D.error "X1" "boom"; D.info "X2" "meh" ]);
  Alcotest.(check int) "warnings pass" 0
    (D.exit_code [ D.warning "X1" "hmm" ]);
  Alcotest.(check int) "empty passes" 0 (D.exit_code [])

let test_severity_ordering () =
  let sorted =
    D.sort [ D.info "C" "c"; D.error "B" "b"; D.warning "A" "a" ]
  in
  Alcotest.(check (list string)) "errors first" [ "B"; "A"; "C" ] (codes sorted)

let test_pass_crash_is_diagnosed () =
  let boom = Analysis.Pass.make "boom" (fun _ -> failwith "kaput") in
  let diags = Analysis.Pass.run_all [ boom ] () in
  check_code "crash surfaces as LINT99" "LINT99" diags

let suite =
  [
    Alcotest.test_case "DL001 safety" `Quick test_dl001_safety;
    Alcotest.test_case "DL001 collects all" `Quick test_dl001_collects_all;
    Alcotest.test_case "DL002 stratification" `Quick test_dl002_stratification;
    Alcotest.test_case "stratification_conflict api" `Quick
      test_stratification_conflict_api;
    Alcotest.test_case "DL003 arity" `Quick test_dl003_arity;
    Alcotest.test_case "DL004 undefined" `Quick test_dl004_undefined;
    Alcotest.test_case "DL005 unused" `Quick test_dl005_unused;
    Alcotest.test_case "DL006 cartesian" `Quick test_dl006_cartesian;
    Alcotest.test_case "DL007 subsumption" `Quick test_dl007_subsumption;
    Alcotest.test_case "DL008 dead rule" `Quick test_dl008_dead_rule;
    Alcotest.test_case "datalog clean" `Quick test_dl_clean_program;
    Alcotest.test_case "RA001 unknown relation" `Quick test_ra001_unknown_relation;
    Alcotest.test_case "RA002 unknown attribute" `Quick test_ra002_unknown_attribute;
    Alcotest.test_case "RA003 type mismatch" `Quick test_ra003_type_mismatch;
    Alcotest.test_case "RA004 cross product" `Quick test_ra004_cross_product;
    Alcotest.test_case "RA005 pushdown" `Quick test_ra005_pushdown;
    Alcotest.test_case "RA006 drops join key" `Quick test_ra006_projection_drops_key;
    Alcotest.test_case "RA error recovery" `Quick test_ra_error_recovery;
    Alcotest.test_case "relational clean" `Quick test_ra_clean_plan;
    Alcotest.test_case "TX001 malformed" `Quick test_tx001_malformed;
    Alcotest.test_case "TX002 conflict cycle" `Quick test_tx002_conflict_cycle;
    Alcotest.test_case "TX003 unrecoverable" `Quick test_tx003_unrecoverable;
    Alcotest.test_case "TX004 cascading" `Quick test_tx004_cascading;
    Alcotest.test_case "TX005 non-strict" `Quick test_tx005_non_strict;
    Alcotest.test_case "TX006 unlocked access" `Quick test_tx006_unlocked_access;
    Alcotest.test_case "TX007 two-phase" `Quick test_tx007_two_phase;
    Alcotest.test_case "TX008 conflicting grant" `Quick test_tx008_conflicting_grant;
    Alcotest.test_case "TX009 lock leak" `Quick test_tx009_lock_leak;
    Alcotest.test_case "TX010 potential deadlock" `Quick test_tx010_potential_deadlock;
    Alcotest.test_case "transactions clean" `Quick test_tx_clean_schedule;
    Alcotest.test_case "WL001 non-monotone lsn" `Quick test_wl001_non_monotone_lsn;
    Alcotest.test_case "WL002 overlapping frames" `Quick test_wl002_overlapping_frames;
    Alcotest.test_case "WL003 op without begin" `Quick test_wl003_op_without_begin;
    Alcotest.test_case "WL004 duplicate begin" `Quick test_wl004_duplicate_begin;
    Alcotest.test_case "WL005 stray compensation" `Quick test_wl005_stray_compensation;
    Alcotest.test_case "WL006 checkpoint not quiescent" `Quick
      test_wl006_checkpoint_not_quiescent;
    Alcotest.test_case "WL007 torn tail" `Quick test_wl007_torn_tail;
    Alcotest.test_case "WL008 mid-log corruption" `Quick test_wl008_midlog_corruption;
    Alcotest.test_case "WL009 live at end" `Quick test_wl009_live_at_end;
    Alcotest.test_case "WL010 before-image chain" `Quick test_wl010_before_image_chain;
    Alcotest.test_case "WAL empty log clean" `Quick test_wal_empty_log_is_clean;
    Alcotest.test_case "CC001 lockset race" `Quick test_cc001_lockset_race;
    Alcotest.test_case "CC002 insufficient mode" `Quick test_cc002_insufficient_mode;
    Alcotest.test_case "CC003 guard lock" `Quick test_cc003_guard_lock;
    Alcotest.test_case "CC004 lock-order cycle" `Quick test_cc004_lock_order_cycle;
    Alcotest.test_case "CC004 subsumes TX010" `Quick test_cc004_subsumes_tx010;
    Alcotest.test_case "CC005 gate lock" `Quick test_cc005_gate_lock;
    Alcotest.test_case "CC006 upgrade deadlock" `Quick test_cc006_upgrade_deadlock;
    Alcotest.test_case "concurrency clean" `Quick test_cc_clean_schedule;
    Alcotest.test_case "SQ001 unsatisfiable selection" `Quick
      test_sq001_unsatisfiable_selection;
    Alcotest.test_case "SQ002 provably empty" `Quick test_sq002_provably_empty;
    Alcotest.test_case "SQ003 redundant join" `Quick test_sq003_redundant_join;
    Alcotest.test_case "SQ004 contained arm" `Quick test_sq004_contained_arm;
    Alcotest.test_case "SQ005 bridged product" `Quick test_sq005_bridged_product;
    Alcotest.test_case "SQ006 bounded recursion" `Quick
      test_sq006_bounded_recursion;
    Alcotest.test_case "SQ007 dead rule" `Quick test_sq007_dead_rule;
    Alcotest.test_case "SQ008 redundant body atom" `Quick
      test_sq008_redundant_body_atom;
    Alcotest.test_case "SQ101-103 certifier bridge" `Quick
      test_sq10x_certifier_bridge;
    Alcotest.test_case "fd spec parsing" `Quick test_sq_fd_spec_parsing;
    Alcotest.test_case "semantic clean" `Quick test_sq_clean_plan;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json roundtrip real" `Quick test_json_roundtrip_real;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "exit code policy" `Quick test_exit_code_policy;
    Alcotest.test_case "severity ordering" `Quick test_severity_ordering;
    Alcotest.test_case "pass crash diagnosed" `Quick test_pass_crash_is_diagnosed;
  ]
