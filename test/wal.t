The offline WAL verifier: `dbmeta lint wal` scans a binary log
read-only and grades the damage — a log the engine wrote lints clean,
a crash survivor gets a tolerated-torn-tail warning, and a byte smashed
in the middle of the log (where intact frames follow the damage) is an
error, because a tolerant open would silently discard real history.

A freshly written log is clean:

  $ dbmeta db init t.db
  created t.db (1 pages, wal at t.db.wal)
  $ dbmeta db set t.db x=1 y=2
  txn 1 committed: 2 write(s)
  $ dbmeta lint wal t.db.wal
  no diagnostics

Crash the engine inside the WAL flush of a second transaction: the
group-commit bytes are torn mid-record.  The verifier reports the tail
but tolerates it (exit 0) — this is exactly the artifact a power cut
leaves, and the next open truncates it:

  $ dbmeta db set t.db x=5 y=6 --crash-after 0
  simulated crash at: wal flush
  the database was left as the crash left it; run 'dbmeta db recover t.db' (or any other db command) to repair it
  $ dbmeta lint wal t.db.wal
  warning[WL007]: torn tail: 4 byte(s) after the last valid frame at offset 117 do not form a record — tolerated crash damage; the next open truncates it
    --> #7
  0 error(s), 1 warning(s), 0 info(s)

db status reads the same scan and counts the torn bytes (and, by
opening the database, repairs them):

  $ dbmeta db status t.db | grep '^wal:'
  wal: 7 surviving record(s) before open, 4 torn tail byte(s)

--verify-wal closes the loop with the dynamic layer: after recovery the
rewritten log is audited with the same passes:

  $ dbmeta db recover t.db --verify-wal
  recovery: checkpoint=126 winners=[1] losers=[] redo=0 skipped=0 undone=0
  items: 2, tables: 0
  wal audit: clean (11 record(s), 153 byte(s))

Now smash one byte in the middle of the log.  Intact, decodable frames
resume after the damaged frame, so this cannot be a torn tail — the
verifier flags it as an error and exits 1, and the JSON rendering
parses under the repo's own strict parser:

  $ printf '\xff' | dd of=t.db.wal bs=1 seek=20 count=1 conv=notrunc 2>/dev/null
  $ dbmeta lint wal t.db.wal
  error[WL008]: mid-log corruption: the frame at offset 18 is invalid but intact frames resume at offset 31 — a tolerant open would silently lose the 135-byte suffix
    --> #2: 8 decodable record(s) resume at offset 31
  1 error(s), 0 warning(s), 0 info(s)
  [1]
  $ dbmeta lint wal t.db.wal --format json > wal.json
  [1]
  $ ./json_check.exe < wal.json
  valid json

Recovery after mid-log corruption is exactly the lossy tolerant open
the error warned about: the log is truncated at the damage, the stale
page is quarantined, and the committed writes are gone — which is why
the verifier exists as a separate, read-only tool to run first:

  $ dbmeta db recover t.db --verify-wal
  repair: quarantined 1 corrupt page(s), rebuilt the item store from 0 logged write(s)
  recovery: checkpoint=9 winners=[] losers=[] redo=0 skipped=0 undone=0
  items: 0, tables: 0
  wal audit: clean (4 record(s), 36 byte(s))

The audit also rides along on a workload run — a contended executor run
(4 deadlock restarts) still leaves a protocol-clean log:

  $ dbmeta db exec w.db --txns=4 --seed=1 --verify-wal
  workload: 4 txns x 5 ops over 8 items (50% writes, skew 0.5), seed 1
  committed 4/4  restarts 4  deadlocks 4  timeouts 0  repairs 0  io-retries 0
  throughput: 0.0635 commits/step (63 steps, 13 wasted ops)
  wal audit: clean (40 record(s), 976 byte(s))
