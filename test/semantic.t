Chase-based semantic analysis from the command line: the SQ lint
diagnostics over the shipped exemplar queries, join elimination showing
up in EXPLAIN, and the translation-validating plan certifier.

The shipped exemplars each draw their diagnostic (warnings, exit 0).
A contradictory selection is unsatisfiable and therefore provably empty:

  $ dbmeta lint query --file ../examples/queries/semantic/unsatisfiable.raq \
  >   -s 'students=sid:int,sname:string,year:int'
  warning[SQ001]: selection is unsatisfiable: year equals two distinct constants
    --> select[(year = 1 and year = 2)](students)
  warning[SQ002]: provably empty: selection requires 1 = 2
    --> select[(year = 1 and year = 2)](students)
  0 error(s), 2 warning(s), 0 info(s)

A union arm contained in the other adds nothing:

  $ dbmeta lint query --file ../examples/queries/semantic/contained_union.raq \
  >   -s 'students=sid:int,sname:string,year:int'
  warning[SQ004]: left union arm is contained in the right: it adds nothing
    --> (select[year = 3](students) U students)
  0 error(s), 1 warning(s), 0 info(s)

A self-join on a key is redundant — but only under the declared
functional dependency (both copies reach the output, so plain
Chandra-Merlin minimization cannot fold them); without --fd the lint
stays quiet on it:

  $ dbmeta lint query --file ../examples/queries/semantic/redundant_join.raq \
  >   -s 'students=sid:int,sname:string,year:int' \
  >   --fd 'students: sid -> sname year'
  warning[SQ003]: 1 of 2 joined relation occurrences are redundant: the query's core under the dependencies needs only 1
    --> project[sid,sname,s2]((students |x| rename[sname->s2,year->y2](students)))
  0 error(s), 1 warning(s), 0 info(s)

  $ dbmeta lint query --file ../examples/queries/semantic/redundant_join.raq \
  >   -s 'students=sid:int,sname:string,year:int'
  no diagnostics

A malformed --fd is a usage error:

  $ dbmeta lint query 'students' -s 'students=sid:int' --fd 'nonsense'
  dbmeta: --fd "nonsense": expected "table: lhs... -> rhs..."
  [2]

The planner puts the same chase to work. Load a table whose statistics
prove sid is a key (distinct = rows):

  $ cat > students.csv <<'EOF'
  > sid:int,sname:string,year:int
  > 1,alice,1
  > 2,bob,2
  > 3,carol,2
  > EOF
  $ dbmeta db init uni.db
  created uni.db (1 pages, wal at uni.db.wal)
  $ dbmeta db load uni.db -t students=students.csv
  loaded students: 3 tuples

The key-redundant self-join collapses to a single scan:

  $ dbmeta db query uni.db 'project[sid, sname](students join rename[sname -> s2, year -> y2](students))' --explain
  project[sid, sname]  (est_rows=3.0 cost=0.3)
    rename[#0.sid -> sid, #0.sname -> sname]  (est_rows=3.0 cost=0.3)
      rename[sid -> #0.sid, sname -> #0.sname, year -> #0.year]  (est_rows=3.0 cost=0.3)
        seq scan students  (est_rows=3.0 cost=0.2)

  $ dbmeta db query uni.db 'project[sid, sname](students join rename[sname -> s2, year -> y2](students))'
  sid  sname
  ---  -----
  1    alice
  2    bob  
  3    carol

--no-semantic turns the rewrite off and the join comes back:

  $ dbmeta db query uni.db 'project[sid, sname](students join rename[sname -> s2, year -> y2](students))' --explain --no-semantic
  project[sid, sname]  (est_rows=0.9 cost=0.7)
    hash join on (sid) build=left  (est_rows=0.9 cost=0.7)
      project[sid, sname]  (est_rows=3.0 cost=0.3)
        seq scan students  (est_rows=3.0 cost=0.2)
      project[sid]  (est_rows=3.0 cost=0.3)
        rename[sname -> s2, year -> y2]  (est_rows=3.0 cost=0.3)
          seq scan students  (est_rows=3.0 cost=0.2)

--certify replays every rewrite stage and proves the physical plan's
logical shadow equivalent, then runs the query as usual:

  $ dbmeta db query uni.db 'project[sid, sname](students join rename[sname -> s2, year -> y2](students))' --certify
  certify: push_selections equivalent
  certify: order_joins equivalent
  certify: prune_projections equivalent
  certify: join_elimination equivalent
  certify: physical_shadow equivalent
  sid  sname
  ---  -----
  1    alice
  2    bob  
  3    carol

Operators outside the conjunctive fragment (union, difference) are
compared structurally after the same normalization the optimizer
applies, so set-operation queries certify too; stages the prover can
show neither way are reported as skipped (SQ103), never refuted:

  $ dbmeta db query uni.db 'project[sid](select[year = 1](students)) union project[sid](select[year = 2](students))' --certify
  certify: push_selections equivalent
  certify: order_joins equivalent
  certify: prune_projections equivalent
  certify: join_elimination equivalent
  certify: physical_shadow equivalent
  sid
  ---
  1  
  2  
  3  
