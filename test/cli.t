The dbmeta CLI: exit-code policy and the storage walkthrough.

Exit 0 on success:

  $ cat > path.dl <<'EOF'
  > edge(1, 2). edge(2, 3).
  > path(X, Y) :- edge(X, Y).
  > path(X, Z) :- path(X, Y), edge(Y, Z).
  > EOF
  $ dbmeta datalog path.dl -q 'path(1, X)'
  path(1, 2).
  path(1, 3).

Exit 2 on unparseable input:

  $ dbmeta datalog path.dl -q 'path(1, X'
  dbmeta: line 1, col 10: expected ',' or ')' in argument list
  [2]

Lint exits 1 when an error-severity diagnostic fires, and --format json
is machine-readable:

  $ cat > unsafe.dl <<'EOF'
  > big(X, Y) :- edge(X, Y), not small(Z).
  > EOF
  $ dbmeta lint datalog unsafe.dl
  error[DL001]: variable "Z" in a negated atom of "big(X, Y) :- edge(X, Y), not small(Z)." does not occur in a positive body atom
    --> #0: big(X, Y) :- edge(X, Y), not small(Z).
  warning[DL004]: predicate edge has no rules and no facts; it is always empty
    --> #0
  warning[DL004]: predicate small has no rules and no facts; it is always empty
    --> #0
  1 error(s), 2 warning(s), 0 info(s)
  [1]
  $ dbmeta lint datalog unsafe.dl --format json
  [{"code":"DL001","severity":"error","message":"variable \"Z\" in a negated atom of \"big(X, Y) :- edge(X, Y), not small(Z).\" does not occur in a positive body atom","subject":"big(X, Y) :- edge(X, Y), not small(Z).","loc":0},{"code":"DL004","severity":"warning","message":"predicate edge has no rules and no facts; it is always empty","loc":0},{"code":"DL004","severity":"warning","message":"predicate small has no rules and no facts; it is always empty","loc":0}]
  [1]

The persistent storage engine: init, load a CSV table, query it back.

  $ cat > students.csv <<'EOF'
  > sid:int,sname:string,gpa:float
  > 1,codd,4.0
  > 2,ullman,3.5
  > 3,papadimitriou,3.9
  > EOF
  $ dbmeta db init uni.db
  created uni.db (1 pages, wal at uni.db.wal)
  $ dbmeta db load uni.db -t students=students.csv
  loaded students: 3 tuples
  $ dbmeta db query uni.db 'project[sname](select[gpa >= 3.8](students))'
  sname        
  -------------
  codd         
  papadimitriou

Transactional writes, a voluntary rollback, then a crash injected at the
third durable I/O — the commit of txn 3 is already on the WAL, so
recovery replays it:

  $ dbmeta db set uni.db x=5 y=7
  txn 1 committed: 2 write(s)
  $ dbmeta db set uni.db x=99 --abort
  txn 2 aborted (writes rolled back)
  $ dbmeta db set uni.db z=1 --crash-after 3
  txn 3 committed: 1 write(s)
  simulated crash at: page 3 write
  the database was left as the crash left it; run 'dbmeta db recover uni.db' (or any other db command) to repair it
  $ dbmeta db recover uni.db
  recovery: checkpoint=270 winners=[1,3] losers=[] redo=1 skipped=0 undone=0
  items: 3, tables: 1
  $ dbmeta db get uni.db x y z
  x = 5
  y = 7
  z = 1

A crash before the commit record reaches the log makes the transaction a
loser; recovery undoes it:

  $ dbmeta db set uni.db x=1000 --crash-after 2
  simulated crash at: wal flush
  the database was left as the crash left it; run 'dbmeta db recover uni.db' (or any other db command) to repair it
  $ dbmeta db get uni.db x
  x = 5

Corrupt databases are a user-input error (exit 2), not a crash:

  $ printf 'not a database' > junk.db
  $ dbmeta db status junk.db
  dbmeta: corrupt database: junk.db: truncated header page
  [2]

Unknown tables likewise:

  $ dbmeta db query uni.db 'project[a](nope)'
  dbmeta: unknown relation "nope"
  [2]
