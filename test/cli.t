The dbmeta CLI: exit-code policy and the storage walkthrough.

Exit 0 on success:

  $ cat > path.dl <<'EOF'
  > edge(1, 2). edge(2, 3).
  > path(X, Y) :- edge(X, Y).
  > path(X, Z) :- path(X, Y), edge(Y, Z).
  > EOF
  $ dbmeta datalog path.dl -q 'path(1, X)'
  path(1, 2).
  path(1, 3).

Exit 2 on unparseable input:

  $ dbmeta datalog path.dl -q 'path(1, X'
  dbmeta: line 1, col 10: expected ',' or ')' in argument list
  [2]

Lint exits 1 when an error-severity diagnostic fires, and --format json
is machine-readable:

  $ cat > unsafe.dl <<'EOF'
  > big(X, Y) :- edge(X, Y), not small(Z).
  > EOF
  $ dbmeta lint datalog unsafe.dl
  error[DL001]: variable "Z" in a negated atom of "big(X, Y) :- edge(X, Y), not small(Z)." does not occur in a positive body atom
    --> #0: big(X, Y) :- edge(X, Y), not small(Z).
  warning[DL004]: predicate edge has no rules and no facts; it is always empty
    --> #0
  warning[DL004]: predicate small has no rules and no facts; it is always empty
    --> #0
  1 error(s), 2 warning(s), 0 info(s)
  [1]
  $ dbmeta lint datalog unsafe.dl --format json
  [{"code":"DL001","severity":"error","message":"variable \"Z\" in a negated atom of \"big(X, Y) :- edge(X, Y), not small(Z).\" does not occur in a positive body atom","subject":"big(X, Y) :- edge(X, Y), not small(Z).","loc":0},{"code":"DL004","severity":"warning","message":"predicate edge has no rules and no facts; it is always empty","loc":0},{"code":"DL004","severity":"warning","message":"predicate small has no rules and no facts; it is always empty","loc":0}]
  [1]

The persistent storage engine: init, load a CSV table, query it back.

  $ cat > students.csv <<'EOF'
  > sid:int,sname:string,gpa:float
  > 1,codd,4.0
  > 2,ullman,3.5
  > 3,papadimitriou,3.9
  > EOF
  $ dbmeta db init uni.db
  created uni.db (1 pages, wal at uni.db.wal)
  $ dbmeta db load uni.db -t students=students.csv
  loaded students: 3 tuples
  $ dbmeta db query uni.db 'project[sname](select[gpa >= 3.8](students))'
  sname        
  -------------
  codd         
  papadimitriou

Transactional writes, a voluntary rollback, then a crash injected at the
third durable I/O — the commit of txn 3 is already on the WAL, but the
crash tears the page it was flushing, so recovery first quarantines the
torn page and rebuilds the item store from the log (after which the redo
pass finds its work already done):

  $ dbmeta db set uni.db x=5 y=7
  txn 1 committed: 2 write(s)
  $ dbmeta db set uni.db x=99 --abort
  txn 2 aborted (writes rolled back)
  $ dbmeta db set uni.db z=1 --crash-after 3
  txn 3 committed: 1 write(s)
  simulated crash at: page 4 write
  the database was left as the crash left it; run 'dbmeta db recover uni.db' (or any other db command) to repair it
  $ dbmeta db recover uni.db
  repair: quarantined 1 corrupt page(s), rebuilt the item store from 5 logged write(s)
  recovery: checkpoint=279 winners=[1,3] losers=[] redo=0 skipped=1 undone=0
  items: 3, tables: 1
  $ dbmeta db get uni.db x y z
  x = 5
  y = 7
  z = 1

A crash before the commit record reaches the log makes the transaction a
loser; recovery undoes it:

  $ dbmeta db set uni.db x=1000 --crash-after 2
  simulated crash at: wal flush
  the database was left as the crash left it; run 'dbmeta db recover uni.db' (or any other db command) to repair it
  $ dbmeta db get uni.db x
  x = 5

Corrupt databases are a user-input error (exit 2), not a crash:

  $ printf 'not a database' > junk.db
  $ dbmeta db status junk.db
  dbmeta: corrupt database: junk.db: truncated header page
  [2]

Unknown tables likewise:

  $ dbmeta db query uni.db 'project[a](nope)'
  dbmeta: unknown relation "nope"
  [2]

The fault-tolerant executor: three writers over two hot items deadlock;
the victims are aborted, retried after backoff, and everything commits.
--verify replays the surviving log through the recovery model and diffs
it against the reopened database:

  $ dbmeta db exec exec.db --txns 3 --ops 4 --items 2 --write-ratio 1 --seed 1 --verify
  workload: 3 txns x 4 ops over 2 items (100% writes, skew 0.5), seed 1
  committed 3/3  restarts 2  deadlocks 2  timeouts 0  repairs 0  io-retries 0
  throughput: 0.0769 commits/step (39 steps, 5 wasted ops)
  model check: ok

A crash budget (--faults crash=N) spends N durable I/Os and then fires —
here during the closing checkpoint, tearing a page.  The next open
quarantines the torn page and rebuilds the item store from the log:

  $ dbmeta db exec crash.db --txns 3 --ops 4 --items 2 --write-ratio 1 --faults crash=9 --seed 1
  workload: 3 txns x 4 ops over 2 items (100% writes, skew 0.5), seed 1
  faults: crash=9
  simulated crash at close: page 1 write
  committed 3/3  restarts 2  deadlocks 2  timeouts 0  repairs 0  io-retries 0
  throughput: 0.0769 commits/step (39 steps, 5 wasted ops)
  $ dbmeta db recover crash.db
  repair: quarantined 1 corrupt page(s), rebuilt the item store from 22 logged write(s)
  recovery: checkpoint=none winners=[1,4,5] losers=[] redo=0 skipped=22 undone=0
  items: 2, tables: 0

Quarantine-and-repair also catches silent on-disk corruption: flip a
byte in an item page and the CRC check routes the next open through the
same rebuild — no data is lost, because the WAL holds the full history:

  $ dbmeta db init flip.db
  created flip.db (1 pages, wal at flip.db.wal)
  $ dbmeta db set flip.db a=1 b=2 c=3
  txn 1 committed: 3 write(s)
  $ printf '\xff' | dd of=flip.db bs=1 seek=6144 conv=notrunc 2>/dev/null
  $ dbmeta db recover flip.db
  repair: quarantined 1 corrupt page(s), rebuilt the item store from 3 logged write(s)
  recovery: checkpoint=140 winners=[1] losers=[] redo=0 skipped=0 undone=0
  items: 3, tables: 0
  $ dbmeta db get flip.db a b c
  a = 1
  b = 2
  c = 3

A WAL whose fsync keeps failing cannot make anything durable: after the
retry budget the engine degrades to read-only and the command exits 1.
The in-doubt transactions resolve as losers at the next restart:

  $ dbmeta db exec sick.db --txns 2 --faults 'eio@wal fsync=1,seed=1' --seed 1
  workload: 2 txns x 5 ops over 8 items (50% writes, skew 0.5), seed 1
  faults: eio@wal fsync=1,seed=1
  committed 0/2  restarts 1  deadlocks 1  timeouts 0  repairs 0  io-retries 8
  throughput: 0.0000 commits/step (11 steps, 4 wasted ops)
  engine degraded to read-only: wal fsync; unresolved transactions are in doubt and will be aborted by restart recovery
  [1]

Malformed fault specs are a usage error:

  $ dbmeta db exec sick.db --faults 'nope'
  dbmeta: fault clause "nope" has no '='; the grammar is crash=N, seed=N, torn|flip|eio[@site]=PROB, drop|delay|part[@site]=PROB
  [2]

The error names the offending token, whatever the failure mode:

  $ dbmeta db exec sick.db --faults 'drop=maybe'
  dbmeta: fault clause "drop=maybe" needs a probability in [0,1], got "maybe"; the grammar is crash=N, seed=N, torn|flip|eio[@site]=PROB, drop|delay|part[@site]=PROB
  [2]
