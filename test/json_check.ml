(* Validate JSON on stdin with the same parser the repo uses to prove
   its own output well-formed (Obs.Json) — the cram tests pipe the CLI's
   --metrics and --trace output through this.  With --chrome, also
   checks the Chrome trace_event shape: a traceEvents array of complete
   ("X") events carrying name/ts/dur/pid/tid. *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let () =
  let chrome = Array.length Sys.argv > 1 && Sys.argv.(1) = "--chrome" in
  match Obs.Json.validate (read_all stdin) with
  | Error e ->
      prerr_endline e;
      exit 1
  | Ok json ->
      if not chrome then print_endline "valid json"
      else (
        match Obs.Json.member "traceEvents" json with
        | Some (Obs.Json.Arr events) ->
            let complete e =
              match
                ( Obs.Json.member "ph" e, Obs.Json.member "name" e,
                  Obs.Json.member "ts" e, Obs.Json.member "dur" e,
                  Obs.Json.member "pid" e, Obs.Json.member "tid" e )
              with
              | ( Some (Obs.Json.Str "X"), Some (Obs.Json.Str _),
                  Some (Obs.Json.Num _), Some (Obs.Json.Num _),
                  Some (Obs.Json.Num _), Some (Obs.Json.Num _) ) ->
                  true
              | _ -> false
            in
            if List.for_all complete events then
              Printf.printf "valid chrome trace (%d events)\n"
                (List.length events)
            else (
              prerr_endline "malformed trace event";
              exit 1)
        | _ ->
            prerr_endline "missing traceEvents array";
            exit 1)
