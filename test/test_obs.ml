(* The observability layer: histogram bucket geometry and percentile
   bounds, registry rendering, span nesting and the ring recorder, the
   Chrome dump, and the metric-catalogue lint. *)

open Alcotest

module H = Obs.Histogram
module R = Obs.Registry
module T = Obs.Trace
module J = Obs.Json

(* --- histogram buckets --------------------------------------------------- *)

let test_bucket_geometry () =
  (* bucket 0 holds {0, 1}; bucket i >= 1 holds (2^(i-1), 2^i] *)
  check int "0 -> bucket 0" 0 (H.bucket_index 0);
  check int "1 -> bucket 0" 0 (H.bucket_index 1);
  check int "2 -> bucket 1" 1 (H.bucket_index 2);
  check int "3 -> bucket 2" 2 (H.bucket_index 3);
  check int "4 -> bucket 2" 2 (H.bucket_index 4);
  check int "5 -> bucket 3" 3 (H.bucket_index 5);
  check int "1024 -> bucket 10" 10 (H.bucket_index 1024);
  check int "1025 -> bucket 11" 11 (H.bucket_index 1025);
  (* upper bounds are inclusive and consistent with the index *)
  check int "upper 0" 1 (H.bucket_upper 0);
  check int "upper 1" 2 (H.bucket_upper 1);
  check int "upper 10" 1024 (H.bucket_upper 10);
  for v = 0 to 10_000 do
    let i = H.bucket_index v in
    if v > H.bucket_upper i then
      failf "sample %d above its bucket's upper bound" v;
    if i > 0 && v <= H.bucket_upper (i - 1) then
      failf "sample %d fits the previous bucket" v
  done

let test_histogram_counts () =
  let h = H.make () in
  check int "empty count" 0 (H.count h);
  check int "empty percentile" 0 (H.percentile h 0.5);
  List.iter (H.observe h) [ 1; 2; 3; 100; 50 ];
  check int "count" 5 (H.count h);
  check int "sum" 156 (H.sum h);
  check int "max exact" 100 (H.max_value h);
  H.observe h (-7);
  check int "negative clamps to 0" 6 (H.count h);
  check int "sum unchanged by clamp" 156 (H.sum h)

let test_percentile_units () =
  let h = H.make () in
  (* ten samples of 1000: every percentile is bucket_upper(1000) = 1000's
     bucket upper, clipped to the exact max of 1000 *)
  for _ = 1 to 10 do
    H.observe h 1000
  done;
  check int "p50 of constant" 1000 (H.percentile h 0.5);
  check int "p99 of constant" 1000 (H.percentile h 0.99);
  let h = H.make () in
  List.iter (H.observe h) [ 1; 1; 1; 1_000_000 ];
  (* the 0.5 quantile is a 1-sample; upper bound of bucket 0 is 1 *)
  check int "p50 small" 1 (H.percentile h 0.5);
  check bool "p100 bounded by max" true (H.percentile h 1.0 <= 1_000_000)

let test_time_inactive_skips_clock () =
  let reads = ref 0 in
  let clock () = incr reads; !reads * 10 in
  let active = H.make ~active:true ~clock () in
  let inactive = H.make ~active:false ~clock () in
  check int "timed result" 7 (H.time active (fun () -> 7));
  check int "active histogram read the clock twice" 2 !reads;
  check int "inactive result" 8 (H.time inactive (fun () -> 8));
  check int "inactive histogram never read the clock" 2 !reads;
  check int "inactive observed nothing" 0 (H.count inactive);
  (* observes on exception too *)
  (try H.time active (fun () -> raise Exit) with Exit -> ());
  check int "observed despite raise" 2 (H.count active)

(* QCheck: the reported percentile bounds the true sample quantile from
   above, and by bucket geometry is at most twice it (1 when the true
   quantile is 0, since bucket 0's upper bound is 1). *)
let percentile_bounds_quantile =
  QCheck.Test.make ~count:300 ~name:"percentile bounds true quantile"
    QCheck.(pair (list_of_size Gen.(1 -- 60) (int_bound 100_000)) (float_bound_inclusive 1.))
    (fun (samples, q) ->
      let h = H.make () in
      List.iter (H.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let true_q = List.nth sorted (min (n - 1) (rank - 1)) in
      let p = H.percentile h q in
      true_q <= p && p <= max 1 (2 * true_q))

(* --- registry ------------------------------------------------------------ *)

let test_registry_instruments () =
  let r = R.create () in
  check bool "enabled" true (R.enabled r);
  let c = R.counter r ~unit:"ops" ~help:"h" "a.count" in
  R.Counter.incr c;
  R.Counter.add c 4;
  check int "counter value" 5 (R.Counter.value c);
  let c' = R.counter r "a.count" in
  R.Counter.incr c';
  check int "same name, same instrument" 6 (R.Counter.value c);
  check (option int) "counter_value" (Some 6) (R.counter_value r "a.count");
  let g = R.gauge r ~unit:"pages" "a.gauge" in
  R.Gauge.set g 3;
  R.Gauge.add g (-1);
  check int "gauge" 2 (R.Gauge.value g);
  ignore (R.histogram r ~unit:"ns" "a.hist" : H.t);
  check (list string) "names sorted" [ "a.count"; "a.gauge"; "a.hist" ]
    (R.names r);
  check_raises "kind conflict"
    (Invalid_argument "Obs.Registry: a.count already registered as a counter")
    (fun () -> ignore (R.gauge r "a.count" : R.Gauge.t))

let test_registry_renderers () =
  let r = R.create () in
  R.Counter.add (R.counter r ~unit:"txns" ~help:"commits" "e.commits") 8;
  R.Gauge.set (R.gauge r "e.flag") 1;
  let h = R.histogram r ~unit:"ns" "e.lat" in
  H.observe h 100;
  (match J.validate (R.to_json r) with
  | Error e -> failf "to_json does not parse: %s" e
  | Ok json ->
      (match J.member "counters" json with
      | Some (J.Arr [ J.Obj fields ]) ->
          check bool "counter name present" true
            (List.mem_assoc "name" fields && List.mem_assoc "value" fields)
      | _ -> fail "counters array shape"));
  let text = R.to_text r in
  check bool "text mentions commits" true
    (Str_contains.contains text "e.commits");
  check bool "text mentions unit" true (Str_contains.contains text "txns")

let test_registry_noop () =
  check bool "noop disabled" false (R.enabled R.noop);
  let c = R.counter R.noop "x.y" in
  R.Counter.incr c;
  check int "noop counters still count" 1 (R.Counter.value c);
  let h = R.histogram R.noop "x.h" in
  check bool "noop histograms are inactive" true (H.time h (fun () -> true));
  check int "noop histogram observed nothing" 0 (H.count h)

(* --- span tracing -------------------------------------------------------- *)

let make_trace ?capacity () =
  let t = ref 0 in
  let clock () = t := !t + 100; !t in
  T.create ?capacity ~clock ()

let test_span_nesting () =
  let tr = make_trace () in
  let result =
    T.with_span tr "outer" (fun () ->
        T.with_span tr ~args:[ ("k", "v") ] "inner" (fun () -> 42))
  in
  check int "result" 42 result;
  check bool "well formed" true (T.well_formed tr);
  check int "no open spans" 0 (T.depth tr);
  match T.events tr with
  | [ inner; outer ] ->
      (* inner closes first, so it is recorded first *)
      check string "inner name" "inner" inner.T.name;
      check string "outer name" "outer" outer.T.name;
      check int "inner depth" 1 inner.T.depth;
      check int "outer depth" 0 outer.T.depth;
      check bool "nesting: inner within outer" true
        (outer.T.start_ns <= inner.T.start_ns
        && inner.T.start_ns + inner.T.dur_ns
           <= outer.T.start_ns + outer.T.dur_ns);
      check (list (pair string string)) "args" [ ("k", "v") ] inner.T.args
  | evs -> failf "expected 2 events, got %d" (List.length evs)

let test_span_errors_and_noop () =
  let tr = make_trace () in
  check_raises "end without begin"
    (Invalid_argument "Obs.Trace.end_span: no open span") (fun () ->
      T.end_span tr);
  (* a raising thunk still closes its span *)
  (try T.with_span tr "boom" (fun () -> raise Exit) with Exit -> ());
  check bool "well formed after raise" true (T.well_formed tr);
  check int "span recorded" 1 (T.recorded tr);
  (* the noop recorder ignores everything, including stray end_span *)
  T.end_span T.noop;
  T.begin_span T.noop "x";
  check int "noop records nothing" 0 (T.recorded T.noop);
  check int "noop clock" 0 (T.now T.noop)

let test_ring_eviction () =
  let tr = make_trace ~capacity:2 () in
  List.iter
    (fun name -> T.with_span tr name (fun () -> ()))
    [ "a"; "b"; "c" ];
  check int "recorded counts evictions" 3 (T.recorded tr);
  check int "dropped" 1 (T.dropped tr);
  check (list string) "oldest evicted, order kept" [ "b"; "c" ]
    (List.map (fun e -> e.T.name) (T.events tr))

let test_chrome_dump () =
  let tr = make_trace () in
  T.with_span tr ~tid:3 "exec.txn" (fun () -> ());
  T.emit tr ~name:"wal.flush" ~start_ns:500 ~dur_ns:250 ();
  match J.validate (T.to_chrome tr) with
  | Error e -> failf "chrome dump does not parse: %s" e
  | Ok json -> (
      match J.member "traceEvents" json with
      | Some (J.Arr events) ->
          check int "two events" 2 (List.length events);
          List.iter
            (fun e ->
              match
                (J.member "ph" e, J.member "ts" e, J.member "dur" e,
                 J.member "pid" e, J.member "tid" e)
              with
              | Some (J.Str "X"), Some (J.Num ts), Some (J.Num _),
                Some (J.Num _), Some (J.Num _) ->
                  check bool "timestamps normalized to >= 0" true (ts >= 0.)
              | _ -> fail "complete-event fields missing")
            events
      | _ -> fail "missing traceEvents")

(* --- the catalogue lint -------------------------------------------------- *)

let codes ds = List.map (fun d -> d.Analysis.Diagnostic.code) ds

let test_obs_lint () =
  let catalogue =
    "## Metric catalogue\n\
     `pool.hits` counter; `fault.torn.*` per-site family.\n\
     ## Span tracing\n\
     `engine.commit` is a span, not a metric.\n"
  in
  (* fully covered: exact name, glob member *)
  check (list string) "covered" []
    (codes
       (Analysis.Obs_lint.lint
          ~registered:[ "pool.hits"; "fault.torn.page_N_write" ]
          ~catalogue_text:catalogue));
  (* an unregistered metric trips OB001 *)
  check (list string) "undocumented" [ "OB001" ]
    (codes
       (Analysis.Obs_lint.lint
          ~registered:[ "pool.hits"; "pool.misses" ]
          ~catalogue_text:catalogue));
  (* a documented-but-gone name in a known family trips OB002 *)
  check (list string) "stale" [ "OB002" ]
    (codes
       (Analysis.Obs_lint.lint ~registered:[ "pool.misses" ]
          ~catalogue_text:"## Metric catalogue\n`pool.hits` `pool.misses`\n"));
  (* the glob must not cover by raw prefix: pool.* covers pool.hits only *)
  check (list string) "glob needs the dot" [ "OB001" ]
    (codes
       (Analysis.Obs_lint.lint ~registered:[ "poolx.hits" ]
          ~catalogue_text:"## Metric catalogue\n`pool.*`\n"));
  (* span names outside the catalogue section are invisible to the lint *)
  check (list string) "section scoping" []
    (codes
       (Analysis.Obs_lint.lint ~registered:[ "pool.hits" ]
          ~catalogue_text:catalogue))

let suite =
  [
    test_case "histogram bucket geometry" `Quick test_bucket_geometry;
    test_case "histogram counts and clamping" `Quick test_histogram_counts;
    test_case "percentile units" `Quick test_percentile_units;
    test_case "inactive timer skips the clock" `Quick
      test_time_inactive_skips_clock;
    QCheck_alcotest.to_alcotest percentile_bounds_quantile;
    test_case "registry instruments" `Quick test_registry_instruments;
    test_case "registry renderers" `Quick test_registry_renderers;
    test_case "noop registry" `Quick test_registry_noop;
    test_case "span nesting" `Quick test_span_nesting;
    test_case "span errors and noop recorder" `Quick
      test_span_errors_and_noop;
    test_case "ring eviction" `Quick test_ring_eviction;
    test_case "chrome trace dump" `Quick test_chrome_dump;
    test_case "metric-catalogue lint" `Quick test_obs_lint;
  ]
