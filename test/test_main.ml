let () =
  Alcotest.run "dbmeta"
    [
      ("support", Test_support.suite);
      ("relational", Test_relational.suite);
      ("calculus", Test_calculus.suite);
      ("datalog", Test_datalog.suite);
      ("dependencies", Test_dependencies.suite);
      ("transactions", Test_transactions.suite);
      ("incomplete", Test_incomplete.suite);
      ("sat", Test_sat.suite);
      ("metatheory", Test_metatheory.suite);
      ("extensions", Test_extensions.suite);
      ("extensions2", Test_extensions2.suite);
      ("access-nested", Test_access_nested.suite);
      ("access-edge", Test_access_edge.suite);
      ("storage", Test_storage.suite);
      ("planner", Test_planner.suite);
      ("integration", Test_integration.suite);
      ("analysis", Test_analysis.suite);
      ("executor", Test_executor.suite);
      ("distributed", Test_distributed.suite);
      ("replication", Test_replication.suite);
      ("obs", Test_obs.suite);
    ]
