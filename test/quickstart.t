The README's "Quickstart" transcript, replayed verbatim.  If this test
fails, the manual and the binary disagree: fix the code or fix
README.md, but keep the two identical — the command lines and expected
output below must match the README's ```console block byte for byte.

  $ cat > students.csv <<'EOF'
  > sid:int,sname:string,gpa:float
  > 1,codd,4.0
  > 2,ullman,3.5
  > 3,papadimitriou,3.9
  > EOF
  $ dbmeta db init uni.db
  created uni.db (1 pages, wal at uni.db.wal)
  $ dbmeta db load uni.db -t students=students.csv
  loaded students: 3 tuples
  $ dbmeta db query uni.db 'project[sname](select[gpa >= 3.8](students))'
  sname        
  -------------
  codd         
  papadimitriou
  $ dbmeta db init repl.db
  created repl.db (1 pages, wal at repl.db.wal)
  $ dbmeta db exec repl.db --replicas=2 --txns 4 --seed 1
  workload: 4 txns x 5 ops over 8 items (50% writes, skew 0.5), seed 1
  replication: 3 node(s), sync=quorum, epoch 1
  committed 4/4  acked 4  local-only 0
  worst lag 0 byte(s), 12 net tick(s)
  $ dbmeta db failover repl.db
  failover: node 1 promoted to primary (epoch 2); node 0 rejoins as a replica
  replicas healed; worst lag 0 byte(s)
  $ dbmeta lint repl repl.db
  no diagnostics

Past the README transcript: the post-failover group keeps serving
quorum commits under the bumped epoch, and the status surfaces agree.

  $ dbmeta db exec repl.db --replicas=2 --txns 2 --seed 2
  workload: 2 txns x 5 ops over 8 items (50% writes, skew 0.5), seed 2
  replication: 3 node(s), sync=quorum, epoch 2
  committed 2/2  acked 2  local-only 0
  worst lag 0 byte(s), 8 net tick(s)
  $ dbmeta db repl status repl.db | head -1
  group: 3 node(s), sync=quorum, epoch 2, primary node 1
  $ dbmeta lint repl repl.db
  no diagnostics
