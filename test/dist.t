Sharded atomic commit from the command line: --shards=N partitions the
item space by hash across N engines and runs every multi-shard
transaction through a two-phase-commit coordinator whose log lives at
DB.2pc.  The model check folds every shard's surviving log (plus the
coordinator's decisions) through the Transactions.Recovery model.

  $ dbmeta db exec dist.db --shards=2 --txns 6 --ops 4 --items 12 --seed 3 --verify --verify-wal
  workload: 6 txns x 4 ops over 12 items (50% writes, skew 0.5), seed 3
  committed 6/6  restarts 1  deadlocks 1  timeouts 0  commit-aborts 0
  throughput: 0.0690 commits/step (87 steps, 3 wasted ops, 13 net ticks)
  model check: ok
  shard 0 wal audit: clean (11 record(s), 171 byte(s))
  shard 1 wal audit: clean (31 record(s), 631 byte(s))

A sharded database is a family of files — no dist.db itself, one
engine (and WAL) per shard, and the coordinator log:

  $ ls dist.db* | sort
  dist.db.2pc
  dist.db.shard0
  dist.db.shard0.wal
  dist.db.shard1
  dist.db.shard1.wal

Each shard is an ordinary single-node database; the usual commands
work on it directly:

  $ dbmeta db status dist.db.shard0 | head -2
  file: dist.db.shard0 (format v1, 2 pages of 4096 bytes)
  recovery: checkpoint=162 winners=[6,7] losers=[] redo=0 skipped=0 undone=0

Crashing the coordinator mid-protocol (--crash-after counts every
durable I/O, the coordinator log's included) leaves transactions
prepared on some shards — in doubt until the termination protocol
reads the coordinator's log:

  $ dbmeta db exec crash.db --shards=2 --txns 8 --ops 5 --items 10 --seed 5 --crash-after 25
  workload: 8 txns x 5 ops over 10 items (50% writes, skew 0.5), seed 5
  committed 5/8  restarts 6  deadlocks 6  timeouts 0  commit-aborts 0
  throughput: 0.0360 commits/step (139 steps, 17 wasted ops, 15 net ticks)
  simulated crash at: coord flush (io 25)
  run 'dbmeta db recover crash.db --shards=2' to resolve in-doubt transactions and repair the shards

The survivor logs are inspectable offline.  The commit lint
cross-checks the coordinator log against every shard WAL — in-doubt
transactions are warnings (2C002), never errors; an error would mean
lost or contradictory decisions:

  $ dbmeta lint commit crash.db
  warning[2C002]: shard 0 leaves transaction 14 prepared (in doubt) — no surviving decision; restart recovery will presume abort
    --> shard 0: prepare(14)
  warning[2C002]: shard 1 leaves transaction 14 prepared (in doubt) — no surviving decision; restart recovery will presume abort
    --> shard 1: prepare(14)
  0 error(s), 2 warning(s), 0 info(s)

Recovery runs the termination protocol before opening the shards: a
prepared transaction whose Decide(commit) survived is completed, the
rest are presumed aborted:

  $ dbmeta db recover crash.db --verify-wal
  resolution: 2 in-doubt transaction(s) — 0 completed from the coordinator's decision, 2 presumed aborted
  shard 0 recovery: checkpoint=none winners=[2,3,8,11] losers=[14] redo=13 skipped=0 undone=2
  shard 1 recovery: checkpoint=none winners=[7,8,11] losers=[14] redo=4 skipped=0 undone=1
  items: 6 across 2 shard(s)
  shard 0 wal audit: clean (34 record(s), 734 byte(s))
  shard 1 wal audit: clean (18 record(s), 326 byte(s))

  $ dbmeta lint commit crash.db
  no diagnostics

Message-level faults: drop every COMMIT message to shard 1, so the
decision is durable but undeliverable — the transactions strand (their
locks stay held) and the run exits 1:

  $ dbmeta db exec part.db --shards=2 --txns 5 --ops 4 --items 8 --seed 7 --faults 'drop@commit shard 1=1,seed=2'
  workload: 5 txns x 4 ops over 8 items (50% writes, skew 0.5), seed 7
  faults: drop@commit shard 1=1,seed=2
  committed 2/5  restarts 0  deadlocks 0  timeouts 0  commit-aborts 0
  throughput: 0.0000 commits/step (200002 steps, 0 wasted ops, 1066749 net ticks)
  stranded: 2 decision(s) undelivered; their locks stay held and restart recovery will complete them
  [1]

  $ dbmeta lint commit part.db
  warning[2C002]: shard 1 leaves transaction 1 prepared (in doubt) — the coordinator decided commit; restart resolution will complete it
    --> shard 1: prepare(1)
  warning[2C002]: shard 1 leaves transaction 2 prepared (in doubt) — the coordinator decided commit; restart resolution will complete it
    --> shard 1: prepare(2)
  0 error(s), 2 warning(s), 0 info(s)

Restart delivers the stranded commits from the coordinator's log:

  $ dbmeta db recover part.db
  resolution: 2 in-doubt transaction(s) — 2 completed from the coordinator's decision, 0 presumed aborted
  shard 0 recovery: checkpoint=144 winners=[1,2] losers=[] redo=0 skipped=0 undone=0
  shard 1 recovery: checkpoint=none winners=[1,2] losers=[] redo=2 skipped=0 undone=0
  items: 4 across 2 shard(s)

  $ dbmeta lint commit part.db
  no diagnostics

The lint is a usage error on a base with no shard files:

  $ dbmeta lint commit nowhere.db
  dbmeta: no shard files for "nowhere.db" (expected nowhere.db.shard0, nowhere.db.shard1, ...)
  [2]
