(* Edge cases for the access methods that the main suites skirt around:
   B+tree deletion interacting with the leaf chain and range scans,
   duplicate-key payload ordering, the single-type-per-tree guard, and
   extendible-hash directory growth under skew. *)

module V = Relational.Value

let vi i = V.Int i

(* --- B+tree: delete, then range over the leaf chain --------------------- *)

let test_btree_delete_then_range () =
  (* small order so the tree is several leaves deep; delete every third
     key, then range-scan across the former leaf boundaries *)
  let t = Access.Btree.create ~order:3 () in
  for i = 1 to 60 do
    Access.Btree.insert t (vi i) (i * 100)
  done;
  for i = 1 to 60 do
    if i mod 3 = 0 then
      Alcotest.(check bool) (Printf.sprintf "delete %d" i) true
        (Access.Btree.delete t (vi i))
  done;
  Alcotest.(check bool) "delete of gone key is false" false
    (Access.Btree.delete t (vi 3));
  Alcotest.(check int) "40 keys left" 40 (Access.Btree.cardinality t);
  (match Access.Btree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("invariants after lazy deletes: " ^ e));
  let got = Access.Btree.range t ~lo:(vi 10) ~hi:(vi 30) in
  let expected =
    List.filter (fun i -> i mod 3 <> 0) (List.init 21 (fun k -> k + 10))
  in
  Alcotest.(check (list int)) "range skips deleted keys" expected
    (List.map (fun (k, _) -> match k with V.Int i -> i | _ -> -1) got);
  List.iter
    (fun (k, ps) ->
      match k with
      | V.Int i -> Alcotest.(check (list int)) "payload intact" [ i * 100 ] ps
      | _ -> Alcotest.fail "non-int key")
    got;
  (* deleted keys answer empty, survivors still answer *)
  Alcotest.(check (list int)) "deleted key finds nothing" []
    (Access.Btree.find t (vi 30));
  Alcotest.(check (list int)) "survivor unharmed" [ 2900 ]
    (Access.Btree.find t (vi 29))

let test_btree_delete_everything () =
  let t = Access.Btree.create ~order:3 () in
  for i = 1 to 25 do
    Access.Btree.insert t (vi i) i
  done;
  for i = 25 downto 1 do
    ignore (Access.Btree.delete t (vi i) : bool)
  done;
  Alcotest.(check int) "empty" 0 (Access.Btree.cardinality t);
  Alcotest.(check (list (pair string (list int)))) "range over empty tree" []
    (List.map
       (fun (k, ps) -> (V.to_literal k, ps))
       (Access.Btree.range t ~lo:(vi 1) ~hi:(vi 25)));
  (* the tree keeps working after total deletion *)
  Access.Btree.insert t (vi 7) 70;
  Alcotest.(check (list int)) "reinsert works" [ 70 ] (Access.Btree.find t (vi 7))

let test_btree_duplicate_payload_order () =
  let t = Access.Btree.create ~order:4 () in
  (* interleave duplicates with enough other keys to force splits *)
  for i = 1 to 30 do
    Access.Btree.insert t (vi i) 0
  done;
  List.iteri
    (fun n p -> ignore n; Access.Btree.insert t (vi 17) p)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "oldest first, insertion order" [ 0; 1; 2; 3; 4; 5 ]
    (Access.Btree.find t (vi 17));
  let in_range =
    List.assoc (vi 17) (Access.Btree.range t ~lo:(vi 17) ~hi:(vi 17))
  in
  Alcotest.(check (list int)) "range sees the same payload list"
    [ 0; 1; 2; 3; 4; 5 ] in_range

let test_btree_key_type_clash () =
  let t = Access.Btree.create () in
  Access.Btree.insert t (V.String "a") 1;
  Alcotest.(check bool) "int into string tree" true
    (match Access.Btree.insert t (V.Int 1) 2 with
    | () -> false
    | exception Access.Btree.Key_type_clash _ -> true);
  Alcotest.(check bool) "float into string tree" true
    (match Access.Btree.insert t (V.Float 1.0) 3 with
    | () -> false
    | exception Access.Btree.Key_type_clash _ -> true);
  (* the failed inserts must not have damaged anything *)
  Alcotest.(check (list int)) "original intact" [ 1 ]
    (Access.Btree.find t (V.String "a"));
  Alcotest.(check int) "cardinality unchanged" 1 (Access.Btree.cardinality t)

(* --- extendible hashing -------------------------------------------------- *)

let test_hash_growth () =
  let h = Access.Hash_index.create ~bucket_capacity:2 () in
  let n = 200 in
  for i = 1 to n do
    Access.Hash_index.insert h (vi i) (i * 7)
  done;
  Alcotest.(check int) "all keys present" n (Access.Hash_index.cardinality h);
  Alcotest.(check bool) "directory doubled repeatedly" true
    (Access.Hash_index.global_depth h >= 5);
  Alcotest.(check int) "directory size = 2^depth"
    (1 lsl Access.Hash_index.global_depth h)
    (Access.Hash_index.directory_size h);
  (match Access.Hash_index.check_invariants h with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("hash invariants after growth: " ^ e));
  for i = 1 to n do
    Alcotest.(check (list int)) (Printf.sprintf "find %d" i) [ i * 7 ]
      (Access.Hash_index.find h (vi i))
  done;
  Alcotest.(check (list int)) "absent key" [] (Access.Hash_index.find h (vi 0))

let test_hash_duplicates_and_delete () =
  let h = Access.Hash_index.create ~bucket_capacity:2 () in
  List.iter (fun p -> Access.Hash_index.insert h (V.String "dup") p) [ 1; 2; 3 ];
  Access.Hash_index.insert h (V.String "other") 9;
  Alcotest.(check (list int)) "payload accumulation order" [ 1; 2; 3 ]
    (Access.Hash_index.find h (V.String "dup"));
  Alcotest.(check bool) "delete removes the key" true
    (Access.Hash_index.delete h (V.String "dup"));
  Alcotest.(check (list int)) "gone" [] (Access.Hash_index.find h (V.String "dup"));
  Alcotest.(check bool) "second delete is false" false
    (Access.Hash_index.delete h (V.String "dup"));
  Alcotest.(check (list int)) "unrelated key survives" [ 9 ]
    (Access.Hash_index.find h (V.String "other"));
  (match Access.Hash_index.check_invariants h with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("hash invariants after delete: " ^ e))

(* deletions never shrink the directory: depth is monotone *)
let prop_hash_depth_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"hash directory growth is monotone"
       QCheck2.Gen.(list_size (int_range 0 120) (int_range 0 40))
       (fun ops ->
         let h = Access.Hash_index.create ~bucket_capacity:2 () in
         let depth = ref (Access.Hash_index.global_depth h) in
         List.for_all
           (fun k ->
             (* even op: insert; odd op: delete that key *)
             if k mod 2 = 0 then Access.Hash_index.insert h (vi k) k
             else ignore (Access.Hash_index.delete h (vi k) : bool);
             let d = Access.Hash_index.global_depth h in
             let ok =
               d >= !depth
               && Access.Hash_index.directory_size h = 1 lsl d
               && Access.Hash_index.check_invariants h = Ok ()
             in
             depth := d;
             ok)
           ops))

let suite =
  [
    Alcotest.test_case "btree delete then range" `Quick test_btree_delete_then_range;
    Alcotest.test_case "btree delete everything" `Quick test_btree_delete_everything;
    Alcotest.test_case "btree duplicate payload order" `Quick
      test_btree_duplicate_payload_order;
    Alcotest.test_case "btree key type clash" `Quick test_btree_key_type_clash;
    Alcotest.test_case "hash growth" `Quick test_hash_growth;
    Alcotest.test_case "hash duplicates and delete" `Quick
      test_hash_duplicates_and_delete;
    prop_hash_depth_monotone;
  ]
