(* Tests for the sharded atomic-commit stack: router determinism, the
   coordinator log codec and its torn-tail tolerance, the message layer's
   fault draws, 2PC happy paths and abort paths, stranded decisions
   resolved by the termination protocol, a crash matrix over every
   durable I/O point, the commit lint's 2C codes on synthetic logs, and
   the QCheck crash-sweep property: survivor logs always lint clean. *)

module C = Distributed.Coordinator
module CL = Distributed.Coord_log
module DX = Distributed.Executor
module N = Distributed.Net
module R = Distributed.Router
module E = Storage.Engine
module F = Storage.Fault
module W = Storage.Wal
module S = Transactions.Schedule

let tmp_counter = ref 0

let fresh_base () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dbmeta_dist_test_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup base n =
  let rm p = if Sys.file_exists p then Sys.remove p in
  rm (C.coord_path base);
  for k = 0 to n - 1 do
    rm (C.shard_path base k);
    rm (E.wal_path (C.shard_path base k))
  done

(* the first item name that routes to shard [k] *)
let item_on ~shards k =
  let rec go i =
    let it = Printf.sprintf "x%d" i in
    if R.shard_of ~shards it = k then it else go (i + 1)
  in
  go 0

let injector spec =
  let f = F.create () in
  F.configure f (F.spec_of_string spec);
  f

(* --- router -------------------------------------------------------------- *)

let test_router_deterministic () =
  Alcotest.(check int) "stable" (R.hash "x1") (R.hash "x1");
  for shards = 1 to 8 do
    for i = 0 to 63 do
      let k = R.shard_of ~shards (Printf.sprintf "x%d" i) in
      Alcotest.(check bool) "in range" true (k >= 0 && k < shards)
    done
  done;
  Alcotest.(check int) "one shard is total" 0 (R.shard_of ~shards:1 "anything")

let test_router_spreads () =
  let shards = 4 in
  let hit = Array.make shards 0 in
  for i = 0 to 63 do
    let k = R.shard_of ~shards (Printf.sprintf "x%d" i) in
    hit.(k) <- hit.(k) + 1
  done;
  Array.iteri
    (fun k c ->
      Alcotest.(check bool) (Printf.sprintf "shard %d nonempty" k) true (c > 0))
    hit

let test_router_invalid () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Router.shard_of: shard count must be positive")
    (fun () -> ignore (R.shard_of ~shards:0 "x" : int))

(* --- fault-spec grammar: the new message kinds --------------------------- *)

let test_fault_spec_roundtrip () =
  let spec =
    F.spec_of_string "drop=0.5,delay@commit=0.25,part@prepare shard 1=1,seed=3"
  in
  let s = F.spec_to_string spec in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (Str_contains.contains s needle))
    [ "drop=0.5"; "delay@commit=0.25"; "part@prepare shard 1=1"; "seed=3" ]

let check_parse_error what input needles =
  match F.spec_of_string input with
  | _ -> Alcotest.failf "%s: %S parsed" what input
  | exception Invalid_argument msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "%s mentions %s" what needle)
            true
            (Str_contains.contains msg needle))
        ("the grammar is" :: needles)

let test_fault_spec_errors () =
  check_parse_error "no equals" "nope" [ "\"nope\""; "no '='" ];
  check_parse_error "unknown kind" "lag=0.5" [ "\"lag\"" ];
  check_parse_error "bad probability" "drop=monday"
    [ "\"monday\""; "probability" ];
  check_parse_error "out of range" "part=1.5" [ "\"1.5\"" ];
  check_parse_error "empty site" "drop@=0.5" [ "empty @site" ];
  check_parse_error "scoped scalar" "seed@wal=3" [ "no @site" ];
  check_parse_error "bad count" "crash=soon" [ "\"soon\""; "integer" ]

(* --- coordinator log: codec and torn tails -------------------------------- *)

let all_records =
  [
    CL.Begin { txn = 7; shards = [ 0; 1; 3 ] };
    CL.Vote { txn = 7; shard = 0; yes = true };
    CL.Vote { txn = 7; shard = 3; yes = false };
    CL.Decide { txn = 7; decision = CL.Abort };
    CL.Begin { txn = 8; shards = [ 1 ] };
    CL.Decide { txn = 8; decision = CL.Commit };
    CL.Forget 8;
  ]

let test_coord_log_roundtrip () =
  let base = fresh_base () in
  let path = C.coord_path base in
  let log, entries = CL.open_log path in
  Alcotest.(check int) "fresh log empty" 0 (List.length entries);
  List.iter (CL.append log) all_records;
  CL.flush log;
  CL.close log;
  let survivors = List.map (fun e -> e.CL.record) (CL.read_file path) in
  Alcotest.(check int) "all survive" (List.length all_records)
    (List.length survivors);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "record" (CL.record_to_string a)
        (CL.record_to_string b))
    all_records survivors;
  cleanup base 0

let test_coord_log_torn_tail () =
  let base = fresh_base () in
  let path = C.coord_path base in
  let log, _ = CL.open_log path in
  List.iter (CL.append log) all_records;
  CL.flush log;
  CL.close log;
  let whole = (Unix.stat path).Unix.st_size in
  (* tear the file mid-frame: the tolerant scan keeps the prefix *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (whole - 3);
  Unix.close fd;
  let survivors = CL.read_file path in
  Alcotest.(check int) "one frame lost" (List.length all_records - 1)
    (List.length survivors);
  (* reopening truncates the torn bytes away *)
  let log, entries = CL.open_log path in
  Alcotest.(check int) "reopen sees the prefix" (List.length survivors)
    (List.length entries);
  CL.close log;
  Alcotest.(check bool) "tail gone" true ((Unix.stat path).Unix.st_size < whole);
  cleanup base 0

(* --- net: draws and retries ----------------------------------------------- *)

let net_config = { N.msg_timeout = 4; max_attempts = 3; max_backoff = 8 }

let test_net_faultless () =
  let net = N.create ~fault:(injector "") ~seed:1 net_config in
  (match N.call net ~site:"prepare shard 0" (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "delivered" 42 v
  | Error _ -> Alcotest.fail "faultless call lost");
  match N.once net ~site:"commit shard 0" (fun () -> "ack") with
  | N.Reply v -> Alcotest.(check string) "once delivers" "ack" v
  | N.Lost _ -> Alcotest.fail "faultless once lost"

let test_net_total_drop () =
  let net = N.create ~fault:(injector "drop=1,seed=2") ~seed:2 net_config in
  let ran = ref 0 in
  (match N.call net ~site:"prepare shard 0" (fun () -> incr ran) with
  | Ok () -> Alcotest.fail "dropped call delivered"
  | Error processed ->
      Alcotest.(check bool) "handler never ran" false processed);
  Alcotest.(check int) "no delivery" 0 !ran;
  Alcotest.(check bool) "time passed" true (N.ticks net > 0)

let test_net_partition_may_process () =
  (* a partitioned exchange can run the handler and lose the reply —
     the caller is told processed=true so it can account strandedness *)
  let net = N.create ~fault:(injector "part=1,seed=5") ~seed:5 net_config in
  let ran = ref 0 in
  let processed_any =
    match N.call net ~site:"commit shard 1" (fun () -> incr ran) with
    | Ok () -> Alcotest.fail "partitioned call delivered"
    | Error processed -> processed
  in
  Alcotest.(check bool) "processed iff handler ran" (!ran > 0) processed_any

(* --- 2PC: commit and abort paths ------------------------------------------ *)

let test_two_shard_commit () =
  let base = fresh_base () in
  let coord = C.open_dist ~shards:2 base in
  let a = item_on ~shards:2 0 and b = item_on ~shards:2 1 in
  let txn = C.begin_txn coord in
  C.write coord ~txn a 10;
  C.write coord ~txn b 20;
  (match C.commit coord ~txn with
  | C.Committed -> ()
  | C.Aborted why -> Alcotest.failf "aborted: %s" why);
  Alcotest.(check (list (pair string int))) "both visible"
    (List.sort compare [ (a, 10); (b, 20) ])
    (C.items coord);
  Alcotest.(check (list int)) "nothing stranded" [] (C.stranded_txns coord);
  C.close coord;
  (* the protocol's paper trail: votes, a forced commit, a forget *)
  let records = List.map (fun e -> e.CL.record) (CL.read_file (C.coord_path base)) in
  let has f = List.exists f records in
  Alcotest.(check bool) "Begin logged" true
    (has (function CL.Begin { txn = t; _ } -> t = txn | _ -> false));
  Alcotest.(check bool) "Decide commit logged" true
    (has (function
      | CL.Decide { txn = t; decision = CL.Commit } -> t = txn
      | _ -> false));
  Alcotest.(check bool) "Forget logged" true
    (has (function CL.Forget t -> t = txn | _ -> false));
  (* durable across a reopen *)
  let coord = C.open_dist base in
  Alcotest.(check int) "discover finds both shards" 2 (C.shard_count coord);
  Alcotest.(check int) "reread a" 10 (C.read coord a);
  Alcotest.(check int) "reread b" 20 (C.read coord b);
  C.close coord;
  Alcotest.(check (list Alcotest.string)) "commit lint clean" []
    (List.filter_map
       (fun d ->
         if d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error then
           Some d.Analysis.Diagnostic.code
         else None)
       (Analysis.Commit_lint.lint_base base));
  cleanup base 2

let test_one_phase_commit () =
  let base = fresh_base () in
  let coord = C.open_dist ~shards:2 base in
  let a = item_on ~shards:2 0 in
  let txn = C.begin_txn coord in
  C.write coord ~txn a 5;
  (match C.commit coord ~txn with
  | C.Committed -> ()
  | C.Aborted why -> Alcotest.failf "aborted: %s" why);
  C.close coord;
  (* single-participant: no protocol records at all — presumed-abort
     bookkeeping is for transactions the coordinator had to decide *)
  Alcotest.(check int) "coordinator log stays empty" 0
    (List.length (CL.read_file (C.coord_path base)));
  cleanup base 2

let test_lost_prepare_aborts () =
  let base = fresh_base () in
  let spec = F.spec_of_string "drop@prepare=1,seed=4" in
  let coord = C.open_dist ~shards:2 ~faults:spec base in
  let a = item_on ~shards:2 0 and b = item_on ~shards:2 1 in
  let txn = C.begin_txn coord in
  C.write coord ~txn a 1;
  C.write coord ~txn b 2;
  (match C.commit coord ~txn with
  | C.Committed -> Alcotest.fail "committed without any PREPARE delivered"
  | C.Aborted _ -> ());
  C.close coord;
  let coord = C.open_dist base in
  Alcotest.(check (list (pair string int))) "nothing committed" []
    (C.items coord);
  C.close coord;
  cleanup base 2

let test_voluntary_abort () =
  let base = fresh_base () in
  let coord = C.open_dist ~shards:2 base in
  let a = item_on ~shards:2 0 and b = item_on ~shards:2 1 in
  let txn = C.begin_txn coord in
  C.write coord ~txn a 1;
  C.write coord ~txn b 2;
  C.abort coord ~txn;
  Alcotest.(check (list (pair string int))) "rolled back" [] (C.items coord);
  C.close coord;
  cleanup base 2

(* --- stranded decisions: nudge and the termination protocol --------------- *)

let test_stranded_commit_resolved_at_restart () =
  let base = fresh_base () in
  (* every COMMIT message to shard 1 is dropped outright: the decision
     is durable but undeliverable, so the transaction strands *)
  let spec = F.spec_of_string "drop@commit shard 1=1,seed=1" in
  let coord = C.open_dist ~shards:2 ~faults:spec base in
  let a = item_on ~shards:2 0 and b = item_on ~shards:2 1 in
  let txn = C.begin_txn coord in
  C.write coord ~txn a 10;
  C.write coord ~txn b 20;
  (match C.commit coord ~txn with
  | C.Committed -> ()
  | C.Aborted why -> Alcotest.failf "decided abort: %s" why);
  Alcotest.(check bool) "stranded" true (C.is_stranded coord txn);
  C.nudge coord;
  Alcotest.(check bool) "nudge cannot land either" true
    (C.is_stranded coord txn);
  C.close coord;
  (* the survivor logs are the in-doubt shape the lint warns about *)
  let diags = Analysis.Commit_lint.lint_base base in
  Alcotest.(check bool) "2C002 warned" true
    (List.exists (fun d -> d.Analysis.Diagnostic.code = "2C002") diags);
  Alcotest.(check bool) "no errors" false
    (Analysis.Diagnostic.has_errors diags);
  (* restart without faults: the termination protocol completes it *)
  let coord = C.open_dist base in
  Alcotest.(check (pair int int)) "one commit completed" (1, 0)
    (C.resolved coord);
  Alcotest.(check (list (pair string int))) "atomic after all"
    (List.sort compare [ (a, 10); (b, 20) ])
    (C.items coord);
  C.close coord;
  Alcotest.(check bool) "lint clean after resolution" false
    (Analysis.Diagnostic.has_errors (Analysis.Commit_lint.lint_base base));
  cleanup base 2

(* --- the distributed executor --------------------------------------------- *)

let test_dist_executor_workload () =
  let base = fresh_base () in
  let coord = C.open_dist ~shards:2 base in
  let specs =
    Transactions.Workload.generate (Support.Rng.create 11)
      {
        Transactions.Workload.txns = 6;
        ops_per_txn = 4;
        items = 10;
        skew = 0.5;
        write_ratio = 0.6;
      }
  in
  let stats = DX.run ~config:{ DX.default_config with seed = 11 } coord specs in
  C.close coord;
  Alcotest.(check int) "all commit" 6 stats.DX.committed;
  Alcotest.(check int) "nothing stranded" 0 stats.DX.stranded;
  Alcotest.(check bool) "model agrees" true
    (C.model_divergence ~path:base = None);
  cleanup base 2

let test_dist_executor_cross_shard_deadlock () =
  let base = fresh_base () in
  let coord = C.open_dist ~shards:2 base in
  let a = item_on ~shards:2 0 and b = item_on ~shards:2 1 in
  let specs = [| [ S.Write a; S.Write b ]; [ S.Write b; S.Write a ] |] in
  let stats = DX.run ~config:{ DX.default_config with seed = 7 } coord specs in
  C.close coord;
  Alcotest.(check int) "both commit" 2 stats.DX.committed;
  Alcotest.(check bool) "model agrees" true
    (C.model_divergence ~path:base = None);
  cleanup base 2

(* --- crash matrix: every durable I/O point --------------------------------- *)

let run_crashy base crash_after =
  let specs =
    Transactions.Workload.generate (Support.Rng.create 23)
      {
        Transactions.Workload.txns = 5;
        ops_per_txn = 4;
        items = 8;
        skew = 0.5;
        write_ratio = 0.7;
      }
  in
  match C.open_dist ~shards:2 ~crash_after base with
  | exception F.Crash _ -> true
  | coord -> (
      let stats = DX.run ~config:{ DX.default_config with seed = 23 } coord specs in
      match stats.DX.crashed with
      | Some _ -> true
      | None -> (
          try
            C.close coord;
            false
          with F.Crash _ ->
            C.crash coord;
            true))

let survivors_clean base =
  let wal_errors k =
    List.filter
      (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
      (Analysis.Wal_lint.lint
         (W.report_file (E.wal_path (C.shard_path base k))))
  in
  let commit_errors =
    List.filter
      (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error)
      (Analysis.Commit_lint.lint_base base)
  in
  wal_errors 0 = [] && wal_errors 1 = [] && commit_errors = []

let test_crash_matrix () =
  (* crash at the N-th durable I/O for every N until the run completes:
     each prefix must leave survivor logs that lint clean and a state
     the model check accepts after recovery *)
  let rec sweep i =
    if i > 400 then Alcotest.fail "crash matrix did not terminate";
    let base = fresh_base () in
    let crashed = run_crashy base i in
    Alcotest.(check bool)
      (Printf.sprintf "survivors clean at io %d" i)
      true (survivors_clean base);
    Alcotest.(check bool)
      (Printf.sprintf "model agrees at io %d" i)
      true
      (C.model_divergence ~path:base = None);
    cleanup base 2;
    if crashed then sweep (i + 1)
  in
  sweep 0

(* --- QCheck: survivor logs of any faulted run lint clean ------------------- *)

let dist_fault_specs =
  [|
    "crash=9";
    "crash=17,drop=0.2";
    "crash=13,delay=0.3";
    "crash=21,part=0.15";
    "drop=0.3,delay=0.2,part=0.1";
    "crash=29,drop=0.1,part=0.1";
    "crash=25,drop=0.15,delay=0.15,part=0.1";
  |]

let prop_crash_sweep_lints_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25
       ~name:"2PC survivor logs pass lint wal + lint commit"
       (QCheck2.Gen.int_range 0 100_000)
       (fun seed ->
         let spec0 = dist_fault_specs.(seed mod Array.length dist_fault_specs) in
         let spec = F.spec_of_string (Printf.sprintf "%s,seed=%d" spec0 seed) in
         let base = fresh_base () in
         let programs =
           Transactions.Workload.generate (Support.Rng.create seed)
             {
               Transactions.Workload.txns = 4;
               ops_per_txn = 4;
               items = 8;
               skew = 0.5;
               write_ratio = 0.6;
             }
         in
         (match C.open_dist ~shards:2 ~faults:spec base with
         | exception F.Crash _ -> ()
         | coord -> (
             let stats =
               DX.run ~config:{ DX.default_config with seed } coord programs
             in
             match stats.DX.crashed with
             | Some _ -> ()
             | None -> ( try C.close coord with F.Crash _ -> C.crash coord)));
         let ok =
           survivors_clean base && C.model_divergence ~path:base = None
         in
         cleanup base 2;
         ok))

(* --- commit lint: each 2C code on synthetic logs --------------------------- *)

let centry record = { CL.off = 0; record }
let wentry record = { W.lsn = 0; record }

let codes ?(severity = Analysis.Diagnostic.Error) input =
  List.filter_map
    (fun d ->
      if d.Analysis.Diagnostic.severity = severity then
        Some d.Analysis.Diagnostic.code
      else None)
    (Analysis.Commit_lint.lint input)
  |> List.sort_uniq compare

let mk coord shards =
  {
    Analysis.Commit_lint.coord = List.map centry coord;
    shards = List.map (fun (k, rs) -> (k, List.map wentry rs)) shards;
  }

let complete_shard txn = [ W.Begin txn; W.Prepare txn; W.Commit txn ]

let test_lint_clean_protocol () =
  let input =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0; 1 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Vote { txn = 1; shard = 1; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
        CL.Forget 1;
      ]
      [ (0, complete_shard 1); (1, complete_shard 1) ]
  in
  Alcotest.(check (list string)) "no errors" [] (codes input);
  Alcotest.(check (list string)) "no warnings" []
    (codes ~severity:Analysis.Diagnostic.Warning input)

let test_lint_2c001_decide_without_votes () =
  let input =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0; 1 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
      ]
      [ (0, complete_shard 1); (1, complete_shard 1) ]
  in
  Alcotest.(check (list string)) "missing vote" [ "2C001" ] (codes input);
  let orphan =
    mk [ CL.Decide { txn = 9; decision = CL.Commit } ] [ (0, []); (1, []) ]
  in
  Alcotest.(check (list string)) "decide without begin" [ "2C001" ]
    (codes orphan)

let test_lint_2c002_prepared_forever () =
  let input =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0; 1 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Vote { txn = 1; shard = 1; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
      ]
      [ (0, complete_shard 1); (1, [ W.Begin 1; W.Prepare 1 ]) ]
  in
  Alcotest.(check (list string)) "no errors" [] (codes input);
  Alcotest.(check (list string)) "in doubt warned" [ "2C002" ]
    (codes ~severity:Analysis.Diagnostic.Warning input)

let test_lint_2c003_commit_without_prepare () =
  let input =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0; 1 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Vote { txn = 1; shard = 1; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
      ]
      [ (0, complete_shard 1); (1, [ W.Begin 1; W.Commit 1 ]) ]
  in
  Alcotest.(check (list string)) "lost prepare" [ "2C003" ] (codes input);
  (* a single-shard (one-phase) transaction never prepares: exempt *)
  let onephase = mk [] [ (0, [ W.Begin 4; W.Commit 4 ]); (1, []) ] in
  Alcotest.(check (list string)) "1PC exempt" [] (codes onephase)

let test_lint_2c004_mixed_outcomes () =
  let input =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0; 1 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Vote { txn = 1; shard = 1; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
      ]
      [ (0, complete_shard 1); (1, [ W.Begin 1; W.Prepare 1; W.Abort 1 ]) ]
  in
  Alcotest.(check (list string)) "atomicity violation" [ "2C004" ]
    (codes input)

let test_lint_2c005_conflicting_decides () =
  let input =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
        CL.Decide { txn = 1; decision = CL.Abort };
      ]
      [ (0, complete_shard 1); (1, []) ]
  in
  Alcotest.(check (list string)) "conflict" [ "2C005" ] (codes input)

let test_lint_2c006_premature_forget () =
  let early =
    mk
      [
        CL.Begin { txn = 1; shards = [ 0; 1 ] };
        CL.Vote { txn = 1; shard = 0; yes = true };
        CL.Vote { txn = 1; shard = 1; yes = true };
        CL.Decide { txn = 1; decision = CL.Commit };
        CL.Forget 1;
      ]
      [ (0, complete_shard 1); (1, [ W.Begin 1; W.Prepare 1 ]) ]
  in
  Alcotest.(check (list string)) "forgot before ack" [ "2C006" ] (codes early);
  let undecided = mk [ CL.Forget 3 ] [ (0, []); (1, []) ] in
  Alcotest.(check (list string)) "forget without decide" [ "2C006" ]
    (codes undecided)

let suite =
  [
    ("router: deterministic and in range", `Quick, test_router_deterministic);
    ("router: spreads items", `Quick, test_router_spreads);
    ("router: rejects zero shards", `Quick, test_router_invalid);
    ("fault spec: message kinds round-trip", `Quick, test_fault_spec_roundtrip);
    ("fault spec: errors name the token", `Quick, test_fault_spec_errors);
    ("coord log: codec round-trip", `Quick, test_coord_log_roundtrip);
    ("coord log: torn tail tolerated", `Quick, test_coord_log_torn_tail);
    ("net: faultless delivery", `Quick, test_net_faultless);
    ("net: total drop exhausts retries", `Quick, test_net_total_drop);
    ("net: partition may process", `Quick, test_net_partition_may_process);
    ("2pc: two-shard commit", `Quick, test_two_shard_commit);
    ("2pc: single shard commits one-phase", `Quick, test_one_phase_commit);
    ("2pc: lost prepares decide abort", `Quick, test_lost_prepare_aborts);
    ("2pc: voluntary abort rolls back", `Quick, test_voluntary_abort);
    ( "2pc: stranded commit resolved at restart",
      `Quick,
      test_stranded_commit_resolved_at_restart );
    ("executor: sharded workload commits", `Quick, test_dist_executor_workload);
    ( "executor: cross-shard deadlock retries",
      `Quick,
      test_dist_executor_cross_shard_deadlock );
    ("crash matrix: every io point recovers", `Slow, test_crash_matrix);
    prop_crash_sweep_lints_clean;
    ("lint commit: clean protocol", `Quick, test_lint_clean_protocol);
    ("lint commit: 2C001", `Quick, test_lint_2c001_decide_without_votes);
    ("lint commit: 2C002", `Quick, test_lint_2c002_prepared_forever);
    ("lint commit: 2C003", `Quick, test_lint_2c003_commit_without_prepare);
    ("lint commit: 2C004", `Quick, test_lint_2c004_mixed_outcomes);
    ("lint commit: 2C005", `Quick, test_lint_2c005_conflicting_decides);
    ("lint commit: 2C006", `Quick, test_lint_2c006_premature_forget);
  ]
