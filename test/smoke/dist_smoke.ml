(* Fast distributed fault-matrix smoke for @check: a reduced sweep of
   shard counts x {message drops, message delays, coordinator crashes}
   over a 2PC workload, each cell checked three ways — the distributed
   model check, every shard WAL through the offline WAL verifier, and
   the survivor logs through the commit lint.  A reduced version of the
   exhaustive crash matrix in test/test_distributed.ml. *)

module C = Distributed.Coordinator
module DX = Distributed.Executor
module E = Storage.Engine
module F = Storage.Fault
module W = Storage.Wal
module D = Analysis.Diagnostic

let failures = ref 0

let say fmt = Printf.printf (fmt ^^ "\n%!")

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" s)
    fmt

let fresh_base =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dist_smoke_%d_%d.db" (Unix.getpid ()) !n)

let cleanup base shards =
  let rm p = if Sys.file_exists p then Sys.remove p in
  rm (C.coord_path base);
  for k = 0 to shards - 1 do
    rm (C.shard_path base k);
    rm (E.wal_path (C.shard_path base k))
  done

let workload ~seed =
  Transactions.Workload.generate (Support.Rng.create seed)
    {
      Transactions.Workload.txns = 4;
      ops_per_txn = 4;
      items = 8;
      skew = 0.5;
      write_ratio = 0.6;
    }

let errors diags = List.filter (fun d -> d.D.severity = D.Error) diags

let run_cell ~what ~shards ~spec ~seed =
  let base = fresh_base () in
  (match C.open_dist ~shards ~faults:(F.spec_of_string spec) base with
  | exception F.Crash _ -> ()
  | coord -> (
      let stats =
        DX.run ~config:{ DX.default_config with seed } coord (workload ~seed)
      in
      match stats.DX.crashed with
      | Some _ -> ()
      | None -> ( try C.close coord with F.Crash _ -> C.crash coord)));
  for k = 0 to shards - 1 do
    let diags =
      Analysis.Wal_lint.lint (W.report_file (E.wal_path (C.shard_path base k)))
    in
    if errors diags <> [] then
      fail "%s (shards %d spec %S seed %d): shard %d wal lint errors" what
        shards spec seed k
  done;
  if errors (Analysis.Commit_lint.lint_base base) <> [] then
    fail "%s (shards %d spec %S seed %d): commit lint errors" what shards spec
      seed;
  (match C.model_divergence ~path:base with
  | None -> ()
  | Some (expected, actual) ->
      let show kv =
        String.concat ", "
          (List.map (fun (i, v) -> Printf.sprintf "%s=%d" i v) kv)
      in
      fail "%s (shards %d spec %S seed %d): diverged\n  expected: %s\n  actual:   %s"
        what shards spec seed (show expected) (show actual));
  cleanup base shards

let () =
  let seeds = [ 1; 2 ] in
  List.iter
    (fun shards ->
      List.iter
        (fun (what, spec) ->
          List.iter
            (fun seed ->
              run_cell ~what ~shards
                ~spec:(Printf.sprintf "%s,seed=%d" spec seed)
                ~seed)
            seeds;
          say "%d-shard %s sweep: ok" shards what)
        [
          ("drop", "drop=0.25");
          ("delay", "delay=0.3");
          ("coordinator crash", "crash=13");
          ("crash+loss", "crash=19,drop=0.15,part=0.1");
        ])
    [ 2; 3 ];
  if !failures > 0 then exit 1;
  say "dist smoke: all clear"
