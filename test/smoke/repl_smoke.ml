(* Fast replication fault-matrix smoke for @check: a reduced sweep of
   {sync modes} x {message loss, crashes, crash+loss} over a
   WAL-shipping group, each cell healed by a faultless reopen and then
   checked three ways — every acked commit present on the primary,
   every node's WAL through the offline verifier, and the survivor
   files through the replication lint.  A reduced version of the
   QCheck sweep in test/test_replication.ml. *)

module G = Replication.Group
module M = Replication.Repl_meta
module E = Storage.Engine
module F = Storage.Fault
module W = Storage.Wal
module D = Analysis.Diagnostic

let failures = ref 0

let say fmt = Printf.printf (fmt ^^ "\n%!")

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" s)
    fmt

let fresh_base =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repl_smoke_%d_%d.db" (Unix.getpid ()) !n)

let cleanup base =
  let rm p = if Sys.file_exists p then Sys.remove p in
  rm (M.group_path base);
  rm (M.acks_path base);
  for k = 0 to 3 do
    let p = M.node_path base k in
    rm p;
    rm (E.wal_path p);
    rm (M.epoch_path p)
  done

let errors diags = List.filter (fun d -> d.D.severity = D.Error) diags

let run_cell ~what ~sync ~spec ~failover =
  let base = fresh_base () in
  let acked = ref [] in
  (* phase 1: a faulted run over 2 replicas; record what was promised *)
  (match
     G.open_group ~replicas:2 ~sync ~faults:(F.spec_of_string spec) base
   with
  | exception F.Crash _ -> ()
  | g -> (
      try
        for t = 1 to 6 do
          let txn = G.begin_txn g in
          G.write g ~txn (Printf.sprintf "x%d" (t mod 4)) t;
          match G.commit g ~txn with
          | G.Acked when sync = M.Quorum -> acked := txn :: !acked
          | G.Acked | G.Local_only -> ()
        done;
        G.close g
      with F.Crash _ -> ( try G.crash g with _ -> ())));
  (* phase 2: heal faultlessly, optionally fail over, and audit *)
  (match G.open_group base with
  | exception e ->
      fail "%s: healing reopen raised %s" what (Printexc.to_string e)
  | g ->
      if failover then ignore (G.failover g : int);
      G.catch_up g;
      let committed =
        List.filter_map
          (fun { W.record; _ } ->
            match record with W.Commit t -> Some t | _ -> None)
          (W.read_entries (E.wal_path (M.node_path base (G.primary_id g))))
      in
      List.iter
        (fun txn ->
          if not (List.mem txn committed) then
            fail "%s: acked txn %d lost" what txn)
        !acked;
      G.close g;
      let d = match M.load_group base with Some d -> d.M.nodes | None -> 0 in
      for k = 0 to d - 1 do
        let wal = E.wal_path (M.node_path base k) in
        match errors (Analysis.Wal_lint.lint_file wal) with
        | [] -> ()
        | e :: _ -> fail "%s: node %d wal lint: %s %s" what k e.D.code e.D.message
      done;
      (match errors (Analysis.Replication_lint.lint_base base) with
      | [] -> ()
      | e :: _ -> fail "%s: repl lint: %s %s" what e.D.code e.D.message));
  cleanup base

let () =
  let cells =
    [
      ("quorum clean", M.Quorum, "", false);
      ("quorum drop 30%", M.Quorum, "drop=0.3", false);
      ("quorum crash 15", M.Quorum, "crash=15", false);
      ("quorum crash 25 + drop", M.Quorum, "crash=25,drop=0.2", true);
      ("quorum partition 20%", M.Quorum, "part=0.2", true);
      ("async drop 40%", M.Async, "drop=0.4", false);
      ("async crash 20", M.Async, "crash=20", true);
    ]
  in
  List.iteri
    (fun i (what, sync, spec, failover) ->
      let spec =
        if spec = "" then "" else Printf.sprintf "%s,seed=%d" spec (100 + i)
      in
      run_cell ~what ~sync ~spec ~failover)
    cells;
  if !failures = 0 then
    say "repl smoke: %d cell(s) converged, acked commits kept, lints clean"
      (List.length cells)
  else begin
    say "repl smoke: %d failure(s)" !failures;
    exit 1
  end
