(* Fast fault-matrix smoke for @check: run a small interleaved workload
   under each fault kind (crash budget, torn writes, bit flips,
   transient EIO, and all of them at once) and insist the reopened
   database always equals the Transactions.Recovery model's committed
   state.  A reduced version of the exhaustive sweeps in
   test/test_executor.ml — seconds, not minutes. *)

module E = Storage.Engine
module X = Storage.Executor
module F = Storage.Fault

let failures = ref 0

let say fmt = Printf.printf (fmt ^^ "\n%!")

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" s)
    fmt

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fault_smoke_%d_%d.db" (Unix.getpid ()) !n)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; E.wal_path path ]

let workload ~seed =
  let rng = Support.Rng.create seed in
  Transactions.Workload.generate rng
    {
      Transactions.Workload.txns = 4;
      ops_per_txn = 5;
      items = 6;
      skew = 0.5;
      write_ratio = 0.6;
    }

let run_case ~what ~spec ~seed =
  let path = fresh_path () in
  let specs = workload ~seed in
  (* the crash budget may fire inside the open itself (header write,
     recovery I/O) — that is a legitimate sweep point too *)
  (match E.open_db ~pool_size:4 ~faults:(F.spec_of_string spec) path with
  | eng ->
      let stats = X.run ~config:{ X.default_config with seed } eng specs in
      if stats.X.crashed = None then (
        try E.close eng with F.Crash _ -> E.crash eng)
  | exception F.Crash _ -> ());
  (match X.model_divergence ~path with
  | None -> ()
  | Some (expected, actual) ->
      fail "%s (faults %S seed %d): committed state diverged\n  expected: %s\n  actual:   %s"
        what spec seed
        (String.concat ", " (List.map (fun (i, v) -> Printf.sprintf "%s=%d" i v) expected))
        (String.concat ", " (List.map (fun (i, v) -> Printf.sprintf "%s=%d" i v) actual)));
  cleanup path

let () =
  let seeds = [ 1; 2; 3 ] in
  (* crash budget: a reduced matrix over early and mid-run I/O points *)
  List.iter
    (fun k ->
      List.iter
        (fun seed ->
          run_case ~what:"crash" ~spec:(Printf.sprintf "crash=%d" k) ~seed)
        seeds)
    [ 0; 2; 5; 9; 14 ];
  say "crash sweep: ok";
  (* each corruption kind alone, then everything at once *)
  List.iter
    (fun (what, spec) ->
      List.iter
        (fun seed ->
          run_case ~what ~spec:(spec ^ ",seed=" ^ string_of_int seed) ~seed)
        seeds;
      say "%s sweep: ok" what)
    [
      ("torn", "torn=0.05");
      ("flip", "flip=0.05");
      ("eio", "eio=0.1");
      ("mixed", "torn=0.03,flip=0.03,eio=0.08");
    ];
  (* deadlock victims must retry and finish: opposite-order writers *)
  let path = fresh_path () in
  let eng = E.open_db ~pool_size:4 path in
  let specs =
    [|
      [ Transactions.Schedule.Write "x"; Transactions.Schedule.Write "y" ];
      [ Transactions.Schedule.Write "y"; Transactions.Schedule.Write "x" ];
    |]
  in
  let stats = X.run ~config:{ X.default_config with seed = 7 } eng specs in
  E.close eng;
  if stats.X.committed <> 2 then
    fail "deadlock retry: expected 2 commits, got %d" stats.X.committed;
  if stats.X.deadlocks < 1 then
    fail "deadlock retry: expected at least one deadlock, got %d" stats.X.deadlocks;
  (match X.model_divergence ~path with
  | None -> ()
  | Some _ -> fail "deadlock retry: committed state diverged");
  cleanup path;
  say "deadlock retry: ok";
  if !failures > 0 then exit 1;
  say "fault smoke: all clear"
