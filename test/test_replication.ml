(* Tests for the WAL-shipping replication stack: metadata codecs, the
   replica's receive/redo discipline (idempotent overlap, gaps, epoch
   fencing, the checkpoint-needs-snapshot rule), group streaming and
   quorum accounting, catch-up after lag, deterministic failover with
   the deposed primary rejoining, the RP lint codes on synthetic
   files, and the QCheck sweep: under seeded crash + message-loss
   faults, quorum-acked commits survive, replicas converge
   byte-identically, and every survivor file lints clean. *)

module G = Replication.Group
module R = Replication.Replica
module M = Replication.Repl_meta
module RL = Analysis.Replication_lint
module WL = Analysis.Wal_lint
module E = Storage.Engine
module F = Storage.Fault
module W = Storage.Wal

let tmp_counter = ref 0

let fresh_base () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dbmeta_repl_test_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup base =
  let rm p = if Sys.file_exists p then Sys.remove p in
  rm (M.group_path base);
  rm (M.acks_path base);
  for k = 0 to 7 do
    let p = M.node_path base k in
    rm p;
    rm (E.wal_path p);
    rm (M.epoch_path p);
    rm (M.epoch_path p ^ ".tmp")
  done

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let frames records = String.concat "" (List.map W.frame_of_record records)

let errors diags =
  List.filter (fun d -> d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error) diags
  |> List.map (fun d -> d.Analysis.Diagnostic.code)

(* --- metadata ------------------------------------------------------------ *)

let test_meta_roundtrip () =
  let base = fresh_base () in
  let g = { M.epoch = 3; primary = 1; nodes = 3; sync = M.Quorum } in
  M.save_group base g;
  Alcotest.(check bool) "group round-trips" true (M.load_group base = Some g);
  Alcotest.(check int) "discover via descriptor" 3 (M.discover base);
  M.save_node (M.node_path base 1) ~epoch:3 ~snapshot_lsn:42;
  Alcotest.(check bool) "node stamp round-trips" true
    (M.load_node (M.node_path base 1) = Some (3, 42));
  M.append_ack base { M.txn = 7; lsn = 100; ack_epoch = 3 };
  M.append_ack base { M.txn = 9; lsn = 160; ack_epoch = 3 };
  Alcotest.(check int) "two acks" 2 (List.length (M.load_acks base));
  Alcotest.(check bool) "ack fields" true
    (List.hd (M.load_acks base) = { M.txn = 7; lsn = 100; ack_epoch = 3 });
  Alcotest.(check bool) "sync mode strings" true
    (M.sync_mode_of_string "async" = Some M.Async
    && M.sync_mode_to_string M.Quorum = "quorum");
  cleanup base

let test_meta_torn_ack_tolerated () =
  let base = fresh_base () in
  M.append_ack base { M.txn = 1; lsn = 10; ack_epoch = 1 };
  (* a torn tail: half a frame of garbage after the valid ack *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644 (M.acks_path base)
  in
  output_string oc "\x01\x02\x03";
  close_out oc;
  Alcotest.(check int) "valid prefix survives" 1
    (List.length (M.load_acks base));
  cleanup base

(* --- replica receive/redo ------------------------------------------------ *)

let test_replica_receive_and_redo () =
  let base = fresh_base () in
  let f = F.create () in
  let r = R.attach ~fault:f ~node_id:1 ~epoch:1 (M.node_path base 1) in
  let chunk =
    frames
      [
        W.Begin 1;
        W.Write { txn = 1; item = "x"; before = 0; after = 5; compensation = false };
        W.Commit 1;
        W.Begin 2;
        W.Write { txn = 2; item = "y"; before = 0; after = 9; compensation = false };
      ]
  in
  (match R.receive r ~epoch:1 ~start:0 ~chunk with
  | R.Acked n -> Alcotest.(check int) "acked full chunk" (String.length chunk) n
  | _ -> Alcotest.fail "expected Acked");
  Alcotest.(check bool) "only committed writes visible" true
    (R.state r = [ ("x", 5) ]);
  (* idempotent resend of the same bytes *)
  (match R.receive r ~epoch:1 ~start:0 ~chunk with
  | R.Acked n -> Alcotest.(check int) "same watermark" (String.length chunk) n
  | _ -> Alcotest.fail "resend should ack");
  (* the uncommitted transaction aborts; its write never shows *)
  let tail = frames [ W.Abort 2 ] in
  (match R.receive r ~epoch:1 ~start:(String.length chunk) ~chunk:tail with
  | R.Acked _ -> ()
  | _ -> Alcotest.fail "tail should ack");
  Alcotest.(check bool) "abort discards pending" true (R.state r = [ ("x", 5) ]);
  (* a chunk starting past the tail reports the gap *)
  (match R.receive r ~epoch:1 ~start:10_000 ~chunk:tail with
  | R.Gap want ->
      Alcotest.(check int) "gap names our tail"
        (String.length chunk + String.length tail)
        want
  | _ -> Alcotest.fail "expected Gap");
  (* stale epochs are fenced off; higher epochs are adopted durably *)
  (match R.receive r ~epoch:5 ~start:(R.durable_lsn r) ~chunk:"" with
  | R.Acked _ -> ()
  | _ -> Alcotest.fail "epoch adoption should ack");
  Alcotest.(check int) "epoch adopted" 5 (R.epoch r);
  (match R.receive r ~epoch:1 ~start:(R.durable_lsn r) ~chunk:"" with
  | R.Stale_epoch -> ()
  | _ -> Alcotest.fail "expected Stale_epoch");
  (* checkpoints may only arrive through the snapshot path *)
  (match
     R.receive r ~epoch:5 ~start:(R.durable_lsn r)
       ~chunk:(frames [ W.Checkpoint ])
   with
  | R.Snapshot_needed -> ()
  | _ -> Alcotest.fail "expected Snapshot_needed");
  (* a re-attach rebuilds the same state from the files *)
  let r2 = R.attach ~fault:f ~node_id:1 ~epoch:1 (M.node_path base 1) in
  Alcotest.(check bool) "reattach replays" true (R.state r2 = [ ("x", 5) ]);
  Alcotest.(check int) "reattach keeps epoch" 5 (R.epoch r2);
  cleanup base

(* --- group streaming ----------------------------------------------------- *)

let run_txns g lo hi =
  let acked = ref 0 in
  for t = lo to hi do
    let txn = G.begin_txn g in
    G.write g ~txn (Printf.sprintf "x%d" (t mod 4)) t;
    G.write g ~txn (Printf.sprintf "y%d" (t mod 3)) (t * 10);
    match G.commit g ~txn with G.Acked -> incr acked | G.Local_only -> ()
  done;
  !acked

let check_converged g =
  let primary_items = G.items g in
  let d = Storage.Wal.durable_lsn (E.wal (G.primary g)) in
  List.iter
    (fun k ->
      match G.replica g k with
      | None -> Alcotest.fail "missing replica handle"
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d state matches primary" k)
            true
            (R.state r = primary_items);
          Alcotest.(check int)
            (Printf.sprintf "node %d durable matches primary" k)
            d (R.durable_lsn r))
    (G.replica_ids g)

let test_group_streams_and_acks () =
  let base = fresh_base () in
  let g = G.open_group ~replicas:2 ~sync:M.Quorum base in
  let acked = run_txns g 1 6 in
  Alcotest.(check int) "all six commits quorum-acked" 6 acked;
  Alcotest.(check int) "no lag" 0 (G.lag g);
  check_converged g;
  Alcotest.(check int) "acks journaled" 6 (List.length (M.load_acks base));
  G.close g;
  (* after close the final tail (shutdown checkpoint included) shipped:
     every node's log is byte-identical to the primary's *)
  let p = read_file (E.wal_path base) in
  Alcotest.(check bool) "replica 1 byte-identical" true
    (read_file (E.wal_path (M.node_path base 1)) = p);
  Alcotest.(check bool) "replica 2 byte-identical" true
    (read_file (E.wal_path (M.node_path base 2)) = p);
  Alcotest.(check (list string)) "repl lint clean" [] (errors (RL.lint_base base));
  cleanup base

let test_group_reopen_catches_up () =
  let base = fresh_base () in
  let g = G.open_group ~replicas:2 base in
  ignore (run_txns g 1 4 : int);
  G.close g;
  let g = G.open_group base in
  Alcotest.(check int) "nodes rediscovered" 3 (G.node_count g);
  ignore (run_txns g 5 6 : int);
  check_converged g;
  G.close g;
  Alcotest.(check (list string)) "repl lint clean" [] (errors (RL.lint_base base));
  cleanup base

let test_async_lags_then_heals () =
  let base = fresh_base () in
  let g =
    G.open_group ~replicas:1 ~sync:M.Async
      ~faults:(F.spec_of_string "drop@ship=1,drop@snapshot=1,seed=4")
      base
  in
  let acked = run_txns g 1 4 in
  Alcotest.(check int) "async acks immediately" 4 acked;
  Alcotest.(check bool) "replica lags" true (G.lag g > 0);
  Alcotest.(check int) "async journals nothing" 0
    (List.length (M.load_acks base));
  (* the link heals: catch-up closes the gap *)
  F.configure (G.fault g) F.no_faults;
  G.catch_up g;
  Alcotest.(check int) "caught up" 0 (G.lag g);
  check_converged g;
  G.close g;
  cleanup base

let test_quorum_missed_under_total_loss () =
  let base = fresh_base () in
  let g =
    G.open_group ~replicas:2 ~sync:M.Quorum
      ~faults:(F.spec_of_string "drop@replica=1,seed=9")
      base
  in
  let acked = run_txns g 1 3 in
  Alcotest.(check int) "no commit reaches quorum" 0 acked;
  Alcotest.(check int) "nothing journaled" 0 (List.length (M.load_acks base));
  Alcotest.(check bool) "commits are still locally durable" true
    (List.length (G.items g) > 0);
  G.close g;
  cleanup base

let test_failover_promotes_and_heals () =
  let base = fresh_base () in
  let g = G.open_group ~replicas:2 ~sync:M.Quorum base in
  ignore (run_txns g 1 5 : int);
  let before = G.items g in
  let winner = G.failover g in
  Alcotest.(check bool) "a replica won" true (winner = 1 || winner = 2);
  Alcotest.(check int) "epoch bumped" 2 (G.epoch g);
  Alcotest.(check int) "descriptor agrees" 2
    (match M.load_group base with Some d -> d.M.epoch | None -> -1);
  Alcotest.(check bool) "no committed state lost" true (G.items g = before);
  (* the group keeps accepting writes at the new epoch *)
  let acked = run_txns g 6 8 in
  Alcotest.(check int) "post-failover commits reach quorum" 3 acked;
  G.catch_up g;
  check_converged g;
  G.close g;
  Alcotest.(check (list string)) "repl lint clean after failover" []
    (errors (RL.lint_base base));
  cleanup base

let test_fencing_deposes_primary () =
  let base = fresh_base () in
  let g = G.open_group ~replicas:1 ~sync:M.Quorum base in
  ignore (run_txns g 1 2 : int);
  (* node 1 learns of a newer epoch (as if promoted elsewhere) *)
  (match G.replica g 1 with
  | Some r -> (
      match R.receive r ~epoch:9 ~start:(R.durable_lsn r) ~chunk:"" with
      | R.Acked _ -> ()
      | _ -> Alcotest.fail "epoch bump should ack")
  | None -> Alcotest.fail "replica handle missing");
  let txn = G.begin_txn g in
  G.write g ~txn "z" 1;
  (match G.commit g ~txn with
  | G.Local_only -> ()
  | G.Acked -> Alcotest.fail "a fenced primary must not reach quorum");
  (match G.begin_txn g with
  | exception G.Fenced e -> Alcotest.(check int) "fenced by epoch" 9 e
  | _ -> Alcotest.fail "expected Fenced");
  G.crash g;
  cleanup base

(* --- RP lint codes on synthetic files ------------------------------------ *)

let test_lint_rp001_diverged () =
  let base = fresh_base () in
  write_file base "";
  write_file (M.node_path base 1) "";
  M.save_group base { M.epoch = 1; primary = 0; nodes = 2; sync = M.Quorum };
  write_file (E.wal_path base)
    (frames [ W.Begin 1; W.Commit 1 ]);
  (* node 1 claims the current epoch but holds different bytes *)
  write_file (E.wal_path (M.node_path base 1))
    (frames [ W.Begin 9; W.Commit 9 ]);
  M.save_node (M.node_path base 1) ~epoch:1 ~snapshot_lsn:0;
  Alcotest.(check (list string)) "diverged replica" [ "RP001" ]
    (errors (RL.lint_base base));
  (* the same divergence at a stale epoch is only informational *)
  M.save_group base { M.epoch = 2; primary = 0; nodes = 2; sync = M.Quorum };
  Alcotest.(check (list string)) "stale-epoch divergence tolerated" []
    (errors (RL.lint_base base));
  cleanup base

let test_lint_rp002_epoch_regress () =
  let base = fresh_base () in
  write_file base "";
  write_file (M.node_path base 1) "";
  M.save_group base { M.epoch = 3; primary = 0; nodes = 2; sync = M.Quorum };
  M.append_ack base { M.txn = 1; lsn = 10; ack_epoch = 2 };
  M.append_ack base { M.txn = 2; lsn = 20; ack_epoch = 1 };
  M.append_ack base { M.txn = 3; lsn = 30; ack_epoch = 9 };
  let codes = errors (RL.lint_base base) in
  Alcotest.(check bool) "epoch regression flagged" true
    (List.mem "RP002" codes);
  Alcotest.(check bool) "epoch beyond group flagged" true
    (List.length (List.filter (( = ) "RP002") codes) >= 2);
  cleanup base

let test_lint_rp003_acked_lost () =
  let base = fresh_base () in
  write_file base "";
  write_file (M.node_path base 1) "";
  M.save_group base { M.epoch = 1; primary = 0; nodes = 2; sync = M.Quorum };
  let log = frames [ W.Begin 1; W.Commit 1 ] in
  write_file (E.wal_path base) log;
  (* txn 1 acked within the log: fine; txn 9 never committed: lost *)
  M.append_ack base { M.txn = 1; lsn = String.length log; ack_epoch = 1 };
  M.append_ack base { M.txn = 9; lsn = String.length log; ack_epoch = 1 };
  Alcotest.(check (list string)) "acked-but-lost commit" [ "RP003" ]
    (errors (RL.lint_base base));
  (* a watermark beyond the clean log is also a loss *)
  M.append_ack base { M.txn = 1; lsn = String.length log + 64; ack_epoch = 1 };
  Alcotest.(check int) "watermark beyond log" 2
    (List.length (errors (RL.lint_base base)));
  cleanup base

let test_lint_rp004_snapshot_gap () =
  let base = fresh_base () in
  write_file base "";
  write_file (M.node_path base 1) "";
  M.save_group base { M.epoch = 1; primary = 0; nodes = 2; sync = M.Quorum };
  (* snapshot watermark ahead of an empty log *)
  M.save_node (M.node_path base 1) ~epoch:1 ~snapshot_lsn:100;
  Alcotest.(check (list string)) "watermark ahead of log" [ "RP004" ]
    (errors (RL.lint_base base));
  (* a shipped checkpoint beyond the snapshot watermark (the Checkpoint
     must sit at a nonzero offset for the watermark to lag it) *)
  let log = frames [ W.Begin 1; W.Commit 1; W.Checkpoint ] in
  write_file (E.wal_path base) log;
  write_file (E.wal_path (M.node_path base 1)) log;
  M.save_node (M.node_path base 1) ~epoch:1 ~snapshot_lsn:0;
  Alcotest.(check (list string)) "checkpoint past snapshot" [ "RP004" ]
    (errors (RL.lint_base base));
  (* covered by the watermark: clean *)
  M.save_node (M.node_path base 1) ~epoch:1 ~snapshot_lsn:(String.length log);
  Alcotest.(check (list string)) "covered checkpoint clean" []
    (errors (RL.lint_base base));
  cleanup base

(* --- QCheck: the replication contract under faults ----------------------- *)

let repl_fault_specs =
  [|
    "crash=12";
    "crash=25,drop=0.2";
    "drop=0.4";
    "crash=18,drop=0.15,delay=0.2";
    "part=0.2,crash=30";
    "crash=40,drop=0.1,part=0.1";
  |]

let prop_sweep_converges_and_lints_clean =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:20
       ~name:"repl survivors: acked commits kept, byte-identical, lint clean"
       (QCheck2.Gen.int_range 0 100_000)
       (fun seed ->
         let spec0 = repl_fault_specs.(seed mod Array.length repl_fault_specs) in
         let spec = F.spec_of_string (Printf.sprintf "%s,seed=%d" spec0 seed) in
         let base = fresh_base () in
         let acked = ref [] in
         (* phase 1: a faulted run; quorum-acked txns are recorded *)
         (match G.open_group ~replicas:2 ~sync:M.Quorum ~faults:spec base with
         | exception F.Crash _ -> ()
         | g -> (
             try
               for t = 1 to 8 do
                 let txn = G.begin_txn g in
                 G.write g ~txn (Printf.sprintf "x%d" (t mod 5)) t;
                 G.write g ~txn (Printf.sprintf "y%d" (t mod 3)) (t * 10);
                 match G.commit g ~txn with
                 | G.Acked -> acked := txn :: !acked
                 | G.Local_only -> ()
               done;
               G.close g
             with F.Crash _ -> ( try G.crash g with _ -> ())));
         (* phase 2: heal, maybe fail over, write a little more *)
         let g = G.open_group base in
         if seed land 1 = 1 then ignore (G.failover g : int);
         (let txn = G.begin_txn g in
          G.write g ~txn "final" 1;
          match G.commit g ~txn with
          | G.Acked -> acked := txn :: !acked
          | G.Local_only -> failwith "faultless commit must reach quorum");
         G.catch_up g;
         (* every quorum-acked transaction is committed on the primary *)
         let committed =
           List.filter_map
             (fun { W.record; _ } ->
               match record with W.Commit t -> Some t | _ -> None)
             (W.read_entries (E.wal_path (M.node_path base (G.primary_id g))))
         in
         List.iter
           (fun txn ->
             if not (List.mem txn committed) then
               failwith (Printf.sprintf "acked txn %d lost" txn))
           !acked;
         check_converged g;
         G.close g;
         (* phase 3: the survivor files lint clean *)
         let rl = errors (RL.lint_base base) in
         if rl <> [] then
           failwith ("lint repl errors: " ^ String.concat "," rl);
         let d = M.load_group base in
         let nodes = match d with Some d -> d.M.nodes | None -> 0 in
         for k = 0 to nodes - 1 do
           let wl =
             errors (WL.lint_file (E.wal_path (M.node_path base k)))
           in
           if wl <> [] then
             failwith
               (Printf.sprintf "lint wal errors on node %d: %s" k
                  (String.concat "," wl))
         done;
         cleanup base;
         true))

let suite =
  [
    ("meta: codecs round-trip", `Quick, test_meta_roundtrip);
    ("meta: torn ack tail tolerated", `Quick, test_meta_torn_ack_tolerated);
    ("replica: receive, redo, fencing", `Quick, test_replica_receive_and_redo);
    ("group: streams and quorum-acks", `Quick, test_group_streams_and_acks);
    ("group: reopen catches up", `Quick, test_group_reopen_catches_up);
    ("group: async lags then heals", `Quick, test_async_lags_then_heals);
    ( "group: quorum missed under total loss",
      `Quick,
      test_quorum_missed_under_total_loss );
    ("group: failover promotes and heals", `Quick, test_failover_promotes_and_heals);
    ("group: fencing deposes the primary", `Quick, test_fencing_deposes_primary);
    ("lint repl: RP001 diverged replica", `Quick, test_lint_rp001_diverged);
    ("lint repl: RP002 epoch regress", `Quick, test_lint_rp002_epoch_regress);
    ("lint repl: RP003 acked lost", `Quick, test_lint_rp003_acked_lost);
    ("lint repl: RP004 snapshot gap", `Quick, test_lint_rp004_snapshot_gap);
    prop_sweep_converges_and_lints_clean;
  ]
