The physical planner from the command line: load tables, register
indexes, watch EXPLAIN switch access paths, and lint the plans.

  $ cat > students.csv <<'EOF'
  > sid:int,sname:string,year:int
  > 1,alice,1
  > 2,bob,2
  > 3,carol,2
  > 4,dave,3
  > 5,erin,1
  > EOF
  $ cat > enrolled.csv <<'EOF'
  > sid:int,cid:string,grade:int
  > 1,db,95
  > 2,db,80
  > 3,th,99
  > 4,db,70
  > 5,th,85
  > EOF
  $ dbmeta db init uni.db
  created uni.db (1 pages, wal at uni.db.wal)
  $ dbmeta db load uni.db -t students=students.csv -t enrolled=enrolled.csv
  loaded enrolled: 5 tuples
  loaded students: 5 tuples

Without an index every access path is a sequential scan:

  $ dbmeta db query uni.db 'select[sid = 2](students)' --explain
  filter[sid = 2]  (est_rows=1.5 cost=0.3)
    seq scan students  (est_rows=5.0 cost=0.2)

Register a B+tree index and the planner switches to a point lookup:

  $ dbmeta db index create uni.db students sid
  created btree index on students(sid)
  $ dbmeta db index list uni.db
  students(sid) btree
  $ dbmeta db query uni.db 'select[sid = 2](students)' --explain
  index point scan students via btree(sid = 2)  (est_rows=1.0 cost=0.1)
  $ dbmeta db query uni.db 'select[sid = 2](students)'
  sid  sname  year
  ---  -----  ----
  2    bob    2   

Inequality bounds compile to a range scan over the same index:

  $ dbmeta db index create uni.db enrolled grade
  created btree index on enrolled(grade)
  $ dbmeta db query uni.db 'select[grade >= 85](enrolled)' --explain
  index range scan enrolled via btree(grade in [85, +inf])  (est_rows=1.5 cost=0.1)

The JSON rendering parses under the repo's strict parser:

  $ dbmeta db query uni.db 'project[sname](students join enrolled)' --explain=json | ./json_check.exe
  valid json

Planned and legacy paths agree:

  $ dbmeta db query uni.db 'project[sname](select[grade >= 85](students join enrolled))' > planned.out
  $ dbmeta db query uni.db 'project[sname](select[grade >= 85](students join enrolled))' --no-plan > legacy.out
  $ diff planned.out legacy.out && cat planned.out
  sname
  -----
  alice
  carol
  erin 

A clean plan lints clean (the plan is executed first, so estimate
divergence would be caught too):

  $ dbmeta lint plan uni.db 'project[sname](select[grade >= 85](students join enrolled))'
  no diagnostics

PL001: with the rewrites off, the selection stays above the join and the
indexed table below is read by a full scan:

  $ dbmeta lint plan uni.db 'select[sid = 2](students join enrolled)' --no-optimize
  warning[PL001]: full scan of students although an index on "sid" could serve the enclosing filter
    --> #2: seq scan students
  0 error(s), 1 warning(s), 0 info(s)

PL002: a genuine cartesian product is an error (exit 1):

  $ dbmeta lint plan uni.db 'project[sname](students) times project[cid](enrolled)'
  error[PL002]: cartesian product: (sname:string) x (cid:string) share no join attribute
    --> #0: nested loop product
  1 error(s), 0 warning(s), 0 info(s)
  [1]

PL003: skewed data breaks the uniformity assumption — 200 of 210 rows
share one key, so the point estimate (rows/distinct) is ~10x under:

  $ { echo "k:int,v:int"
  >   for i in $(seq 1 200); do echo "1,$i"; done
  >   for i in $(seq 2 11); do echo "$i,0"; done
  > } > skewed.csv
  $ dbmeta db init skew.db > /dev/null
  $ dbmeta db load skew.db -t skewed=skewed.csv
  loaded skewed: 210 tuples
  $ dbmeta db index create skew.db skewed k
  created btree index on skewed(k)
  $ dbmeta lint plan skew.db 'select[k = 1](skewed)'
  warning[PL003]: estimated 19.1 rows but produced 200 (off by 10x): statistics may be stale
    --> #0: index point scan skewed via btree(k = 1)
  0 error(s), 1 warning(s), 0 info(s)

Dropping the index falls back to the sequential scan:

  $ dbmeta db index drop uni.db students sid
  dropped btree index on students(sid)
  $ dbmeta db query uni.db 'select[sid = 2](students)' --explain
  filter[sid = 2]  (est_rows=1.5 cost=0.3)
    seq scan students  (est_rows=5.0 cost=0.2)
  $ dbmeta db index drop uni.db students sid
  dbmeta: no btree index on students(sid)
  [2]
