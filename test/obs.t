The observability surface of the CLI: --metrics dumps the registry to
stderr (text or JSON), --trace writes a Chrome trace_event file, and
the metric catalogue in docs/OBSERVABILITY.md is linted against the
runtime registry.  json_check.exe validates with Obs.Json, the repo's
own strict parser.

The text dump goes to stderr and names every wal.* instrument, so a
contended run shows where durability time went:

  $ dbmeta db exec --txns=8 quiet.db --metrics 2>&1 >/dev/null \
  >   | awk '{print $2}' | grep '^wal\.'
  wal.append_bytes
  wal.appends
  wal.flush_bytes
  wal.flush_ns
  wal.flushes
  wal.fsync_ns
  wal.io_retries

The lock-wait and fsync instruments record nonzero activity (8 txns
over the default 8 hot items always contend, and every commit forces
the WAL):

  $ dbmeta db exec --txns=8 contended.db --metrics 2>&1 >/dev/null \
  >   | awk '$2 == "lock.wait_rounds" || $2 == "wal.fsync_ns" {print $2, ($4 > 0 ? "nonzero" : "ZERO")}'
  lock.wait_rounds nonzero
  wal.fsync_ns nonzero

--metrics=json parses under the strict parser:

  $ dbmeta db exec --txns=4 --metrics=json json.db 2>metrics.json >/dev/null
  $ ./json_check.exe < metrics.json
  valid json

So does the datalog evaluator's dump:

  $ cat > path.dl <<'EOF'
  > edge(1, 2). edge(2, 3).
  > path(X, Y) :- edge(X, Y).
  > path(X, Z) :- path(X, Y), edge(Y, Z).
  > EOF
  $ dbmeta datalog --engine=seminaive --metrics=json path.dl 2>dl.json >/dev/null
  $ ./json_check.exe < dl.json
  valid json

And db load / db query take the flag too:

  $ cat > r.csv <<'EOF'
  > a:int
  > 1
  > 2
  > EOF
  $ dbmeta db init obs.db >/dev/null
  $ dbmeta db load obs.db -t r=r.csv --metrics=json 2>load.json >/dev/null
  $ ./json_check.exe < load.json
  valid json
  $ dbmeta db query obs.db 'project[a](r)' --metrics=json 2>query.json >/dev/null
  $ ./json_check.exe < query.json
  valid json

--trace writes a well-formed Chrome trace (complete "X" events with
name/ts/dur/pid/tid), openable in about:tracing or Perfetto:

  $ dbmeta db exec --txns=4 --trace=trace.json traced.db >/dev/null
  trace: 17 span(s) written to trace.json (0 dropped)
  $ ./json_check.exe --chrome < trace.json
  valid chrome trace (17 events)

The catalogue lint: every runtime-registered metric name must appear in
docs/OBSERVABILITY.md (and no documented name in a known family may
have gone stale):

  $ dbmeta lint metrics ../docs/OBSERVABILITY.md
  no diagnostics
