(* Tests for the physical planner: statistics collection and
   persistence, the secondary-index catalog, access-path selection,
   EXPLAIN rendering, the Volcano executor against Eval.eval (fixed
   cases and the QCheck equivalence property, with and without
   indexes), join-algorithm forcing, and sort spill. *)

module R = Relational
module A = R.Algebra
open R.Value
open Fixtures

let tmp_counter = ref 0

let fresh_path () =
  incr tmp_counter;
  let dir = Filename.get_temp_dir_name () in
  let path =
    Filename.concat dir
      (Printf.sprintf "dbmeta_planner_%d_%d.db" (Unix.getpid ()) !tmp_counter)
  in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Storage.Engine.wal_path path ];
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Storage.Engine.wal_path path ]

(* Open a fresh engine, save the university tables, run [f]. *)
let with_university ?metrics f =
  let path = fresh_path () in
  let eng = Storage.Engine.open_db ?metrics path in
  Storage.Engine.save_table eng "students" students;
  Storage.Engine.save_table eng "courses" courses;
  Storage.Engine.save_table eng "enrolled" enrolled;
  ignore
    (Planner.Stats.analyze eng [ "students"; "courses"; "enrolled" ]
      : Planner.Stats.t);
  Fun.protect
    ~finally:(fun () ->
      (* tests that exercise reopen persistence close [eng] themselves *)
      (try Storage.Engine.close eng with _ -> ());
      cleanup path)
    (fun () -> f path eng)

let check_rel = Alcotest.check relation_testable

(* --- statistics ---------------------------------------------------------- *)

let test_stats_collect_and_persist () =
  with_university (fun path eng ->
      let st = Planner.Stats.load eng in
      (match Planner.Stats.find st "students" with
      | None -> Alcotest.fail "no stats for students"
      | Some tb ->
          Alcotest.(check int) "rows" 5 tb.Planner.Stats.rows;
          Alcotest.(check bool) "pages > 0" true (tb.Planner.Stats.pages > 0);
          Alcotest.(check (option int)) "sid distinct" (Some 5)
            (Planner.Stats.distinct tb "sid");
          Alcotest.(check (option int)) "year distinct" (Some 3)
            (Planner.Stats.distinct tb "year"));
      (* persists across a close/reopen *)
      Storage.Engine.close eng;
      let eng2 = Storage.Engine.open_db path in
      Fun.protect
        ~finally:(fun () -> Storage.Engine.crash eng2)
        (fun () ->
          let st2 = Planner.Stats.load eng2 in
          match Planner.Stats.find st2 "enrolled" with
          | Some tb ->
              Alcotest.(check int) "reloaded rows"
                (R.Relation.cardinality enrolled)
                tb.Planner.Stats.rows
          | None -> Alcotest.fail "stats lost across reopen"))

let test_reserved_tables_hidden () =
  with_university (fun _path eng ->
      let names = Storage.Engine.table_names eng in
      Alcotest.(check bool) "no __stats in names" false
        (List.mem "__stats" names);
      Alcotest.(check (list string)) "public tables"
        [ "students"; "courses"; "enrolled" ]
        names;
      (* but load_table still resolves the reserved name *)
      Alcotest.(check bool) "reserved loadable" true
        (R.Relation.cardinality
           (Storage.Engine.load_table eng Planner.Stats.stats_table)
        > 0))

(* --- the index catalog ---------------------------------------------------- *)

let test_index_catalog_roundtrip () =
  with_university (fun path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree };
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "enrolled"; attr = "grade"; kind = Hash };
      (* duplicate and bogus definitions are input errors *)
      Alcotest.(check bool) "duplicate raises" true
        (match
           Planner.Indexes.create eng idx
             { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree }
         with
        | () -> false
        | exception Planner.Indexes.Index_error _ -> true);
      Alcotest.(check bool) "unknown column raises" true
        (match
           Planner.Indexes.create eng idx
             { Planner.Indexes.table = "students"; attr = "nope"; kind = Hash }
         with
        | () -> false
        | exception Planner.Indexes.Index_error _ -> true);
      Storage.Engine.close eng;
      let eng2 = Storage.Engine.open_db path in
      Fun.protect
        ~finally:(fun () -> Storage.Engine.crash eng2)
        (fun () ->
          let idx2 = Planner.Indexes.load eng2 in
          Alcotest.(check int) "two defs survive" 2
            (List.length (Planner.Indexes.defs idx2));
          Planner.Indexes.drop eng2 idx2
            { Planner.Indexes.table = "enrolled"; attr = "grade"; kind = Hash };
          Alcotest.(check int) "one after drop" 1
            (List.length (Planner.Indexes.defs idx2));
          Alcotest.(check bool) "missing drop raises" true
            (match
               Planner.Indexes.drop eng2 idx2
                 {
                   Planner.Indexes.table = "enrolled";
                   attr = "grade";
                   kind = Hash;
                 }
             with
            | () -> false
            | exception Planner.Indexes.Index_error _ -> true)))

(* --- plan shape ----------------------------------------------------------- *)

let rec find_scan (p : Planner.Physical.t) =
  match p.Planner.Physical.node with
  | Planner.Physical.Scan { access; _ } -> Some access
  | _ ->
      List.find_map find_scan (Planner.Physical.children p)

let test_point_lookup_chosen () =
  with_university (fun _path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree };
      let ctx = Planner.Plan.make eng in
      let q = A.Select (A.Cmp (A.Eq, A.Attr "sid", A.Const (Int 2)), A.Rel "students") in
      let plan = Planner.Plan.plan ctx q in
      (match find_scan plan with
      | Some (Planner.Physical.Point { attr; via = Btree; _ }) ->
          Alcotest.(check string) "point on sid" "sid" attr
      | _ -> Alcotest.fail "expected a point access path");
      (* explain text names the index path *)
      Alcotest.(check bool) "explain mentions index" true
        (let text = Planner.Physical.to_text plan in
         let re = "index point scan students via btree(sid = 2)" in
         (* plain substring search *)
         let rec contains i =
           i + String.length re <= String.length text
           && (String.sub text i (String.length re) = re || contains (i + 1))
         in
         contains 0);
      check_rel "point result matches eval"
        (R.Eval.eval university q)
        (Planner.Exec.run ctx plan))

let test_range_scan_chosen () =
  with_university (fun _path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "enrolled"; attr = "grade"; kind = Btree };
      let ctx = Planner.Plan.make eng in
      let q =
        A.Select
          ( A.And
              ( A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 80)),
                A.Cmp (A.Lt, A.Attr "grade", A.Const (Int 95)) ),
            A.Rel "enrolled" )
      in
      let plan = Planner.Plan.plan ctx q in
      (match find_scan plan with
      | Some (Planner.Physical.Range { attr; lo = Some (Int 80); _ }) ->
          Alcotest.(check string) "range on grade" "grade" attr
      | _ -> Alcotest.fail "expected a range access path");
      check_rel "range result matches eval"
        (R.Eval.eval university q)
        (Planner.Exec.run ctx plan))

let test_no_index_full_scan () =
  with_university (fun _path eng ->
      let ctx = Planner.Plan.make eng in
      let q = A.Select (A.Cmp (A.Eq, A.Attr "sid", A.Const (Int 2)), A.Rel "students") in
      match find_scan (Planner.Plan.plan ctx q) with
      | Some Planner.Physical.Full -> ()
      | _ -> Alcotest.fail "expected a sequential scan without indexes")

let test_explain_json_valid () =
  with_university (fun _path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree };
      let ctx = Planner.Plan.make eng in
      let q =
        A.Project
          ( [ "sname" ],
            A.Select
              ( A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 80)),
                A.Join (A.Rel "students", A.Rel "enrolled") ) )
      in
      let plan = Planner.Plan.plan ctx q in
      (match Obs.Json.validate (Planner.Physical.to_json plan) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("invalid explain JSON: " ^ e));
      (* still valid once actual_rows are filled in *)
      ignore (Planner.Exec.run ctx plan : R.Relation.t);
      match Obs.Json.validate (Planner.Physical.to_json plan) with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("invalid executed JSON: " ^ e))

(* --- executor vs Eval.eval ------------------------------------------------ *)

let fixed_queries =
  [
    A.Rel "students";
    A.Project ([ "sname"; "year" ], A.Rel "students");
    A.Select (A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 85)), A.Rel "enrolled");
    A.Project
      ( [ "sname" ],
        A.Select
          ( A.Cmp (A.Eq, A.Attr "dept", A.Const (String "cs")),
            A.Join (A.Join (A.Rel "students", A.Rel "enrolled"), A.Rel "courses") ) );
    A.Union
      ( A.Select (A.Cmp (A.Eq, A.Attr "year", A.Const (Int 1)), A.Rel "students"),
        A.Select (A.Cmp (A.Eq, A.Attr "year", A.Const (Int 3)), A.Rel "students") );
    A.Diff
      ( A.Project ([ "sid" ], A.Rel "students"),
        A.Project ([ "sid" ], A.Rel "enrolled") );
    A.Product
      ( A.Project ([ "sid" ], A.Rel "students"),
        A.Project ([ "cid" ], A.Rel "courses") );
    A.Rename ([ ("sname", "name") ], A.Rel "students");
    A.Divide
      ( A.Project ([ "sid"; "cid" ], A.Rel "enrolled"),
        A.Project
          ( [ "cid" ],
            A.Select
              (A.Cmp (A.Eq, A.Attr "dept", A.Const (String "cs")), A.Rel "courses") ) );
    A.Singleton [ ("k", Int 1); ("tag", String "x") ];
  ]

let test_exec_matches_eval_fixed () =
  with_university (fun _path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree };
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "enrolled"; attr = "grade"; kind = Btree };
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "courses"; attr = "dept"; kind = Hash };
      let ctx = Planner.Plan.make eng in
      List.iter
        (fun q ->
          let expected = R.Eval.eval university q in
          let got = Planner.Exec.run ctx (Planner.Plan.plan ctx q) in
          check_rel (A.to_string q) expected got)
        fixed_queries)

let test_exec_unoptimized_matches () =
  with_university (fun _path eng ->
      let config =
        { Planner.Plan.default_config with Planner.Plan.optimize = false }
      in
      let ctx = Planner.Plan.make ~config eng in
      List.iter
        (fun q ->
          check_rel (A.to_string q) (R.Eval.eval university q)
            (Planner.Exec.run ctx (Planner.Plan.plan ctx q)))
        fixed_queries)

let join_query =
  A.Project
    ( [ "sname"; "grade" ],
      A.Join (A.Rel "students", A.Rel "enrolled") )

let test_forced_join_algorithms_agree () =
  with_university (fun _path eng ->
      let run force =
        let config =
          { Planner.Plan.default_config with Planner.Plan.force_join = force }
        in
        let ctx = Planner.Plan.make ~config eng in
        Planner.Exec.run ctx (Planner.Plan.plan ctx join_query)
      in
      let expected = R.Eval.eval university join_query in
      check_rel "hash join" expected (run Planner.Plan.Force_hash);
      check_rel "merge join" expected (run Planner.Plan.Force_merge))

let test_merge_join_uses_index_order () =
  with_university (fun _path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree };
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "enrolled"; attr = "sid"; kind = Btree };
      let config =
        {
          Planner.Plan.default_config with
          Planner.Plan.force_join = Planner.Plan.Force_merge;
        }
      in
      let ctx = Planner.Plan.make ~config eng in
      let plan = Planner.Plan.plan ctx (A.Join (A.Rel "students", A.Rel "enrolled")) in
      let ordered =
        Planner.Physical.fold
          (fun acc n ->
            match n.Planner.Physical.node with
            | Planner.Physical.Scan { access = Planner.Physical.Ordered _; _ } ->
                acc + 1
            | _ -> acc)
          0 plan
      in
      Alcotest.(check int) "both sides index-ordered" 2 ordered;
      check_rel "merge over index order matches eval"
        (R.Eval.eval university (A.Join (A.Rel "students", A.Rel "enrolled")))
        (Planner.Exec.run ctx plan))

let test_sort_spill () =
  let metrics = Obs.Registry.create () in
  with_university ~metrics (fun _path eng ->
      let config =
        {
          Planner.Plan.default_config with
          Planner.Plan.force_join = Planner.Plan.Force_merge;
          Planner.Plan.sort_spill = Some 2;
        }
      in
      let ctx = Planner.Plan.make ~config eng in
      let expected = R.Eval.eval university join_query in
      let got = Planner.Exec.run ctx (Planner.Plan.plan ctx join_query) in
      check_rel "spilling merge join matches eval" expected got;
      (match Obs.Registry.counter_value metrics "plan.spills" with
      | Some n -> Alcotest.(check bool) "spilled runs" true (n > 0)
      | None -> Alcotest.fail "plan.spills not registered"))

let test_actuals_and_counters () =
  let metrics = Obs.Registry.create () in
  with_university ~metrics (fun _path eng ->
      let idx = Planner.Indexes.load eng in
      Planner.Indexes.create eng idx
        { Planner.Indexes.table = "students"; attr = "sid"; kind = Btree };
      let ctx = Planner.Plan.make eng in
      let q = A.Select (A.Cmp (A.Eq, A.Attr "sid", A.Const (Int 2)), A.Rel "students") in
      let plan = Planner.Plan.plan ctx q in
      ignore (Planner.Exec.run ctx plan : R.Relation.t);
      Alcotest.(check int) "root actual rows" 1
        plan.Planner.Physical.meta.Planner.Physical.actual_rows;
      Alcotest.(check (option int)) "one planned query" (Some 1)
        (Obs.Registry.counter_value metrics "plan.queries");
      Alcotest.(check (option int)) "one execution" (Some 1)
        (Obs.Registry.counter_value metrics "plan.executions");
      Alcotest.(check (option int)) "index path counted" (Some 1)
        (Obs.Registry.counter_value metrics "plan.index_scans"))

(* --- the QCheck equivalence property -------------------------------------- *)

let property count name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* Save every relation of a random database into a fresh engine, create
   indexes on a seed-dependent subset of columns, and check the chosen
   physical plan evaluates to exactly Eval.eval's relation. *)
let prop_physical_matches_eval =
  property 40 "physical plan = Eval.eval (random db, random indexes)"
    seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:3 ~arity:3 ~size:8 ~domain:5
      in
      let q = R.Generator.random_query rng db ~depth:3 ~domain:5 in
      let path = fresh_path () in
      let eng = Storage.Engine.open_db path in
      Fun.protect
        ~finally:(fun () ->
          Storage.Engine.close eng;
          cleanup path)
        (fun () ->
          R.Database.fold
            (fun name rel () -> Storage.Engine.save_table eng name rel)
            db ();
          ignore (Planner.Stats.analyze eng (R.Database.names db) : Planner.Stats.t);
          let idx = Planner.Indexes.load eng in
          (* index a seed-dependent subset of columns, both kinds *)
          R.Database.fold
            (fun name rel () ->
              let attrs = R.Schema.attributes (R.Relation.schema rel) in
              List.iteri
                (fun i attr ->
                  let kind =
                    if (seed + i) mod 3 = 0 then Some Planner.Indexes.Btree
                    else if (seed + i) mod 3 = 1 then Some Planner.Indexes.Hash
                    else None
                  in
                  match kind with
                  | Some kind ->
                      Planner.Indexes.create eng idx
                        { Planner.Indexes.table = name; attr; kind }
                  | None -> ())
                attrs)
            db ();
          let ctx = Planner.Plan.make eng in
          let expected = R.Eval.eval db q in
          let got = Planner.Exec.run ctx (Planner.Plan.plan ctx q) in
          R.Relation.equal expected got))

let prop_forced_merge_matches_eval =
  property 25 "forced merge join = Eval.eval (random db)" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:2 ~arity:3 ~size:10 ~domain:4
      in
      let q = R.Generator.random_query rng db ~depth:3 ~domain:4 in
      let path = fresh_path () in
      let eng = Storage.Engine.open_db path in
      Fun.protect
        ~finally:(fun () ->
          Storage.Engine.close eng;
          cleanup path)
        (fun () ->
          R.Database.fold
            (fun name rel () -> Storage.Engine.save_table eng name rel)
            db ();
          let config =
            {
              Planner.Plan.default_config with
              Planner.Plan.force_join = Planner.Plan.Force_merge;
              Planner.Plan.sort_spill = Some 3;
            }
          in
          let ctx = Planner.Plan.make ~config eng in
          R.Relation.equal (R.Eval.eval db q)
            (Planner.Exec.run ctx (Planner.Plan.plan ctx q))))

(* --- chase-based join elimination and the certifier ----------------------- *)

let scan_count plan =
  Planner.Physical.fold
    (fun n node -> if Planner.Physical.children node = [] then n + 1 else n)
    0 plan

let self_join_q =
  R.Query_parser.parse
    "project[sid, sname](students join rename[sname -> s2, year -> \
     y2](students))"

(* sid is a key of the students fixture (distinct = rows), so the chase
   folds the self-join to a single scan — and the result is unchanged. *)
let test_join_elimination_fixed () =
  with_university (fun _path eng ->
      let ctx = Planner.Plan.make eng in
      let plan = Planner.Plan.plan ctx self_join_q in
      Alcotest.(check int) "one scan after elimination" 1 (scan_count plan);
      Alcotest.(check bool) "counter recorded the dropped join" true
        (Obs.Registry.Counter.value
           (Planner.Plan.instruments ctx).Planner.Plan.i_join_eliminations
        >= 1);
      let expected = R.Eval.eval university self_join_q in
      check_rel "eliminated plan evaluates identically" expected
        (Planner.Exec.run ctx plan);
      (* the rewrite off: the join (two scans) comes back *)
      let config =
        { Planner.Plan.default_config with Planner.Plan.semantic = false }
      in
      let ctx' = Planner.Plan.make ~config eng in
      let plan' = Planner.Plan.plan ctx' self_join_q in
      Alcotest.(check int) "two scans without the rewrite" 2 (scan_count plan');
      check_rel "both paths agree" expected (Planner.Exec.run ctx' plan'))

let test_certify_fixed () =
  with_university (fun _path eng ->
      let ctx = Planner.Plan.make eng in
      let plan = Planner.Plan.plan ctx self_join_q in
      let report = Planner.Certify.certify ctx self_join_q plan in
      Alcotest.(check int) "five stages" 5 (List.length report);
      Alcotest.(check bool) "all stages prove out" true
        (List.for_all
           (fun s -> s.Planner.Certify.verdict = Planner.Certify.Equivalent)
           report);
      Alcotest.(check bool) "report is ok" true (Planner.Certify.ok report))

(* Translation validation as a standing gate: whatever rewrite sequence
   the optimizer picks on a random database must certify — a [Refuted]
   stage here is a planner bug (the prover only refutes on the fragment
   where it is complete). *)
let prop_certify_never_refutes =
  property 30 "certifier never refutes an optimizer rewrite (random db)"
    seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:3 ~arity:3 ~size:8 ~domain:5
      in
      let q = R.Generator.random_query rng db ~depth:3 ~domain:5 in
      let path = fresh_path () in
      let eng = Storage.Engine.open_db path in
      Fun.protect
        ~finally:(fun () ->
          Storage.Engine.close eng;
          cleanup path)
        (fun () ->
          R.Database.fold
            (fun name rel () -> Storage.Engine.save_table eng name rel)
            db ();
          ignore
            (Planner.Stats.analyze eng (R.Database.names db) : Planner.Stats.t);
          let ctx = Planner.Plan.make eng in
          let plan = Planner.Plan.plan ctx q in
          Planner.Certify.ok (Planner.Certify.certify ctx q plan)))

(* Join elimination is on by default in the main differential property
   above; this one pins the comparison the other way: with the semantic
   rewrite forced off, results still match the rewritten path. *)
let prop_semantic_rewrite_preserves_results =
  property 25 "semantic rewrite on/off agree (random db)" seed_gen
    (fun seed ->
      let rng = Support.Rng.create seed in
      let db =
        R.Generator.random_database rng ~relations:2 ~arity:3 ~size:6 ~domain:3
      in
      let q = R.Generator.random_query rng db ~depth:3 ~domain:3 in
      let path = fresh_path () in
      let eng = Storage.Engine.open_db path in
      Fun.protect
        ~finally:(fun () ->
          Storage.Engine.close eng;
          cleanup path)
        (fun () ->
          R.Database.fold
            (fun name rel () -> Storage.Engine.save_table eng name rel)
            db ();
          ignore
            (Planner.Stats.analyze eng (R.Database.names db) : Planner.Stats.t);
          let on = Planner.Plan.make eng in
          let off =
            Planner.Plan.make
              ~config:
                {
                  Planner.Plan.default_config with
                  Planner.Plan.semantic = false;
                }
              eng
          in
          R.Relation.equal
            (Planner.Exec.run on (Planner.Plan.plan on q))
            (Planner.Exec.run off (Planner.Plan.plan off q))))

let suite =
  [
    Alcotest.test_case "stats collect and persist" `Quick
      test_stats_collect_and_persist;
    Alcotest.test_case "reserved tables hidden" `Quick
      test_reserved_tables_hidden;
    Alcotest.test_case "index catalog roundtrip" `Quick
      test_index_catalog_roundtrip;
    Alcotest.test_case "point lookup chosen" `Quick test_point_lookup_chosen;
    Alcotest.test_case "range scan chosen" `Quick test_range_scan_chosen;
    Alcotest.test_case "full scan without indexes" `Quick
      test_no_index_full_scan;
    Alcotest.test_case "explain json valid" `Quick test_explain_json_valid;
    Alcotest.test_case "executor matches eval (fixed)" `Quick
      test_exec_matches_eval_fixed;
    Alcotest.test_case "executor matches eval (unoptimized)" `Quick
      test_exec_unoptimized_matches;
    Alcotest.test_case "forced join algorithms agree" `Quick
      test_forced_join_algorithms_agree;
    Alcotest.test_case "merge join uses index order" `Quick
      test_merge_join_uses_index_order;
    Alcotest.test_case "sort spill" `Quick test_sort_spill;
    Alcotest.test_case "actuals and counters" `Quick test_actuals_and_counters;
    Alcotest.test_case "join elimination (fixed)" `Quick
      test_join_elimination_fixed;
    Alcotest.test_case "certify (fixed)" `Quick test_certify_fixed;
    prop_physical_matches_eval;
    prop_forced_merge_matches_eval;
    prop_certify_never_refutes;
    prop_semantic_rewrite_preserves_results;
  ]
