(* Tests for the fault-tolerant executor stack: lock manager unit tests
   (modes, FIFO queues, upgrades, deadlock victims, timeouts), QCheck
   properties (the no-conflicting-locks invariant under random traffic,
   cycle detection against an independent reachability checker, the
   victim policy against Simulation's survivor fold, and a seeded fault
   sweep checked against the Transactions.Recovery model), plus the
   robustness endgames: read-only degradation on an unflushable WAL and
   quarantine-and-repair after on-disk corruption. *)

module LM = Storage.Lock_manager
module E = Storage.Engine
module X = Storage.Executor
module F = Storage.Fault
module S = Transactions.Schedule

let tmp_counter = ref 0

let fresh_path () =
  incr tmp_counter;
  let dir = Filename.get_temp_dir_name () in
  let path =
    Filename.concat dir
      (Printf.sprintf "dbmeta_exec_test_%d_%d.db" (Unix.getpid ()) !tmp_counter)
  in
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; E.wal_path path ];
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; E.wal_path path ]

let outcome_str = function
  | LM.Granted -> "granted"
  | LM.Blocked -> "blocked"
  | LM.Deadlock { victim; _ } -> Printf.sprintf "deadlock(victim %d)" victim

let check_outcome what expected actual =
  Alcotest.(check string) what (outcome_str expected) (outcome_str actual)

(* --- lock manager: modes and queues ------------------------------------ *)

let test_lock_shared_compatible () =
  let lm = LM.create () in
  check_outcome "t1 S" LM.Granted (LM.acquire lm ~txn:1 ~item:"x" LM.Shared);
  check_outcome "t2 S" LM.Granted (LM.acquire lm ~txn:2 ~item:"x" LM.Shared);
  Alcotest.(check int) "two holders" 2 (List.length (LM.holders lm ~item:"x"));
  Alcotest.(check bool) "invariant" true (LM.no_conflicts lm)

let test_lock_exclusive_conflicts () =
  let lm = LM.create () in
  check_outcome "t1 X" LM.Granted (LM.acquire lm ~txn:1 ~item:"x" LM.Exclusive);
  check_outcome "t2 S blocked" LM.Blocked (LM.acquire lm ~txn:2 ~item:"x" LM.Shared);
  check_outcome "t3 X blocked" LM.Blocked (LM.acquire lm ~txn:3 ~item:"x" LM.Exclusive);
  (* re-issuing while still blocked is idempotent *)
  check_outcome "t2 re-issue" LM.Blocked (LM.acquire lm ~txn:2 ~item:"x" LM.Shared);
  Alcotest.(check int) "queue length" 2 (List.length (LM.waiters lm ~item:"x"));
  LM.release_all lm ~txn:1;
  check_outcome "t2 now granted" LM.Granted (LM.acquire lm ~txn:2 ~item:"x" LM.Shared);
  Alcotest.(check bool) "invariant" true (LM.no_conflicts lm)

let test_lock_fifo_no_starvation () =
  (* S behind an earlier X waiter must queue even though it is compatible
     with the current S holder — FIFO prevents writer starvation *)
  let lm = LM.create () in
  check_outcome "t1 S" LM.Granted (LM.acquire lm ~txn:1 ~item:"x" LM.Shared);
  check_outcome "t2 X waits" LM.Blocked (LM.acquire lm ~txn:2 ~item:"x" LM.Exclusive);
  check_outcome "t3 S queues behind X" LM.Blocked
    (LM.acquire lm ~txn:3 ~item:"x" LM.Shared);
  LM.release_all lm ~txn:1;
  (* the writer goes first *)
  Alcotest.(check (option bool)) "t2 holds X" (Some true)
    (Option.map (fun m -> m = LM.Exclusive) (LM.holds lm ~txn:2 ~item:"x"));
  Alcotest.(check (option bool)) "t3 still waiting" None
    (Option.map (fun m -> m = LM.Shared) (LM.holds lm ~txn:3 ~item:"x"));
  LM.release_all lm ~txn:2;
  check_outcome "t3 finally granted" LM.Granted
    (LM.acquire lm ~txn:3 ~item:"x" LM.Shared)

let test_lock_upgrade () =
  let lm = LM.create () in
  check_outcome "t1 S" LM.Granted (LM.acquire lm ~txn:1 ~item:"x" LM.Shared);
  (* sole holder upgrades in place *)
  check_outcome "t1 S->X" LM.Granted (LM.acquire lm ~txn:1 ~item:"x" LM.Exclusive);
  Alcotest.(check bool) "holds X" true
    (LM.holds lm ~txn:1 ~item:"x" = Some LM.Exclusive);
  (* with a second reader the upgrade must wait *)
  let lm = LM.create () in
  ignore (LM.acquire lm ~txn:1 ~item:"x" LM.Shared);
  ignore (LM.acquire lm ~txn:2 ~item:"x" LM.Shared);
  check_outcome "contended upgrade blocks" LM.Blocked
    (LM.acquire lm ~txn:1 ~item:"x" LM.Exclusive);
  LM.release_all lm ~txn:2;
  check_outcome "upgrade after release" LM.Granted
    (LM.acquire lm ~txn:1 ~item:"x" LM.Exclusive)

let test_lock_deadlock_victim () =
  let lm = LM.create () in
  ignore (LM.acquire lm ~txn:1 ~item:"x" LM.Exclusive);
  ignore (LM.acquire lm ~txn:2 ~item:"y" LM.Exclusive);
  check_outcome "t1 waits for y" LM.Blocked (LM.acquire lm ~txn:1 ~item:"y" LM.Exclusive);
  (match LM.acquire lm ~txn:2 ~item:"x" LM.Exclusive with
  | LM.Deadlock { victim; cycle } ->
      (* default policy condemns the larger id *)
      Alcotest.(check int) "youngest victim" 2 victim;
      Alcotest.(check bool) "cycle covers both" true
        (List.sort compare cycle = [ 1; 2 ])
  | o -> Alcotest.failf "expected deadlock, got %s" (outcome_str o));
  (* the caller aborts the victim; the survivor then proceeds *)
  LM.release_all lm ~txn:2;
  check_outcome "survivor granted" LM.Granted
    (LM.acquire lm ~txn:1 ~item:"y" LM.Exclusive)

let test_lock_timeout () =
  let lm = LM.create ~timeout:2 () in
  ignore (LM.acquire lm ~txn:1 ~item:"x" LM.Exclusive);
  ignore (LM.acquire lm ~txn:2 ~item:"x" LM.Shared);
  Alcotest.(check (list int)) "tick 1" [] (LM.tick lm);
  Alcotest.(check (list int)) "tick 2" [] (LM.tick lm);
  Alcotest.(check (list int)) "expired" [ 2 ] (LM.tick lm);
  LM.release_all lm ~txn:2;
  Alcotest.(check (list int)) "quiet after abort" [] (LM.tick lm)

(* --- QCheck: the no-conflicting-locks invariant ------------------------- *)

let prop_no_conflicts =
  let open QCheck2 in
  let cmd_gen = Gen.(triple (int_range 0 9) (int_range 0 4) (int_range 0 2)) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"lock manager holds no conflicting locks"
       (Gen.list_size (Gen.int_range 0 60) cmd_gen)
       (fun cmds ->
         let lm = LM.create () in
         List.for_all
           (fun (kind, txn, it) ->
             let item = Printf.sprintf "i%d" it in
             (if kind >= 8 then LM.release_all lm ~txn
              else
                let mode = if kind mod 2 = 0 then LM.Shared else LM.Exclusive in
                match LM.acquire lm ~txn ~item mode with
                | LM.Granted | LM.Blocked -> ()
                | LM.Deadlock { victim; _ } -> LM.release_all lm ~txn:victim);
             LM.no_conflicts lm)
           cmds))

(* --- QCheck: cycle detection vs an independent checker ------------------ *)

let reachable edges src dst =
  let rec go seen = function
    | [] -> false
    | n :: rest ->
        if n = dst then true
        else if List.mem n seen then go seen rest
        else
          go (n :: seen)
            (List.filter_map (fun (a, b) -> if a = n then Some b else None) edges
            @ rest)
  in
  go []
    (List.filter_map (fun (a, b) -> if a = src then Some b else None) edges)

let has_cycle edges =
  List.exists (fun (n, _) -> reachable edges n n) edges

let genuine_cycle edges cycle =
  match cycle with
  | [] -> false
  | first :: _ ->
      let rec ring = function
        | [ last ] -> List.mem (last, first) edges
        | a :: (b :: _ as rest) -> List.mem (a, b) edges && ring rest
        | [] -> false
      in
      ring cycle

let prop_find_cycle =
  let open QCheck2 in
  let edge_gen = Gen.(pair (int_range 0 7) (int_range 0 7)) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"find_cycle = reachability on random graphs"
       (Gen.list_size (Gen.int_range 0 20) edge_gen)
       (fun edges ->
         match LM.find_cycle edges with
         | None -> not (has_cycle edges)
         | Some cycle -> has_cycle edges && genuine_cycle edges cycle))

(* --- QCheck: victim policy mirrors Simulation's survivor ---------------- *)

let prop_victim_pref =
  let open QCheck2 in
  (* transactions 0..n-1 with random incarnations; age ties base = id *)
  let gen = Gen.(list_size (int_range 2 8) (int_range 0 5)) in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500
       ~name:"executor victim policy matches Simulation's survivor"
       gen
       (fun incarnations ->
         let inc = Array.of_list incarnations in
         let age t = (inc.(t), t) in
         let txns = List.init (Array.length inc) Fun.id in
         let victim =
           List.fold_left (X.victim_pref ~age) (List.hd txns) (List.tl txns)
         in
         (* Simulation.break_deadlock's survivor: highest incarnation,
            ties to the lowest base *)
         let survivor =
           List.fold_left
             (fun best t ->
               let ib, bb = age best and it, bt = age t in
               if it > ib || (it = ib && bt < bb) then t else best)
             (List.hd txns) (List.tl txns)
         in
         (* the victim is a global minimum of the survivor order: every
            pairwise contest condemns it again, and it never wins against
            the survivor *)
         victim <> survivor
         && List.for_all (fun t -> t = victim || X.victim_pref ~age victim t = victim) txns))

(* --- QCheck: seeded fault sweep against the recovery model -------------- *)

let fault_specs =
  [|
    "";
    "torn=0.05";
    "flip=0.05";
    "eio=0.1";
    "torn=0.03,flip=0.03,eio=0.08";
    "crash=11";
    "crash=23,torn=0.04";
  |]

let prop_fault_sweep =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"executor under faults = recovery model"
       (QCheck2.Gen.int_range 0 100_000) (fun seed ->
         let spec0 = fault_specs.(seed mod Array.length fault_specs) in
         let spec =
           if spec0 = "" then "" else Printf.sprintf "%s,seed=%d" spec0 seed
         in
         let path = fresh_path () in
         let rng = Support.Rng.create seed in
         let specs =
           Transactions.Workload.generate rng
             {
               Transactions.Workload.txns = 4;
               ops_per_txn = 5;
               items = 6;
               skew = 0.5;
               write_ratio = 0.6;
             }
         in
         (match E.open_db ~pool_size:4 ~faults:(F.spec_of_string spec) path with
         | eng ->
             let stats = X.run ~config:{ X.default_config with seed } eng specs in
             if stats.X.crashed = None then (
               try E.close eng with F.Crash _ -> E.crash eng)
         | exception F.Crash _ -> ());
         let ok = X.model_divergence ~path = None in
         cleanup path;
         ok))

(* --- executor: deadlock victims retry to completion --------------------- *)

let test_executor_deadlock_retry () =
  let path = fresh_path () in
  let eng = E.open_db ~pool_size:4 path in
  let specs =
    [| [ S.Write "x"; S.Write "y" ]; [ S.Write "y"; S.Write "x" ] |]
  in
  let stats = X.run ~config:{ X.default_config with seed = 7 } eng specs in
  E.close eng;
  Alcotest.(check int) "both commit" 2 stats.X.committed;
  Alcotest.(check bool) "at least one deadlock" true (stats.X.deadlocks >= 1);
  Alcotest.(check int) "restarts = deadlocks + timeouts" stats.X.restarts
    (stats.X.deadlocks + stats.X.timeouts);
  Alcotest.(check bool) "no divergence" true (X.model_divergence ~path = None);
  cleanup path

let test_executor_lock_timeout () =
  (* a tiny timeout turns ordinary waits into restarts, but everything
     still commits and still matches the model *)
  let path = fresh_path () in
  let eng = E.open_db ~pool_size:4 path in
  let rng = Support.Rng.create 3 in
  let specs =
    Transactions.Workload.generate rng
      { Transactions.Workload.default with txns = 4; ops_per_txn = 4; items = 3 }
  in
  let stats =
    X.run ~config:{ X.default_config with seed = 3; lock_timeout = Some 1 } eng specs
  in
  E.close eng;
  Alcotest.(check int) "all commit" 4 stats.X.committed;
  Alcotest.(check bool) "no divergence" true (X.model_divergence ~path = None);
  cleanup path

(* --- degradation: an unflushable WAL goes read-only --------------------- *)

let test_read_only_degradation () =
  let path = fresh_path () in
  (* commit a baseline without faults *)
  let eng = E.open_db path in
  let txn = E.begin_txn eng in
  E.write eng ~txn "a" 1;
  E.write eng ~txn "b" 2;
  E.commit eng ~txn;
  E.close eng;
  (* reopen with every WAL fsync failing: the first commit exhausts the
     retry budget and degrades the engine *)
  let spec = F.spec_of_string "eio@wal fsync=1,seed=1" in
  let eng = E.open_db ~faults:spec path in
  let txn = E.begin_txn eng in
  E.write eng ~txn "a" 99;
  (match E.commit eng ~txn with
  | () -> Alcotest.fail "commit should have degraded the engine"
  | exception E.Read_only reason ->
      Alcotest.(check bool) "reason names the site" true
        (String.length reason > 0));
  Alcotest.(check bool) "read-only" true (E.read_only eng);
  Alcotest.(check bool) "reason recorded" true (E.degraded_reason eng <> None);
  (* reads survive degradation; being a steal engine they still see the
     in-doubt transaction's write — restart recovery rolls it back *)
  Alcotest.(check int) "read a (in doubt)" 99 (E.read eng "a");
  Alcotest.(check int) "read b" 2 (E.read eng "b");
  (* further write transactions are refused outright *)
  (match E.begin_txn eng with
  | _ -> Alcotest.fail "begin_txn should be refused when read-only"
  | exception E.Read_only _ -> ());
  E.close eng;
  (* the in-doubt transaction is a loser at restart: the baseline wins *)
  let eng = E.open_db path in
  Alcotest.(check (list (pair string int))) "baseline intact"
    [ ("a", 1); ("b", 2) ]
    (E.items eng);
  E.close eng;
  cleanup path

(* --- repair: on-disk corruption is quarantined and rebuilt -------------- *)

let test_quarantine_and_repair () =
  let path = fresh_path () in
  let eng = E.open_db path in
  for t = 1 to 4 do
    let txn = E.begin_txn eng in
    for k = 0 to 5 do
      E.write eng ~txn (Printf.sprintf "x%d" k) ((t * 10) + k)
    done;
    E.commit eng ~txn
  done;
  let before = E.items eng in
  E.close eng;
  (* flip a byte inside the first item-store page *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore
    (Unix.lseek fd (Storage.Page.size + (Storage.Page.size / 2)) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let eng = E.open_db path in
  Alcotest.(check bool) "at least one repair" true (E.repairs eng >= 1);
  (match E.last_repair eng with
  | Some r ->
      Alcotest.(check bool) "quarantined a page" true (r.E.quarantined <> []);
      Alcotest.(check bool) "replayed writes" true (r.E.replayed > 0)
  | None -> Alcotest.fail "expected a recorded repair");
  Alcotest.(check (list (pair string int))) "state rebuilt from log" before
    (E.items eng);
  E.close eng;
  cleanup path

let suite =
  [
    Alcotest.test_case "lock/shared compatible" `Quick test_lock_shared_compatible;
    Alcotest.test_case "lock/exclusive conflicts" `Quick test_lock_exclusive_conflicts;
    Alcotest.test_case "lock/fifo no starvation" `Quick test_lock_fifo_no_starvation;
    Alcotest.test_case "lock/upgrade" `Quick test_lock_upgrade;
    Alcotest.test_case "lock/deadlock victim" `Quick test_lock_deadlock_victim;
    Alcotest.test_case "lock/timeout" `Quick test_lock_timeout;
    prop_no_conflicts;
    prop_find_cycle;
    prop_victim_pref;
    prop_fault_sweep;
    Alcotest.test_case "executor/deadlock retry" `Quick test_executor_deadlock_retry;
    Alcotest.test_case "executor/lock timeout" `Quick test_executor_lock_timeout;
    Alcotest.test_case "engine/read-only degradation" `Quick test_read_only_degradation;
    Alcotest.test_case "engine/quarantine and repair" `Quick test_quarantine_and_repair;
  ]
