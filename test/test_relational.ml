(* Tests for the relational substrate: values, schemas, relations, algebra
   typing, evaluation, CSV persistence, and optimizer equivalence. *)

module R = Relational
module A = R.Algebra
open R.Value
open Fixtures

let check_rel = Alcotest.check relation_testable

(* --- values -------------------------------------------------------------- *)

let test_value_compare_within_type () =
  Alcotest.(check bool) "int order" true (R.Value.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "string order" true
    (R.Value.compare (String "a") (String "b") < 0);
  Alcotest.(check bool) "bool order" true
    (R.Value.compare (Bool false) (Bool true) < 0)

let test_value_compare_across_types_raises () =
  Alcotest.check_raises "type clash"
    (R.Value.Type_clash "cannot compare int value 1 with string value \"x\"")
    (fun () -> ignore (R.Value.compare (Int 1) (String "x")))

let test_value_compare_poly_total () =
  let vs = [ Int 1; String "a"; Float 1.5; Bool true ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = R.Value.compare_poly a b and c2 = R.Value.compare_poly b a in
          Alcotest.(check bool) "antisymmetric" true (Int.compare c1 (-c2) = 0 || (c1 = 0 && c2 = 0)))
        vs)
    vs

let test_value_parse_roundtrip () =
  let check ty v =
    match R.Value.parse ty (R.Value.to_string v) with
    | Some v' -> Alcotest.(check bool) "roundtrip" true (R.Value.equal v v')
    | None -> Alcotest.fail "parse failed"
  in
  check TInt (Int 42);
  check TString (String "hello");
  check TBool (Bool true);
  Alcotest.(check bool) "garbage int" true (R.Value.parse TInt "xyz" = None)

(* --- schemas ------------------------------------------------------------- *)

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (R.Schema.Schema_error "duplicate attribute \"a\" in schema") (fun () ->
      ignore (R.Schema.make [ ("a", TInt); ("a", TString) ]))

let test_schema_project_order () =
  let s = schema [ ("a", TInt); ("b", TString); ("c", TBool) ] in
  let p = R.Schema.project s [ "c"; "a" ] in
  Alcotest.(check (list string)) "order preserved" [ "c"; "a" ]
    (R.Schema.attributes p)

let test_schema_rename_simultaneous () =
  let s = schema [ ("a", TInt); ("b", TInt) ] in
  (* swap a and b in one simultaneous step *)
  let r = R.Schema.rename s [ ("a", "b"); ("b", "a") ] in
  Alcotest.(check (list string)) "swapped" [ "b"; "a" ] (R.Schema.attributes r)

let test_schema_union_compatible_reorder () =
  let s1 = schema [ ("a", TInt); ("b", TString) ] in
  let s2 = schema [ ("b", TString); ("a", TInt) ] in
  Alcotest.(check bool) "compatible" true (R.Schema.union_compatible s1 s2);
  Alcotest.(check bool) "not equal" false (R.Schema.equal s1 s2)

let test_schema_product_clash () =
  let s = schema [ ("a", TInt) ] in
  Alcotest.check_raises "clash"
    (R.Schema.Schema_error "product: attribute \"a\" occurs on both sides")
    (fun () -> ignore (R.Schema.product s s))

let test_schema_join_shared_type_clash () =
  let s1 = schema [ ("a", TInt) ] and s2 = schema [ ("a", TString) ] in
  Alcotest.(check bool) "raises" true
    (match R.Schema.common s1 s2 with
    | _ -> false
    | exception R.Schema.Schema_error _ -> true)

(* --- relations ------------------------------------------------------------ *)

let test_relation_dedup () =
  let r =
    R.Relation.of_list (schema [ ("a", TInt) ]) [ [ Int 1 ]; [ Int 1 ]; [ Int 2 ] ]
  in
  Alcotest.(check int) "set semantics" 2 (R.Relation.cardinality r)

let test_relation_type_check () =
  Alcotest.(check bool) "wrong type rejected" true
    (match R.Relation.of_list (schema [ ("a", TInt) ]) [ [ String "x" ] ] with
    | _ -> false
    | exception R.Relation.Arity_error _ -> true);
  Alcotest.(check bool) "wrong arity rejected" true
    (match R.Relation.of_list (schema [ ("a", TInt) ]) [ [ Int 1; Int 2 ] ] with
    | _ -> false
    | exception R.Relation.Arity_error _ -> true)

let test_relation_union_realigns () =
  let r1 = R.Relation.of_list (schema [ ("a", TInt); ("b", TInt) ]) [ [ Int 1; Int 2 ] ] in
  let r2 = R.Relation.of_list (schema [ ("b", TInt); ("a", TInt) ]) [ [ Int 2; Int 1 ] ] in
  (* same tuple once the columns are aligned by name *)
  Alcotest.(check int) "aligned union" 1 (R.Relation.cardinality (R.Relation.union r1 r2));
  Alcotest.(check bool) "equal up to column order" true (R.Relation.equal r1 r2)

let test_relation_project () =
  let p = R.Relation.project students [ "year" ] in
  Alcotest.(check int) "distinct years" 3 (R.Relation.cardinality p)

let test_relation_join () =
  let j = R.Relation.join students enrolled in
  (* every enrollment row extended with student info: 9 rows *)
  Alcotest.(check int) "join cardinality" 9 (R.Relation.cardinality j);
  Alcotest.(check (list string)) "join schema"
    [ "sid"; "sname"; "year"; "cid"; "grade" ]
    (R.Schema.attributes (R.Relation.schema j))

let test_relation_join_no_shared_is_product () =
  let j = R.Relation.join students courses in
  Alcotest.(check int) "product size" 20 (R.Relation.cardinality j)

let test_relation_semijoin_antijoin () =
  let enrolled_students = R.Relation.semijoin students enrolled in
  Alcotest.(check int) "students with enrollment" 4
    (R.Relation.cardinality enrolled_students);
  let idle = R.Relation.antijoin students enrolled in
  Alcotest.(check int) "students without enrollment" 1 (R.Relation.cardinality idle);
  (* partition property *)
  check_rel "semijoin + antijoin = all" students
    (R.Relation.union enrolled_students idle)

let test_relation_divide () =
  (* who is enrolled in every cs course? *)
  let cs =
    R.Relation.project
      (R.Relation.select
         (fun t -> R.Value.equal t.(2) (String "cs"))
         courses)
      [ "cid" ]
  in
  let pairs = R.Relation.project enrolled [ "sid"; "cid" ] in
  let result = R.Relation.divide pairs cs in
  Alcotest.(check (list (list string)))
    "only ada takes all cs courses"
    [ [ "1" ] ]
    (List.map (List.map R.Value.to_string) (rows result))

let test_relation_divide_empty_divisor () =
  let pairs = R.Relation.project enrolled [ "sid"; "cid" ] in
  let empty_divisor = R.Relation.create (schema [ ("cid", TInt) ]) in
  let result = R.Relation.divide pairs empty_divisor in
  (* dividing by the empty set yields all candidates *)
  Alcotest.(check int) "all sids" 4 (R.Relation.cardinality result)

let test_active_domain () =
  let adom = R.Relation.active_domain edges in
  Alcotest.(check int) "seven vertices" 7 (List.length adom)

(* --- algebra typing -------------------------------------------------------- *)

let catalog = A.catalog_of_database university

let test_algebra_schema_inference () =
  let e = A.Project ([ "sname" ], A.Join (A.Rel "students", A.Rel "enrolled")) in
  Alcotest.(check (list string)) "schema" [ "sname" ]
    (R.Schema.attributes (A.schema_of catalog e))

let test_algebra_bad_union () =
  Alcotest.(check bool) "union type error" true
    (not (A.well_typed catalog (A.Union (A.Rel "students", A.Rel "courses"))))

let test_algebra_bad_predicate_attr () =
  let e = A.Select (A.Cmp (A.Eq, A.Attr "nope", A.Const (Int 1)), A.Rel "students") in
  Alcotest.(check bool) "unknown attribute" true (not (A.well_typed catalog e))

let test_algebra_cross_type_predicate () =
  let e =
    A.Select (A.Cmp (A.Eq, A.Attr "sid", A.Const (String "x")), A.Rel "students")
  in
  Alcotest.(check bool) "cross-type comparison" true (not (A.well_typed catalog e))

let test_algebra_singleton () =
  let e = A.Singleton [ ("k", Int 7); ("name", String "x") ] in
  Alcotest.(check (list string)) "singleton schema" [ "k"; "name" ]
    (R.Schema.attributes (A.schema_of catalog e))

let test_algebra_divide_typing () =
  let pairs = A.Project ([ "sid"; "cid" ], A.Rel "enrolled") in
  let divisor = A.Project ([ "cid" ], A.Rel "courses") in
  let e = A.Divide (pairs, divisor) in
  Alcotest.(check (list string)) "quotient schema" [ "sid" ]
    (R.Schema.attributes (A.schema_of catalog e))

(* --- evaluation ------------------------------------------------------------ *)

let eval = R.Eval.eval university

let test_eval_select_project () =
  let e =
    A.Project
      ( [ "sname" ],
        A.Select (A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 85)),
                  A.Join (A.Rel "students", A.Rel "enrolled")) )
  in
  Alcotest.(check (list (list string)))
    "top students"
    [ [ "ada" ]; [ "dan" ] ]
    (List.map (List.map R.Value.to_string) (rows (eval e)))

let test_eval_union_diff () =
  let year1 = A.Select (A.Cmp (A.Eq, A.Attr "year", A.Const (Int 1)), A.Rel "students") in
  let others = A.Diff (A.Rel "students", year1) in
  let all = A.Union (year1, others) in
  check_rel "partition" students (eval all);
  Alcotest.(check int) "others" 3 (R.Relation.cardinality (eval others))

let test_eval_rename_join () =
  (* pairs of students in the same year: rename and join on year *)
  let left = A.Project ([ "sid"; "year" ], A.Rel "students") in
  let right =
    A.Rename ([ ("sid", "sid2") ], A.Project ([ "sid"; "year" ], A.Rel "students"))
  in
  let pairs =
    A.Select (A.Cmp (A.Lt, A.Attr "sid", A.Attr "sid2"), A.Join (left, right))
  in
  Alcotest.(check int) "same-year pairs" 2 (R.Relation.cardinality (eval pairs))

let test_eval_singleton_product () =
  let e = A.Product (A.Singleton [ ("tag", String "x") ], A.Rel "courses") in
  Alcotest.(check int) "tagged" 4 (R.Relation.cardinality (eval e))

let test_eval_zero_ary () =
  (* boolean query: is anyone enrolled in course 10? *)
  let yes =
    A.Project ([], A.Select (A.Cmp (A.Eq, A.Attr "cid", A.Const (Int 10)), A.Rel "enrolled"))
  in
  let no =
    A.Project ([], A.Select (A.Cmp (A.Eq, A.Attr "cid", A.Const (Int 999)), A.Rel "enrolled"))
  in
  Alcotest.(check int) "true is one empty tuple" 1 (R.Relation.cardinality (eval yes));
  Alcotest.(check int) "false is empty" 0 (R.Relation.cardinality (eval no))

let test_eval_divide () =
  let pairs = A.Project ([ "sid"; "cid" ], A.Rel "enrolled") in
  let cs =
    A.Project ([ "cid" ], A.Select (A.Cmp (A.Eq, A.Attr "dept", A.Const (String "cs")), A.Rel "courses"))
  in
  let r = eval (A.Divide (pairs, cs)) in
  Alcotest.(check (list (list string))) "ada" [ [ "1" ] ]
    (List.map (List.map R.Value.to_string) (rows r))

(* --- CSV -------------------------------------------------------------------- *)

let test_csv_roundtrip () =
  let text = R.Csv.relation_to_string students in
  let back = R.Csv.relation_of_string text in
  check_rel "roundtrip" students back

let test_csv_quoting () =
  let s = schema [ ("a", TString); ("b", TInt) ] in
  let r =
    R.Relation.of_list s
      [ [ String "has,comma"; Int 1 ]; [ String "has\"quote"; Int 2 ] ]
  in
  check_rel "quoted roundtrip" r (R.Csv.relation_of_string (R.Csv.relation_to_string r))

let test_csv_bad_header () =
  Alcotest.(check bool) "missing type" true
    (match R.Csv.relation_of_string "a,b\n1,2\n" with
    | _ -> false
    | exception R.Csv.Parse_error _ -> true)

let test_csv_bad_row () =
  Alcotest.(check bool) "wrong arity row" true
    (match R.Csv.relation_of_string "a:int\n1,2\n" with
    | _ -> false
    | exception R.Csv.Parse_error _ -> true)

(* --- optimizer --------------------------------------------------------------- *)

let stats = R.Optimizer.stats_of_database university

let test_optimizer_preserves_semantics_fixed () =
  let queries =
    [
      A.Project
        ( [ "sname" ],
          A.Select
            ( A.And
                ( A.Cmp (A.Ge, A.Attr "grade", A.Const (Int 80)),
                  A.Cmp (A.Eq, A.Attr "dept", A.Const (String "cs")) ),
              A.Join (A.Join (A.Rel "students", A.Rel "enrolled"), A.Rel "courses") ) );
      A.Select
        ( A.Cmp (A.Eq, A.Attr "year", A.Const (Int 1)),
          A.Union
            ( A.Rel "students",
              A.Select (A.Cmp (A.Gt, A.Attr "sid", A.Const (Int 2)), A.Rel "students") ) );
    ]
  in
  List.iter
    (fun q ->
      let expected = eval q in
      let optimized = R.Optimizer.optimize catalog stats q in
      check_rel "optimize preserves" expected (eval optimized))
    queries

let test_optimizer_pushes_selection () =
  let q =
    A.Select
      ( A.Cmp (A.Eq, A.Attr "dept", A.Const (String "cs")),
        A.Join (A.Rel "enrolled", A.Rel "courses") )
  in
  let opt = R.Optimizer.push_selections catalog q in
  (* after push-down the selection sits below the join *)
  let rec top_is_join = function
    | A.Join _ -> true
    | A.Project (_, e) -> top_is_join e
    | _ -> false
  in
  Alcotest.(check bool) "selection pushed below join" true (top_is_join opt);
  check_rel "still equivalent" (eval q) (eval opt)

let test_optimizer_estimate_monotone () =
  let small = A.Select (A.Cmp (A.Eq, A.Attr "sid", A.Const (Int 1)), A.Rel "students") in
  Alcotest.(check bool) "selection shrinks estimate" true
    (R.Optimizer.estimate catalog stats small
    < R.Optimizer.estimate catalog stats (A.Rel "students"))

(* --- property tests ----------------------------------------------------------- *)

let property count name gen law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let random_db_and_query seed =
  let rng = Support.Rng.create seed in
  let db =
    R.Generator.random_database rng ~relations:3 ~arity:3 ~size:8 ~domain:5
  in
  let q = R.Generator.random_query rng db ~depth:3 ~domain:5 in
  (db, q)

let prop_generated_queries_well_typed =
  property 100 "generated queries are well-typed" seed_gen (fun seed ->
      let db, q = random_db_and_query seed in
      A.well_typed (A.catalog_of_database db) q)

let prop_optimizer_equivalence =
  property 100 "optimize preserves semantics" seed_gen (fun seed ->
      let db, q = random_db_and_query seed in
      let catalog = A.catalog_of_database db in
      let stats = R.Optimizer.stats_of_database db in
      let before = R.Eval.eval db q in
      let after = R.Eval.eval db (R.Optimizer.optimize catalog stats q) in
      R.Relation.equal before after)

let prop_push_selections_equivalence =
  property 100 "push_selections preserves semantics" seed_gen (fun seed ->
      let db, q = random_db_and_query seed in
      let catalog = A.catalog_of_database db in
      let before = R.Eval.eval db q in
      let after = R.Eval.eval db (R.Optimizer.push_selections catalog q) in
      R.Relation.equal before after)

let prop_order_joins_equivalence =
  property 100 "order_joins preserves semantics" seed_gen (fun seed ->
      let db, q = random_db_and_query seed in
      let catalog = A.catalog_of_database db in
      let stats = R.Optimizer.stats_of_database db in
      let before = R.Eval.eval db q in
      let after = R.Eval.eval db (R.Optimizer.order_joins catalog stats q) in
      R.Relation.equal before after)

let prop_prune_projections_equivalence =
  property 100 "prune_projections preserves semantics" seed_gen (fun seed ->
      let db, q = random_db_and_query seed in
      let catalog = A.catalog_of_database db in
      let before = R.Eval.eval db q in
      let after = R.Eval.eval db (R.Optimizer.prune_projections catalog q) in
      R.Relation.equal before after)

let prop_csv_roundtrip =
  property 50 "csv roundtrip on random relations" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let s = R.Generator.random_schema rng ~prefix:"a" ~arity:3 in
      let r = R.Generator.random_relation rng s ~size:10 ~domain:6 in
      R.Relation.equal r (R.Csv.relation_of_string (R.Csv.relation_to_string r)))

let prop_join_commutes =
  property 50 "join commutes (as sets)" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let s1 = R.Schema.make [ ("a", TInt); ("b", TInt) ] in
      let s2 = R.Schema.make [ ("b", TInt); ("c", TInt) ] in
      let r1 = R.Generator.random_relation rng s1 ~size:10 ~domain:4 in
      let r2 = R.Generator.random_relation rng s2 ~size:10 ~domain:4 in
      R.Relation.equal (R.Relation.join r1 r2) (R.Relation.join r2 r1))

let prop_union_idempotent =
  property 50 "union idempotent, diff self empty" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let s = R.Generator.random_schema rng ~prefix:"a" ~arity:2 in
      let r = R.Generator.random_relation rng s ~size:10 ~domain:4 in
      R.Relation.equal r (R.Relation.union r r)
      && R.Relation.is_empty (R.Relation.diff r r))

let prop_divide_product_inverse =
  property 50 "divide inverts product" seed_gen (fun seed ->
      let rng = Support.Rng.create seed in
      let s1 = R.Schema.make [ ("a", TInt) ] in
      let s2 = R.Schema.make [ ("b", TInt) ] in
      let r1 = R.Generator.random_relation rng s1 ~size:6 ~domain:8 in
      let r2 = R.Generator.random_relation rng s2 ~size:6 ~domain:8 in
      (* (r1 x r2) / r2 = r1 whenever r2 is non-empty *)
      R.Relation.is_empty r2
      || R.Relation.equal r1 (R.Relation.divide (R.Relation.product r1 r2) r2))

let suite =
  [
    Alcotest.test_case "value compare within type" `Quick test_value_compare_within_type;
    Alcotest.test_case "value compare across types raises" `Quick
      test_value_compare_across_types_raises;
    Alcotest.test_case "value compare_poly total" `Quick test_value_compare_poly_total;
    Alcotest.test_case "value parse roundtrip" `Quick test_value_parse_roundtrip;
    Alcotest.test_case "schema duplicate rejected" `Quick test_schema_duplicate_rejected;
    Alcotest.test_case "schema project order" `Quick test_schema_project_order;
    Alcotest.test_case "schema rename simultaneous" `Quick test_schema_rename_simultaneous;
    Alcotest.test_case "schema union-compatible reorder" `Quick
      test_schema_union_compatible_reorder;
    Alcotest.test_case "schema product clash" `Quick test_schema_product_clash;
    Alcotest.test_case "schema join type clash" `Quick test_schema_join_shared_type_clash;
    Alcotest.test_case "relation dedup" `Quick test_relation_dedup;
    Alcotest.test_case "relation type check" `Quick test_relation_type_check;
    Alcotest.test_case "relation union realigns" `Quick test_relation_union_realigns;
    Alcotest.test_case "relation project" `Quick test_relation_project;
    Alcotest.test_case "relation join" `Quick test_relation_join;
    Alcotest.test_case "join without shared attrs" `Quick
      test_relation_join_no_shared_is_product;
    Alcotest.test_case "semijoin/antijoin" `Quick test_relation_semijoin_antijoin;
    Alcotest.test_case "divide" `Quick test_relation_divide;
    Alcotest.test_case "divide by empty" `Quick test_relation_divide_empty_divisor;
    Alcotest.test_case "active domain" `Quick test_active_domain;
    Alcotest.test_case "algebra schema inference" `Quick test_algebra_schema_inference;
    Alcotest.test_case "algebra bad union" `Quick test_algebra_bad_union;
    Alcotest.test_case "algebra bad predicate attr" `Quick test_algebra_bad_predicate_attr;
    Alcotest.test_case "algebra cross-type predicate" `Quick
      test_algebra_cross_type_predicate;
    Alcotest.test_case "algebra singleton" `Quick test_algebra_singleton;
    Alcotest.test_case "algebra divide typing" `Quick test_algebra_divide_typing;
    Alcotest.test_case "eval select/project" `Quick test_eval_select_project;
    Alcotest.test_case "eval union/diff" `Quick test_eval_union_diff;
    Alcotest.test_case "eval rename join" `Quick test_eval_rename_join;
    Alcotest.test_case "eval singleton product" `Quick test_eval_singleton_product;
    Alcotest.test_case "eval zero-ary (boolean)" `Quick test_eval_zero_ary;
    Alcotest.test_case "eval divide" `Quick test_eval_divide;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv bad header" `Quick test_csv_bad_header;
    Alcotest.test_case "csv bad row" `Quick test_csv_bad_row;
    Alcotest.test_case "optimizer fixed queries" `Quick
      test_optimizer_preserves_semantics_fixed;
    Alcotest.test_case "optimizer pushes selection" `Quick test_optimizer_pushes_selection;
    Alcotest.test_case "optimizer estimate monotone" `Quick test_optimizer_estimate_monotone;
    prop_generated_queries_well_typed;
    prop_optimizer_equivalence;
    prop_push_selections_equivalence;
    prop_order_joins_equivalence;
    prop_prune_projections_equivalence;
    prop_csv_roundtrip;
    prop_join_commutes;
    prop_union_idempotent;
    prop_divide_product_inverse;
  ]
