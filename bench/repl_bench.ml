(* Primary/replica WAL shipping: what a commit costs as the replica
   count grows under quorum vs async acknowledgement, what a lagging
   replica's catch-up costs (log tail vs full snapshot), and what a
   failover costs end to end (promotion + healing the deposed
   primary).  Every quorum run is audited with the replication lint —
   a bench row from a diverged group would be measuring a bug. *)

module G = Replication.Group
module M = Replication.Repl_meta
module E = Storage.Engine
module F = Storage.Fault
module W = Transactions.Workload
module S = Transactions.Schedule

let fresh_base =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repl_bench_%d_%d.db" (Unix.getpid ()) !n)

let cleanup base =
  let rm p = if Sys.file_exists p then Sys.remove p in
  rm (M.group_path base);
  rm (M.acks_path base);
  for k = 0 to 8 do
    let p = M.node_path base k in
    rm p;
    rm (E.wal_path p);
    rm (M.epoch_path p)
  done

let params =
  { W.txns = 12; ops_per_txn = 5; items = 32; skew = 0.5; write_ratio = 0.6 }

let seeds () = List.init 5 (fun k -> 42 + !Bench_util.seed + k)

(* Drive the workload sequentially: replication prices durability and
   shipping, so one transaction at a time isolates exactly that cost. *)
let drive g programs =
  let acked = ref 0 and value = ref 0 in
  Array.iter
    (fun prog ->
      let txn = G.begin_txn g in
      List.iter
        (function
          | S.Read item -> ignore (G.read g item : int)
          | S.Write item ->
              incr value;
              G.write g ~txn item !value
          | S.Commit | S.Abort -> ())
        prog;
      match G.commit g ~txn with G.Acked -> incr acked | G.Local_only -> ())
    programs;
  !acked

let lint_clean base =
  not
    (Analysis.Diagnostic.has_errors (Analysis.Replication_lint.lint_base base))

(* Commit latency as the group widens: every quorum commit pays one
   reliable exchange per replica before it acks; async acks locally and
   ships best-effort, so its commit cost should stay near-flat. *)
let commit_cost () =
  Bench_util.note
    "Commit cost vs replica count, 12 txns x 5 ops (no faults):";
  let rows =
    List.concat_map
      (fun sync ->
        List.map
          (fun replicas ->
            let acked = ref 0 and ticks = ref 0 and ms = ref 0. in
            List.iter
              (fun seed ->
                let base = fresh_base () in
                let programs = W.generate (Support.Rng.create seed) params in
                let g =
                  G.open_group ~replicas ~sync ~metrics:!Bench_util.registry
                    base
                in
                let a, elapsed =
                  Bench_util.time_ms (fun () ->
                      let a = drive g programs in
                      G.close g;
                      a)
                in
                acked := !acked + a;
                ticks := !ticks + G.net_ticks g;
                ms := !ms +. elapsed;
                assert (lint_clean base);
                cleanup base)
              (seeds ());
            let n = float_of_int (List.length (seeds ())) in
            let label = M.sync_mode_to_string sync in
            let per_commit =
              !ms /. Float.max 1. (float_of_int (params.W.txns * List.length (seeds ())))
            in
            Bench_util.record
              ~metric:
                (Printf.sprintf "repl_ms_per_commit/replicas=%d/sync=%s"
                   replicas label)
              per_commit;
            Bench_util.record
              ~metric:
                (Printf.sprintf "repl_net_ticks/replicas=%d/sync=%s" replicas
                   label)
              ~unit:"ticks"
              (float_of_int !ticks /. n);
            [
              label;
              Bench_util.i replicas;
              Bench_util.f1 (float_of_int !acked /. n);
              Bench_util.f1 (float_of_int !ticks /. n);
              Bench_util.f3 per_commit;
              Bench_util.ms (!ms /. n);
            ])
          [ 1; 2; 4 ])
      [ M.Quorum; M.Async ]
  in
  Support.Table.print
    ~header:[ "sync"; "replicas"; "acked"; "net ticks"; "ms/commit"; "ms/run" ]
    rows;
  print_newline ()

(* Catch-up: run the workload with the shipping link fully dark (every
   message dropped), so the replica ends the run at lag = the whole
   log; then heal the link and time the catch-up that closes it. *)
let catchup_cost () =
  Bench_util.note
    "Catch-up latency after a dark shipping link (replica at full lag):";
  let rows =
    List.map
      (fun seed ->
        let base = fresh_base () in
        let programs = W.generate (Support.Rng.create seed) params in
        let g =
          G.open_group ~replicas:1 ~sync:M.Async
            ~faults:
              (F.spec_of_string
                 (Printf.sprintf "drop@replica=1,seed=%d" seed))
            ~metrics:!Bench_util.registry base
        in
        ignore (drive g programs : int);
        let lag = G.lag g in
        F.configure (G.fault g) F.no_faults;
        (* one-shot timing: the second catch-up would be a no-op *)
        let (), catchup_ms = Bench_util.time_ms (fun () -> G.catch_up g) in
        let healed = G.lag g in
        G.close g;
        assert (healed = 0);
        assert (lint_clean base);
        cleanup base;
        Bench_util.record
          ~metric:(Printf.sprintf "repl_catchup_ms/seed=%d" seed)
          catchup_ms;
        [
          Bench_util.i seed;
          Bench_util.i lag;
          Bench_util.f3 catchup_ms;
        ])
      (seeds ())
  in
  Support.Table.print ~header:[ "seed"; "lag bytes"; "catch-up ms" ] rows;
  print_newline ()

(* Failover: crash the primary of a 3-node group mid-life, promote the
   most-advanced replica, and heal the deposed primary by snapshot.
   The epoch bump and the snapshot dominate; post-failover commits
   must still reach quorum. *)
let failover_cost () =
  Bench_util.note "Failover latency, 3 nodes (promotion + healing):";
  let rows =
    List.map
      (fun seed ->
        let base = fresh_base () in
        let programs = W.generate (Support.Rng.create seed) params in
        let g =
          G.open_group ~replicas:2 ~sync:M.Quorum
            ~metrics:!Bench_util.registry base
        in
        ignore (drive g programs : int);
        let (winner, failover_ms) =
          Bench_util.time_ms (fun () -> G.failover g)
        in
        let (), heal_ms = Bench_util.time_ms (fun () -> G.catch_up g) in
        let post = drive g (W.generate (Support.Rng.create (seed + 1)) params) in
        G.close g;
        assert (post = params.W.txns);
        assert (lint_clean base);
        cleanup base;
        Bench_util.record
          ~metric:(Printf.sprintf "repl_failover_ms/seed=%d" seed)
          failover_ms;
        [
          Bench_util.i seed;
          Bench_util.i winner;
          Bench_util.f3 failover_ms;
          Bench_util.f3 heal_ms;
          Bench_util.i post;
        ])
      (seeds ())
  in
  Support.Table.print
    ~header:[ "seed"; "winner"; "failover ms"; "heal ms"; "post-acked" ]
    rows;
  print_newline ()

let run () =
  Bench_util.header "Replication: WAL shipping, catch-up, failover";
  ignore (Bench_util.fresh_registry () : Obs.Registry.t);
  commit_cost ();
  catchup_cost ();
  failover_cost ()
