(* The storage engine measured along its three axes: sequential load
   through the heap layer, buffer-pool point reads as the pool shrinks
   below the working set, and restart-recovery time as a function of log
   length.  Every run works on throwaway files in the temp directory. *)

module E = Storage.Engine

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dbmeta_bench_%d_%d.db" (Unix.getpid ()) !n)
    in
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; E.wal_path path ];
    path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; E.wal_path path ]

let relation n =
  Relational.Relation.of_list
    (Relational.Schema.make
       [ ("id", Relational.Value.TInt); ("payload", Relational.Value.TString) ])
    (List.init n (fun i ->
         [ Relational.Value.Int i; Relational.Value.String (String.make 32 'r') ]))

let run () =
  Bench_util.header "Persistent storage: pager, buffer pool, WAL, recovery";
  let metrics = Bench_util.fresh_registry () in

  (* --- sequential load --------------------------------------------------- *)
  Bench_util.note "Sequential table load (32-byte payloads, 4 KiB pages):";
  let rows =
    List.map
      (fun n ->
        let path = fresh_path () in
        let eng = E.open_db path in
        let rel = relation n in
        let ms = snd (Bench_util.time_ms (fun () -> E.save_table eng "r" rel)) in
        let pages = Storage.Pager.page_count (E.pager eng) in
        E.close eng;
        cleanup path;
        Bench_util.record
          ~metric:(Printf.sprintf "load_%d_tuples" n)
          ms;
        [
          Bench_util.i n;
          Bench_util.i pages;
          Bench_util.ms ms;
          Bench_util.f1 (float_of_int n /. Float.max 0.001 ms);
        ])
      [ 1_000; 5_000; 20_000 ]
  in
  Support.Table.print
    ~header:[ "tuples"; "pages"; "ms"; "tuples/ms" ]
    rows;
  print_newline ();

  (* --- buffer-pool point reads ------------------------------------------- *)
  Bench_util.note
    "Point reads of 2000 items, zipf-skewed, as the pool shrinks below the \
     working set:";
  let path = fresh_path () in
  let items = 2_000 in
  let eng = E.open_db path in
  let txn = E.begin_txn eng in
  for i = 0 to items - 1 do
    E.write eng ~txn (Printf.sprintf "item%04d" i) i
  done;
  E.commit eng ~txn;
  E.close eng;
  let data_pages =
    let eng = E.open_db path in
    let p = Storage.Pager.page_count (E.pager eng) in
    E.close eng;
    p
  in
  let reads = 20_000 in
  let rows =
    List.map
      (fun pool_size ->
        let eng = E.open_db ~pool_size ~metrics path in
        (* drop the pages the open itself touched, then read cold; the
           zipf sequence is drawn outside the timer *)
        Storage.Buffer_pool.drop_clean (E.pool eng);
        let rng = Support.Rng.create 42 in
        let seq =
          Array.init reads (fun _ ->
              Printf.sprintf "item%04d" (Support.Rng.zipf rng ~n:items ~s:1.1))
        in
        let ms =
          snd
            (Bench_util.time_ms (fun () ->
                 Array.iter (fun item -> ignore (E.read eng item : int)) seq))
        in
        let s = Storage.Buffer_pool.stats (E.pool eng) in
        let hit_rate =
          float_of_int s.Storage.Buffer_pool.hits
          /. float_of_int (max 1 (s.Storage.Buffer_pool.hits + s.Storage.Buffer_pool.misses))
        in
        E.close eng;
        Bench_util.record
          ~metric:(Printf.sprintf "point_reads_pool_%d" pool_size)
          ms;
        Bench_util.record
          ~metric:(Printf.sprintf "hit_rate_pool_%d" pool_size)
          ~unit:"ratio" hit_rate;
        [
          Bench_util.i pool_size;
          Bench_util.i s.Storage.Buffer_pool.hits;
          Bench_util.i s.Storage.Buffer_pool.misses;
          Bench_util.i s.Storage.Buffer_pool.evictions;
          Printf.sprintf "%.1f%%" (100. *. hit_rate);
          Bench_util.ms ms;
        ])
      [ 2; 8; 32; 128 ]
  in
  Support.Table.print
    ~header:[ "pool"; "hits"; "misses"; "evictions"; "hit rate"; "ms" ]
    rows;
  Bench_util.note "(%d data pages; reads follow a zipf(1.1) law)" data_pages;
  cleanup path;
  print_newline ();

  (* --- recovery time vs log length ---------------------------------------- *)
  Bench_util.note
    "Restart recovery after a crash, as the surviving log grows (10-write \
     transactions, every other one left uncommitted at the crash):";
  let rows =
    List.map
      (fun log_writes ->
        let path = fresh_path () in
        let eng = E.open_db path in
        let txns = log_writes / 10 in
        for t = 0 to txns - 1 do
          let txn = E.begin_txn eng in
          for k = 0 to 9 do
            E.write eng ~txn (Printf.sprintf "t%dk%d" t k) (t + k)
          done;
          (* half the transactions commit; the rest stay open as losers *)
          if t mod 2 = 0 then E.commit eng ~txn
        done;
        (* force the uncommitted tail onto the platter, then die *)
        Storage.Wal.flush (E.wal eng);
        E.crash eng;
        let eng, ms = Bench_util.time_ms (fun () -> E.open_db path) in
        let outcome =
          match E.last_recovery eng with Some o -> o | None -> assert false
        in
        E.close eng;
        cleanup path;
        Bench_util.record
          ~metric:(Printf.sprintf "recovery_%d_writes" log_writes)
          ms;
        [
          Bench_util.i log_writes;
          Bench_util.i (List.length outcome.Storage.Recovery.winners);
          Bench_util.i (List.length outcome.Storage.Recovery.losers);
          Bench_util.i outcome.Storage.Recovery.redo_applied;
          Bench_util.i outcome.Storage.Recovery.undone;
          Bench_util.ms ms;
        ])
      [ 100; 1_000; 5_000 ]
  in
  Support.Table.print
    ~header:[ "log writes"; "winners"; "losers"; "redone"; "undone"; "ms" ]
    rows
