(* Shared helpers for the benchmark targets: wall-clock timing, headers,
   and number formatting. *)

let now_ns () = Monotonic_clock.now ()

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.to_float (Int64.sub t1 t0) /. 1e6)

(* median-of-three timing to tame scheduler noise on fast functions *)
let timed f =
  let samples = List.init 3 (fun _ -> snd (time_ms f)) in
  List.nth (List.sort Float.compare samples) 1

let ms x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let i = string_of_int

let header title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n\n" bar title bar

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* --- machine-readable results (--json) ---------------------------------- *)

(* With --json, each target's recorded metrics are written to
   BENCH_<target>.json after the target runs; without it, [record] is
   free and nothing is written. *)

let json_mode = ref false

(* Base seed for targets that average over random workloads; set by the
   driver's --seed flag so a whole bench run is reproducible (and can be
   re-rolled) from the command line. *)
let seed = ref 0
let recorded : (string * float * string) list ref = ref []

let record ~metric ?(unit = "ms") value =
  recorded := (metric, value, unit) :: !recorded

(* A target that wants its observability counters embedded in the JSON
   dump installs a live registry here (see [fresh_registry]); everything
   else inherits the shared noop and pays nothing. *)
let registry : Obs.Registry.t ref = ref Obs.Registry.noop

let fresh_registry () =
  registry := Obs.Registry.create ();
  !registry

(* JSON numbers: [%g] would happily print [nan]/[inf], which are not
   JSON; a metric that isn't a finite number serializes as null. *)
let json_number x = if Float.is_finite x then Printf.sprintf "%g" x else "null"

let flush_json target =
  (* stable order: sort by metric name (insertion order for duplicates)
     so dumps from two runs diff cleanly *)
  let metrics =
    List.stable_sort
      (fun (a, _, _) (b, _, _) -> String.compare a b)
      (List.rev !recorded)
  in
  recorded := [];
  let reg = !registry in
  registry := Obs.Registry.noop;
  if !json_mode then begin
    let buf = Buffer.create 256 in
    Printf.bprintf buf "{\n  \"target\": %s,\n  \"metrics\": ["
      (Obs.Json.quote target);
    List.iteri
      (fun i (metric, value, unit) ->
        Printf.bprintf buf "%s\n    {\"metric\": %s, \"value\": %s, \"unit\": %s}"
          (if i = 0 then "" else ",")
          (Obs.Json.quote metric) (json_number value) (Obs.Json.quote unit))
      metrics;
    Buffer.add_string buf "\n  ]";
    if Obs.Registry.enabled reg then
      (* [to_json] is a complete object with sorted keys; splice it in *)
      Printf.bprintf buf ",\n  \"registry\": %s" (Obs.Registry.to_json reg);
    Buffer.add_string buf "\n}\n";
    let out = Buffer.contents buf in
    (match Obs.Json.validate out with
    | Ok _ -> ()
    | Error e -> failwith (Printf.sprintf "BENCH_%s.json: emitter bug: %s" target e));
    let file = Printf.sprintf "BENCH_%s.json" target in
    Support.Io.write_file file out;
    note "[json] wrote %s (%d metrics%s)" file (List.length metrics)
      (if Obs.Registry.enabled reg then ", + registry" else "")
  end
