(* Shared helpers for the benchmark targets: wall-clock timing, headers,
   and number formatting. *)

let now_ns () = Monotonic_clock.now ()

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.to_float (Int64.sub t1 t0) /. 1e6)

(* median-of-three timing to tame scheduler noise on fast functions *)
let timed f =
  let samples = List.init 3 (fun _ -> snd (time_ms f)) in
  List.nth (List.sort Float.compare samples) 1

let ms x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let i = string_of_int

let header title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n\n" bar title bar

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* --- machine-readable results (--json) ---------------------------------- *)

(* With --json, each target's recorded metrics are written to
   BENCH_<target>.json after the target runs; without it, [record] is
   free and nothing is written. *)

let json_mode = ref false

(* Base seed for targets that average over random workloads; set by the
   driver's --seed flag so a whole bench run is reproducible (and can be
   re-rolled) from the command line. *)
let seed = ref 0
let recorded : (string * float * string) list ref = ref []

let record ~metric ?(unit = "ms") value =
  recorded := (metric, value, unit) :: !recorded

let flush_json target =
  let metrics = List.rev !recorded in
  recorded := [];
  if !json_mode then begin
    let buf = Buffer.create 256 in
    Printf.bprintf buf "{\n  \"target\": %S,\n  \"metrics\": [" target;
    List.iteri
      (fun i (metric, value, unit) ->
        Printf.bprintf buf "%s\n    {\"metric\": %S, \"value\": %g, \"unit\": %S}"
          (if i = 0 then "" else ",")
          metric value unit)
      metrics;
    Buffer.add_string buf "\n  ]\n}\n";
    let file = Printf.sprintf "BENCH_%s.json" target in
    Support.Io.write_file file (Buffer.contents buf);
    note "[json] wrote %s (%d metrics)" file (List.length metrics)
  end
