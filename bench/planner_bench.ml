(* The physical planner measured along its three axes: access-path
   payoff (indexed point lookup vs forced full scan vs the legacy
   materialize-and-eval path), the hash-vs-merge join crossover as
   input size grows, and the planning overhead itself.  Every run works
   on throwaway files in the temp directory. *)

module E = Storage.Engine
module A = Relational.Algebra
module P = Planner.Physical
open Relational.Value

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dbmeta_planner_bench_%d_%d.db" (Unix.getpid ()) !n)
    in
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; E.wal_path path ];
    path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; E.wal_path path ]

(* n rows, [key] unique, [grp] with [n / 8] distinct values *)
let table ?(prefix = "k") n =
  Relational.Relation.of_list
    (Relational.Schema.make
       [ ("k", TInt); (prefix ^ "payload", TString) ])
    (List.init n (fun i ->
         [ Int i; String (Printf.sprintf "%s%06d" prefix i) ]))

let repeat k f =
  for _ = 1 to k do
    ignore (f () : Relational.Relation.t)
  done

let run () =
  Bench_util.header
    "Physical planner: access paths, join algorithms, planning overhead";
  let metrics = Bench_util.fresh_registry () in

  (* --- point query: index vs full scan vs legacy ------------------------- *)
  let n = 20_000 in
  let reps = 50 in
  Bench_util.note
    "Point query select[k = %d] over %d rows, %d repetitions:" (n / 2) n reps;
  let path = fresh_path () in
  let eng = E.open_db ~metrics path in
  E.save_table eng "r"
    (Relational.Relation.of_list
       (Relational.Schema.make [ ("k", TInt); ("payload", TString) ])
       (List.init n (fun i -> [ Int i; String (Printf.sprintf "p%06d" i) ])));
  ignore (Planner.Stats.analyze eng [ "r" ] : Planner.Stats.t);
  let idx = Planner.Indexes.load eng in
  Planner.Indexes.create eng idx
    { Planner.Indexes.table = "r"; attr = "k"; kind = Btree };
  let ctx = Planner.Plan.make eng in
  let q = A.Select (A.Cmp (A.Eq, A.Attr "k", A.Const (Int (n / 2))), A.Rel "r") in
  let indexed = Planner.Plan.plan ctx q in
  (* first run builds the in-memory index; keep it out of the timing *)
  ignore (Planner.Exec.run ctx indexed : Relational.Relation.t);
  let full =
    (* the same selection with the access path pinned to a heap scan *)
    let scan = P.make (P.Scan { table = "r"; access = P.Full; pages = 0 }) (Planner.Plan.catalog ctx "r") in
    P.make (P.Filter (A.Cmp (A.Eq, A.Attr "k", A.Const (Int (n / 2))), scan)) scan.P.schema
  in
  let t_index =
    Bench_util.timed (fun () -> repeat reps (fun () -> Planner.Exec.run ctx indexed))
  in
  let t_full =
    Bench_util.timed (fun () -> repeat reps (fun () -> Planner.Exec.run ctx full))
  in
  let t_legacy =
    Bench_util.timed (fun () ->
        repeat reps (fun () -> Relational.Eval.eval (E.database eng) q))
  in
  E.close eng;
  cleanup path;
  Bench_util.record ~metric:"point_index_ms" t_index;
  Bench_util.record ~metric:"point_fullscan_ms" t_full;
  Bench_util.record ~metric:"point_legacy_ms" t_legacy;
  Bench_util.note "  index point lookup  %s ms" (Bench_util.ms t_index);
  Bench_util.note "  forced full scan    %s ms  (%sx)" (Bench_util.ms t_full)
    (Bench_util.f1 (t_full /. Float.max 0.001 t_index));
  Bench_util.note "  legacy eval path    %s ms  (%sx)" (Bench_util.ms t_legacy)
    (Bench_util.f1 (t_legacy /. Float.max 0.001 t_index));

  (* --- join algorithms: hash vs merge over index order ------------------- *)
  Bench_util.note "";
  Bench_util.note
    "1:1 equi-join, hash join vs merge join over B+tree-ordered scans:";
  List.iter
    (fun size ->
      let path = fresh_path () in
      let eng = E.open_db path in
      E.save_table eng "a" (table ~prefix:"a" size);
      E.save_table eng "b" (table ~prefix:"b" size);
      ignore (Planner.Stats.analyze eng [ "a"; "b" ] : Planner.Stats.t);
      let idx = Planner.Indexes.load eng in
      List.iter
        (fun t ->
          Planner.Indexes.create eng idx
            { Planner.Indexes.table = t; attr = "k"; kind = Btree })
        [ "a"; "b" ];
      let join = A.Project ([ "k" ], A.Join (A.Rel "a", A.Rel "b")) in
      let time force =
        let ctx =
          Planner.Plan.make
            ~config:{ Planner.Plan.default_config with force_join = force }
            eng
        in
        let plan = Planner.Plan.plan ctx join in
        ignore (Planner.Exec.run ctx plan : Relational.Relation.t);
        Bench_util.timed (fun () ->
            ignore (Planner.Exec.run ctx plan : Relational.Relation.t))
      in
      let t_hash = time Planner.Plan.Force_hash in
      let t_merge = time Planner.Plan.Force_merge in
      E.close eng;
      cleanup path;
      Bench_util.record ~metric:(Printf.sprintf "join_hash_%d" size) t_hash;
      Bench_util.record ~metric:(Printf.sprintf "join_merge_%d" size) t_merge;
      Bench_util.note "  %6d x %6d rows: hash %s ms, merge %s ms  (%s wins)"
        size size (Bench_util.ms t_hash) (Bench_util.ms t_merge)
        (if t_hash <= t_merge then "hash" else "merge"))
    [ 500; 2_000; 8_000 ];

  (* --- planning overhead ------------------------------------------------- *)
  Bench_util.note "";
  let path = fresh_path () in
  let eng = E.open_db path in
  List.iter
    (fun t -> E.save_table eng t (table ~prefix:t 64))
    [ "a"; "b"; "c" ];
  ignore (Planner.Stats.analyze eng [ "a"; "b"; "c" ] : Planner.Stats.t);
  let ctx = Planner.Plan.make eng in
  let q =
    A.Project
      ( [ "k" ],
        A.Select
          ( A.Cmp (A.Ge, A.Attr "k", A.Const (Int 10)),
            A.Join (A.Join (A.Rel "a", A.Rel "b"), A.Rel "c") ) )
  in
  let plans = 1_000 in
  let t_plan =
    Bench_util.timed (fun () ->
        for _ = 1 to plans do
          ignore (Planner.Plan.plan ctx q : P.t)
        done)
  in
  E.close eng;
  cleanup path;
  let us = t_plan *. 1000.0 /. float_of_int plans in
  Bench_util.record ~metric:"plan_overhead_us" ~unit:"us" us;
  Bench_util.note
    "Planning a filtered 3-way join: %s us per plan (%d plans in %s ms)"
    (Bench_util.f2 us) plans (Bench_util.ms t_plan);

  (* --- chase-based join elimination -------------------------------------- *)
  (* k renamed copies of the same table, all joined on the unique key:
     the statistics prove k -> payload, so the semantic rewrite collapses
     the whole chain to one scan.  Time the executor with the rewrite on
     and off, and the (chase-bearing) planning itself. *)
  Bench_util.note "";
  let n = 4_000 in
  Bench_util.note
    "Key self-join chain over %d rows, semantic rewrite on vs off:" n;
  let path = fresh_path () in
  let eng = E.open_db path in
  E.save_table eng "a" (table ~prefix:"a" n);
  ignore (Planner.Stats.analyze eng [ "a" ] : Planner.Stats.t);
  let chain k =
    let copy i =
      A.Rename ([ ("apayload", Printf.sprintf "p%d" i) ], A.Rel "a")
    in
    let rec build i acc =
      if i > k then acc else build (i + 1) (A.Join (acc, copy i))
    in
    A.Project ([ "k"; "apayload" ], build 2 (A.Rel "a"))
  in
  let ctx_on = Planner.Plan.make eng in
  let ctx_off =
    Planner.Plan.make
      ~config:{ Planner.Plan.default_config with semantic = false }
      eng
  in
  List.iter
    (fun k ->
      let q = chain k in
      let run ctx =
        let plan = Planner.Plan.plan ctx q in
        ignore (Planner.Exec.run ctx plan : Relational.Relation.t);
        Bench_util.timed (fun () ->
            ignore (Planner.Exec.run ctx plan : Relational.Relation.t))
      in
      let t_on = run ctx_on and t_off = run ctx_off in
      let t_chase =
        let plans = 100 in
        Bench_util.timed (fun () ->
            for _ = 1 to plans do
              ignore (Planner.Plan.plan ctx_on q : P.t)
            done)
        *. 1000.0 /. float_of_int plans
      in
      Bench_util.record ~metric:(Printf.sprintf "join_elim_on_%d" k) t_on;
      Bench_util.record ~metric:(Printf.sprintf "join_elim_off_%d" k) t_off;
      Bench_util.record
        ~metric:(Printf.sprintf "join_elim_plan_us_%d" k)
        ~unit:"us" t_chase;
      Bench_util.note
        "  %d-way: eliminated %s ms vs full %s ms (%sx); chase-bearing plan %s us"
        k (Bench_util.ms t_on) (Bench_util.ms t_off)
        (Bench_util.f2 (t_off /. Float.max t_on 1e-9))
        (Bench_util.f2 t_chase))
    [ 2; 4; 8 ];

  (* --- certify overhead --------------------------------------------------- *)
  let cq = chain 4 in
  let cplan = Planner.Plan.plan ctx_on cq in
  let certs = 100 in
  let t_cert =
    Bench_util.timed (fun () ->
        for _ = 1 to certs do
          ignore (Planner.Certify.certify ctx_on cq cplan : Planner.Certify.report)
        done)
    *. 1000.0 /. float_of_int certs
  in
  E.close eng;
  cleanup path;
  Bench_util.record ~metric:"certify_overhead_us" ~unit:"us" t_cert;
  Bench_util.note
    "Certifying the 4-way chain (all five stages): %s us per query"
    (Bench_util.f2 t_cert);
  ignore metrics
