(* Sharded two-phase commit: commit latency as the shard count grows
   (more participants per transaction means more PREPARE/DECIDE
   exchanges), the cost of message loss (retries, decided aborts,
   stranded decisions), and the latency of the restart termination
   protocol that resolves in-doubt transactions from the coordinator's
   log.  Every cell is checked against the distributed recovery
   model. *)

module C = Distributed.Coordinator
module DX = Distributed.Executor
module E = Storage.Engine
module F = Storage.Fault
module W = Transactions.Workload

let fresh_base =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dist_bench_%d_%d.db" (Unix.getpid ()) !n)

let cleanup base shards =
  let rm p = if Sys.file_exists p then Sys.remove p in
  rm (C.coord_path base);
  for k = 0 to shards - 1 do
    rm (C.shard_path base k);
    rm (E.wal_path (C.shard_path base k))
  done

let params =
  { W.txns = 10; ops_per_txn = 6; items = 32; skew = 0.5; write_ratio = 0.6 }

let seeds () = List.init 6 (fun k -> 42 + !Bench_util.seed + k)

(* One seeded run over a fresh sharded database: open, drive the
   workload, close (or abandon after a crash), then model-check the
   survivor logs.  Returns (stats option, net ticks, diverged). *)
let run_once ?(metrics = Obs.Registry.noop) ~shards ~spec ~seed () =
  let base = fresh_base () in
  let rng = Support.Rng.create seed in
  let specs = W.generate rng params in
  let stats, ticks =
    match C.open_dist ~shards ~faults:(F.spec_of_string spec) ~metrics base with
    | coord ->
        let stats = DX.run ~config:{ DX.default_config with seed } coord specs in
        let ticks = C.net_ticks coord in
        if stats.DX.crashed = None then
          (try C.close coord with F.Crash _ -> C.crash coord);
        (Some stats, ticks)
    | exception F.Crash _ -> (None, 0)
  in
  let diverged = C.model_divergence ~path:base <> None in
  cleanup base shards;
  (stats, ticks, diverged)

(* Commit latency and throughput as the same workload spreads over
   1/2/4/8 shards.  One shard never leaves the one-phase fast path;
   every doubling raises the odds a transaction spans shards and pays
   the full PREPARE/VOTE/DECIDE round. *)
let shard_scaling () =
  Bench_util.note
    "Commit cost vs shard count, 10 txns x 6 ops over 32 items (no faults):";
  let rows =
    List.map
      (fun shards ->
        let committed = ref 0 and steps = ref 0 and ticks = ref 0 in
        let ms = ref 0. in
        List.iter
          (fun seed ->
            let (stats, run_ticks, diverged), elapsed =
              Bench_util.time_ms (fun () ->
                  run_once ~metrics:!Bench_util.registry ~shards ~spec:""
                    ~seed ())
            in
            ms := !ms +. elapsed;
            assert (not diverged);
            ticks := !ticks + run_ticks;
            match stats with
            | Some s ->
                committed := !committed + s.DX.committed;
                steps := !steps + s.DX.steps
            | None -> ())
          (seeds ());
        let n = float_of_int (List.length (seeds ())) in
        let per_commit =
          !ms /. Float.max 1. (float_of_int !committed)
        in
        Bench_util.record
          ~metric:(Printf.sprintf "dist_ms_per_commit/shards=%d" shards)
          per_commit;
        Bench_util.record
          ~metric:(Printf.sprintf "dist_net_ticks/shards=%d" shards)
          ~unit:"ticks"
          (float_of_int !ticks /. n);
        [
          Bench_util.i shards;
          Bench_util.f1 (float_of_int !committed /. n);
          Bench_util.f1 (float_of_int !steps /. n);
          Bench_util.f1 (float_of_int !ticks /. n);
          Bench_util.f3 per_commit;
          Bench_util.ms (!ms /. n);
        ])
      [ 1; 2; 4; 8 ]
  in
  Support.Table.print
    ~header:
      [ "shards"; "committed"; "steps"; "net ticks"; "ms/commit"; "ms/run" ]
    rows;
  print_newline ()

(* Message loss on a 2-shard database: dropped PREPAREs become decided
   aborts (the executor retries the program), dropped or partitioned
   DECIDEs strand until a nudge gets through — all visible as extra
   net ticks and restarts, never as divergence. *)
let loss_sweep () =
  Bench_util.note
    "Message-loss overhead, 2 shards, every run diffed against the model:";
  let specs =
    [
      ("none", "");
      ("drop 10%", "drop=0.1");
      ("drop 30%", "drop=0.3");
      ("partition 20%", "part=0.2");
      ("delay 30%", "delay=0.3");
    ]
  in
  let rows =
    List.map
      (fun (label, base_spec) ->
        let committed = ref 0 and caborts = ref 0 and restarts = ref 0 in
        let ticks = ref 0 and strand = ref 0 and diverged = ref 0 in
        List.iter
          (fun seed ->
            let spec =
              if base_spec = "" then ""
              else Printf.sprintf "%s,seed=%d" base_spec seed
            in
            let stats, run_ticks, div =
              run_once ~metrics:!Bench_util.registry ~shards:2 ~spec ~seed ()
            in
            if div then incr diverged;
            ticks := !ticks + run_ticks;
            match stats with
            | Some s ->
                committed := !committed + s.DX.committed;
                caborts := !caborts + s.DX.commit_aborts;
                restarts := !restarts + s.DX.restarts;
                strand := !strand + s.DX.stranded
            | None -> ())
          (seeds ());
        Bench_util.record
          ~metric:(Printf.sprintf "dist_commit_aborts/%s" label)
          ~unit:"count" (float_of_int !caborts);
        Bench_util.record
          ~metric:(Printf.sprintf "dist_divergences/%s" label)
          ~unit:"count" (float_of_int !diverged);
        [
          label;
          Bench_util.i !committed;
          Bench_util.i !caborts;
          Bench_util.i !restarts;
          Bench_util.i !strand;
          Bench_util.i !ticks;
          Bench_util.i !diverged;
        ])
      specs
  in
  Support.Table.print
    ~header:
      [ "faults"; "committed"; "commit-aborts"; "restarts"; "stranded";
        "net ticks"; "diverged" ]
    rows;
  Bench_util.note "Shape check: the diverged column must be all zeroes.";
  print_newline ()

(* Termination-protocol latency: strand a batch of decided commits by
   dropping every COMMIT message to shard 1, crash, and time the
   reopen that completes them offline from the coordinator's log. *)
let resolution_latency () =
  let base = fresh_base () in
  let shards = 2 in
  let coord =
    C.open_dist ~shards
      ~faults:(F.spec_of_string "drop@commit shard 1=1,seed=1")
      base
  in
  (* ten cross-shard transactions; each Decide(commit) is durable but
     undeliverable to shard 1, so each strands *)
  let stranded = ref 0 in
  for t = 1 to 10 do
    let txn = C.begin_txn coord in
    for k = 0 to 3 do
      C.write coord ~txn (Printf.sprintf "x%d" ((t * 4) + k)) t
    done;
    match C.commit coord ~txn with
    | C.Committed -> if C.is_stranded coord txn then incr stranded
    | C.Aborted _ -> ()
  done;
  C.crash coord;
  let coord, elapsed = Bench_util.time_ms (fun () -> C.open_dist base) in
  let completed, presumed = C.resolved coord in
  let intact = List.length (C.items coord) = 40 in
  C.close coord;
  cleanup base shards;
  Bench_util.record ~metric:"dist_resolve_reopen_ms" elapsed;
  Bench_util.record ~metric:"dist_resolved_commits" ~unit:"txns"
    (float_of_int completed);
  Bench_util.note
    "Resolution latency: reopen with %d stranded decision(s) took %s ms \
     (%d completed, %d presumed aborted, state intact: %b)"
    !stranded (Bench_util.ms elapsed) completed presumed intact;
  print_newline ()

let run () =
  Bench_util.header "Sharded atomic commit: 2PC under partitions and crashes";
  ignore (Bench_util.fresh_registry () : Obs.Registry.t);
  shard_scaling ();
  loss_sweep ();
  resolution_latency ()
