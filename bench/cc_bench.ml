(* §6: "Concurrency control is of course inevitable, but most database
   products seem to have adopted the simplest solutions [GR] (two-phase
   locking, and occasionally optimistic methods or tree-based locking)."
   The contention sweep shows why: strict 2PL is robust everywhere, the
   alternatives trade blocking for restarts (timestamp/optimistic) or for
   concurrency (tree locking). *)

module T = Transactions

let protocols : (string * (unit -> T.Protocol.t)) list =
  [
    ("strict 2PL", T.Two_phase.create);
    ("2PL wait-die", T.Two_phase.create_wait_die);
    ("timestamp", fun () -> T.Timestamp.create ());
    ("timestamp+thomas", fun () -> T.Timestamp.create ~thomas:true ());
    ("optimistic", T.Optimistic.create);
    ("tree locking", T.Tree_lock.create);
  ]

let workloads =
  [
    ("low (64 items, 20% writes)", { T.Workload.default with txns = 12; ops_per_txn = 8; items = 64; write_ratio = 0.2 });
    ("medium (16 items, 50% writes)", { T.Workload.default with txns = 12; ops_per_txn = 8; items = 16; write_ratio = 0.5 });
    ("high (6 items, 80% writes)", { T.Workload.default with txns = 12; ops_per_txn = 8; items = 6; write_ratio = 0.8 });
    ("hotspot (32 items, zipf 1.2)", { T.Workload.txns = 12; ops_per_txn = 8; items = 32; skew = 1.2; write_ratio = 0.5 });
  ]

let run_one make params =
  (* average over several seeds, offset by the driver's --seed *)
  let seeds = List.init 10 (fun k -> 42 + !Bench_util.seed + k) in
  let acc = Array.make 5 0. in
  let serializable = ref true in
  List.iter
    (fun seed ->
      let rng = Support.Rng.create seed in
      let specs = T.Workload.generate rng params in
      let jitter = Support.Rng.create (seed lxor 0x5eed) in
      let stats = T.Simulation.run ~rng:jitter (make ()) specs in
      acc.(0) <- acc.(0) +. float_of_int stats.T.Simulation.committed;
      acc.(1) <- acc.(1) +. float_of_int stats.T.Simulation.restarts;
      acc.(2) <- acc.(2) +. float_of_int stats.T.Simulation.deadlocks;
      acc.(3) <- acc.(3) +. float_of_int stats.T.Simulation.steps;
      acc.(4) <- acc.(4) +. float_of_int stats.T.Simulation.wasted_ops;
      serializable :=
        !serializable
        && T.Serializability.is_conflict_serializable stats.T.Simulation.history)
    seeds;
  let n = float_of_int (List.length seeds) in
  (Array.map (fun total -> total /. n) acc, !serializable)

let run () =
  Bench_util.header "Concurrency control: the simple solutions under contention";
  List.iter
    (fun (wl_label, params) ->
      Bench_util.note "workload: %s — %d txns x %d ops" wl_label
        params.T.Workload.txns params.T.Workload.ops_per_txn;
      let rows =
        List.map
          (fun (name, make) ->
            let a, serializable = run_one make params in
            Bench_util.record
              ~metric:
                (Printf.sprintf "commits_per_kstep/%s/%s" wl_label name)
              ~unit:"commits"
              (1000. *. a.(0) /. Float.max 1. a.(3));
            [
              name;
              Bench_util.f1 a.(0);
              Bench_util.f1 a.(1);
              Bench_util.f1 a.(2);
              Bench_util.f1 a.(3);
              Bench_util.f1 a.(4);
              Printf.sprintf "%.1f" (1000. *. a.(0) /. Float.max 1. a.(3));
              string_of_bool serializable;
            ])
          protocols
      in
      Support.Table.print
        ~header:
          [
            "protocol";
            "committed";
            "restarts";
            "deadlocks";
            "steps";
            "wasted ops";
            "commits/kstep";
            "serializable";
          ]
        rows;
      print_newline ())
    workloads;
  Bench_util.note
    "Shape check: 2PL deadlocks but needs few restarts; timestamp and optimistic";
  Bench_util.note
    "never deadlock but restart under contention; tree locking never deadlocks";
  Bench_util.note
    "and never restarts, paying instead with long blocking (more steps).";
  print_newline ();
  (* the recoverability story: 2PL output is strict, timestamp output is
     merely serializable *)
  let rng = Support.Rng.create 9 in
  let params = { T.Workload.default with txns = 6; items = 6; write_ratio = 0.5 } in
  let specs = T.Workload.generate rng params in
  Bench_util.note "Recoverability classes of one run per protocol:";
  let rows =
    List.map
      (fun (name, make) ->
        let stats = T.Simulation.run (make ()) specs in
        let h = stats.T.Simulation.history in
        [
          name;
          string_of_bool (T.Serializability.is_recoverable h);
          string_of_bool (T.Serializability.avoids_cascading_aborts h);
          string_of_bool (T.Serializability.is_strict h);
        ])
      protocols
  in
  Support.Table.print ~header:[ "protocol"; "RC"; "ACA"; "ST" ] rows;
  print_newline ();
  (* reliability and recovery: crash the WAL store at every prefix *)
  Bench_util.note
    "Reliability & recovery: undo recovery vs the committed prefix, crashing";
  Bench_util.note "at every log position (5 transactions x 4 writes):";
  let rng = Support.Rng.create 77 in
  let specs =
    List.init 5 (fun t ->
        ( t + 1,
          List.init 4 (fun _ ->
              ( Printf.sprintf "x%d" (Support.Rng.int rng 6),
                1 + Support.Rng.int rng 90 )) ))
  in
  let max_log = 5 * (4 + 2) in
  let correct = ref 0 and dirty_crashes = ref 0 in
  let total_ms = ref 0. in
  for crash_at = 0 to max_log do
    let replay_rng = Support.Rng.create 99 in
    let disk, log = T.Recovery.run_and_crash replay_rng ~specs ~crash_at in
    let recovered, elapsed =
      Bench_util.time_ms (fun () -> T.Recovery.recover disk log)
    in
    total_ms := !total_ms +. elapsed;
    let norm s = List.sort compare (List.filter (fun (_, v) -> v <> 0) s) in
    if norm recovered = norm (T.Recovery.committed_state log) then incr correct;
    if T.Recovery.losers log <> [] then incr dirty_crashes
  done;
  Bench_util.note
    "recovered correctly at %d/%d crash points (%d with in-flight losers); %.2f ms total"
    !correct (max_log + 1) !dirty_crashes !total_ms
