(* §6: "the absence of database products that incorporate some of the
   beautiful ideas our community has developed for the implementation of
   recursive queries."  The ideas, measured: naive vs semi-naive
   evaluation on full transitive closure, and magic sets vs semi-naive on
   point queries (the logic-database tradition's flagship results). *)

module D = Datalog

let run () =
  Bench_util.header "Recursive query evaluation: naive vs semi-naive vs magic sets";
  let metrics = Bench_util.fresh_registry () in
  Bench_util.note "Transitive closure of a chain (full evaluation):";
  let rows =
    List.map
      (fun n ->
        let edb = D.Workloads.chain ~n in
        let (_, naive_stats), naive_ms =
          Bench_util.time_ms (fun () ->
              D.Naive.eval_with_stats D.Workloads.transitive_closure edb)
        in
        let (_, semi_stats), semi_ms =
          Bench_util.time_ms (fun () ->
              D.Seminaive.eval_with_stats ~metrics
                D.Workloads.transitive_closure edb)
        in
        Bench_util.record ~metric:(Printf.sprintf "tc_naive_n%d" n) naive_ms;
        Bench_util.record ~metric:(Printf.sprintf "tc_seminaive_n%d" n) semi_ms;
        [
          Bench_util.i n;
          Bench_util.i naive_stats.D.Naive.derivations;
          Bench_util.i semi_stats.D.Naive.derivations;
          Printf.sprintf "%.1fx"
            (float_of_int naive_stats.D.Naive.derivations
            /. float_of_int (max 1 semi_stats.D.Naive.derivations));
          Bench_util.ms naive_ms;
          Bench_util.ms semi_ms;
          Printf.sprintf "%.1fx" (naive_ms /. Float.max 0.01 semi_ms);
        ])
      [ 16; 32; 64 ]
  in
  Support.Table.print
    ~header:
      [
        "chain n";
        "naive derivations";
        "semi derivations";
        "factor";
        "naive ms";
        "semi ms";
        "speedup";
      ]
    rows;
  print_newline ();
  Bench_util.note "Point query path(0, X) on two disconnected components (magic sets):";
  let rows =
    List.map
      (fun n ->
        let edb = D.Workloads.chain ~n in
        (* a second, irrelevant component the magic program never visits *)
        let edb =
          D.Facts.add_list edb "edge"
            (List.init n (fun k ->
                 [ Relational.Value.Int (10_000 + k); Relational.Value.Int (10_001 + k) ]))
        in
        let q = D.Parser.parse_query "path(0, X)" in
        let (semi_answers, semi_stats), semi_ms =
          Bench_util.time_ms (fun () ->
              let result, stats =
                D.Seminaive.eval_with_stats D.Workloads.transitive_closure_left edb
              in
              (D.Naive.filter_by_query (D.Facts.get result "path") q, stats))
        in
        let (magic_answers, magic_stats), magic_ms =
          Bench_util.time_ms (fun () ->
              D.Magic.query_with_stats D.Workloads.transitive_closure_left edb q)
        in
        Bench_util.record ~metric:(Printf.sprintf "point_seminaive_n%d" n) semi_ms;
        Bench_util.record ~metric:(Printf.sprintf "point_magic_n%d" n) magic_ms;
        [
          Bench_util.i n;
          Bench_util.i (D.Facts.Tuple_set.cardinal semi_answers);
          Bench_util.i semi_stats.D.Naive.derivations;
          Bench_util.i magic_stats.D.Naive.derivations;
          Printf.sprintf "%.1fx"
            (float_of_int semi_stats.D.Naive.derivations
            /. float_of_int (max 1 magic_stats.D.Naive.derivations));
          Bench_util.ms semi_ms;
          Bench_util.ms magic_ms;
          string_of_bool (D.Facts.Tuple_set.equal semi_answers magic_answers);
        ])
      [ 16; 32; 64 ]
  in
  Support.Table.print
    ~header:
      [
        "chain n";
        "answers";
        "semi derivations";
        "magic derivations";
        "factor";
        "semi ms";
        "magic ms";
        "agree";
      ]
    rows;
  print_newline ();
  Bench_util.note "Same-generation on a binary tree, point query sg(8, X):";
  let rows =
    List.map
      (fun depth ->
        let edb = D.Workloads.binary_tree ~depth in
        let q = D.Parser.parse_query "sg(8, X)" in
        let (_, semi_stats), semi_ms =
          Bench_util.time_ms (fun () ->
              D.Seminaive.eval_with_stats D.Workloads.same_generation edb)
        in
        let (_, magic_stats), magic_ms =
          Bench_util.time_ms (fun () ->
              D.Magic.query_with_stats D.Workloads.same_generation edb q)
        in
        [
          Bench_util.i depth;
          Bench_util.i semi_stats.D.Naive.derivations;
          Bench_util.i magic_stats.D.Naive.derivations;
          Bench_util.ms semi_ms;
          Bench_util.ms magic_ms;
          Printf.sprintf "%.1fx" (semi_ms /. Float.max 0.01 magic_ms);
        ])
      [ 4; 5; 6 ]
  in
  Support.Table.print
    ~header:
      [ "tree depth"; "semi derivations"; "magic derivations"; "semi ms"; "magic ms"; "speedup" ]
    rows
