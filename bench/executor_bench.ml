(* The fault-tolerant executor: throughput under contention, overhead and
   robustness under injected disk faults, and the latency of the
   quarantine-and-repair path.  Every run is checked against the
   Transactions.Recovery model of the surviving log — a benchmark that
   also functions as a large seeded fault sweep. *)

module E = Storage.Engine
module X = Storage.Executor
module F = Storage.Fault
module W = Transactions.Workload

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "executor_bench_%d_%d.db" (Unix.getpid ()) !n)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; E.wal_path path ]

let workloads =
  [
    ("low (64 items, 20% writes)", { W.default with txns = 12; ops_per_txn = 8; items = 64; write_ratio = 0.2 });
    ("medium (16 items, 50% writes)", { W.default with txns = 12; ops_per_txn = 8; items = 16; write_ratio = 0.5 });
    ("high (6 items, 80% writes)", { W.default with txns = 12; ops_per_txn = 8; items = 6; write_ratio = 0.8 });
    ("hotspot (32 items, zipf 1.2)", { W.txns = 12; ops_per_txn = 8; items = 32; skew = 1.2; write_ratio = 0.5 });
  ]

let seeds () = List.init 8 (fun k -> 42 + !Bench_util.seed + k)

(* One seeded run: open (the fault budget may fire anywhere, including
   inside open or recovery), execute, close, then diff the reopened
   database against the model.  Returns (stats option, diverged). *)
let run_once ?(metrics = Obs.Registry.noop) ~params ~spec ~seed () =
  let path = fresh_path () in
  let rng = Support.Rng.create seed in
  let specs = W.generate rng params in
  let stats =
    match E.open_db ~faults:(F.spec_of_string spec) ~metrics path with
    | eng ->
        let stats = X.run ~config:{ X.default_config with seed } eng specs in
        if stats.X.crashed = None then
          (try E.close eng with F.Crash _ -> E.crash eng);
        Some stats
    | exception F.Crash _ -> None
  in
  let diverged = X.model_divergence ~path <> None in
  cleanup path;
  (stats, diverged)

let contention () =
  Bench_util.note "Throughput under contention (no faults), 12 txns x 8 ops:";
  let rows =
    List.map
      (fun (label, params) ->
        let acc = Array.make 4 0. in
        let ms = ref 0. in
        List.iter
          (fun seed ->
            let (stats, diverged), elapsed =
              Bench_util.time_ms (fun () ->
                  run_once ~metrics:!Bench_util.registry ~params ~spec:"" ~seed ())
            in
            ms := !ms +. elapsed;
            assert (not diverged);
            match stats with
            | Some s ->
                acc.(0) <- acc.(0) +. float_of_int s.X.committed;
                acc.(1) <- acc.(1) +. float_of_int s.X.restarts;
                acc.(2) <- acc.(2) +. float_of_int s.X.deadlocks;
                acc.(3) <- acc.(3) +. float_of_int s.X.steps
            | None -> ())
          (seeds ());
        let n = float_of_int (List.length (seeds ())) in
        let kstep = 1000. *. acc.(0) /. Float.max 1. acc.(3) in
        Bench_util.record
          ~metric:(Printf.sprintf "exec_commits_per_kstep/%s" label)
          ~unit:"commits" kstep;
        [
          label;
          Bench_util.f1 (acc.(0) /. n);
          Bench_util.f1 (acc.(1) /. n);
          Bench_util.f1 (acc.(2) /. n);
          Bench_util.f1 (acc.(3) /. n);
          Bench_util.f1 kstep;
          Bench_util.ms (!ms /. n);
        ])
      workloads
  in
  Support.Table.print
    ~header:
      [ "workload"; "committed"; "restarts"; "deadlocks"; "steps";
        "commits/kstep"; "ms/run" ]
    rows;
  print_newline ()

let fault_matrix () =
  Bench_util.note
    "Fault sweep (medium contention), every run diffed against the model:";
  let specs =
    [
      ("none", "");
      ("torn 5%", "torn=0.05");
      ("flip 5%", "flip=0.05");
      ("eio 10%", "eio=0.1");
      ("mixed", "torn=0.03,flip=0.03,eio=0.08");
      ("crash budget", "crash=25");
    ]
  in
  let params = List.assoc "medium (16 items, 50% writes)" workloads in
  let rows =
    List.map
      (fun (label, base_spec) ->
        let committed = ref 0 and repairs = ref 0 and retries = ref 0 in
        let degraded = ref 0 and crashed = ref 0 and diverged = ref 0 in
        List.iter
          (fun seed ->
            let spec =
              if base_spec = "" then ""
              else Printf.sprintf "%s,seed=%d" base_spec seed
            in
            let stats, div =
              run_once ~metrics:!Bench_util.registry ~params ~spec ~seed ()
            in
            if div then incr diverged;
            match stats with
            | Some s ->
                committed := !committed + s.X.committed;
                repairs := !repairs + s.X.repairs;
                retries := !retries + s.X.io_retries;
                if s.X.degraded then incr degraded;
                if s.X.crashed <> None then incr crashed
            | None -> incr crashed)
          (seeds ());
        Bench_util.record
          ~metric:(Printf.sprintf "exec_divergences/%s" label)
          ~unit:"count" (float_of_int !diverged);
        Bench_util.record
          ~metric:(Printf.sprintf "exec_repairs/%s" label)
          ~unit:"count" (float_of_int !repairs);
        [
          label;
          Bench_util.i !committed;
          Bench_util.i !repairs;
          Bench_util.i !retries;
          Bench_util.i !degraded;
          Bench_util.i !crashed;
          Bench_util.i !diverged;
        ])
      specs
  in
  Support.Table.print
    ~header:
      [ "faults"; "committed"; "repairs"; "io-retries"; "degraded";
        "crashed"; "diverged" ]
    rows;
  Bench_util.note "Shape check: the diverged column must be all zeroes.";
  print_newline ()

(* Quarantine-and-repair latency: populate a database, flip a byte in the
   first item-store page on disk, and time the reopen that detects the
   CRC mismatch and rebuilds the store from the log. *)
let repair_latency () =
  let path = fresh_path () in
  let eng = E.open_db path in
  for t = 1 to 8 do
    let txn = E.begin_txn eng in
    for k = 0 to 7 do
      E.write eng ~txn (Printf.sprintf "x%d" k) ((t * 100) + k)
    done;
    E.commit eng ~txn
  done;
  let before = E.items eng in
  E.close eng;
  (* the first allocated page holds the head of the item store *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (Storage.Page.size + (Storage.Page.size / 2)) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let eng, elapsed = Bench_util.time_ms (fun () -> E.open_db path) in
  let intact = E.items eng = before in
  let repairs = E.repairs eng in
  E.close eng;
  cleanup path;
  Bench_util.record ~metric:"repair_reopen_ms" elapsed;
  Bench_util.note
    "Repair latency: reopen after an on-disk byte flip took %s ms (%d repair%s, state intact: %b)"
    (Bench_util.ms elapsed) repairs
    (if repairs = 1 then "" else "s")
    intact;
  print_newline ()

(* Observability overhead: the same medium-contention workload run with
   the default noop registry versus a live one.  Instruments resolve at
   construction and disabled histograms skip the clock, so the gate is
   tight: an enabled registry should cost low single-digit percent, and
   noop must be indistinguishable from the pre-instrumentation seed. *)
let obs_overhead () =
  let params = List.assoc "medium (16 items, 50% writes)" workloads in
  let time_with metrics =
    let ms = ref 0. in
    List.iter
      (fun seed ->
        let make () = match metrics with
          | None -> Obs.Registry.noop
          | Some () -> Obs.Registry.create ()
        in
        let (_, _), elapsed =
          Bench_util.time_ms (fun () ->
              run_once ~metrics:(make ()) ~params ~spec:"" ~seed ())
        in
        ms := !ms +. elapsed)
      (seeds ());
    !ms /. float_of_int (List.length (seeds ()))
  in
  ignore (time_with None : float) (* warmup *);
  let disabled = time_with None in
  let enabled = time_with (Some ()) in
  let pct = 100. *. ((enabled /. Float.max 1e-9 disabled) -. 1.) in
  Bench_util.record ~metric:"obs_disabled_ms" disabled;
  Bench_util.record ~metric:"obs_enabled_ms" enabled;
  Bench_util.record ~metric:"obs_overhead_pct" ~unit:"percent" pct;
  Bench_util.note
    "Observability overhead (medium contention): noop %s ms, live registry %s ms (%+.1f%%)"
    (Bench_util.ms disabled) (Bench_util.ms enabled) pct;
  print_newline ()

let run () =
  Bench_util.header "Fault-tolerant executor: locking, retry, and repair";
  ignore (Bench_util.fresh_registry () : Obs.Registry.t);
  contention ();
  fault_matrix ();
  repair_latency ();
  obs_overhead ()
