(* The benchmark harness: one target per figure of the paper plus one per
   section-level experimental claim, and a Bechamel micro-benchmark pass.
   With no argument, everything runs (figures first). *)

let targets =
  [
    ("fig1", "Figure 1: Kuhn's stages", Fig1.run);
    ("fig2", "Figure 2: research graph, healthy vs crisis", Fig2.run);
    ("fig3", "Figure 3: PODS papers per area, two-year averages", Fig3.run);
    ("volterra", "Volterra ecosystem fit to the PODS series", Volterra_bench.run);
    ("kitcher", "Kitcher's diversity model (footnote 11)", Kitcher_bench.run);
    ("codd", "Codd's theorem: compilation vs interpretation", Codd_bench.run);
    ("datalog", "recursive queries: naive / semi-naive / magic", Datalog_bench.run);
    ("cc", "concurrency control under contention", Cc_bench.run);
    ("chase", "dependency theory and normalization pipeline", Chase_bench.run);
    ("sat", "Cook & Fagin: SAT as common currency", Sat_bench.run);
    ("access", "access methods (B+tree, extendible hashing) + complex objects", Access_bench.run);
    ("storage", "persistent storage: pager, buffer pool, WAL, recovery", Storage_bench.run);
    ("executor", "fault-tolerant executor: locking, retry, repair", Executor_bench.run);
    ("planner", "cost-based planner: access paths, join algorithms, overhead", Planner_bench.run);
    ("dist", "sharded 2PC: latency vs shards, message loss, resolution", Dist_bench.run);
    ("repl", "replication: commit latency, catch-up, failover", Repl_bench.run);
    ("ablation", "design-choice ablations (optimizer, Yannakakis, DPLL)", Ablation.run);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [--json] [--seed N] [target ...]";
  print_endline "targets:";
  List.iter (fun (name, descr, _) -> Printf.printf "  %-10s %s\n" name descr) targets;
  print_endline "  all        everything (default)";
  print_endline "options:";
  print_endline
    "  --json     also write each target's metrics to BENCH_<target>.json";
  print_endline
    "  --seed N   base seed for randomized workloads (default 0)"

let run_target (name, _, run) =
  run ();
  Bench_util.flush_json name

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json, args = List.partition (fun a -> a = "--json") args in
  if json <> [] then Bench_util.json_mode := true;
  let rec take_seed = function
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> Bench_util.seed := s
        | None ->
            Printf.eprintf "--seed expects an integer, got %S\n" n;
            exit 1);
        take_seed rest
    | a :: rest -> a :: take_seed rest
    | [] -> []
  in
  let args = take_seed args in
  match args with
  | [] | [ "all" ] -> List.iter run_target targets
  | [ "help" ] | [ "--help" ] | [ "-h" ] -> usage ()
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) targets with
          | Some t -> run_target t
          | None ->
              Printf.eprintf "unknown target %S\n" name;
              usage ();
              exit 1)
        names
